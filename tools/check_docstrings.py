#!/usr/bin/env python
"""Docstring-coverage gate for the published ``repro`` API surface.

Walks every module under ``src/repro/`` with :mod:`ast` (no imports, so
it is safe on any file the repo can hold) and requires a docstring on:

* every module,
* every public class, and
* every public function/method (sync or async).

"Public" means the name has no leading underscore and none of its
enclosing scopes do (``_helper.method`` is private; ``Class._x`` is
private; anything in a ``_private.py`` module is private).  Dunder
methods are exempt (``__init__`` included: the class docstring is the
construction contract), as are trivial one-statement overrides whose
body is ``pass``/``...``, ``@overload`` stubs, and property
setters/deleters (they share the getter's docstring).

Exit status is the number of findings (0 = gate passes), so CI can run
it directly.  ``--json`` emits machine-readable findings for tooling.

Usage::

    python tools/check_docstrings.py [--root src/repro] [--json]
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path

#: (module-relative path, qualified name) pairs exempt from the gate.
#: Keep this list short and justified — it is the escape hatch, not the
#: norm.  Entries use the module path as reported in findings.
ALLOWLIST: set[tuple[str, str]] = set()

#: dunders whose docstring the gate insists on (the rest are exempt)
_REQUIRED_DUNDERS: set[str] = set()


def _is_public(name: str) -> bool:
    return not name.startswith("_") or (
        name.startswith("__") and name.endswith("__")
    )


def _dunder_exempt(name: str) -> bool:
    return (
        name.startswith("__")
        and name.endswith("__")
        and name not in _REQUIRED_DUNDERS
    )


def _is_trivial(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """``pass``/``...`` bodies and ``@overload`` stubs need no docstring."""
    for deco in node.decorator_list:
        name = deco.attr if isinstance(deco, ast.Attribute) else (
            deco.id if isinstance(deco, ast.Name) else None
        )
        if name == "overload":
            return True
        # a property *setter* (``@x.setter``) shares the getter's docstring
        if isinstance(deco, ast.Attribute) and deco.attr in ("setter", "deleter"):
            return True
    if len(node.body) == 1:
        stmt = node.body[0]
        if isinstance(stmt, ast.Pass):
            return True
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            return True  # `...` or a bare docstring-only body
        if isinstance(stmt, (ast.Raise, ast.Return)):
            # one-line `raise NotImplementedError` / delegating return
            return False
    return False


def _walk(
    node: ast.AST, module: str, scope: tuple[str, ...], findings: list[dict]
) -> None:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            name = child.name
            qual = ".".join((*scope, name))
            private_scope = any(
                part.startswith("_") and not part.startswith("__")
                for part in scope
            )
            needs = (
                _is_public(name)
                and not private_scope
                and not _dunder_exempt(name)
            )
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if needs and not _is_trivial(child) and not ast.get_docstring(child):
                    if (module, qual) not in ALLOWLIST:
                        findings.append(
                            {
                                "module": module,
                                "name": qual,
                                "kind": "function",
                                "line": child.lineno,
                            }
                        )
                # don't descend into functions: nested defs are local detail
                continue
            if needs and not ast.get_docstring(child):
                if (module, qual) not in ALLOWLIST:
                    findings.append(
                        {
                            "module": module,
                            "name": qual,
                            "kind": "class",
                            "line": child.lineno,
                        }
                    )
            _walk(child, module, (*scope, name), findings)


def check_file(path: Path, root: Path) -> list[dict]:
    """All docstring findings for one module file."""
    rel = path.relative_to(root.parent).as_posix()
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    findings: list[dict] = []
    private_module = any(
        part.startswith("_") and not part.startswith("__")
        for part in path.relative_to(root).parts
    )
    if not ast.get_docstring(tree) and not private_module:
        if (rel, "<module>") not in ALLOWLIST:
            findings.append(
                {"module": rel, "name": "<module>", "kind": "module", "line": 1}
            )
    if not private_module:
        _walk(tree, rel, (), findings)
    return findings


def main(argv: list[str] | None = None) -> int:
    """Run the gate; the exit status is the number of findings."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default="src/repro",
        help="package root to scan (default: src/repro)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as JSON"
    )
    args = parser.parse_args(argv)
    root = Path(args.root)
    if not root.is_dir():
        print(f"error: no such package root: {root}", file=sys.stderr)
        return 2
    findings: list[dict] = []
    for path in sorted(root.rglob("*.py")):
        findings.extend(check_file(path, root))
    if args.json:
        print(json.dumps(findings, indent=2, sort_keys=True))
    else:
        for f in findings:
            print(f"{f['module']}:{f['line']}: {f['kind']} `{f['name']}` has no docstring")
        total = sum(1 for _ in root.rglob("*.py"))
        print(
            f"docstring gate: {len(findings)} finding(s) across "
            f"{total} module(s)"
        )
    return min(len(findings), 125)


if __name__ == "__main__":
    raise SystemExit(main())
