"""Stdlib-only line-coverage measurement for environments without coverage.py.

Runs the tier-1 pytest suite under a ``sys.settrace`` hook restricted to
files below ``src/repro`` and reports the executed fraction of executable
lines (the set of line numbers in each module's compiled code objects —
the same universe ``coverage.py`` calls "statements", up to small
differences around docstrings and multi-line statements).

This exists to *pin* the CI coverage gate (`--cov-fail-under`) at a
measured baseline from a container that has no ``pytest-cov``; CI itself
installs and runs the real ``pytest-cov``.  Because the two measures can
differ by a point or two, pin the gate a few points below this script's
number.

Usage::

    python tools/measure_coverage.py [pytest args...]

Prints per-package and total percentages, plus the suggested gate.
"""

from __future__ import annotations

import os
import sys
import threading


def executable_lines(path: str) -> set[int]:
    """Line numbers of all code objects compiled from ``path``."""
    with open(path, "rb") as fh:
        source = fh.read()
    try:
        top = compile(source, path, "exec")
    except SyntaxError:
        return set()
    lines: set[int] = set()
    stack = [top]
    while stack:
        code = stack.pop()
        for _, _, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def main() -> int:
    src_root = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src", "repro"))
    hits: dict[str, set[int]] = {}

    def global_trace(frame, event, arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if not filename.startswith(src_root):
            return None
        lines = hits.setdefault(filename, set())
        add = lines.add

        def local_trace(frame, event, arg):
            if event == "line":
                add(frame.f_lineno)
            return local_trace

        return local_trace

    import pytest

    threading.settrace(global_trace)
    sys.settrace(global_trace)
    try:
        rc = pytest.main(["-q", "-p", "no:cacheprovider", *sys.argv[1:]])
    finally:
        sys.settrace(None)
        threading.settrace(None)

    total_exec = 0
    total_hit = 0
    by_package: dict[str, list[int]] = {}
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            exe = executable_lines(path)
            hit = hits.get(path, set()) & exe
            total_exec += len(exe)
            total_hit += len(hit)
            package = os.path.relpath(dirpath, src_root) or "."
            acc = by_package.setdefault(package, [0, 0])
            acc[0] += len(exe)
            acc[1] += len(hit)

    print()
    print(f"{'package':<20} {'lines':>7} {'hit':>7} {'cover':>7}")
    for package in sorted(by_package):
        exe, hit = by_package[package]
        pct = 100.0 * hit / exe if exe else 100.0
        print(f"{package:<20} {exe:>7} {hit:>7} {pct:>6.1f}%")
    pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"{'TOTAL':<20} {total_exec:>7} {total_hit:>7} {pct:>6.1f}%")
    print(f"\nsuggested --cov-fail-under: {int(pct) - 3}  (measured {pct:.1f}%, minus tool-difference margin)")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
