"""F3 — regenerate Figure 3 (Bayesian-network speedups, 2 processors).

Shape expectations (§5.1.2): on every network the best Global_Read age
beats both the synchronous and the fully asynchronous implementations;
the synchronous one runs below serial speed (the small networks "did not
exhibit enough parallelism"); the gains are largest for the skewed
Hailfinder network (paper: > 80 % over the best competitor).
"""

from benchmarks.conftest import run_once
from repro.experiments import format_figure3, run_figure3


def test_figure3(benchmark, scale, save_result):
    rows = run_once(benchmark, run_figure3, scale)
    save_result("figure3", format_figure3(rows), data=rows)
    assert [r["network"] for r in rows] == ["A", "AA", "C", "Hailfinder", "average"]
    for r in rows:
        sp = r["speedups"]
        best_gr = max(v for k, v in sp.items() if k.startswith("gr"))
        assert best_gr > sp["sync"], r["network"]
        assert best_gr > sp["async"], r["network"]
        assert sp["sync"] < 1.0, r["network"]
    avg = next(r for r in rows if r["network"] == "average")
    # the paper reports 78% over best competitor on average; require a
    # substantial positive gain without pinning the exact number
    assert avg["gain_over_best_competitor"] > 0.2
