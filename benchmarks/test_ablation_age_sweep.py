"""A2 — ablation: sensitivity to the staleness bound (age).

§6: "different degrees of asynchrony are best for different programs and
network loads ... we are experimenting with dynamic (runtime) setting of
tolerable age".  This sweep quantifies the static trade-off the paper's
age ∈ {0, 5, 10, 20, 30} grid samples: age 0 pays blocking, very large
ages approach fully-asynchronous behaviour (staleness costs iterations),
and the best setting lies in between for the Bayesian workload, where
the age bound directly controls rollback depth and message batching.
"""

from benchmarks.conftest import run_once
from repro.bayes.logic_sampling import run_serial_logic_sampling
from repro.bayes.parallel import ParallelLsConfig, run_parallel_logic_sampling
from repro.bayes.random_nets import make_table2_network
from repro.core.coherence import CoherenceMode
from repro.experiments.reporting import text_table
from repro.experiments.table2 import pick_query

AGES = (0, 2, 5, 10, 20, 30, 60)


def sweep(seed: int = 3):
    net = make_table2_network("A")
    q = pick_query(net)
    serial = run_serial_logic_sampling(net, query=q, seed=seed)
    rows = []
    for age in AGES:
        r = run_parallel_logic_sampling(
            ParallelLsConfig(
                net=net, query=q, n_procs=2, mode=CoherenceMode.NON_STRICT,
                age=age, seed=seed, max_iterations=40_000,
            )
        )
        rows.append(
            {
                "age": age,
                "speedup": serial.sim_time / r.completion_time if r.completion_time else 0.0,
                "messages": r.messages_sent,
                "rollbacks": r.rollback.rollbacks,
                "block_time": r.gr_stats.block_time,
            }
        )
    return rows


def test_age_sweep(benchmark, save_result):
    rows = run_once(benchmark, sweep)
    save_result(
        "ablation_age_sweep",
        text_table(
            ["age", "speedup", "messages", "rollbacks", "block time (s)"],
            [[r["age"], r["speedup"], r["messages"], r["rollbacks"], r["block_time"]] for r in rows],
            title="A2 — Global_Read age sensitivity (network A, 2 processors)",
        ),
        data=rows,
    )
    by_age = {r["age"]: r for r in rows}
    # message count falls monotonically with age (batching window grows)
    msgs = [r["messages"] for r in rows]
    assert all(a >= b * 0.9 for a, b in zip(msgs, msgs[1:]))
    # age 0 blocks hardest and is not the best performer
    assert by_age[0]["block_time"] >= max(r["block_time"] for r in rows) * 0.5
    best_age = max(rows, key=lambda r: r["speedup"])["age"]
    assert best_age > 0
