"""A3/A4 — ablations: sender-side buffering and the interconnect.

A3 (Mermera-style coalescing, §2.1): the fully asynchronous GA with
sender-side update buffering (drop-superseded-under-congestion) floods a
loaded network less than the paper's plain direct-send implementation —
the sender-side counterpart to Global_Read's receiver-side control.

A4 (§4.1's prediction): on the SP2's high-speed switch the synchronous
Bayesian sampler's communication penalty shrinks dramatically; the same
program that runs far below serial speed on the Ethernet becomes
competitive, while Global_Read retains its lead on the slow network —
"applications with higher communication requirements will see similar
benefits from non-strict coherence even on faster interconnects".
"""


from benchmarks.conftest import run_once
from repro.bayes.logic_sampling import run_serial_logic_sampling
from repro.bayes.parallel import ParallelLsConfig, run_parallel_logic_sampling
from repro.bayes.random_nets import make_table2_network
from repro.cluster.machine import MachineConfig
from repro.core.coherence import CoherenceMode, UpdatePolicy
from repro.experiments.table2 import pick_query
from repro.ga.functions import get_function
from repro.ga.island import IslandGaConfig, run_island_ga


def test_coalescing_reduces_async_flooding(benchmark, save_result):
    """A3: asynchronous island GA, loaded network, EAGER vs COALESCE."""

    def run(policy):
        return run_island_ga(
            IslandGaConfig(
                fn=get_function(1),
                n_demes=4,
                mode=CoherenceMode.ASYNCHRONOUS,
                n_generations=250,
                seed=3,
                machine=MachineConfig(n_nodes=4, seed=3, measure_warp=True).with_load(6e6),
                update_policy=policy,
            )
        )

    def both():
        return run(UpdatePolicy.EAGER), run(UpdatePolicy.COALESCE)

    eager, coal = run_once(benchmark, both)
    lines = [
        "A3 — sender-side update coalescing (async island GA, 6 Mbps load)",
        f"EAGER   : messages={eager.messages_sent} total_time={eager.total_time:.2f}s"
        f" quality={eager.best_fitness:.4g}",
        f"COALESCE: messages={coal.messages_sent} total_time={coal.total_time:.2f}s"
        f" quality={coal.best_fitness:.4g}",
    ]
    save_result(
        "ablation_coalesce",
        "\n".join(lines),
        data=[
            {
                "policy": name,
                "messages": r.messages_sent,
                "total_time": r.total_time,
                "best_fitness": r.best_fitness,
            }
            for name, r in (("eager", eager), ("coalesce", coal))
        ],
    )
    assert coal.messages_sent < eager.messages_sent


def test_switch_interconnect_rescues_sync(benchmark, save_result):
    """A4: synchronous BN sampler on Ethernet vs SP2 switch."""
    net = make_table2_network("A")
    q = pick_query(net)
    serial = run_serial_logic_sampling(net, query=q, seed=3)

    from repro.pvm.vm import PvmOverheads

    # The SP2 switch is driven through the user-space MPL transport, whose
    # per-message software cost is ~10x below PVM-over-UDP's; modelling the
    # switch without it would leave the (unchanged) software overhead
    # dominating and hide the interconnect's effect.
    mpl = PvmOverheads(
        send_fixed=0.08e-3, send_per_byte=12e-9, mcast_per_dest=0.03e-3,
        recv_fixed=0.05e-3, recv_per_byte=12e-9,
    )

    def run(interconnect, mode, age=0):
        mcfg = MachineConfig(
            n_nodes=2, seed=3, interconnect=interconnect,
            pvm_overheads=mpl if interconnect == "switch" else PvmOverheads(),
        )
        r = run_parallel_logic_sampling(
            ParallelLsConfig(
                net=net, query=q, n_procs=2, mode=mode, age=age, seed=3,
                machine=mcfg, max_iterations=40_000,
            )
        )
        return serial.sim_time / r.completion_time if r.completion_time else 0.0

    def all_runs():
        return {
            "sync_eth": run("ethernet", CoherenceMode.SYNCHRONOUS),
            "sync_switch": run("switch", CoherenceMode.SYNCHRONOUS),
            "gr10_eth": run("ethernet", CoherenceMode.NON_STRICT, 10),
            "gr10_switch": run("switch", CoherenceMode.NON_STRICT, 10),
        }

    sp = run_once(benchmark, all_runs)
    lines = ["A4 — interconnect ablation (network A, 2 processors, speedup vs serial)"]
    lines += [f"{k:12s}: {v:.2f}" for k, v in sp.items()]
    save_result("ablation_switch", "\n".join(lines), data=sp)
    # the switch removes most of sync's communication penalty...
    assert sp["sync_switch"] > 2.0 * sp["sync_eth"]
    # ...while Global_Read keeps its lead on the slow network
    assert sp["gr10_eth"] > sp["sync_eth"]
