"""A5 — ablation: dynamic (runtime) age adaptation (§6 future work).

"Different degrees of asynchrony are best for different programs and
network loads" — a fixed age tuned for one load level is wrong for
another.  The AIMD controller (:mod:`repro.core.dynamic_age`) adapts the
bound from observed blocking/staleness; this ablation compares it with
the static grid across load levels.  Success criterion: dynamic stays
within a modest margin of the *best static age for that load* without
knowing the load in advance.
"""

from benchmarks.conftest import run_once
from repro.cluster.machine import MachineConfig
from repro.cluster.node import NodeSpec
from repro.core.coherence import CoherenceMode
from repro.experiments.reporting import text_table
from repro.ga import IslandGaConfig, get_function, run_island_ga, run_serial_ga

LOADS = (0.0, 2e6, 6e6)
STATIC_AGES = (0, 5, 30)


def sweep(seed: int = 5):
    fn = get_function(1)
    G, P = 200, 4
    serial = run_serial_ga(fn, seed=seed, n_generations=G, population_size=50 * P)
    bar = float(serial.best_history[int(0.6 * G)])
    st = serial.time_to_target(bar)

    def run(load, age, dynamic=False):
        r = run_island_ga(
            IslandGaConfig(
                fn=fn, n_demes=P, mode=CoherenceMode.NON_STRICT, age=age,
                dynamic_age=dynamic, n_generations=3 * G, seed=seed, target=bar,
                machine=MachineConfig(
                    n_nodes=P, seed=seed, node_spec=NodeSpec(jitter_sigma=0.12)
                ).with_load(load),
            )
        )
        return st / r.completion_time if r.completion_time else 0.0

    rows = []
    for load in LOADS:
        row = {"load_mbps": load / 1e6}
        for age in STATIC_AGES:
            row[f"age{age}"] = run(load, age)
        row["dynamic"] = run(load, 5, dynamic=True)
        rows.append(row)
    return rows


def test_dynamic_age(benchmark, save_result):
    rows = run_once(benchmark, sweep)
    headers = ["load (Mbps)", *[f"age {a}" for a in STATIC_AGES], "dynamic"]
    save_result(
        "ablation_dynamic_age",
        text_table(
            headers,
            [
                [r["load_mbps"], *[r[f"age{a}"] for a in STATIC_AGES], r["dynamic"]]
                for r in rows
            ],
            title="A5 — static age grid vs runtime-adapted age (f1, 4 demes)",
        ),
        data=rows,
    )
    for r in rows:
        best_static = max(r[f"age{a}"] for a in STATIC_AGES)
        assert r["dynamic"] >= 0.6 * best_static, f"load {r['load_mbps']}"
        assert r["dynamic"] > 0.0
