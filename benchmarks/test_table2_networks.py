"""T2 — regenerate Table 2 (the four belief networks).

Shape expectations: the three random networks take ~11 s of simulated
uniprocessor inference, Hailfinder markedly less (paper: 3.15 s), and
its 2-way edge-cut is 4.
"""

from benchmarks.conftest import run_once
from repro.experiments import format_table2, run_table2


def test_table2(benchmark, save_result):
    rows = run_once(benchmark, run_table2)
    save_result("table2", format_table2(rows), data=rows)
    by_name = {r["name"]: r for r in rows}
    assert set(by_name) == {"A", "AA", "C", "Hailfinder"}
    for r in rows:
        assert r["converged"]
    # paper-shape checks
    for name in ("A", "AA", "C"):
        assert 7.0 < by_name[name]["inference_time"] < 16.0
    assert (
        by_name["Hailfinder"]["inference_time"]
        < 0.7 * by_name["A"]["inference_time"]
    )
    assert by_name["Hailfinder"]["edge_cut"] == 4
