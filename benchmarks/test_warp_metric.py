"""W1 — the warp network-load measurements (§4.3).

Shape expectations: warp = 1 on a stable network; ramping background
load pushes the peak warp monotonically above 1.
"""

from benchmarks.conftest import run_once
from repro.experiments import format_warp_study, run_warp_study


def test_warp_study(benchmark, scale, save_result):
    res = run_once(benchmark, run_warp_study, scale)
    save_result("warp_study", format_warp_study(res), data=res)
    probe = res["probe"]
    assert abs(probe[0]["mean_warp"] - 1.0) < 0.02
    assert abs(probe[0]["max_warp"] - 1.0) < 0.02
    maxes = [r["max_warp"] for r in probe]
    # warp spikes above 1 under every ramping load, and the heaviest ramp
    # produces the largest spike (adjacent levels may fluctuate)
    assert all(m > 1.2 for m in maxes[1:])
    assert maxes[-1] == max(maxes)
    assert maxes[-1] > 1.5
