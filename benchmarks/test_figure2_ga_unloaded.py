"""F2 — regenerate Figure 2 (GA speedups on the unloaded network).

Shape expectations (§5.1.1): the best Global_Read setting at least
matches the best competitor at every processor count and beats it
overall; the paper's numbers are 42 % over the best competitor in the
best case and 34 % on average — we assert direction and a conservative
band, not the exact figure (our substrate is a simulator).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import format_figure2, run_figure2


def test_figure2(benchmark, scale, save_result):
    rows = run_once(benchmark, run_figure2, scale)
    save_result("figure2", format_figure2(rows), data=rows)
    assert [r["P"] for r in rows] == list(scale.processor_counts)
    for r in rows:
        sp = r["average"]
        best_gr = max(v for k, v in sp.items() if k.startswith("gr"))
        # Global_Read is never dominated by the synchronous program
        assert best_gr >= 0.95 * sp["sync"]
    # overall, the best partially asynchronous program wins
    mean_gain = np.mean([r["gain_over_best_competitor"] for r in rows])
    assert mean_gain > -0.05
    # and parallelism pays at all: some configuration beats serial clearly
    assert max(max(r["average"].values()) for r in rows) > 1.5
