"""A1 — ablation: the two Global_Read implementations (§2).

The paper describes a waiting implementation ("just waits until the
required update arrives ... will generate fewer messages") and a
request-broadcast implementation (ask the writer; served by a DSM
daemon), and evaluates only the former.  This ablation measures both on
a producer/consumer pipeline where the consumer outpaces the producer:

* WAIT sends strictly fewer messages (no request traffic);
* REQUEST obtains values no earlier (the daemon must still wait for the
  producing write), so the waiting implementation dominates here — the
  paper's choice, quantified.
"""

import pytest

from benchmarks.conftest import run_once
from repro.cluster import Machine, MachineConfig
from repro.core import Dsm, GlobalReadMode, SharedLocationSpec
from repro.sim import Compute


def pipeline(mode: GlobalReadMode, n_iters: int = 200, seed: int = 1):
    m = Machine(MachineConfig(n_nodes=2, seed=seed))
    dsm = Dsm(m.vm, mode=mode)
    dsm.register(SharedLocationSpec("x", writer=0, readers=(1,), value_nbytes=128))
    if mode is GlobalReadMode.REQUEST:
        dsm.spawn_daemons()

    def producer(node, task):
        d = dsm.node(0)
        for i in range(n_iters):
            yield Compute(node.cost(2e-3))
            yield from d.write("x", i, i)

    def consumer(node, task):
        d = dsm.node(1)
        for i in range(n_iters):
            yield Compute(node.cost(0.2e-3))
            yield from d.global_read("x", i, 2)

    m.spawn_on(0, producer)
    m.spawn_on(1, consumer)
    t = m.run_to_completion()
    return {
        "mode": mode.value,
        "completion": t,
        "messages": m.vm.total_messages(),
        "gr": dsm.node(1).gr_stats,
    }


def test_gr_wait_vs_request(benchmark, save_result):
    def both():
        return pipeline(GlobalReadMode.WAIT), pipeline(GlobalReadMode.REQUEST)

    wait, request = run_once(benchmark, both)
    lines = [
        "A1 — Global_Read implementations (200-iteration pipeline, slow producer)",
        f"WAIT   : completion={wait['completion']:.3f}s messages={wait['messages']}"
        f" blocks={wait['gr'].blocked} block_time={wait['gr'].block_time:.3f}s",
        f"REQUEST: completion={request['completion']:.3f}s messages={request['messages']}"
        f" blocks={request['gr'].blocked} requests={request['gr'].requests_sent}",
    ]
    save_result(
        "ablation_gr_impl",
        "\n".join(lines),
        data=[
            {
                "impl": name,
                "completion": r["completion"],
                "messages": r["messages"],
                "blocks": r["gr"].blocked,
                "block_time": r["gr"].block_time,
                "requests_sent": r["gr"].requests_sent,
            }
            for name, r in (("wait", wait), ("request", request))
        ],
    )
    # the paper's rationale, quantified:
    assert wait["messages"] < request["messages"]
    assert wait["completion"] <= request["completion"] * 1.05
    assert request["gr"].requests_sent > 0
    # both implement the same staleness contract
    assert wait["gr"].calls == request["gr"].calls == 200
