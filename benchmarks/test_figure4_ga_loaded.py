"""F4 — regenerate Figure 4 (GA speedups under background network load).

Shape expectations (§5.2): the benefits of partial asynchrony are
generally larger when the network is loaded — the best-Global_Read gain
over the best competitor at the highest load exceeds its unloaded value
(paper: up to ~70 % at 2 Mbps vs ~40 % unloaded for the best case).
"""

from benchmarks.conftest import run_once
from repro.experiments import format_figure4, run_figure4


def test_figure4(benchmark, scale, save_result):
    rows = run_once(benchmark, run_figure4, scale)
    save_result("figure4", format_figure4(rows), data=rows)
    loads = [r["load_mbps"] for r in rows]
    assert loads[0] == 0.0 and loads == sorted(loads)
    def best_gr(r):
        return max(v for k, v in r["average"].items() if k.startswith("gr"))

    for r in rows:
        assert best_gr(r) >= 0.95 * r["average"]["sync"], f"load {r['load_mbps']}"
    # Global_Read's advantage over the synchronous program grows with the
    # offered load (the paper's central §5.2 trend): the loaded GR/sync
    # ratio exceeds the unloaded one
    ratio_unloaded = best_gr(rows[0]) / rows[0]["average"]["sync"]
    ratio_loaded = best_gr(rows[-1]) / rows[-1]["average"]["sync"]
    assert ratio_loaded >= ratio_unloaded * 0.98
    # and it never falls behind the best competitor under load
    assert rows[-1]["gain_over_best_competitor"] >= -0.02
