"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table/figure of the paper, times it with
pytest-benchmark (one round — these are experiments, not microbenchmarks)
and writes the formatted text table under ``results/`` so EXPERIMENTS.md
can reference the exact output of the last run.

Scale comes from ``REPRO_SCALE`` (smoke/default/full); benchmarks default
to ``default``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.config import current_scale

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def scale():
    return current_scale()


@pytest.fixture(scope="session")
def save_result():
    """Writer: save_result(name, text) -> path under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> pathlib.Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
