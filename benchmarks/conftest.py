"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table/figure of the paper, times it with
pytest-benchmark (one round — these are experiments, not microbenchmarks)
and writes the formatted text table under ``results/`` so EXPERIMENTS.md
can reference the exact output of the last run.

Scale comes from ``REPRO_SCALE`` (smoke/default/full); benchmarks default
to ``default``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.bench.harness import SCHEMA_VERSION, env_info
from repro.experiments.config import current_scale

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def scale():
    return current_scale()


@pytest.fixture(scope="session")
def save_result():
    """Writer: save_result(name, text, data=None) -> path under results/.

    Always writes the human-readable table to ``results/<name>.txt``.
    When ``data`` (the raw row dicts behind the table) is given, also
    writes ``results/<name>.json`` wrapped in the same ``repro-bench/1``
    envelope as ``BENCH_<n>.json``, so downstream tooling parses one
    schema for both bench points and experiment outputs.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str, data=None) -> pathlib.Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        if data is not None:
            envelope = {
                "schema": SCHEMA_VERSION,
                "name": name,
                "scale": current_scale().name,
                "env": env_info(),
                "rows": data,
            }
            (RESULTS_DIR / f"{name}.json").write_text(
                json.dumps(envelope, indent=2, sort_keys=True, default=str) + "\n"
            )
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
