"""T1 — regenerate Table 1 (the eight-function GA test bed)."""

from benchmarks.conftest import run_once
from repro.experiments import format_table1, run_table1


def test_table1(benchmark, save_result):
    rows = run_once(benchmark, run_table1)
    save_result("table1", format_table1(rows), data=rows)
    assert len(rows) == 8
    # every minimum verified against the paper's column
    assert all(r["matches"] for r in rows)
