"""Q1 — GA solution-quality metrics (§4.3).

Shape expectations: the parallel GA (total population 50·P) finds the
global optimum at least as often as the serial baseline at the same
generation budget, and quality does not degrade as processors are added
("parallel GAs can also explore different regions of the search space
simultaneously thus leading to a better quality solution").
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.quality import format_quality, run_quality


def test_quality(benchmark, scale, save_result):
    fid = scale.ga_functions[0]
    counts = scale.processor_counts[:2]
    rows = run_once(benchmark, run_quality, scale, fid, counts)
    save_result("quality", format_quality(rows, fid), data=rows)
    by = {(r["P"], r["variant"]): r for r in rows}
    for P in counts:
        serial = by[(P, "serial")]
        variants = [r for r in rows if r["P"] == P and r["variant"] != "serial"]
        best_parallel = min(r["mean_final_best"] for r in variants)
        # parallel search quality is competitive with the big serial run
        assert best_parallel <= serial["mean_final_best"] * 3 + 1e-6
        assert max(r["optimum_found"] for r in variants) >= serial["optimum_found"] - 1
    # more processors never collapse quality for the Global_Read variant
    gr = [r for r in rows if r["variant"].startswith("gr")]
    assert all(np.isfinite(r["mean_final_best"]) for r in gr)
