"""Experiment runners at smoke scale: structure, sanity and key shapes.

These are integration tests — the full paper-shape assertions live in
the benchmarks (which run at larger scale); here we verify the runners
produce complete, well-formed, internally consistent results quickly.
"""

import numpy as np
import pytest

from repro.experiments import (
    Scale,
    best_competitor_gain,
    format_figure2,
    format_figure3,
    format_figure4,
    format_table1,
    format_table2,
    format_warp_study,
    run_figure3,
    run_table1,
    run_table2,
    run_warp_study,
)
from repro.experiments.config import current_scale
from repro.experiments.speedup import (
    GaVariant,
    GaTrial,
    run_ga_trial,
    speedups_over_trials,
)


@pytest.fixture(scope="module")
def smoke():
    return Scale.smoke()


class TestConfig:
    def test_presets(self):
        assert Scale.smoke().ga_runs < Scale.default().ga_runs < Scale.full().ga_runs
        assert Scale.full().ga_runs == 25  # the paper's protocol
        assert Scale.full().ga_generations == 1000

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert current_scale().name == "smoke"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            current_scale()


class TestTable1:
    def test_all_rows_match_paper(self):
        rows = run_table1()
        assert len(rows) == 8
        assert all(r["matches"] for r in rows)

    def test_format_contains_every_function(self):
        text = format_table1(run_table1())
        for name in ("sphere", "foxholes", "rastrigin", "schwefel", "griewank"):
            assert name in text


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table2()

    def test_four_networks_with_structure(self, rows):
        assert [r["name"] for r in rows] == ["A", "AA", "C", "Hailfinder"]
        for r in rows:
            assert r["converged"]
            assert r["nodes"] in (54, 56)

    def test_inference_times_in_paper_band(self, rows):
        """Random nets ~11 s, Hailfinder distinctly faster (paper: 3.15 s)."""
        by_name = {r["name"]: r for r in rows}
        for name in ("A", "AA", "C"):
            assert 7.0 < by_name[name]["inference_time"] < 16.0
        assert by_name["Hailfinder"]["inference_time"] < by_name["A"]["inference_time"]

    def test_hailfinder_cut_matches_paper(self, rows):
        hf = next(r for r in rows if r["name"] == "Hailfinder")
        assert hf["edge_cut"] == hf["paper_edge_cut"] == 4

    def test_format(self, rows):
        assert "Hailfinder" in format_table2(rows)


class TestGaTrial:
    def test_trial_produces_all_variants(self, smoke):
        variants = GaVariant.standard_set((0, 10))
        trial = run_ga_trial(smoke, fid=1, P=2, seed=1, variants=variants)
        assert set(trial.times) == {"sync", "async", "gr0", "gr10"}
        assert trial.serial_time > 0

    def test_speedups_ratio_of_sums(self):
        variants = ["a"]
        t1 = GaTrial(1, 2, 0, serial_time=10.0, times={"a": 5.0}, results={})
        t2 = GaTrial(1, 2, 1, serial_time=30.0, times={"a": 5.0}, results={})
        sp = speedups_over_trials([t1, t2], variants)
        assert sp["a"] == pytest.approx(4.0)  # (10+30)/(5+5)

    def test_best_competitor_gain(self):
        sp = {"sync": 1.2, "async": 2.0, "gr0": 1.9, "gr10": 2.6}
        label, gain = best_competitor_gain(sp)
        assert label == "gr10"
        assert gain == pytest.approx(0.3)

    def test_best_competitor_includes_serial(self):
        sp = {"sync": 0.4, "async": 0.6, "gr10": 1.5}
        label, gain = best_competitor_gain(sp)
        # serial (1.0) is the best competitor here
        assert gain == pytest.approx(0.5)


class TestFigure3:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_figure3(Scale.smoke())

    def test_rows_cover_networks_plus_average(self, rows):
        assert [r["network"] for r in rows] == ["A", "AA", "C", "Hailfinder", "average"]

    def test_paper_shape_gr_beats_sync_and_async(self, rows):
        """The central Figure 3 claim at every network."""
        for r in rows:
            sp = r["speedups"]
            best_gr = max(v for k, v in sp.items() if k.startswith("gr"))
            assert best_gr > sp["sync"]
            assert best_gr > sp["async"]

    def test_sync_below_serial(self, rows):
        for r in rows:
            assert r["speedups"]["sync"] < 1.0

    def test_format(self, rows):
        text = format_figure3(rows)
        assert "Hailfinder" in text and "average" in text


class TestWarpStudy:
    def test_probe_warp_grows_with_ramp(self):
        res = run_warp_study(Scale.smoke())
        maxes = [r["max_warp"] for r in res["probe"]]
        assert maxes[0] == pytest.approx(1.0, abs=0.01)
        assert maxes[-1] > 1.5
        assert maxes[-1] == max(maxes)
        assert format_warp_study(res)


class TestFormatting:
    def test_figure2_and_4_formatters_render(self):
        # synthesised rows to keep formatter tests fast
        row = {
            "P": 2,
            "load_mbps": 0.5,
            "best_case_fid": 1,
            "best_case": {"sync": 1.0, "gr10": 1.4},
            "average": {"sync": 1.1, "gr10": 1.3},
            "best_gr": "gr10",
            "gain_over_best_competitor": 0.18,
            "best_case_gr": "gr10",
            "best_case_gain": 0.4,
        }
        assert "gr10" in format_figure2([row])
        assert "gr10" in format_figure4([row])
