"""The parallel experiment runner: job parsing, ordering, fallback."""

import os

import pytest

from repro.experiments.runner import JOBS_ENV, configured_jobs, parallel_map


def _square(x):
    return x * x


def _addmul(a, b, c=1):
    return (a + b) * c


class TestConfiguredJobs:
    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert configured_jobs() == 1

    def test_empty_string_means_serial(self):
        assert configured_jobs("") == 1
        assert configured_jobs("  ") == 1

    def test_explicit_integer(self):
        assert configured_jobs("4") == 4

    def test_auto_and_zero_use_cpu_count(self):
        n = os.cpu_count() or 1
        assert configured_jobs("auto") == n
        assert configured_jobs("0") == n

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            configured_jobs("many")
        with pytest.raises(ValueError):
            configured_jobs("-2")

    def test_reads_process_environment_by_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert configured_jobs() == 3


class TestParallelMap:
    def test_serial_preserves_order(self):
        assert parallel_map(_square, [(i,) for i in range(10)], jobs=1) == [
            i * i for i in range(10)
        ]

    def test_parallel_results_ordered_by_submission_not_completion(self):
        args = [(i,) for i in range(20)]
        assert parallel_map(_square, args, jobs=2) == [i * i for i in range(20)]

    def test_parallel_matches_serial_exactly(self):
        args = [(i, 10 - i, 2) for i in range(10)]
        serial = parallel_map(_addmul, args, jobs=1)
        parallel = parallel_map(_addmul, args, jobs=2)
        assert parallel == serial

    def test_empty_input(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_jobs_clamped_to_item_count(self):
        # jobs=8 with one item must not spin up a pointless pool
        assert parallel_map(_square, [(3,)], jobs=8) == [9]

    def test_unpicklable_fn_would_fail_loud_in_parallel(self):
        # lambdas can't cross a process boundary; serial path accepts them
        assert parallel_map(lambda x: x + 1, [(1,), (2,)], jobs=1) == [2, 3]
