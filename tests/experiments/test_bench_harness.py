"""The bench harness: schema, trajectory naming, timing, micro suite."""

import json

from repro.bench.harness import (
    SCHEMA_VERSION,
    env_info,
    load_trajectory,
    make_payload,
    next_bench_path,
    timed,
    write_bench,
)
from repro.bench.micro import bench_kernel


def test_timed_returns_result_and_positive_best():
    result, best_s = timed(sum, [1, 2, 3], repeat=3)
    assert result == 6
    assert best_s > 0


def test_next_bench_path_counts_up(tmp_path):
    assert next_bench_path(tmp_path).name == "BENCH_1.json"
    (tmp_path / "BENCH_1.json").write_text("{}")
    (tmp_path / "BENCH_7.json").write_text("{}")
    (tmp_path / "BENCH_nope.json").write_text("{}")  # ignored
    assert next_bench_path(tmp_path).name == "BENCH_8.json"


def test_payload_schema_and_roundtrip(tmp_path):
    payload = make_payload(
        "smoke",
        4,
        micro={"kernel_events_per_sec": 1e5},
        experiments={"figure2": {"wall_s": 1.0, "serial_wall_s": 2.0, "parallel_speedup": 2.0}},
        determinism={"kernel_trace": {"digest": "x", "golden": "x", "ok": True}},
    )
    assert payload["schema"] == SCHEMA_VERSION
    assert payload["jobs"] == 4
    assert payload["env"]["cpu_count"] == env_info()["cpu_count"]
    path = write_bench(tmp_path / "BENCH_3.json", payload)
    again = json.loads(path.read_text())
    assert again["micro"]["kernel_events_per_sec"] == 1e5
    traj = load_trajectory(tmp_path)
    assert [n for n, _ in traj] == [3]
    assert traj[0][1]["scale"] == "smoke"


def test_bench_kernel_reports_consistent_rate():
    out = bench_kernel(n_workers=4, n_steps=24, repeat=1)
    assert out["kernel_events"] > 0
    assert out["kernel_events_per_sec"] == out["kernel_events"] / out["kernel_wall_s"]


def test_bench_obs_reports_overhead_and_span_rate():
    from repro.bench.micro import bench_obs

    out = bench_obs(repeat=1)
    assert out["obs_trace_events"] > 0
    assert out["obs_overhead_ratio"] > 0
    assert out["obs_span_build_events_per_sec"] == (
        out["obs_trace_events"] / out["obs_span_build_wall_s"]
    )
