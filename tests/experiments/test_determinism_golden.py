"""Golden end-to-end digests: one small GA config, one small Bayes config.

These pin the *application-visible* results of the simulator — any
kernel "optimisation" that reorders same-instant events, changes RNG
consumption order, or alters signal wakeup order will shift them.
"""

from repro.bench.determinism import (
    GOLDEN,
    bayes_result_digest,
    digest_values,
    ga_result_digest,
)


def test_ga_digest_matches_golden():
    assert ga_result_digest() == GOLDEN["ga_result"]


def test_bayes_digest_matches_golden():
    assert bayes_result_digest() == GOLDEN["bayes_result"]


def test_digest_values_canonicalises_numpy_scalars():
    import numpy as np

    assert digest_values(1.5, [2.0, 3.0]) == digest_values(
        np.float64(1.5), np.array([2.0, 3.0])
    )
    assert digest_values(7) == digest_values(np.int64(7))
    assert digest_values(1.5) != digest_values(1.5000001)
