"""scale_study driver: golden pins, sweep rows, skip-path metrics, O(1)."""

import pytest

from repro.experiments.config import Scale
from repro.experiments.scale_study import (
    SWITCHED_GOLDEN,
    format_scale_study,
    golden_scenarios,
    run_scale_proof,
    run_scale_study,
    scenario,
)


class TestScenarioBuilder:
    def test_builds_switched_machine_with_requested_knobs(self):
        cfg = scenario(16, "torus", "fat-tree", age=5, radix=4)
        assert cfg.n_demes == 16
        assert cfg.topology == "torus"
        assert cfg.machine.interconnect == "switched"
        assert cfg.machine.switched.fabric == "fat-tree"
        assert cfg.machine.switched.radix == 4
        assert cfg.machine.n_nodes == 16

    def test_bad_topology_or_fabric_rejected(self):
        with pytest.raises(ValueError):
            scenario(8, "mesh", "single", age=5)
        with pytest.raises(ValueError):
            scenario(8, "ring", "crossbar", age=5)

    def test_golden_scenarios_cover_the_pinned_keys(self):
        scenarios = golden_scenarios()
        assert set(scenarios) == set(SWITCHED_GOLDEN)
        fabrics = {c.machine.switched.fabric for c in scenarios.values()}
        assert fabrics == {"single", "hierarchical", "fat-tree"}
        assert any(c.machine.hw_multicast for c in scenarios.values())

    def test_golden_digest_pinned_serially(self):
        """The serial digest of one golden scenario matches the pin (the
        full shards {1,2,4} sweep runs in CI's scale-smoke job)."""
        from repro.ga.island import run_island_ga
        from repro.ga.sharded import ga_digest

        cfg = golden_scenarios()["ring-hierarchical"]
        assert ga_digest(run_island_ga(cfg)) == SWITCHED_GOLDEN["ring-hierarchical"]


class TestSweep:
    def test_rows_cover_the_cross_product(self):
        rows = run_scale_study(Scale.smoke(), deme_counts=(4,), jobs=1)
        assert len(rows) == 4 * 3 * len(Scale.smoke().ages)
        assert {r["topology"] for r in rows} == {
            "ring", "torus", "hierarchical", "random"
        }
        assert {r["fabric"] for r in rows} == {"single", "hierarchical", "fat-tree"}
        assert all(r["messages_sent"] > 0 and r["total_time"] > 0 for r in rows)
        assert "scale_study" in format_scale_study(rows)

    def test_scale_proof_completes_a_ring(self):
        record = run_scale_proof(64)
        assert record["n_demes"] == 64
        assert record["messages_sent"] > 0
        assert record["wall_us_per_msg"] > 0


class TestParallelSkipInfo:
    def test_skip_reason_jobs(self):
        from repro.bench.suite import parallel_skip_info

        info = parallel_skip_info(1, cpu_count=8)
        assert info["parallel_speedup"] is None
        assert info["parallel_skipped"] == "jobs <= 1"

    def test_skip_reason_single_core_host(self):
        from repro.bench.suite import parallel_skip_info

        info = parallel_skip_info(4, cpu_count=1)
        assert info["parallel_skipped"] == "single-core host"

    def test_skip_records_fabric_and_lookahead(self):
        from repro.bench.suite import parallel_skip_info
        from repro.cluster.machine import MachineConfig

        mcfg = MachineConfig(n_nodes=4, interconnect="switched")
        info = parallel_skip_info(1, cpu_count=1, mcfg=mcfg)
        assert info["fabric"] == "switched"
        assert info["lookahead_s"] == pytest.approx(mcfg.switched.min_latency())
        # default machine: the ethernet fabric is recorded too
        default = parallel_skip_info(1, cpu_count=1)
        assert default["fabric"] == "ethernet"
        assert default["lookahead_s"] > 0


def test_per_frame_event_count_is_node_count_independent():
    """The O(1) hot-path structure: one kernel event per delivered frame,
    whatever the fabric population — the wall-clock version of this check
    is ``fabric.o1_ratio`` in the bench trajectory."""
    from repro.network.frame import Frame
    from repro.network.switched import SwitchedConfig, SwitchedNetwork
    from repro.sim import Kernel

    def events_per_frame(n_nodes):
        kernel = Kernel(seed=0)
        net = SwitchedNetwork(kernel, SwitchedConfig(fabric="hierarchical"))
        for i in range(n_nodes):
            net.attach(i, lambda f: None)
        for i in range(n_nodes):
            net.adapters[i].send(Frame(src=i, dst=(i + 1) % n_nodes, size_bytes=64))
        kernel.run()
        return kernel._events_executed / n_nodes

    assert events_per_frame(64) == events_per_frame(1024)
