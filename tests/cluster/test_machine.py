"""Machine assembly: spawning, loaders, warp, completion-time measurement."""

import pytest

from repro.cluster import Machine, MachineConfig
from repro.pvm import PackBuffer
from repro.sim import Compute


def test_machine_builds_nodes_and_tasks():
    m = Machine(MachineConfig(n_nodes=4))
    assert len(m.nodes) == 4
    assert len(m.tasks) == 4
    assert m.tasks[2].tid == 2


def test_ping_pong_between_nodes():
    m = Machine(MachineConfig(n_nodes=2, seed=1))
    log = []

    def ping(node, task):
        yield from task.send(1, tag=1, payload=PackBuffer().pkint(1))
        msg = yield from task.recv(src=1)
        log.append(("pong-received", m.kernel.now))

    def pong(node, task):
        msg = yield from task.recv(src=0)
        yield from task.send(0, tag=2, payload=PackBuffer().pkint(2))

    m.spawn_on(0, ping)
    m.spawn_on(1, pong)
    t = m.run_to_completion()
    assert log and t > 0


def test_run_to_completion_returns_last_finish_time():
    m = Machine(MachineConfig(n_nodes=2))

    def worker(duration):
        def proc(node, task):
            yield Compute(duration)

        return proc

    m.spawn_on(0, worker(1.0))
    m.spawn_on(1, worker(3.0))
    assert m.run_to_completion() == pytest.approx(3.0)


def test_run_without_processes_rejected():
    m = Machine(MachineConfig(n_nodes=1))
    with pytest.raises(RuntimeError):
        m.run_to_completion()


def test_loader_occupies_extra_node_ids():
    m = Machine(MachineConfig(n_nodes=2, loader_bps=(1e6,)))
    # nodes 0,1 are application; 2,3 the loader pair
    assert set(m.network.adapters) == {0, 1, 2, 3}
    assert len(m.loaders) == 1


def test_loader_slows_application_traffic():
    def comm_time(load):
        cfg = MachineConfig(n_nodes=2, seed=5).with_load(load)
        m = Machine(cfg)

        def sender(node, task):
            for _ in range(50):
                yield from task.send(1, tag=1, payload=PackBuffer().pkdouble([1.0] * 100))

        def receiver(node, task):
            for _ in range(50):
                yield from task.recv()

        m.spawn_on(0, sender)
        m.spawn_on(1, receiver)
        return m.run_to_completion()

    assert comm_time(8e6) > comm_time(0.0) * 1.2


def test_warp_meter_optional():
    m = Machine(MachineConfig(n_nodes=2, measure_warp=True))
    assert m.warp is not None
    m2 = Machine(MachineConfig(n_nodes=2))
    assert m2.warp is None


def test_heterogeneous_speed_factors():
    m = Machine(MachineConfig(n_nodes=2, speed_factors=(1.0, 0.5)))
    assert m.nodes[1].cost(1.0) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        MachineConfig(n_nodes=3, speed_factors=(1.0, 2.0))


def test_config_validation():
    with pytest.raises(ValueError):
        MachineConfig(n_nodes=0)
    with pytest.raises(ValueError):
        MachineConfig(interconnect="token-ring")


def test_switch_interconnect_selectable():
    from repro.network import SwitchNetwork

    m = Machine(MachineConfig(n_nodes=2, interconnect="switch"))
    assert isinstance(m.network, SwitchNetwork)


def test_with_load_zero_means_no_loader():
    cfg = MachineConfig(n_nodes=2).with_load(0.0)
    assert cfg.loader_bps == ()
