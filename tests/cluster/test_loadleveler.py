"""LoadLeveler batch allocator: FIFO, dedication, release, backfill."""

import pytest

from repro.cluster import Job, JobState, LoadLeveler


def test_job_starts_when_nodes_free():
    ll = LoadLeveler(8)
    job = ll.submit(Job(nodes_requested=4))
    assert job.state is JobState.RUNNING
    assert len(job.allocated) == 4


def test_allocations_are_dedicated_disjoint():
    ll = LoadLeveler(8)
    j1 = ll.submit(Job(nodes_requested=4))
    j2 = ll.submit(Job(nodes_requested=4))
    assert set(j1.allocated).isdisjoint(j2.allocated)
    assert len(ll.free) == 0


def test_fifo_blocks_behind_large_head_job():
    ll = LoadLeveler(8)
    ll.submit(Job(nodes_requested=6))
    big = ll.submit(Job(nodes_requested=4))  # cannot fit
    small = ll.submit(Job(nodes_requested=1))  # could fit, but FIFO
    assert big.state is JobState.QUEUED
    assert small.state is JobState.QUEUED


def test_backfill_lets_small_job_through():
    ll = LoadLeveler(8, backfill=True)
    ll.submit(Job(nodes_requested=6))
    big = ll.submit(Job(nodes_requested=4))
    small = ll.submit(Job(nodes_requested=2))
    assert big.state is JobState.QUEUED
    assert small.state is JobState.RUNNING


def test_release_starts_next_job():
    ll = LoadLeveler(4)
    j1 = ll.submit(Job(nodes_requested=4))
    j2 = ll.submit(Job(nodes_requested=4))
    assert j2.state is JobState.QUEUED
    ll.release(j1)
    assert j1.state is JobState.DONE
    assert j2.state is JobState.RUNNING


def test_oversized_job_rejected():
    ll = LoadLeveler(4)
    with pytest.raises(ValueError):
        ll.submit(Job(nodes_requested=5))


def test_double_submit_rejected():
    ll = LoadLeveler(4)
    j = ll.submit(Job(nodes_requested=1))
    with pytest.raises(ValueError):
        ll.submit(j)


def test_release_requires_running():
    ll = LoadLeveler(4)
    j = Job(nodes_requested=1)
    with pytest.raises(ValueError):
        ll.release(j)


def test_paper_figure4_allocation_shape():
    """§5.2: 4 application nodes + 2 loader nodes on a 6-node pool."""
    ll = LoadLeveler(6)
    app = ll.submit(Job(nodes_requested=4, name="ga"))
    loader = ll.submit(Job(nodes_requested=2, name="loader"))
    assert app.state is JobState.RUNNING and loader.state is JobState.RUNNING
    assert set(app.allocated) | set(loader.allocated) == set(range(6))


def test_job_validation():
    with pytest.raises(ValueError):
        Job(nodes_requested=0)
    with pytest.raises(ValueError):
        LoadLeveler(0)
