"""Node compute model: speed factors, jitter statistics, validation."""

import numpy as np
import pytest

from repro.cluster import Node, NodeSpec
from repro.sim import Kernel


def test_reference_node_cost_is_identity():
    node = Node(Kernel(), 0, NodeSpec())
    assert node.cost(0.5) == 0.5


def test_speed_factor_scales_cost():
    node = Node(Kernel(), 0, NodeSpec(speed_factor=2.0))
    assert node.cost(1.0) == pytest.approx(0.5)


def test_jitter_is_mean_preserving():
    node = Node(Kernel(seed=3), 0, NodeSpec(jitter_sigma=0.3))
    costs = np.array([node.cost(1.0) for _ in range(20000)])
    assert costs.mean() == pytest.approx(1.0, rel=0.02)
    assert costs.std() > 0.2


def test_jitter_zero_is_deterministic():
    node = Node(Kernel(seed=3), 0, NodeSpec(jitter_sigma=0.0))
    assert node.cost(1.0) == node.cost(1.0) == 1.0


def test_jitter_reproducible_per_seed_and_node():
    a = [Node(Kernel(seed=7), 4, NodeSpec(jitter_sigma=0.2)).cost(1.0) for _ in range(1)]
    b = [Node(Kernel(seed=7), 4, NodeSpec(jitter_sigma=0.2)).cost(1.0) for _ in range(1)]
    assert a == b
    c = Node(Kernel(seed=7), 5, NodeSpec(jitter_sigma=0.2)).cost(1.0)
    assert c != a[0]


def test_zero_cost_never_jitters():
    node = Node(Kernel(seed=1), 0, NodeSpec(jitter_sigma=0.5))
    assert node.cost(0.0) == 0.0


def test_invalid_spec_rejected():
    with pytest.raises(ValueError):
        NodeSpec(speed_factor=0.0)
    with pytest.raises(ValueError):
        NodeSpec(jitter_sigma=-0.1)


def test_negative_cost_rejected():
    node = Node(Kernel(), 0, NodeSpec())
    with pytest.raises(ValueError):
        node.cost(-1.0)
