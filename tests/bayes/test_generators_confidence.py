"""Network generators (Table 2 structures), confidence estimator, serial LS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayes import (
    PosteriorEstimator,
    make_hailfinder,
    make_random_network,
    make_table2_network,
    run_serial_logic_sampling,
)
from repro.bayes.hailfinder import N_CROSS, N_EDGES
from repro.partition import edge_cut
from repro.partition.multilevel import best_of


class TestRandomNets:
    def test_table2_structures(self):
        for which, epn in (("A", 2.2), ("AA", 2.4), ("C", 2.0)):
            net = make_table2_network(which)
            assert net.n_nodes == 54
            assert net.edges_per_node == pytest.approx(epn, abs=0.05)
            assert net.max_values_per_node == 2

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_table2_network("Z")

    def test_deterministic_in_seed(self):
        a = make_random_network(20, 30, seed=5)
        b = make_random_network(20, 30, seed=5)
        assert set(a.dag().edges) == set(b.dag().edges)
        c = make_random_network(20, 30, seed=6)
        assert set(a.dag().edges) != set(c.dag().edges)

    def test_edge_count_exact(self):
        net = make_random_network(30, 44, seed=1)
        assert net.n_edges == 44

    def test_max_parents_respected(self):
        net = make_random_network(40, 100, seed=2, max_parents=3)
        assert max(len(n.parents) for n in net.nodes.values()) <= 3

    def test_invalid_edge_count_rejected(self):
        with pytest.raises(ValueError):
            make_random_network(5, 100)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_property_generated_networks_are_valid_dags(self, seed):
        net = make_random_network(25, 40, seed=seed)
        # construction validated acyclicity + CPTs; check sampling works
        s = net.ancestral_samples(10, np.random.default_rng(0))
        assert s.shape == (10, 25)


class TestHailfinder:
    def test_table2_row(self):
        hf = make_hailfinder()
        row = hf.table2_row()
        assert row["nodes"] == 56
        assert row["values_per_node"] == 4
        assert row["edges_per_node"] == pytest.approx(1.2, abs=0.01)
        assert hf.n_edges == N_EDGES

    def test_two_way_cut_is_four(self):
        hf = make_hailfinder()
        parts = best_of(hf.skeleton(), 2, tries=4, seed=0)
        assert edge_cut(hf.skeleton(), parts) == N_CROSS

    def test_marginals_are_skewed(self):
        """Diagnostic networks have dominant outcomes -> high modal mass."""
        hf = make_hailfinder()
        modal = np.mean([max(m) for m in hf.prior_marginals(seed=1).values()])
        assert modal > 0.8


class TestPosteriorEstimator:
    def test_converges_at_expected_sample_count(self):
        est = PosteriorEstimator(2, precision=0.01)
        rng = np.random.default_rng(0)
        while not est.converged:
            est.add(int(rng.random() < 0.5))
        # worst case p=0.5 needs about (1.645/0.01)^2 * 0.25 ~ 6765
        assert 5500 <= est.n <= 8000

    def test_skewed_posterior_converges_faster(self):
        def runs_needed(p):
            est = PosteriorEstimator(2, precision=0.01)
            rng = np.random.default_rng(1)
            while not est.converged:
                est.add(int(rng.random() < p))
            return est.n

        assert runs_needed(0.05) < runs_needed(0.4) / 2

    def test_min_samples_guard(self):
        est = PosteriorEstimator(2, min_samples=100)
        for _ in range(99):
            est.add(0)
        assert not est.converged  # all-one-value would otherwise converge

    def test_posterior_and_halfwidths(self):
        est = PosteriorEstimator(2)
        with pytest.raises(ValueError):
            est.posterior
        assert np.all(np.isinf(est.half_widths()))
        est.add_batch(np.array([0, 0, 1, 0]))
        assert est.posterior.tolist() == [0.75, 0.25]

    def test_validation(self):
        with pytest.raises(ValueError):
            PosteriorEstimator(1)
        with pytest.raises(ValueError):
            PosteriorEstimator(2, precision=0.7)

    def test_upper_bound_formula(self):
        est = PosteriorEstimator(2, precision=0.01)
        assert est.samples_needed_upper_bound() == pytest.approx(6765, abs=5)


class TestSerialLogicSampling:
    def test_estimates_known_marginal(self):
        from tests.bayes.test_network import paper_figure1_network

        net = paper_figure1_network()
        r = run_serial_logic_sampling(net, query=1, seed=0)
        assert r.converged
        # P(B=true) = 0.22 (total probability over A)
        assert r.posterior[1] == pytest.approx(0.22, abs=0.02)

    def test_evidence_rejection(self):
        from tests.bayes.test_network import paper_figure1_network

        net = paper_figure1_network()
        r = run_serial_logic_sampling(net, query=1, evidence={0: 1}, seed=0)
        assert r.converged
        # given A=true, P(B=true)=0.70 directly from the CPT
        assert r.posterior[1] == pytest.approx(0.70, abs=0.03)
        # rejection: only ~20% of runs match the evidence
        assert r.acceptance_rate == pytest.approx(0.20, abs=0.03)

    def test_sim_time_scales_with_network_size(self):
        small = make_random_network(10, 12, seed=1)
        big = make_random_network(54, 119, seed=1)
        rs = run_serial_logic_sampling(small, query=max(small.nodes), seed=2)
        rb = run_serial_logic_sampling(big, query=max(big.nodes), seed=2)
        assert rb.sim_time > rs.sim_time

    def test_argument_validation(self):
        from tests.bayes.test_network import paper_figure1_network

        net = paper_figure1_network()
        with pytest.raises(KeyError):
            run_serial_logic_sampling(net, query=99)
        with pytest.raises(KeyError):
            run_serial_logic_sampling(net, query=1, evidence={99: 0})
        with pytest.raises(ValueError):
            run_serial_logic_sampling(net, query=1, evidence={1: 0})
        with pytest.raises(ValueError):
            run_serial_logic_sampling(net, query=1, evidence={0: 7})

    def test_max_runs_cap(self):
        from tests.bayes.test_network import paper_figure1_network

        net = paper_figure1_network()
        r = run_serial_logic_sampling(net, query=1, seed=0, max_runs=128)
        assert not r.converged
        assert r.n_runs <= 128
