"""Parallel logic sampling: correctness of all three modes + rollback."""

import numpy as np
import pytest

from repro.bayes import make_hailfinder, make_random_network
from repro.bayes.parallel import ParallelLsConfig, run_parallel_logic_sampling
from repro.bayes.logic_sampling import run_serial_logic_sampling
from repro.bayes.rollback import GvtOracle, RollbackStats
from repro.core.coherence import CoherenceMode


def small_net(seed=1):
    return make_random_network(16, 22, seed=seed, name="small")


def run_mode(net, mode, age=10, seed=3, **kw):
    q = max(net.nodes)
    return run_parallel_logic_sampling(
        ParallelLsConfig(
            net=net, query=q, n_procs=2, mode=mode, age=age, seed=seed,
            max_iterations=kw.pop("max_iterations", 30_000), **kw,
        )
    )


class TestCorrectness:
    """All three modes must estimate the same posterior as the serial
    sampler — the paper's premise that data races affect performance,
    never correctness."""

    @pytest.mark.parametrize(
        "mode,age",
        [
            (CoherenceMode.SYNCHRONOUS, 0),
            (CoherenceMode.ASYNCHRONOUS, 0),
            (CoherenceMode.NON_STRICT, 0),
            (CoherenceMode.NON_STRICT, 10),
        ],
    )
    def test_posterior_matches_serial(self, mode, age):
        net = small_net()
        q = max(net.nodes)
        serial = run_serial_logic_sampling(net, query=q, seed=3)
        r = run_mode(net, mode, age=age)
        assert r.converged
        # both estimates carry +-0.01 CIs at 90%: allow 3x the precision
        assert np.all(np.abs(r.posterior - serial.posterior) < 0.03)

    def test_sync_never_gambles(self):
        r = run_mode(small_net(), CoherenceMode.SYNCHRONOUS, age=0)
        assert r.rollback.gambles == 0
        assert r.rollback.rollbacks == 0

    def test_async_gambles_and_rolls_back(self):
        r = run_mode(small_net(), CoherenceMode.ASYNCHRONOUS)
        assert r.rollback.gambles > 0
        assert 0.0 < r.rollback.gamble_hit_rate < 1.0

    def test_committed_runs_close_to_serial_run_count(self):
        net = small_net()
        q = max(net.nodes)
        serial = run_serial_logic_sampling(net, query=q, seed=3)
        r = run_mode(net, CoherenceMode.NON_STRICT, age=10)
        assert r.committed_runs == pytest.approx(serial.n_runs, rel=0.25)


class TestThrottling:
    def test_global_read_bounds_progress_skew(self):
        """With age k no processor may be more than ~k+batch runs ahead."""
        net = small_net()
        r = run_mode(net, CoherenceMode.NON_STRICT, age=5)
        spread = max(r.iterations_sampled) - min(r.iterations_sampled)
        assert spread <= 5 + 5 + 2  # age + batch + in-flight slack

    def test_global_read_reduces_messages_via_batching(self):
        net = small_net()
        r_async = run_mode(net, CoherenceMode.ASYNCHRONOUS)
        r_gr = run_mode(net, CoherenceMode.NON_STRICT, age=10)
        assert r_gr.messages_sent < r_async.messages_sent / 2

    def test_sync_is_slowest_on_network(self):
        net = small_net()
        t_sync = run_mode(net, CoherenceMode.SYNCHRONOUS, age=0).completion_time
        t_gr = run_mode(net, CoherenceMode.NON_STRICT, age=10).completion_time
        assert t_gr < t_sync

    def test_skewed_network_has_high_hit_rate(self):
        hf = make_hailfinder()
        r = run_parallel_logic_sampling(
            ParallelLsConfig(
                net=hf, query=55, n_procs=2, mode=CoherenceMode.ASYNCHRONOUS,
                seed=3, max_iterations=30_000,
            )
        )
        assert r.rollback.gamble_hit_rate > 0.8

    def test_edge_cut_reported(self):
        r = run_mode(small_net(), CoherenceMode.NON_STRICT)
        assert r.edge_cut > 0


class TestValidation:
    def test_config_validation(self):
        net = small_net()
        with pytest.raises(ValueError):
            ParallelLsConfig(net=net, query=0, n_procs=0)
        with pytest.raises(ValueError):
            ParallelLsConfig(net=net, query=0, age=-1)
        with pytest.raises(KeyError):
            ParallelLsConfig(net=net, query=999)

    def test_single_processor_degenerates_to_serial_like(self):
        net = small_net()
        r = run_parallel_logic_sampling(
            ParallelLsConfig(
                net=net, query=max(net.nodes), n_procs=1,
                mode=CoherenceMode.ASYNCHRONOUS, seed=3,
            )
        )
        assert r.converged
        assert r.rollback.gambles == 0  # no remote parents at all
        assert r.edge_cut == 0


class TestOracle:
    def test_floor_tracks_min_progress(self):
        o = GvtOracle(2)
        o.sampled(0, 5)
        o.sampled(1, 3)
        assert o.floor() == 3

    def test_pending_gamble_holds_floor(self):
        o = GvtOracle(2)
        o.sampled(0, 10)
        o.sampled(1, 10)
        o.gamble_opened(0, 4)
        assert o.floor() == 3
        o.gamble_resolved(0, 4)
        assert o.floor() == 10

    def test_in_flight_message_holds_floor(self):
        o = GvtOracle(1)
        o.sampled(0, 8)
        o.message_sent(2)
        assert o.floor() == 1
        o.message_applied(2)
        assert o.floor() == 8

    def test_rollback_stats_merge(self):
        a = RollbackStats(gambles=3, gamble_hits=2, rollbacks=1, corrections_sent=4)
        b = RollbackStats(gambles=1, gamble_hits=1)
        m = a.merge(b)
        assert m.gambles == 4 and m.gamble_hits == 3 and m.corrections_sent == 4
        assert m.gamble_hit_rate == pytest.approx(3 / 4)

    def test_hit_rate_empty_is_one(self):
        assert RollbackStats().gamble_hit_rate == 1.0
