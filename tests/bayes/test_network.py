"""BayesianNetwork representation: validation, sampling, statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayes import BayesianNetwork, BayesNode


def paper_figure1_network():
    """The five-node medical-diagnosis example of the paper's Figure 1.

    p(A=true)=0.20; B and C depend on A; D depends on B and C — with
    p(D=true | B=true, C=true) = 0.80 as the paper states.
    """
    # value order: index 0 = false, 1 = true
    a = BayesNode(0, 2, (), np.array([0.80, 0.20]))
    b = BayesNode(1, 2, (0,), np.array([[0.90, 0.10], [0.30, 0.70]]))
    c = BayesNode(2, 2, (0,), np.array([[0.75, 0.25], [0.40, 0.60]]))
    d = BayesNode(
        3, 2, (1, 2),
        np.array([[[0.95, 0.05], [0.60, 0.40]], [[0.50, 0.50], [0.20, 0.80]]]),
    )
    e = BayesNode(4, 2, (2,), np.array([[0.85, 0.15], [0.35, 0.65]]))
    return BayesianNetwork([a, b, c, d, e], name="figure1")


class TestValidation:
    def test_figure1_builds(self):
        net = paper_figure1_network()
        assert net.n_nodes == 5
        assert net.n_edges == 5
        assert net.nodes[3].cpt[1, 1, 1] == 0.80

    def test_cpt_rows_must_normalise(self):
        with pytest.raises(ValueError, match="sum to 1"):
            BayesNode(0, 2, (), np.array([0.5, 0.6]))

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            BayesNode(0, 2, (), np.array([1.2, -0.2]))

    def test_cpt_rank_must_match_parents(self):
        with pytest.raises(ValueError, match="rank"):
            BayesNode(0, 2, (1,), np.array([0.5, 0.5]))

    def test_parent_arity_checked(self):
        a = BayesNode(0, 3, (), np.array([0.2, 0.3, 0.5]))
        # CPT axis for parent 0 sized 2, but parent has 3 values
        b = BayesNode(1, 2, (0,), np.array([[0.5, 0.5], [0.4, 0.6]]))
        with pytest.raises(ValueError, match="values"):
            BayesianNetwork([a, b])

    def test_cycle_rejected(self):
        a = BayesNode(0, 2, (1,), np.array([[0.5, 0.5], [0.4, 0.6]]))
        b = BayesNode(1, 2, (0,), np.array([[0.5, 0.5], [0.4, 0.6]]))
        with pytest.raises(ValueError, match="cycle"):
            BayesianNetwork([a, b])

    def test_unknown_parent_rejected(self):
        a = BayesNode(0, 2, (9,), np.array([[0.5, 0.5], [0.4, 0.6]]))
        with pytest.raises(ValueError, match="unknown parent"):
            BayesianNetwork([a])

    def test_duplicate_node_rejected(self):
        a = BayesNode(0, 2, (), np.array([0.5, 0.5]))
        with pytest.raises(ValueError, match="duplicate"):
            BayesianNetwork([a, a])

    def test_single_value_node_rejected(self):
        with pytest.raises(ValueError):
            BayesNode(0, 1, (), np.array([1.0]))


class TestStructure:
    def test_topo_order_respects_edges(self):
        net = paper_figure1_network()
        pos = {v: i for i, v in enumerate(net.topo_order)}
        for v in net.nodes:
            for p in net.nodes[v].parents:
                assert pos[p] < pos[v]

    def test_children_and_skeleton(self):
        net = paper_figure1_network()
        assert net.children(0) == [1, 2]
        assert net.children(4) == []
        sk = net.skeleton()
        assert not sk.is_directed()
        assert sk.number_of_edges() == 5

    def test_table2_row(self):
        row = paper_figure1_network().table2_row()
        assert row["nodes"] == 5
        assert row["values_per_node"] == 2
        assert row["edges_per_node"] == 1.0


class TestSampling:
    def test_marginal_of_root_matches_prior(self):
        net = paper_figure1_network()
        rng = np.random.default_rng(0)
        samples = net.ancestral_samples(20000, rng)
        p_a_true = samples[:, 0].mean()
        assert p_a_true == pytest.approx(0.20, abs=0.01)

    def test_conditional_structure_respected(self):
        """P(B=true) = 0.8*0.10 + 0.2*0.70 = 0.22 by total probability."""
        net = paper_figure1_network()
        rng = np.random.default_rng(1)
        samples = net.ancestral_samples(30000, rng)
        assert samples[:, 1].mean() == pytest.approx(0.22, abs=0.01)

    def test_scalar_sampler_agrees_with_batch(self):
        net = paper_figure1_network()
        rng = np.random.default_rng(2)
        # P(D=true | B=true, C=true) = 0.80: scalar path, direct check
        hits = sum(
            net.sample_node_scalar(3, (1, 1), rng.random()) for _ in range(20000)
        )
        assert hits / 20000 == pytest.approx(0.80, abs=0.01)

    def test_default_values_pick_modal_state(self):
        net = paper_figure1_network()
        defaults = net.default_values(seed=0)
        # paper: "A will sample the value false in four-fifths ... which is
        # therefore used as the default value for A"
        assert defaults[0] == 0

    def test_prior_marginals_are_distributions(self):
        net = paper_figure1_network()
        for marg in net.prior_marginals(seed=0).values():
            assert marg.sum() == pytest.approx(1.0)
            assert np.all(marg >= 0)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=99))
    def test_property_samples_within_arity(self, seed):
        net = paper_figure1_network()
        samples = net.ancestral_samples(200, np.random.default_rng(seed))
        assert samples.min() >= 0
        assert samples.max() <= 1
