"""Cross-package integration tests.

These exercise the whole stack — kernel → network → PVM → DSM →
application — on small configurations, checking invariants no single
package can see: determinism across the full pipeline, conservation of
messages, agreement between coherence modes on *what* is computed, and
the structural relationships between the layers' statistics.
"""

import numpy as np
import pytest

from repro.bayes import make_random_network
from repro.bayes.parallel import ParallelLsConfig, run_parallel_logic_sampling
from repro.cluster import Machine, MachineConfig, NodeSpec
from repro.core import ConsistencyChecker, Dsm, SharedLocationSpec
from repro.core.coherence import CoherenceMode
from repro.ga import IslandGaConfig, get_function, run_island_ga
from repro.sim import Compute


class TestDeterminism:
    def test_island_ga_bitwise_reproducible(self):
        def run():
            return run_island_ga(
                IslandGaConfig(
                    fn=get_function(3), n_demes=4, mode=CoherenceMode.NON_STRICT,
                    age=5, n_generations=40, seed=9,
                )
            )

        a, b = run(), run()
        assert a.total_time == b.total_time
        assert a.best_fitness == b.best_fitness
        assert a.messages_sent == b.messages_sent
        assert a.per_deme_best == b.per_deme_best

    def test_parallel_bn_bitwise_reproducible(self):
        net = make_random_network(12, 16, seed=2)

        def run():
            return run_parallel_logic_sampling(
                ParallelLsConfig(
                    net=net, query=max(net.nodes), n_procs=2,
                    mode=CoherenceMode.NON_STRICT, age=5, seed=4,
                )
            )

        a, b = run(), run()
        assert a.completion_time == b.completion_time
        assert np.array_equal(a.posterior, b.posterior)
        assert a.rollback.rollbacks == b.rollback.rollbacks

    def test_different_seed_changes_trajectory(self):
        def run(seed):
            return run_island_ga(
                IslandGaConfig(
                    fn=get_function(3), n_demes=2, mode=CoherenceMode.ASYNCHRONOUS,
                    n_generations=30, seed=seed,
                )
            )

        assert run(1).total_time != run(2).total_time


class TestModeAgreement:
    def test_ga_modes_share_initial_populations(self):
        """The three modes must differ only in coherence: generation-0
        quality is identical across modes for the same seed."""
        results = {}
        for mode in CoherenceMode:
            r = run_island_ga(
                IslandGaConfig(
                    fn=get_function(1), n_demes=3, mode=mode, age=5,
                    n_generations=1, seed=13,
                )
            )
            results[mode] = r
        firsts = {
            mode: tuple(r.per_deme_best) for mode, r in results.items()
        }
        # per-deme bests after one generation start from the same gen-0
        # populations (small divergence later is migration-timing only)
        assert len({f[:1] for f in firsts.values()}) >= 1  # smoke: runs at all
        gen0 = [r.generations_run for r in results.values()]
        assert all(g == gen0[0] for g in gen0)


class TestStackConsistency:
    def test_dsm_over_machine_checker_clean_under_load(self):
        """Full stack with a background loader: coherence must still hold."""
        m = Machine(
            MachineConfig(
                n_nodes=3, seed=21, node_spec=NodeSpec(jitter_sigma=0.2),
            ).with_load(5e6)
        )
        dsm = Dsm(m.vm)
        dsm.checker = ConsistencyChecker()
        for w in range(3):
            dsm.register(
                SharedLocationSpec(
                    f"v.{w}", writer=w,
                    readers=tuple(r for r in range(3) if r != w),
                    value_nbytes=200,
                )
            )

        def peer(tid):
            def proc(node, task):
                d = dsm.node(tid)
                for i in range(25):
                    yield Compute(node.cost(2e-3))
                    yield from d.write(f"v.{tid}", i, i)
                    for other in range(3):
                        if other != tid:
                            yield from d.global_read(f"v.{other}", i, 4)

            return proc

        for tid in range(3):
            m.spawn_on(tid, peer(tid))
        m.run_to_completion(until=1000.0)
        assert dsm.checker.ok, dsm.checker.report()
        assert dsm.checker.reads_checked == 3 * 25 * 2

    def test_message_conservation_island_ga(self):
        """Messages sent == DSM updates propagated + barrier traffic."""
        r = run_island_ga(
            IslandGaConfig(
                fn=get_function(1), n_demes=3, mode=CoherenceMode.ASYNCHRONOUS,
                n_generations=20, seed=2,
            )
        )
        # async mode: only migrant updates travel; (G+1) writes x 2 readers
        # per deme, all demes run all generations
        expected = 3 * 21 * 2
        assert r.messages_sent == expected

    def test_network_utilization_bounded(self):
        r = run_island_ga(
            IslandGaConfig(
                fn=get_function(1), n_demes=4, mode=CoherenceMode.ASYNCHRONOUS,
                n_generations=30, seed=2,
            )
        )
        assert 0.0 < r.network_utilization < 1.0


class TestFailureInjection:
    def test_heterogeneous_speeds_slow_everyone_in_sync_mode(self):
        """One 3x-slower node drags the synchronous GA to its pace;
        Global_Read with a large age absorbs most of it."""

        def run(mode, age):
            return run_island_ga(
                IslandGaConfig(
                    fn=get_function(1), n_demes=4, mode=mode, age=age,
                    n_generations=40, seed=6,
                    machine=MachineConfig(
                        n_nodes=4, seed=6, speed_factors=(1.0, 1.0, 1.0, 0.33),
                    ),
                )
            )

        sync = run(CoherenceMode.SYNCHRONOUS, 0)
        gr = run(CoherenceMode.NON_STRICT, 30)
        # both ran the same generations; sync pays the straggler every step
        assert sync.total_time > gr.total_time

    def test_saturating_load_does_not_deadlock(self):
        """9 Mbps background load on a 10 Mbps medium: runs finish anyway
        (backpressure throttles, nothing hangs)."""
        r = run_island_ga(
            IslandGaConfig(
                fn=get_function(1), n_demes=2, mode=CoherenceMode.NON_STRICT,
                age=10, n_generations=25, seed=3,
                machine=MachineConfig(n_nodes=2, seed=3).with_load(9e6),
            )
        )
        assert r.generations_run == [25, 25]
