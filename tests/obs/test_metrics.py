"""MetricsRegistry + machine_metrics snapshot behaviour.

Pins the snapshot schema, nearest-rank percentile arithmetic, and the
two stability properties the experiment envelopes rely on: identical
runs produce identical snapshots, and results carry metrics even with
tracing off.
"""

from repro.obs.integration import traced_ga_run
from repro.obs.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    percentile_from_samples,
)


def test_percentile_nearest_rank():
    xs = [15.0, 20.0, 35.0, 40.0, 50.0]
    assert percentile_from_samples(xs, 30) == 20.0
    assert percentile_from_samples(xs, 40) == 20.0
    assert percentile_from_samples(xs, 50) == 35.0
    assert percentile_from_samples(xs, 100) == 50.0
    assert percentile_from_samples([7.0], 99) == 7.0
    assert percentile_from_samples([], 50) == 0.0


def test_registry_counters_gauges_histograms():
    reg = MetricsRegistry()
    reg.count("msgs", 2)
    reg.count("msgs", 3)
    reg.gauge("util", 0.25)
    reg.observe_many("lat", [1.0, 2.0, 3.0, 4.0])
    reg.counts_histogram("depth", {1: 5, 3: 2})
    reg.node(0)["writes"] = 7
    snap = reg.snapshot()
    assert snap["schema"] == METRICS_SCHEMA
    assert snap["counters"]["msgs"] == 5
    assert snap["gauges"]["util"] == 0.25
    lat = snap["histograms"]["lat"]
    assert lat["count"] == 4 and lat["min"] == 1.0 and lat["max"] == 4.0
    assert lat["mean"] == 2.5
    depth = snap["histograms"]["depth"]
    assert depth["count"] == 7 and depth["counts"] == {"1": 5, "3": 2}
    assert snap["per_node"]["0"]["writes"] == 7


def test_snapshot_is_json_and_sorted():
    reg = MetricsRegistry()
    reg.count("b")
    reg.count("a")
    out = reg.to_json()
    assert out.index('"a"') < out.index('"b"')


def test_ga_result_carries_metrics_without_tracing():
    """Metrics ride on every result — tracing is not a precondition."""
    from repro.core.coherence import CoherenceMode
    from repro.experiments.config import Scale
    from repro.experiments.speedup import machine_for
    from repro.ga.functions import get_function
    from repro.ga.island import IslandGaConfig, run_island_ga

    result = run_island_ga(
        IslandGaConfig(
            fn=get_function(1),
            n_demes=2,
            mode=CoherenceMode.NON_STRICT,
            age=10,
            n_generations=25,
            seed=5,
            machine=machine_for(Scale.smoke(), 2, 5),
        )
    )
    m = result.metrics
    assert m["schema"] == METRICS_SCHEMA
    assert m["counters"]["gr.calls"] > 0
    assert m["counters"]["messages.sent"] == result.messages_sent
    assert 0.0 <= m["gauges"]["gr.hit_rate"] <= 1.0
    assert "gr.staleness" in m["histograms"]
    assert set(m["per_node"]) == {"0", "1"}


def test_identical_runs_produce_identical_snapshots(ga_run):
    again = traced_ga_run(n_demes=2, seed=7)
    assert ga_run.metrics == again.metrics
    # traced runs keep warp samples → per-stream percentile histograms
    assert any(k.startswith("warp.stream.") for k in ga_run.metrics["histograms"])
