"""Report rendering + the ``python -m repro.obs report`` CLI.

The report is documentation-grade output, so these tests pin section
presence and determinism (same trace → byte-identical text) rather
than exact layout, plus the CLI's exit-code contract.
"""

import json

from repro.obs.__main__ import main as obs_main
from repro.obs.report import render_report, render_timeline, render_warp


def test_ga_report_sections(ga_run):
    text = render_report(ga_run.bus.events, metrics=ga_run.metrics)
    assert "Trace report" in text
    assert "Per-node timeline" in text
    assert "Blocking summary (Global_Read)" in text
    assert "Warp per (receiver <- sender) stream" in text
    assert "Metrics — counters" in text
    # a pure-GA trace has no rollback section body, just the note
    assert "no rollback events" in text


def test_bayes_report_has_rollback_and_gvt(bayes_run):
    text = render_report(bayes_run.bus.events, metrics=bayes_run.metrics)
    assert "Rollback summary (Time-Warp)" in text
    assert "cascade depth" in text
    assert "GVT / commits" in text


def test_report_is_deterministic(ga_run):
    a = render_report(ga_run.bus.events, metrics=ga_run.metrics)
    b = render_report(ga_run.bus.events, metrics=ga_run.metrics)
    assert a == b


def test_timeline_marks_blocked_bins(ga_run):
    text = render_timeline(sorted(ga_run.bus.events, key=lambda e: e.time))
    lines = [ln for ln in text.splitlines() if ln.strip().startswith("node")]
    assert len(lines) == 2  # one strip per node
    assert all("|" in ln for ln in lines)


def test_warp_table_matches_meter(ga_run):
    """Warp recomputed from net.deliver events ≈ the run's WarpMeter."""
    text = render_warp(sorted(ga_run.bus.events, key=lambda e: e.time))
    assert "all" in text
    mean = ga_run.metrics["gauges"]["warp.mean"]
    # the meter and the trace see the same deliveries; the recomputed
    # overall mean must land on the metered one
    all_row = next(ln for ln in text.splitlines() if ln.startswith("all"))
    recomputed = float(all_row.split()[2])
    assert abs(recomputed - mean) < 5e-4


def test_cli_renders_and_writes(ga_run, tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    metrics = tmp_path / "m.json"
    out = tmp_path / "report.txt"
    ga_run.bus.write_jsonl(str(trace))
    metrics.write_text(json.dumps(ga_run.metrics))

    assert obs_main(["report", str(trace), "--metrics", str(metrics)]) == 0
    shown = capsys.readouterr().out
    assert "Per-node timeline" in shown

    assert (
        obs_main(
            ["report", str(trace), "--metrics", str(metrics), "--out", str(out)]
        )
        == 0
    )
    assert "Per-node timeline" in out.read_text()


def test_cli_missing_file_exit_code(tmp_path):
    assert obs_main(["report", str(tmp_path / "nope.jsonl")]) == 2
