"""Perf-trajectory analyzer: directions, verdicts, gate exit codes."""

import json

from repro.obs.trend import (
    DEFAULT_THRESHOLD,
    analyze,
    direction_of,
    flatten_payload,
    load_points,
    render_trend,
    sparkline,
    trend_report,
)


def _series(*metric_dicts):
    return [(f"BENCH_{i + 2}", m) for i, m in enumerate(metric_dicts)]


def test_direction_registry():
    assert direction_of("micro.kernel_events_per_sec") == "up"
    assert direction_of("micro.kernel_parallel.speedup") == "up"
    assert direction_of("experiments.figure3.wall_s") == "down"
    assert direction_of("micro.obs_trace_overhead_ratio") == "down"
    assert direction_of("micro.fabric.o1_ratio") == "down"
    assert direction_of("micro.ga_best_fitness") is None


def test_flatten_payload_numeric_leaves_only():
    flat = flatten_payload(
        {
            "schema": "repro-bench/1",
            "unix_time": 1.0,
            "env": {"python": "3.11"},
            "micro": {"kernel_wall_s": 0.5, "nested": {"x_per_sec": 10.0},
                      "flag": True},
            "experiments": {"figure3": {"wall_s": 2.0}},
        }
    )
    assert flat == {
        "micro.kernel_wall_s": 0.5,
        "micro.nested.x_per_sec": 10.0,
        "experiments.figure3.wall_s": 2.0,
    }


def test_injected_25pct_regression_detected():
    stable = {"micro.kernel_wall_s": 1.0}
    points = _series(stable, stable, {"micro.kernel_wall_s": 1.30})
    analysis = analyze(points, threshold=DEFAULT_THRESHOLD)
    assert analysis["regressions"] == ["micro.kernel_wall_s"]
    assert not analysis["ok"]
    (row,) = analysis["rows"]
    assert row["verdict"] == "regressed"
    assert abs(row["pct_change"] - 0.30) < 1e-9
    assert "REGRESSED" in render_trend(analysis)


def test_within_threshold_is_ok_and_improvement_flagged():
    ok = analyze(_series({"k_wall_s": 1.0}, {"k_wall_s": 1.2}))
    assert ok["ok"] and ok["rows"][0]["verdict"] == "ok"
    up = analyze(_series({"k_wall_s": 1.0}, {"k_wall_s": 0.5}))
    assert up["ok"] and up["rows"][0]["verdict"] == "improved"
    # for up-good keys the sign flips
    down = analyze(_series({"k_per_sec": 100.0}, {"k_per_sec": 60.0}))
    assert not down["ok"] and down["rows"][0]["verdict"] == "regressed"


def test_noise_floor_and_new_keys_do_not_gate():
    analysis = analyze(
        _series({"t_wall_s": 0.001}, {"t_wall_s": 0.004, "fresh_wall_s": 9.0})
    )
    verdicts = {r["key"]: r["verdict"] for r in analysis["rows"]}
    assert verdicts["t_wall_s"] == "noise"  # 4x jump but sub-noise-floor
    assert verdicts["fresh_wall_s"] == "new"
    assert analysis["ok"]


def test_outlier_fast_baseline_does_not_gate():
    """One anomalously fast point must not flag ordinary jitter, but a
    regression sustained against the whole recent envelope still gates."""
    jitter = analyze(_series(
        {"k_wall_s": 1.0}, {"k_wall_s": 0.7}, {"k_wall_s": 1.05}
    ))
    (row,) = jitter["rows"]
    assert row["pct_change"] > 0.25  # vs prev it *looks* regressed
    assert row["verdict"] == "ok" and jitter["ok"]
    real = analyze(_series(
        {"k_wall_s": 1.0}, {"k_wall_s": 1.0}, {"k_wall_s": 1.0},
        {"k_wall_s": 1.35},
    ))
    assert real["rows"][0]["verdict"] == "regressed" and not real["ok"]


def test_gap_in_series_compares_to_last_measurement():
    points = _series(
        {"k_wall_s": 1.0}, {}, {"k_wall_s": 1.1}
    )
    (row,) = analyze(points)["rows"]
    assert row["prev"] == 1.0 and row["values"][1] is None
    assert " " in row["spark"]


def test_sparkline_shapes():
    assert len(sparkline([1.0, None, 3.0])) == 3
    assert sparkline([]) == ""
    assert sparkline([2.0, 2.0]) == "▄▄"


def test_trend_report_envelope():
    env = trend_report(analyze(_series({"a_wall_s": 1.0})))
    assert env["schema"] == "repro-obs-trend/1"
    assert env["labels"] == ["BENCH_2"] and env["ok"]


def _bench_file(root, n, micro):
    payload = {
        "schema": "repro-bench/1",
        "scale": "smoke",
        "jobs": 1,
        "unix_time": 0.0,
        "env": {},
        "micro": micro,
        "experiments": {},
        "determinism": {},
    }
    (root / f"BENCH_{n}.json").write_text(json.dumps(payload) + "\n")


def test_cli_check_gate_pass_then_fail(tmp_path, capsys):
    from repro.obs.__main__ import main

    _bench_file(tmp_path, 1, {"kernel_wall_s": 1.0})
    _bench_file(tmp_path, 2, {"kernel_wall_s": 1.05})
    assert main(["trend", "--root", str(tmp_path), "--check"]) == 0
    capsys.readouterr()
    _bench_file(tmp_path, 3, {"kernel_wall_s": 1.40})  # +33% > 25%
    assert main(["trend", "--root", str(tmp_path), "--check"]) == 1
    out = capsys.readouterr().out
    assert "REGRESSED" in out and "kernel_wall_s" in out


def test_cli_json_and_store_points(tmp_path, capsys):
    from repro.obs.__main__ import main
    from repro.obs.store import RunStore

    _bench_file(tmp_path, 1, {"kernel_wall_s": 1.0})
    bench2 = tmp_path / "b2.json"
    bench2.write_text(json.dumps({
        "schema": "repro-bench/1", "micro": {"kernel_wall_s": 0.9},
        "experiments": {},
    }) + "\n")
    store_root = tmp_path / "store"
    RunStore(store_root).put({"bench.json": str(bench2)}, meta={"app": "bench"})
    labels = [l for l, _ in load_points(str(tmp_path), str(store_root))]
    assert labels[0] == "BENCH_1" and labels[1].startswith("store:")
    code = main([
        "trend", "--root", str(tmp_path), "--store", str(store_root), "--json",
    ])
    assert code == 0
    env = json.loads(capsys.readouterr().out)
    assert env["schema"] == "repro-obs-trend/1"
    assert len(env["labels"]) == 2


def test_trend_on_real_repo_trajectory():
    """The repo's own BENCH_* series must pass the gate as committed."""
    analysis = analyze(load_points("."))
    assert len(analysis["labels"]) >= 2
    assert analysis["ok"], analysis["regressions"]
