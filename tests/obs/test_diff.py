"""Cross-run trace diffing (repro.obs.diff).

The acceptance-criterion shape, at test scale: diff a strict-ish run
(age=0) against a relaxed one (larger age) and the blocking delta must
carry the Figure-4 sign — the age=0 run blocks MORE, so with A=age0 and
B=age_max every ``gr.blocked_time`` delta (B − A) is negative.
"""

import pytest

from repro.obs.diff import (
    DIFF_SCHEMA,
    SUMMARY_METRICS,
    diff_traces,
    render_diff,
    run_profile,
)
from repro.obs.integration import traced_ga_run


@pytest.fixture(scope="module")
def age_pair():
    """Two small traced GA runs differing only in the age tolerance."""
    a = traced_ga_run(n_demes=2, seed=7, age=0, n_generations=40)
    b = traced_ga_run(n_demes=2, seed=7, age=10, n_generations=40)
    return a, b


def test_run_profile_summary(age_pair):
    a, _ = age_pair
    p = run_profile(a.bus.events)
    assert set(p["summary"]) == set(SUMMARY_METRICS)
    assert p["summary"]["events"] == len(a.bus.events)
    assert p["summary"]["t_end"] > 0
    assert p["max_iter"] >= 1
    assert p["by_iter"], "GA run reports per-iteration Global_Read activity"


def test_diff_blocking_delta_sign(age_pair):
    """age=0 blocks more than age=10: B − A blocked time is negative."""
    a, b = age_pair
    d = diff_traces(a.bus.events, b.bus.events, label_a="age0", label_b="age10")
    assert d["schema"] == DIFF_SCHEMA
    assert d["delta"]["gr.blocked_time"] < 0
    # strict runs never read stale data; relaxed ones do
    assert d["delta"]["gr.mean_staleness"] >= 0
    summary = d["summary"]["gr.blocked_time"]
    assert summary["delta"] == pytest.approx(summary["b"] - summary["a"])


def test_diff_iteration_buckets_align(age_pair):
    a, b = age_pair
    d = diff_traces(a.bus.events, b.bus.events, bins=8)
    assert 1 <= len(d["iteration_buckets"]) <= 8
    assert d["common_max_iter"] >= 1
    for row in d["iteration_buckets"]:
        lo, hi = row["iters"]
        assert 1 <= lo <= hi <= d["common_max_iter"]
        assert row["blocked_delta"] == pytest.approx(
            row["blocked_b"] - row["blocked_a"]
        )


def test_diff_self_is_zero(age_pair):
    """A trace diffed against itself reports all-zero deltas."""
    a, _ = age_pair
    d = diff_traces(a.bus.events, a.bus.events)
    for m in SUMMARY_METRICS:
        assert d["delta"][m] == 0
    for row in d["iteration_buckets"]:
        assert row["blocked_delta"] == 0
        assert row["rollbacks_delta"] == 0


def test_render_diff_text(age_pair):
    a, b = age_pair
    d = diff_traces(a.bus.events, b.bus.events, label_a="A.jsonl", label_b="B.jsonl")
    text = render_diff(d)
    assert "A.jsonl" in text and "B.jsonl" in text
    assert "gr.blocked_time" in text
    assert "B - A" in text


def test_diff_empty_traces():
    d = diff_traces([], [])
    assert d["common_max_iter"] == 0
    assert d["iteration_buckets"] == []
    assert d["delta"]["events"] == 0
