"""The docstring-coverage gate passes on the shipped tree.

Loads ``tools/check_docstrings.py`` from its file path (it is a script,
not a package) and asserts zero findings over ``src/repro`` — the same
check CI's static-analysis job runs — plus the classifier's rules on a
synthetic module.
"""

import importlib.util
import pathlib
import textwrap

_TOOL = pathlib.Path(__file__).resolve().parents[2] / "tools" / "check_docstrings.py"
_spec = importlib.util.spec_from_file_location("check_docstrings", _TOOL)
check_docstrings = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docstrings)


def test_repo_public_api_is_fully_documented():
    root = _TOOL.parents[1] / "src" / "repro"
    findings = []
    for path in sorted(root.rglob("*.py")):
        findings.extend(check_docstrings.check_file(path, root))
    assert findings == [], findings


def test_gate_flags_missing_docstrings(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text(
        textwrap.dedent(
            '''
            class Public:
                def method(self):
                    return 1

            def _private():
                return 2
            '''
        )
    )
    findings = check_docstrings.check_file(pkg / "mod.py", pkg)
    names = {(f["kind"], f["name"]) for f in findings}
    assert ("module", "<module>") in names
    assert ("class", "Public") in names
    assert ("function", "Public.method") in names
    # private names stay exempt
    assert not any("_private" in f["name"] for f in findings)


def test_gate_exempts_dunders_and_stubs(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text(
        textwrap.dedent(
            '''
            """Documented module."""

            class C:
                """Documented class."""

                def __init__(self, x):
                    self.x = x

                def __repr__(self):
                    return "C"

                def stub(self):
                    ...
            '''
        )
    )
    assert check_docstrings.check_file(pkg / "mod.py", pkg) == []
