"""Tracing must not change a single bit of any run.

This is the load-bearing contract of `repro.obs` (DESIGN.md §10): the
golden digests of `repro.bench.determinism` were recorded with tracing
*off*, and a run with tracing *on* must reproduce them exactly — the
hooks may observe state changes but never perturb RNG draws, event
ordering or results.
"""

from dataclasses import replace

from repro.bench.determinism import GOLDEN, check_digests, digest_values
from repro.core.coherence import CoherenceMode
from repro.experiments.config import Scale
from repro.experiments.speedup import machine_for
from repro.ga.functions import get_function
from repro.ga.island import IslandGaConfig, run_island_ga


def _ga_digest(trace: bool) -> str:
    """The GOLDEN["ga_result"] recipe, with tracing switchable."""
    machine = replace(machine_for(Scale.smoke(), 2, 7), trace=trace)
    result = run_island_ga(
        IslandGaConfig(
            fn=get_function(1),
            n_demes=2,
            mode=CoherenceMode.NON_STRICT,
            age=10,
            n_generations=40,
            seed=7,
            machine=machine,
        )
    )
    return digest_values(
        result.completion_time,
        result.total_time,
        result.best_fitness,
        result.mean_fitness,
        [float(b) for b in result.per_deme_best],
        list(result.generations_run),
        result.messages_sent,
        result.mean_warp,
        result.max_warp,
    )


def test_traced_ga_run_matches_untraced_golden():
    assert _ga_digest(trace=True) == GOLDEN["ga_result"]


def test_untraced_digests_still_match_golden():
    """All three goldens hold with the obs hooks merely *present*."""
    results = check_digests()
    assert all(r["ok"] for r in results.values()), results


def test_span_building_leaves_trace_untouched():
    """Building the causal graph is read-only: digests are unmoved."""
    from repro.obs.causal import attribute, build_spans, critical_path
    from repro.obs.integration import traced_ga_run

    run = traced_ga_run(n_demes=2, seed=3, n_generations=25)
    before = run.bus.digest()
    g = build_spans(run.bus.events)
    attribute(g)
    critical_path(g)
    assert run.bus.digest() == before
    # and the lineage hooks are pure functions of the seed too: a
    # second identical run, analysed or not, lands on the same digest
    again = traced_ga_run(n_demes=2, seed=3, n_generations=25)
    assert again.bus.digest() == before
