"""Streaming gzip trace sink: rotation, digest parity, truncation.

The sink mode exists so long runs (256+ deme scale_study sweeps) can
trace without holding the full event list in memory; these tests pin
its two contracts — bit-identical digests versus buffered mode, and
bounded buffer occupancy — plus the reader-side tolerance for traces
truncated by a crashed run.
"""

import gzip
import json
import os

import pytest

from repro.obs.bus import (
    GzipJsonlSink,
    TraceBus,
    iter_trace_lines,
    part_path,
    read_jsonl,
    read_meta,
    trace_paths,
)


class _Clock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 0.001
        return self.t


def _fill(bus: TraceBus, n: int) -> None:
    for i in range(n):
        bus.emit("proc.spawn", node=i % 4, pid=i, name=f"p{i}")


def test_sink_digest_matches_buffered(tmp_path):
    buffered = TraceBus(clock=_Clock())
    _fill(buffered, 5000)
    sink_bus = TraceBus(
        clock=_Clock(),
        sink=GzipJsonlSink(tmp_path / "t.jsonl.gz"),
        flush_every=512,
    )
    _fill(sink_bus, 5000)
    assert sink_bus.digest() == buffered.digest()
    assert sink_bus.dropped == 0
    assert len(sink_bus) == 5000


def test_sink_rotation_and_reader(tmp_path):
    base = tmp_path / "t.jsonl.gz"
    bus = TraceBus(
        clock=_Clock(),
        sink=GzipJsonlSink(base, rotate_bytes=2048),
        flush_every=256,
    )
    _fill(bus, 4000)
    n = bus.write_jsonl()
    assert n == 4000
    parts = trace_paths(base)
    assert len(parts) > 1
    assert parts[0] == os.fspath(base)
    assert part_path(os.fspath(base), 1).endswith(".part001.jsonl.gz")
    events = list(read_jsonl(base))
    assert len(events) == 4000
    meta = read_meta(base)
    assert meta["events"] == 4000 and meta["events_dropped"] == 0


def test_sink_peak_buffer_is_bounded(tmp_path):
    bus = TraceBus(
        clock=_Clock(),
        sink=GzipJsonlSink(tmp_path / "t.jsonl.gz"),
        flush_every=128,
    )
    _fill(bus, 10_000)
    bus.write_jsonl()
    assert 0 < bus.peak_buffered <= 128


def test_sink_finalize_is_idempotent(tmp_path):
    base = tmp_path / "t.jsonl.gz"
    bus = TraceBus(clock=_Clock(), sink=GzipJsonlSink(base), flush_every=64)
    _fill(bus, 200)
    assert bus.write_jsonl() == 200
    assert bus.write_jsonl() == 200  # second finalize: no-op, same count
    lines = list(iter_trace_lines(base))
    assert sum(1 for l in lines if '"trace.meta"' in l) == 1


def test_buffered_overflow_surfaces_events_dropped(tmp_path):
    bus = TraceBus(clock=_Clock(), max_events=100)
    _fill(bus, 150)
    assert bus.dropped == 50
    path = tmp_path / "t.jsonl"
    bus.write_jsonl(path)
    meta = read_meta(path)
    assert meta["events_dropped"] == 50
    # ... and the report header calls the truncation out
    from repro.obs.report import render_report

    text = render_report(list(bus.events), meta=meta)
    assert "TRUNCATED CAPTURE" in text and "50" in text


def test_truncated_gzip_tail_tolerated(tmp_path):
    base = tmp_path / "t.jsonl.gz"
    bus = TraceBus(clock=_Clock(), sink=GzipJsonlSink(base), flush_every=64)
    _fill(bus, 2000)
    bus.write_jsonl()
    whole = list(read_jsonl(base))
    # simulate a crashed writer: chop the gzip stream mid-member
    data = (tmp_path / "t.jsonl.gz").read_bytes()
    (tmp_path / "t.jsonl.gz").write_bytes(data[: len(data) // 2])
    truncated = list(read_jsonl(base))
    assert 0 < len(truncated) < len(whole)
    # the causal layer still builds spans from what survived
    from repro.obs.causal import build_spans

    g = build_spans(truncated)
    assert g is not None


def test_sink_trace_validates(tmp_path):
    base = tmp_path / "t.jsonl.gz"
    bus = TraceBus(
        clock=_Clock(), sink=GzipJsonlSink(base, rotate_bytes=4096),
        flush_every=128,
    )
    _fill(bus, 3000)
    bus.write_jsonl()
    from repro.obs.schema import validate_trace

    verdict = validate_trace(os.fspath(base), strict=True)
    assert verdict["ok"], verdict["errors"]
    assert verdict["events"] == 3000


def test_gzip_bytes_are_deterministic(tmp_path):
    def write(path):
        bus = TraceBus(clock=_Clock(), sink=GzipJsonlSink(path), flush_every=64)
        _fill(bus, 500)
        bus.write_jsonl()
        return path.read_bytes()

    assert write(tmp_path / "a.jsonl.gz") == write(tmp_path / "b.jsonl.gz")


def test_part_path_plain_suffix():
    assert part_path("trace.log", 2) == "trace.log.part002"


def test_buffered_write_requires_path():
    bus = TraceBus(clock=_Clock())
    _fill(bus, 3)
    with pytest.raises(ValueError):
        bus.write_jsonl()
