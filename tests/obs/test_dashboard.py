"""HTML run dashboard + the causal/diff/validate CLI subcommands.

The dashboard is a zero-dependency single HTML file; no browser runs
in CI, so these tests pin the structural contract: self-contained
document, one SVG per chart, per-node timeline rows, a legend, both
colour-scheme scopes, the accessible attribution table, and properly
escaped text.  The CLI tests pin each subcommand's exit-code and
artifact contract end to end.
"""

import json

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.dashboard import render_dashboard


@pytest.fixture(scope="module")
def html(ga_run):
    return render_dashboard(
        ga_run.bus.events, metrics=ga_run.metrics, title="ga smoke"
    )


def test_dashboard_is_self_contained(html):
    assert html.startswith("<!DOCTYPE html>")
    # no external fetches: everything is inline
    assert "http://" not in html and "https://" not in html
    assert "<script src" not in html and "<link" not in html


def test_dashboard_charts_present(html):
    assert html.count("<svg") >= 3  # timeline, warp, staleness (+ cp bar)
    for node in (0, 1):
        assert f">node {node}</text>" in html
    # legend names all four attribution buckets
    for key in ("compute", "Global_Read blocking", "network", "rollback"):
        assert key in html
    assert "stable (1.0)" in html  # warp reference line


def test_dashboard_modes_and_table(html):
    assert "prefers-color-scheme: dark" in html
    assert 'data-theme="dark"' in html
    assert "<table>" in html  # accessible twin of the attribution chart
    assert "NaN" not in html


def test_dashboard_escapes_title(ga_run):
    out = render_dashboard(ga_run.bus.events, title="<run> & 'x'")
    assert "<run>" not in out
    assert "&lt;run&gt;" in out


def test_dashboard_empty_trace():
    out = render_dashboard([])
    assert out.startswith("<!DOCTYPE html>")
    assert "No node activity" in out


def _trace(ga_run, tmp_path, name="t.jsonl"):
    path = tmp_path / name
    ga_run.bus.write_jsonl(str(path))
    return path


def test_cli_dashboard_default_out(ga_run, tmp_path, capsys):
    trace = _trace(ga_run, tmp_path)
    assert obs_main(["dashboard", str(trace), "--title", "smoke"]) == 0
    out = tmp_path / "t.html"
    assert out.exists()
    assert "<svg" in out.read_text()
    assert str(out) in capsys.readouterr().out


def test_cli_critical_path_artifact(ga_run, tmp_path):
    trace = _trace(ga_run, tmp_path)
    out = tmp_path / "cp.json"
    assert obs_main(["critical-path", str(trace), "--out", str(out)]) == 0
    art = json.loads(out.read_text())
    assert art["schema"] == "repro-obs-critical-path/1"
    assert art["attribution"]["min_attributed_fraction"] >= 0.95
    assert art["critical_path"]["coverage"] == pytest.approx(1.0, rel=1e-9)


def test_cli_diff_text_and_json(ga_run, tmp_path, capsys):
    trace = _trace(ga_run, tmp_path)
    assert obs_main(["diff", str(trace), str(trace)]) == 0
    assert "deltas are B - A" in capsys.readouterr().out
    out = tmp_path / "d.json"
    assert obs_main(["diff", str(trace), str(trace), "--json", "--out", str(out)]) == 0
    d = json.loads(out.read_text())
    assert d["schema"] == "repro-obs-diff/1"
    assert d["delta"]["events"] == 0


def test_cli_report_json_envelope(ga_run, tmp_path, capsys):
    trace = _trace(ga_run, tmp_path)
    metrics = tmp_path / "m.json"
    metrics.write_text(json.dumps(ga_run.metrics))
    assert obs_main(
        ["report", str(trace), "--metrics", str(metrics), "--json"]
    ) == 0
    env = json.loads(capsys.readouterr().out)
    assert env["schema"] == "repro-obs-report/1"
    assert env["events"] == len(ga_run.bus.events)
    assert env["metrics"]["gauges"]["warp.mean"] == ga_run.metrics["gauges"]["warp.mean"]


def test_cli_validate_ok_and_invalid(ga_run, tmp_path, capsys):
    trace = _trace(ga_run, tmp_path)
    assert obs_main(["validate", str(trace), "--strict"]) == 0
    assert "OK" in capsys.readouterr().out
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"t": 1.0, "kind": "dsm.write", "node": 0}\n')
    assert obs_main(["validate", str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().out


def test_cli_missing_files_exit_2(tmp_path):
    ghost = str(tmp_path / "nope.jsonl")
    for cmd in (["critical-path", ghost], ["diff", ghost, ghost],
                ["dashboard", ghost], ["validate", ghost]):
        assert obs_main(cmd) == 2
