"""Content-addressed run store: round-trip determinism, refs, dedup."""

import json
import os

import pytest

from repro.obs.bus import GzipJsonlSink, TraceBus, read_jsonl
from repro.obs.store import RUN_SCHEMA, RunStore


class _Clock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 0.001
        return self.t


def _write_artifacts(tmp_path, n_events=300):
    tmp_path.mkdir(parents=True, exist_ok=True)
    bus = TraceBus(clock=_Clock())
    for i in range(n_events):
        bus.emit("proc.spawn", node=i % 2, pid=i, name=f"p{i}")
    trace = tmp_path / "trace.jsonl"
    bus.write_jsonl(trace)
    metrics = tmp_path / "metrics.json"
    metrics.write_text(json.dumps({"events": n_events}) + "\n")
    return {"trace.jsonl": str(trace), "metrics.json": str(metrics)}


def test_put_get_put_round_trip_is_identity(tmp_path):
    files = _write_artifacts(tmp_path / "src_")
    store = RunStore(tmp_path / "store")
    ref = store.put(files, meta={"app": "test"})
    dest = tmp_path / "out"
    extracted = store.get(ref, dest)
    assert "trace.jsonl" in extracted and "metrics.json" in extracted
    # re-putting the extracted artifacts lands on the identical digest
    ref2 = store.put(
        {
            "trace.jsonl": str(dest / "trace.jsonl"),
            "metrics.json": str(dest / "metrics.json"),
        },
        meta={"app": "test"},
    )
    assert ref2 == ref
    assert len(store.ls()) == 1  # deduplicated, not duplicated


def test_manifest_shape_and_digest(tmp_path):
    store = RunStore(tmp_path / "store")
    ref = store.put(_write_artifacts(tmp_path / "a"), meta={"k": "v"})
    manifest = store.manifest(ref)
    assert manifest["schema"] == RUN_SCHEMA
    assert manifest["digest"].startswith(ref)
    assert manifest["meta"] == {"k": "v"}
    assert set(manifest["files"]) == {"trace.jsonl.gz", "metrics.json"}
    for entry in manifest["files"].values():
        assert len(entry["sha256"]) == 64 and entry["bytes"] > 0


def test_trace_stored_compressed_and_readable(tmp_path):
    store = RunStore(tmp_path / "store")
    ref = store.put(_write_artifacts(tmp_path / "a", n_events=120))
    path = store.trace_path(ref)
    assert path.endswith("trace.jsonl.gz")
    assert len(list(read_jsonl(path))) == 120
    # artifact() resolves with or without the .gz suffix
    assert store.artifact(ref, "trace.jsonl") == path


def test_rotated_trace_flattens_to_one_artifact(tmp_path):
    base = tmp_path / "rot.jsonl.gz"
    bus = TraceBus(
        clock=_Clock(), sink=GzipJsonlSink(base, rotate_bytes=1024),
        flush_every=64,
    )
    for i in range(2000):
        bus.emit("proc.spawn", node=0, pid=i, name=f"p{i}")
    bus.write_jsonl()
    store = RunStore(tmp_path / "store")
    # store under the plain name: the rotated parts flatten into one gz
    ref = store.put({"trace.jsonl": str(base)})
    assert len(list(read_jsonl(store.trace_path(ref)))) == 2000
    assert set(store.manifest(ref)["files"]) == {"trace.jsonl.gz"}


def test_resolve_latest_prefix_and_errors(tmp_path):
    store = RunStore(tmp_path / "store")
    with pytest.raises(KeyError):
        store.resolve("latest")
    ref_a = store.put(_write_artifacts(tmp_path / "a"), meta={"seq": "a"})
    ref_b = store.put(_write_artifacts(tmp_path / "b"), meta={"seq": "b"})
    assert ref_a != ref_b
    assert store.resolve("latest") == ref_b
    assert store.resolve(ref_a[:6]) == ref_a
    with pytest.raises(KeyError):
        store.resolve("not-a-ref")
    runs = store.ls()
    assert [r["seq"] for r in runs] == [0, 1]
    assert runs[-1]["ref"] == ref_b


def test_meta_changes_the_digest(tmp_path):
    files = _write_artifacts(tmp_path / "a")
    store = RunStore(tmp_path / "store")
    assert store.put(files, meta={"x": "1"}) != store.put(files, meta={"x": "2"})


def test_staged_streaming_put(tmp_path):
    """A sink can write straight into a staging dir; put_staged commits."""
    store = RunStore(tmp_path / "store")
    stage = store.stage()
    bus = TraceBus(
        clock=_Clock(),
        sink=GzipJsonlSink(os.path.join(stage, "trace.jsonl.gz")),
        flush_every=64,
    )
    for i in range(500):
        bus.emit("proc.spawn", node=0, pid=i, name=f"p{i}")
    bus.write_jsonl()
    ref = store.put_staged(stage, meta={"kind": "streamed"})
    assert not os.path.exists(stage)  # promoted, not copied
    assert len(list(read_jsonl(store.trace_path(ref)))) == 500
