"""Host-time profiler: self-time accounting and determinism neutrality.

The profiler's load-bearing promise mirrors the trace bus's: turning it
on must not move a single golden digest (GOLDEN and SWITCHED_GOLDEN are
pinned here with profiling *on*), while its self-time accounting must
sum exactly to the profiled interval so ``attributed_fraction`` means
what the acceptance criterion says it means.
"""

from repro.obs.prof import (
    ROOT,
    HostProfiler,
    activate,
    category_of,
    category_of_module,
    current,
    deactivate,
    prof_section,
    profile_html,
    profile_report,
    render_profile,
)


class _FakeClock:
    """Deterministic clock: each read advances by 1.0."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


def test_self_time_sums_to_interval():
    prof = HostProfiler(clock=_FakeClock())
    prof.start()
    with prof.section("kernel.loop"):
        with prof.section("proc.step"):
            pass
        with prof.section("network"):
            pass
    prof.stop()
    snap = prof.snapshot()
    assert abs(sum(s["self_s"] for s in snap["sections"].values())
               - snap["total_s"]) < 1e-9
    assert set(snap["sections"]) >= {
        "kernel.loop", "kernel.loop/proc.step", "kernel.loop/network",
    }
    assert snap["sections"]["kernel.loop/proc.step"]["calls"] == 1
    assert 0.0 < snap["attributed_fraction"] <= 1.0


def test_stop_unwinds_open_sections():
    prof = HostProfiler(clock=_FakeClock())
    prof.push("a")
    prof.push("b")
    prof.stop()
    assert not prof.running
    snap = prof.snapshot()
    assert "a/b" in snap["sections"]


def test_category_mapping():
    assert category_of_module("repro.sim.parallel.channel") == "par.harness"
    assert category_of_module("repro.sim.kernel") == "proc.step"
    assert category_of_module("repro.network.switched") == "network"
    assert category_of_module("repro.ga.island") == "app.ga"
    assert category_of_module("repro.obs.bus") == "obs.io"
    assert category_of_module("") == "proc.step"  # bound generator frames
    assert category_of_module("numpy.core") == "other"
    assert category_of(test_category_mapping) == "other"


def test_ambient_sections_noop_without_profiler():
    assert current() is None
    with prof_section("numpy.ga"):
        pass  # must not raise or allocate a profiler
    assert current() is None
    prof = activate(HostProfiler(clock=_FakeClock()))
    with prof_section("numpy.ga"):
        pass
    assert deactivate() is prof
    assert current() is None
    assert "numpy.ga" in prof.snapshot()["sections"]


def test_envelope_and_renderings():
    prof = HostProfiler(clock=_FakeClock())
    prof.start()
    with prof.section("kernel.loop"):
        pass
    prof.stop()
    env = profile_report(prof.snapshot(), [dict(prof.snapshot(), shard=0)],
                         meta={"app": "test"})
    assert env["schema"] == "repro-obs-prof/1"
    text = render_profile(env)
    assert "kernel.loop" in text and "Shard 0 worker" in text
    html = profile_html(env)
    assert "profrow" in html and "kernel.loop" in html


def test_golden_digest_unmoved_with_profiling_on():
    """The GOLDEN ga_result recipe, profiled + traced: digest identical."""
    from dataclasses import replace

    from repro.bench.determinism import GOLDEN
    from repro.core.coherence import CoherenceMode
    from repro.experiments.config import Scale
    from repro.experiments.speedup import machine_for
    from repro.ga.functions import get_function
    from repro.ga.island import IslandGaConfig, run_island_ga
    from repro.ga.sharded import ga_digest

    prof = activate(HostProfiler())
    try:
        result = run_island_ga(
            IslandGaConfig(
                fn=get_function(1),
                n_demes=2,
                mode=CoherenceMode.NON_STRICT,
                age=10,
                n_generations=40,
                seed=7,
                machine=replace(machine_for(Scale.smoke(), 2, 7), trace=True),
            ),
            instrument=lambda dsm: setattr(dsm.vm.kernel, "prof", prof),
        )
    finally:
        deactivate()
    assert ga_digest(result) == GOLDEN["ga_result"]
    snap = prof.snapshot()
    assert snap["sections"].get("kernel.loop/proc.step/numpy.ga")
    # the event loop attributes the bulk of host time to named sections
    assert snap["attributed_fraction"] > 0.5


def test_switched_golden_unmoved_with_profiling_on():
    from repro.experiments.scale_study import SWITCHED_GOLDEN, golden_scenarios
    from repro.ga.island import run_island_ga
    from repro.ga.sharded import ga_digest

    cfg = golden_scenarios()["ring-hierarchical"]
    prof = activate(HostProfiler())
    try:
        result = run_island_ga(
            cfg, instrument=lambda dsm: setattr(dsm.vm.kernel, "prof", prof)
        )
    finally:
        deactivate()
    assert ga_digest(result) == SWITCHED_GOLDEN["ring-hierarchical"]


def test_sharded_run_ships_per_shard_profiles():
    from repro.core.coherence import CoherenceMode
    from repro.ga.functions import get_function
    from repro.ga.island import IslandGaConfig, run_island_ga
    from repro.ga.sharded import ga_digest, run_island_ga_sharded

    cfg = IslandGaConfig(
        fn=get_function(1), n_demes=4, mode=CoherenceMode.NON_STRICT,
        age=8, n_generations=10, seed=3,
    )
    serial = ga_digest(run_island_ga(cfg))
    result = run_island_ga_sharded(cfg, shards=2, profile=True)
    assert ga_digest(result) == serial  # profiling is determinism-neutral
    info = result.metrics["parallel"]
    if not info["sharded"]:  # platform without worker processes
        return
    profs = info["prof"]
    assert len(profs) == 2
    for k, snap in enumerate(profs):
        assert snap["shard"] == k
        assert snap["total_s"] > 0.0
        assert "kernel.loop" in snap["sections"]
        assert any("par.ipc" in path for path in snap["sections"])


def test_traced_profiled_trial_attribution():
    from repro.obs.integration import traced_ga_run

    run = traced_ga_run(n_demes=2, seed=7, profile=True)
    env = run.profile
    assert env["schema"] == "repro-obs-prof/1"
    main = env["main"]
    # the acceptance bar (>= 0.9 on a traced figure3 run) is checked on
    # the real workload; this smoke run just has to be mostly attributed
    assert main["attributed_fraction"] > 0.6
    assert main["sections"].get("kernel.loop/proc.step/numpy.ga")
