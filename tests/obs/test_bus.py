"""TraceBus unit behaviour + deterministic event emission.

The bus itself is trivial on purpose (append to a list); what these
tests pin is the contract the rest of the repo relies on: bounded
growth with an explicit drop counter, canonical JSONL round-trips, and
— via two identical-seed traced runs — that the *emitted event
sequence* is a pure function of the seed.
"""

import json

from repro.obs.bus import ObsEvent, TraceBus, read_jsonl
from repro.obs.integration import traced_ga_run


def _clock_factory():
    state = {"t": 0.0}

    def clock():
        state["t"] += 0.5
        return state["t"]

    return clock


def test_emit_stamps_clock_and_orders_events():
    bus = TraceBus(clock=_clock_factory())
    bus.emit("a", node=1, x=1)
    bus.emit("b", node=2, y="s")
    assert [e.kind for e in bus.events] == ["a", "b"]
    assert [e.time for e in bus.events] == [0.5, 1.0]
    assert bus.events[0].fields == {"x": 1}
    assert bus.kind_counts() == {"a": 1, "b": 1}


def test_bounded_buffer_counts_drops():
    bus = TraceBus(clock=lambda: 0.0, max_events=3)
    for i in range(10):
        bus.emit("e", node=i)
    assert len(bus.events) == 3
    assert bus.dropped == 7
    # the *first* events are kept: the bound truncates the tail, so the
    # run's causal prefix stays intact
    assert [e.node for e in bus.events] == [0, 1, 2]


def test_as_dict_shape():
    e = ObsEvent(time=1.25, kind="gr.hit", node=3, fields={"locn": "x"})
    assert e.as_dict() == {"t": 1.25, "kind": "gr.hit", "node": 3, "locn": "x"}


def test_jsonl_roundtrip(tmp_path):
    bus = TraceBus(clock=_clock_factory())
    bus.emit("a", node=0, k=1)
    bus.emit("b", node=1, s="txt")
    path = tmp_path / "trace.jsonl"
    bus.write_jsonl(path)
    lines = path.read_text().splitlines()
    # trailer carries the bus accounting
    meta = json.loads(lines[-1])
    assert meta["kind"] == "trace.meta"
    assert meta["events"] == 2
    assert meta["events_dropped"] == 0
    back = list(read_jsonl(path))
    assert [e.kind for e in back] == ["a", "b"]
    assert back[1].fields["s"] == "txt"
    assert [e.time for e in back] == [e.time for e in bus.events]


def test_digest_is_content_addressed(tmp_path):
    a = TraceBus(clock=_clock_factory())
    b = TraceBus(clock=_clock_factory())
    for bus in (a, b):
        bus.emit("x", node=0, v=1)
        bus.emit("y", node=1, v=2)
    assert a.digest() == b.digest()
    b.emit("z", node=2)
    assert a.digest() != b.digest()


def test_identical_seeds_emit_identical_event_sequences():
    """The trace is a pure function of the seed (ordering included)."""
    runs = [traced_ga_run(n_demes=2, seed=3, n_generations=25) for _ in range(2)]
    seq = [
        [(e.time, e.kind, e.node, tuple(sorted(e.fields.items())))
         for e in r.bus.events]
        for r in runs
    ]
    assert seq[0] == seq[1]
    assert runs[0].bus.digest() == runs[1].bus.digest()
    # and the trace is non-trivial: the taxonomy's GA kinds all fired
    kinds = set(runs[0].bus.kind_counts())
    assert {"proc.spawn", "node.compute", "net.deliver", "dsm.write",
            "gr.hit", "proc.done"} <= kinds


def test_tiny_buffer_trailer_accounting(tmp_path):
    """The trailer reports kept vs dropped exactly for a tiny buffer."""
    bus = TraceBus(clock=_clock_factory(), max_events=4)
    for i in range(11):
        bus.emit("e", node=i)
    path = tmp_path / "tiny.jsonl"
    bus.write_jsonl(path)
    lines = path.read_text().splitlines()
    meta = json.loads(lines[-1])
    assert meta["events"] == 4 == len(lines) - 1
    assert meta["events_dropped"] == 7
    # the kept causal prefix round-trips intact
    back = list(read_jsonl(path))
    assert [e.node for e in back] == [0, 1, 2, 3]
