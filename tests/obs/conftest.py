"""Shared fixtures: one traced GA run and one traced Bayes run.

The traced runs are module-scoped because they are the expensive part;
every test in this package reads from the same bus/result pair, which
is itself a determinism statement (the assertions about event ordering
and metric stability hold on whichever run the session built first).
"""

import pytest

from repro.obs.integration import traced_bayes_run, traced_ga_run


@pytest.fixture(scope="session")
def ga_run():
    """One traced 2-deme smoke-scale GA run (Global_Read, age=last)."""
    return traced_ga_run(n_demes=2, seed=7)


@pytest.fixture(scope="session")
def bayes_run():
    """One traced 2-processor smoke-scale Hailfinder run."""
    return traced_bayes_run(n_procs=2, seed=7)
