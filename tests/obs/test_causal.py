"""Causal layer: span building, attribution, critical path, degradation.

The span builder lifts the flat JSONL trace into compute / wait /
rollback spans plus a ``dsm.write -> net.deliver -> gr.unblock``
lineage.  What these tests pin, on the shared traced GA run:

* the graph is complete — every active node gets a window, span kinds
  are drawn from the documented set, lineage refs resolve to writes;
* attribution covers (nearly) all wall time — the acceptance criterion
  is ``min_attributed_fraction >= 0.95`` on a traced figure-4-style run;
* the critical path tiles ``[0, t_end]`` contiguously (coverage 1.0);
* truncated traces (bounded buffer, missing event kinds) degrade to
  partial spans and NEVER raise.
"""

import pytest

from repro.obs.bus import TraceBus
from repro.obs.causal import (
    BUCKETS,
    CRITICAL_PATH_SCHEMA,
    attribute,
    build_spans,
    critical_path,
    critical_path_report,
)

_KINDS = {"compute", "gr-wait", "rollback"}


@pytest.fixture(scope="module")
def graph(ga_run):
    """Span graph of the shared traced 2-deme GA run."""
    return build_spans(ga_run.bus.events)


def test_build_spans_basic_shape(ga_run, graph):
    assert graph.events == len(ga_run.bus.events)
    assert graph.spans, "traced GA run must produce spans"
    assert {s.kind for s in graph.spans} <= _KINDS
    # both demes were active and every span's node has a window
    assert len(graph.nodes) == 2
    for s in graph.spans:
        assert s.node in graph.node_window
        assert s.t1 >= s.t0
    assert graph.t_end > 0
    # a full (untruncated) trace has no dangling halves
    assert not graph.partial


def test_lineage_refs_resolve_to_writes(graph):
    """Every write ref is locn@iter and unblock lineage points at one."""
    assert graph.writes, "GA run publishes DSM writes"
    for ref, (node, t) in graph.writes.items():
        locn, _, iter_no = ref.partition("@")
        assert locn and iter_no.isdigit()
        assert 0 <= t <= graph.t_end
    resolved = [
        s for s in graph.spans
        if s.kind == "gr-wait" and s.detail.get("ref") in graph.writes
    ]
    # age=10 at smoke scale still blocks early on: some waits resolve
    assert resolved or graph.unresolved_waits == 0


def test_attribution_covers_wall_time(graph):
    attr = attribute(graph)
    assert set(attr["totals"]) == set(BUCKETS) | {"idle"}
    t_end = graph.t_end
    for node, pn in attr["per_node"].items():
        covered = sum(pn[b] for b in BUCKETS)
        # buckets + idle tile the run end-to-end
        assert covered + pn["idle"] == pytest.approx(t_end, rel=1e-6)
        assert pn["attributed_fraction"] == pytest.approx(covered / t_end)
    # the acceptance criterion: >= 95% of wall time attributed per node
    assert attr["min_attributed_fraction"] >= 0.95


def test_attribution_blocking_by_age(graph):
    attr = attribute(graph)
    # the run used one age setting; all blocking lands under that key
    ages = attr["blocking_by_age"]
    assert all(v >= 0 for v in ages.values())
    total_blocking = attr["totals"]["gr_blocking"]
    assert sum(ages.values()) == pytest.approx(total_blocking, abs=1e-9)


def test_critical_path_tiles_run(graph):
    cp = critical_path(graph)
    segs = cp["segments"]
    assert segs, "non-trivial run has a non-empty critical path"
    assert segs[0]["t0"] == pytest.approx(0.0, abs=1e-9)
    assert segs[-1]["t1"] == pytest.approx(graph.t_end, rel=1e-9)
    for a, b in zip(segs, segs[1:]):
        assert a["t1"] == pytest.approx(b["t0"], rel=1e-9)
    assert cp["coverage"] == pytest.approx(1.0, rel=1e-9)
    assert sum(cp["by_kind"].values()) == pytest.approx(graph.t_end, rel=1e-9)
    assert cp["start_node"] in graph.nodes


def test_critical_path_report_envelope(ga_run):
    rep = critical_path_report(ga_run.bus.events)
    assert rep["schema"] == CRITICAL_PATH_SCHEMA
    assert rep["events"] == len(ga_run.bus.events)
    assert rep["spans"] > 0
    assert rep["attribution"]["min_attributed_fraction"] >= 0.95
    assert rep["critical_path"]["coverage"] == pytest.approx(1.0, rel=1e-9)


def test_truncated_trace_degrades_to_partial_spans(ga_run):
    """A tail-truncated trace yields partial spans, never an exception."""
    events = ga_run.bus.events
    # cut mid-run: open gr.block / rb.begin halves lose their ends
    for cut in (1, 7, len(events) // 3, len(events) // 2):
        g = build_spans(events[:cut])
        assert g.events == cut
        for s in g.spans:
            assert s.t0 <= s.t1
        cp = critical_path(g)
        if g.t_end > 0:
            assert 0.0 < cp["coverage"] <= 1.0 + 1e-9


def test_missing_event_kinds_do_not_raise(ga_run):
    """Dropping whole kinds (e.g. dsm.write) only weakens lineage."""
    events = ga_run.bus.events
    for gone in ("dsm.write", "gr.block", "net.deliver", "node.compute"):
        g = build_spans([e for e in events if e.kind != gone])
        attr = attribute(g)
        assert attr["min_attributed_fraction"] >= 0.0
        critical_path(g)  # must not raise
    # without dsm.write, no lineage resolves
    g = build_spans([e for e in events if e.kind != "dsm.write"])
    assert not g.writes


def test_bounded_bus_truncation_marks_partial(ga_run):
    """Events squeezed through a tiny bounded bus still build cleanly."""
    src = ga_run.bus.events
    times = iter([e.time for e in src])
    bus = TraceBus(clock=lambda: next(times), max_events=25)
    for e in src:
        bus.emit(e.kind, node=e.node, **e.fields)
    assert bus.dropped == len(src) - 25
    g = build_spans(bus.events)
    assert g.events == 25
    critical_path(g)  # must not raise


def test_empty_trace():
    g = build_spans([])
    assert g.spans == [] and g.t_end == 0.0
    attr = attribute(g)
    assert attr["per_node"] == {}
    assert attr["min_attributed_fraction"] == 1.0
    cp = critical_path(g)
    assert cp["segments"] == [] and cp["start_node"] is None
