"""Trace-schema validation (repro.obs.schema / ``repro.obs validate``)."""

import json

import pytest

from repro.obs.schema import validate_lines, validate_trace


def _trace_file(ga_run, tmp_path):
    path = tmp_path / "trace.jsonl"
    ga_run.bus.write_jsonl(path)
    return path


def test_real_trace_validates_clean(ga_run, tmp_path):
    verdict = validate_trace(str(_trace_file(ga_run, tmp_path)))
    assert verdict["ok"], verdict["errors"]
    assert verdict["error_count"] == 0
    assert verdict["warning_count"] == 0
    assert verdict["events"] == len(ga_run.bus.events)
    assert verdict["meta"]["events_dropped"] == 0


def test_real_trace_validates_strict(ga_run, tmp_path):
    verdict = validate_trace(str(_trace_file(ga_run, tmp_path)), strict=True)
    assert verdict["ok"], verdict["errors"]


def _meta(events, dropped=0):
    return json.dumps(
        {"kind": "trace.meta", "events": events, "events_dropped": dropped}
    )


def _line(t, kind="dsm.write", node=0, **fields):
    return json.dumps({"t": t, "kind": kind, "node": node, "locn": "x",
                       "iter": 1, **fields})


def test_corrupt_json_line_is_an_error():
    v = validate_lines([_line(0.1), "{not json", _meta(2)])
    assert not v["ok"]
    assert any("invalid JSON" in e for e in v["errors"])


def test_missing_trailer_is_an_error():
    v = validate_lines([_line(0.1), _line(0.2)])
    assert not v["ok"]
    assert any("trace.meta" in e for e in v["errors"])


def test_trailer_event_count_mismatch():
    v = validate_lines([_line(0.1), _line(0.2), _meta(5)])
    assert not v["ok"]
    assert any("declares 5" in e for e in v["errors"])


def test_time_going_backward_is_an_error():
    v = validate_lines([_line(1.0), _line(0.5), _meta(2)])
    assert not v["ok"]
    assert any("backward" in e for e in v["errors"])


def test_missing_required_field():
    bad = json.dumps({"t": 0.1, "kind": "gr.hit", "node": 0, "locn": "x",
                      "curr_iter": 1, "age": 0})  # staleness missing
    v = validate_lines([bad, _meta(1)])
    assert not v["ok"]
    assert any("missing field 'staleness'" in e for e in v["errors"])


def test_wrong_field_type_and_bool_guard():
    bad = json.dumps({"t": 0.1, "kind": "dsm.write", "node": 0,
                      "locn": "x", "iter": True})  # bool is not an int
    v = validate_lines([bad, _meta(1)])
    assert not v["ok"]
    assert any("dsm.write.iter" in e for e in v["errors"])


def test_optional_lineage_fields_both_ways():
    """Traces with and without the causal-layer fields both validate."""
    old = json.dumps({"t": 0.1, "kind": "gr.unblock", "node": 0, "locn": "x",
                      "curr_iter": 2, "age": 1, "waited": 0.5, "staleness": 1})
    new = json.dumps({"t": 0.2, "kind": "gr.unblock", "node": 0, "locn": "x",
                      "curr_iter": 2, "age": 1, "waited": 0.5, "staleness": 1,
                      "ref": "x@1", "writer": 1})
    v = validate_lines([old, new, _meta(2)])
    assert v["ok"], v["errors"]


def test_unknown_kind_warns_or_errors():
    odd = json.dumps({"t": 0.1, "kind": "custom.thing", "node": 0})
    lines = [odd, _meta(1)]
    assert validate_lines(lines)["ok"]
    assert validate_lines(lines)["warning_count"] == 1
    strict = validate_lines(lines, strict=True)
    assert not strict["ok"]


def test_fault_prefix_kinds_accepted():
    f = json.dumps({"t": 0.1, "kind": "fault.drop", "node": 2, "src": 0,
                    "frame_kind": "pvm"})
    v = validate_lines([f, _meta(1)], strict=True)
    assert v["ok"], v["errors"]


def test_detail_lists_are_bounded():
    lines = ["{bad" for _ in range(200)]
    v = validate_lines(lines)
    assert v["error_count"] >= 200
    assert len(v["errors"]) <= 50


def test_missing_file_raises_oserror(tmp_path):
    with pytest.raises(OSError):
        validate_trace(str(tmp_path / "nope.jsonl"))
