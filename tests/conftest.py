"""Suite-wide fixtures.

``sanitize_dsm`` is inert by default; run ``REPRO_SANITIZE=1 pytest``
to attach the happens-before race classifier to every DSM built in any
test and fail on consistency-invariant violations (see
:mod:`repro.analysis.fixtures`).
"""

from repro.analysis.fixtures import sanitize_dsm  # noqa: F401
