"""Suite-wide fixtures.

``sanitize_dsm`` is inert by default; run ``REPRO_SANITIZE=1 pytest``
to attach the happens-before race classifier to every DSM built in any
test and fail on consistency-invariant violations (see
:mod:`repro.analysis.fixtures`).

The scenario builders (``island_cfg`` / ``run_island`` /
``golden_island``) are the shared way tests construct island-GA runs —
one place owns the deme-count / migration-topology / fabric
parametrization, so a new machine knob means one fixture edit, not a
sweep over copy-pasted ``IslandGaConfig`` literals.
"""

import pytest

from repro.analysis.fixtures import sanitize_dsm  # noqa: F401


def build_island_cfg(
    mode=None,
    age=0,
    demes=3,
    gens=25,
    seed=4,
    topology="all",
    fabric=None,
    hw_multicast=False,
    radix=4,
    **kw,
):
    """One island-GA scenario.

    ``fabric=None`` keeps the machine the config's default (shared
    Ethernet unless the caller passes ``machine=``); naming a switched
    fabric ("single" / "hierarchical" / "fat-tree") builds the matching
    switched machine.  ``topology`` selects the migration wiring
    (:mod:`repro.ga.topology`).
    """
    from repro.cluster.machine import MachineConfig
    from repro.core.coherence import CoherenceMode
    from repro.ga import IslandGaConfig, get_function
    from repro.network.switched import SwitchedConfig

    if mode is None:
        mode = CoherenceMode.NON_STRICT
    if fabric is not None or hw_multicast:
        assert "machine" not in kw, "pass fabric= or machine=, not both"
        kw["machine"] = MachineConfig(
            n_nodes=demes,
            seed=seed,
            interconnect="switched",
            switched=SwitchedConfig(fabric=fabric or "single", radix=radix),
            hw_multicast=hw_multicast,
        )
    return IslandGaConfig(
        fn=kw.pop("fn", get_function(1)),
        n_demes=demes,
        mode=mode,
        age=age,
        n_generations=gens,
        seed=seed,
        topology=topology,
        **kw,
    )


@pytest.fixture
def island_cfg():
    """Factory fixture: :func:`build_island_cfg`."""
    return build_island_cfg


@pytest.fixture
def run_island():
    """Factory fixture: build and run one island-GA scenario."""
    from repro.ga import run_island_ga

    def _run(mode=None, shards=1, **kw):
        return run_island_ga(build_island_cfg(mode=mode, **kw), shards=shards)

    return _run


@pytest.fixture
def golden_island():
    """Factory fixture: the GOLDEN ``ga_result`` recipe.

    The exact configuration whose digest is pinned in
    ``repro.bench.determinism.GOLDEN`` (optionally with a fault plan) —
    tests of the parallel kernel and the chaos matrix both anchor on it.
    """
    from repro.core.coherence import CoherenceMode
    from repro.experiments.config import Scale
    from repro.experiments.speedup import machine_for

    def _build(faults=None):
        return build_island_cfg(
            mode=CoherenceMode.NON_STRICT,
            age=10,
            demes=2,
            gens=40,
            seed=7,
            machine=machine_for(Scale.smoke(), 2, 7, faults=faults),
        )

    return _build
