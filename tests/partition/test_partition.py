"""Partitioner tests: metrics, greedy, KL, multilevel, k-way, properties."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition import (
    balance,
    edge_cut,
    greedy_bisection,
    kl_refine,
    multilevel_bisection,
    partition,
    validate_partition,
)
from repro.partition.kl import kl_bisection
from repro.partition.multilevel import best_of


def two_cliques(n=10, bridges=1):
    """Two n-cliques joined by `bridges` edges: optimal cut == bridges."""
    g = nx.Graph()
    g.add_edges_from(
        (i, j) for i in range(n) for j in range(i + 1, n)
    )
    g.add_edges_from(
        (i + n, j + n) for i in range(n) for j in range(i + 1, n)
    )
    for b in range(bridges):
        g.add_edge(b, n + b)
    return g


class TestMetrics:
    def test_edge_cut_counts_cross_edges(self):
        g = nx.path_graph(4)  # 0-1-2-3
        parts = {0: 0, 1: 0, 2: 1, 3: 1}
        assert edge_cut(g, parts) == 1

    def test_edge_cut_respects_weights(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=5.0)
        assert edge_cut(g, {0: 0, 1: 1}) == 5.0

    def test_balance_perfect_and_skewed(self):
        g = nx.empty_graph(4)
        assert balance(g, {0: 0, 1: 0, 2: 1, 3: 1}) == 1.0
        assert balance(g, {0: 0, 1: 0, 2: 0, 3: 1}) == pytest.approx(1.5)

    def test_validate_rejects_mismatch(self):
        g = nx.path_graph(3)
        with pytest.raises(ValueError):
            edge_cut(g, {0: 0, 1: 1})


class TestGreedy:
    def test_two_cliques_found(self):
        g = two_cliques(8)
        parts = greedy_bisection(g)
        assert edge_cut(g, parts) <= 3
        assert balance(g, parts) <= 1.1

    def test_trivial_graphs(self):
        assert greedy_bisection(nx.Graph()) == {}
        g1 = nx.Graph()
        g1.add_node("a")
        assert greedy_bisection(g1) == {"a": 0}

    def test_disconnected_graph_covered(self):
        g = nx.disjoint_union(nx.path_graph(3), nx.path_graph(3))
        parts = greedy_bisection(g)
        assert validate_partition(g, parts) == 2

    def test_deterministic(self):
        g = nx.random_regular_graph(4, 30, seed=1)
        assert greedy_bisection(g) == greedy_bisection(g)


class TestKL:
    def test_never_worsens_cut(self):
        g = nx.random_regular_graph(4, 40, seed=2)
        nodes = sorted(g.nodes)
        initial = {v: (0 if i < 20 else 1) for i, v in enumerate(nodes)}
        refined = kl_refine(g, initial)
        assert edge_cut(g, refined) <= edge_cut(g, initial)

    def test_improves_bad_split_of_cliques(self):
        g = two_cliques(8)
        # worst-case initial: half of each clique on each side
        initial = {v: v % 2 for v in g.nodes}
        refined = kl_refine(g, initial)
        assert edge_cut(g, refined) <= 1

    def test_preserves_side_sizes(self):
        g = nx.random_regular_graph(4, 20, seed=3)
        initial = {v: (0 if v < 10 else 1) for v in g.nodes}
        refined = kl_refine(g, initial)
        assert sum(refined.values()) == sum(initial.values())

    def test_rejects_kway_input(self):
        g = nx.path_graph(3)
        with pytest.raises(ValueError):
            kl_refine(g, {0: 0, 1: 1, 2: 2})

    def test_single_part_is_noop(self):
        g = nx.path_graph(3)
        parts = {0: 0, 1: 0, 2: 0}
        assert kl_refine(g, parts) == parts

    def test_kl_bisection_default_start(self):
        g = two_cliques(6)
        parts = kl_bisection(g)
        assert edge_cut(g, parts) <= 2


class TestMultilevel:
    def test_two_cliques_optimal(self):
        g = two_cliques(12, bridges=2)
        parts = multilevel_bisection(g, seed=0)
        assert edge_cut(g, parts) == 2
        assert balance(g, parts) == 1.0

    def test_grid_cut_reasonable(self):
        g = nx.grid_2d_graph(8, 8)
        parts = multilevel_bisection(g, seed=1)
        # optimal cut of an 8x8 grid bisection is 8
        assert edge_cut(g, parts) <= 12
        assert balance(g, parts) <= 1.15

    def test_kway_partition_counts(self):
        g = nx.grid_2d_graph(8, 8)
        parts = partition(g, 4, seed=0)
        assert validate_partition(g, parts) == 4
        sizes = [list(parts.values()).count(p) for p in range(4)]
        assert max(sizes) - min(sizes) <= 4

    def test_k1_and_invalid_k(self):
        g = nx.path_graph(5)
        assert set(partition(g, 1).values()) == {0}
        with pytest.raises(ValueError):
            partition(g, 0)
        with pytest.raises(ValueError):
            partition(g, 10)

    def test_best_of_not_worse_than_single(self):
        g = nx.random_regular_graph(6, 50, seed=5)
        single = edge_cut(g, partition(g, 2, seed=0))
        multi = edge_cut(g, best_of(g, 2, tries=4, seed=0))
        assert multi <= single

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=60),
        p=st.floats(min_value=0.05, max_value=0.4),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_valid_balanced_bisection(self, n, p, seed):
        g = nx.gnp_random_graph(n, p, seed=seed)
        parts = multilevel_bisection(g, seed=seed)
        assert validate_partition(g, parts) in (1, 2)
        sizes = [list(parts.values()).count(q) for q in sorted(set(parts.values()))]
        assert max(sizes) - min(sizes) <= max(2, n // 4)
        # cut is never worse than cutting every edge
        assert edge_cut(g, parts) <= g.number_of_edges()
