"""Unit tests for the event queue: ordering, cancellation, determinism."""

import pytest

from repro.sim.events import Event, EventQueue, PRIORITY_LATE, PRIORITY_NORMAL


def test_pop_orders_by_time():
    q = EventQueue()
    fired = []
    q.push(3.0, fired.append, ("c",))
    q.push(1.0, fired.append, ("a",))
    q.push(2.0, fired.append, ("b",))
    while (ev := q.pop()) is not None:
        ev.fn(*ev.args)
    assert fired == ["a", "b", "c"]


def test_same_time_pops_in_push_order():
    q = EventQueue()
    order = []
    for i in range(10):
        q.push(1.0, order.append, (i,))
    while (ev := q.pop()) is not None:
        ev.fn(*ev.args)
    assert order == list(range(10))


def test_priority_breaks_ties_before_seq():
    q = EventQueue()
    order = []
    q.push(1.0, order.append, ("late",), priority=PRIORITY_LATE)
    q.push(1.0, order.append, ("normal",), priority=PRIORITY_NORMAL)
    while (ev := q.pop()) is not None:
        ev.fn(*ev.args)
    assert order == ["normal", "late"]


def test_cancelled_event_is_skipped():
    q = EventQueue()
    fired = []
    ev = q.push(1.0, fired.append, ("x",))
    q.push(2.0, fired.append, ("y",))
    q.cancel(ev)
    assert len(q) == 1
    while (e := q.pop()) is not None:
        e.fn(*e.args)
    assert fired == ["y"]


def test_cancel_is_idempotent():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    q.cancel(ev)
    q.cancel(ev)
    assert len(q) == 0


def test_len_counts_only_live_events():
    q = EventQueue()
    evs = [q.push(float(i), lambda: None) for i in range(5)]
    assert len(q) == 5
    q.cancel(evs[2])
    assert len(q) == 4


def test_peek_time_skips_cancelled_head():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.cancel(ev)
    assert q.peek_time() == 2.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    q.cancel(ev)
    assert q.peek_time() is None


def test_nan_time_rejected():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.push(float("nan"), lambda: None)


def test_event_cancel_method_marks_flag():
    ev = Event(time=0.0, priority=0, seq=0, fn=lambda: None)
    assert not ev.cancelled
    ev.cancel()
    assert ev.cancelled


def test_pop_empty_returns_none():
    assert EventQueue().pop() is None
