"""Kernel behaviour: process stepping, blocking, joins, budgets, deadlock."""

import pytest

from repro.sim import (
    Compute,
    DeadlockError,
    Join,
    Kernel,
    ProcessFailure,
    ProcessState,
    Signal,
    SimulationLimitError,
    WaitAny,
    WaitSignal,
    Yield,
)


def test_compute_advances_clock():
    k = Kernel()

    def proc():
        yield Compute(2.5)
        yield Compute(0.5)
        return k.now

    h = k.spawn(proc())
    k.run()
    assert h.result == pytest.approx(3.0)
    assert k.now == pytest.approx(3.0)


def test_compute_accumulates_busy_time():
    k = Kernel()

    def proc():
        yield Compute(1.0)
        yield Compute(2.0)

    h = k.spawn(proc())
    k.run()
    assert h.busy_time == pytest.approx(3.0)


def test_zero_compute_is_legal():
    k = Kernel()

    def proc():
        yield Compute(0.0)
        return "done"

    h = k.spawn(proc())
    k.run()
    assert h.result == "done"


def test_negative_compute_rejected():
    with pytest.raises(ValueError):
        Compute(-1.0)


def test_signal_wakes_waiter_at_fire_time():
    k = Kernel()
    sig = Signal("s")
    times = {}

    def waiter():
        yield WaitSignal(sig)
        times["woke"] = k.now

    def firer():
        yield Compute(4.0)
        sig.fire()

    k.spawn(waiter())
    k.spawn(firer())
    k.run()
    assert times["woke"] == pytest.approx(4.0)


def test_signal_fire_with_no_waiters_is_noop():
    sig = Signal("s")
    sig.fire()  # must not raise
    assert sig.waiter_count == 0


def test_signal_wakes_waiters_fifo():
    k = Kernel()
    sig = Signal("s")
    order = []

    def waiter(i):
        yield WaitSignal(sig)
        order.append(i)

    for i in range(5):
        k.spawn(waiter(i))

    def firer():
        yield Compute(1.0)
        sig.fire()

    k.spawn(firer())
    k.run()
    assert order == [0, 1, 2, 3, 4]


def test_wait_any_resumes_with_fired_signal():
    k = Kernel()
    a, b = Signal("a"), Signal("b")
    got = {}

    def waiter():
        fired = yield WaitAny([a, b])
        got["sig"] = fired

    def firer():
        yield Compute(1.0)
        b.fire()

    k.spawn(waiter())
    k.spawn(firer())
    k.run()
    assert got["sig"] is b
    # waiter must have been detached from the signal it did NOT receive
    assert a.waiter_count == 0


def test_wait_any_requires_signals():
    with pytest.raises(ValueError):
        WaitAny([])


def test_join_returns_target_result():
    k = Kernel()

    def worker():
        yield Compute(2.0)
        return 99

    def joiner(h):
        result = yield Join(h)
        return (k.now, result)

    hw = k.spawn(worker())
    hj = k.spawn(joiner(hw))
    k.run()
    assert hj.result == (pytest.approx(2.0), 99)


def test_join_on_already_done_process():
    k = Kernel()

    def worker():
        return 7
        yield  # pragma: no cover - makes it a generator

    def joiner(h):
        yield Compute(5.0)
        result = yield Join(h)
        return result

    hw = k.spawn(worker())
    hj = k.spawn(joiner(hw))
    k.run()
    assert hj.result == 7


def test_yield_defers_within_same_instant():
    k = Kernel()
    order = []

    def early():
        yield Yield()
        order.append("early-after-yield")

    def other():
        order.append("other")
        yield Compute(0.0)

    k.spawn(early())
    k.spawn(other())
    k.run()
    assert order.index("other") < order.index("early-after-yield")


def test_deadlock_detected_and_names_process():
    k = Kernel()
    sig = Signal("never")

    def stuck():
        yield WaitSignal(sig)

    k.spawn(stuck(), name="reader-3")
    with pytest.raises(DeadlockError) as exc:
        k.run()
    assert "reader-3" in str(exc.value)


def test_process_exception_wrapped_and_chained():
    k = Kernel()

    def bad():
        yield Compute(1.0)
        raise RuntimeError("boom")

    k.spawn(bad(), name="bad")
    with pytest.raises(ProcessFailure) as exc:
        k.run()
    assert isinstance(exc.value.original, RuntimeError)
    assert exc.value.proc_name == "bad"


def test_time_budget_enforced():
    k = Kernel()

    def forever():
        while True:
            yield Compute(1.0)

    k.spawn(forever())
    with pytest.raises(SimulationLimitError) as exc:
        k.run(until=10.0)
    assert exc.value.kind == "simulated-time"
    assert k.now <= 10.0


def test_event_budget_enforced():
    k = Kernel()

    def forever():
        while True:
            yield Compute(1.0)

    k.spawn(forever())
    with pytest.raises(SimulationLimitError) as exc:
        k.run(max_events=50)
    assert exc.value.kind == "event-count"


def test_stop_when_predicate_stops_cleanly():
    k = Kernel()
    ticks = []

    def ticker():
        while True:
            yield Compute(1.0)
            ticks.append(k.now)

    k.spawn(ticker())
    k.run(stop_when=lambda: len(ticks) >= 3)
    assert len(ticks) == 3


def test_run_until_done_waits_for_all():
    k = Kernel()

    def worker(d):
        yield Compute(d)
        return d

    hs = [k.spawn(worker(float(i + 1))) for i in range(3)]

    def background():
        while True:
            yield Compute(0.5)

    k.spawn(background())
    k.run_until_done(hs, until=100.0)
    assert all(h.done for h in hs)
    assert k.now == pytest.approx(3.0)


def test_schedule_in_past_rejected():
    k = Kernel()
    with pytest.raises(ValueError):
        k.schedule(-1.0, lambda: None)
    k.schedule(1.0, lambda: None)
    k.run()
    with pytest.raises(ValueError):
        k.schedule_at(0.5, lambda: None)


def test_unsupported_request_raises_typeerror():
    k = Kernel()

    def bad():
        yield "not-a-request"

    k.spawn(bad())
    with pytest.raises(TypeError):
        k.run()


def test_process_states_progression():
    k = Kernel()
    sig = Signal("s")

    def proc():
        yield Compute(1.0)
        yield WaitSignal(sig)
        return "ok"

    h = k.spawn(proc())
    assert h.state is ProcessState.READY
    k.run(stop_when=lambda: h.state is ProcessState.BLOCKED)
    assert h.state is ProcessState.BLOCKED

    def firer():
        sig.fire()
        return
        yield  # pragma: no cover

    k.spawn(firer())
    k.run()
    assert h.state is ProcessState.DONE
    assert h.result == "ok"


def test_spawned_generator_return_value_captured():
    k = Kernel()

    def proc():
        yield Compute(0.1)
        return {"answer": 42}

    h = k.spawn(proc())
    k.run()
    assert h.result == {"answer": 42}


def test_stats_shape():
    k = Kernel()
    s = k.stats()
    assert set(s) == {"now", "events_executed", "processes", "pending_events"}


def test_completion_counter_tracks_terminations():
    from repro.sim import CompletionCounter

    k = Kernel()

    def worker(d):
        yield Compute(d)

    hs = [k.spawn(worker(float(i + 1))) for i in range(3)]
    counter = CompletionCounter(hs)
    assert counter.remaining == 3
    k.run(stop_when=lambda: counter.remaining == 2)
    assert counter.remaining == 2
    k.run()
    assert counter.all_done()


def test_completion_counter_counts_failures_and_skips_done():
    from repro.sim import CompletionCounter

    k = Kernel()

    def ok():
        yield Compute(1.0)

    def bad():
        yield Compute(2.0)
        raise RuntimeError("boom")

    h_ok = k.spawn(ok())
    h_bad = k.spawn(bad())
    k.run(stop_when=lambda: h_ok.done)  # h_ok DONE before the counter attaches
    counter = CompletionCounter([h_ok, h_bad])
    assert counter.remaining == 1
    with pytest.raises(ProcessFailure):
        k.run()
    assert counter.all_done()


def test_run_until_done_empty_handles_is_noop():
    k = Kernel()
    k.schedule(1.0, lambda: None)
    k.run_until_done([])
    assert k.now == 0.0  # nothing to wait for: run() is skipped entirely
