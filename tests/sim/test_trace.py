"""Tracer behaviour and whole-run determinism regression."""

from repro.sim import Compute, Kernel, Signal, Tracer, WaitSignal


def _workload(kernel):
    sig = Signal("ready")

    def producer():
        for _ in range(5):
            yield Compute(0.25)
            sig.fire()

    def consumer():
        for _ in range(5):
            yield WaitSignal(sig)

    kernel.spawn(producer(), name="p")
    kernel.spawn(consumer(), name="c")


def test_tracer_records_events():
    tracer = Tracer()
    k = Kernel(seed=0, tracer=tracer)
    _workload(k)
    k.run()
    assert len(tracer) > 0
    assert all(r.time >= 0 for r in tracer.records)


def test_identical_seeds_produce_identical_traces():
    traces = []
    for _ in range(2):
        tracer = Tracer()
        k = Kernel(seed=123, tracer=tracer)
        _workload(k)
        k.run()
        traces.append([(r.time, r.label) for r in tracer.records])
    assert traces[0] == traces[1]


def test_max_records_bounds_memory():
    tracer = Tracer(max_records=3)
    k = Kernel(seed=0, tracer=tracer)
    _workload(k)
    k.run()
    assert len(tracer) == 3
    assert tracer.dropped > 0


def test_mark_appends_custom_label():
    tracer = Tracer()
    tracer.mark(1.5, "custom")
    assert tracer.labels() == ["custom"]
    assert tracer.records[0].time == 1.5
