"""Determinism regression suite for the kernel fast path.

The fast lane, type-tag dispatch and no-tracer run loop must be
*bit-identical* to the straightforward implementation: same-seed runs
produce the same trace digest, and the digest matches a checked-in
golden value so silent reorderings can't creep in.
"""

import pytest

from repro.bench.determinism import GOLDEN, kernel_trace_digest
from repro.bench.micro import build_kernel_workload
from repro.sim import (
    Compute,
    Kernel,
    Signal,
    Tracer,
    WaitSignal,
    Yield,
)
from repro.sim.events import PRIORITY_LATE


def test_same_seed_runs_have_identical_trace_digests():
    digests = []
    for _ in range(2):
        tracer = Tracer()
        kernel = build_kernel_workload(n_workers=8, n_steps=40, tracer=tracer)
        kernel.run()
        digests.append(tracer.digest())
    assert digests[0] == digests[1]


def test_kernel_trace_digest_matches_golden():
    assert kernel_trace_digest() == GOLDEN["kernel_trace"]


def test_traced_and_untraced_runs_agree():
    """The no-tracer fast loop must execute the same schedule."""
    tracer = Tracer()
    traced = build_kernel_workload(n_workers=6, n_steps=24, tracer=tracer)
    traced.run()
    untraced = build_kernel_workload(n_workers=6, n_steps=24)
    untraced.run()
    assert untraced.now == traced.now
    assert untraced.events_executed == traced.events_executed


def test_fast_lane_preserves_fifo_among_immediates():
    kernel = Kernel()
    order = []
    for i in range(5):
        kernel.schedule(0.0, order.append, i)
    kernel.run()
    assert order == [0, 1, 2, 3, 4]


def test_fast_lane_respects_priority_against_heap():
    """A PRIORITY_LATE heap event at t=now runs after same-time immediates."""
    kernel = Kernel()
    order = []
    kernel.queue.push(0.0, order.append, ("late",), priority=PRIORITY_LATE)
    kernel.schedule(0.0, order.append, "immediate")
    kernel.run()
    assert order == ["immediate", "late"]


def test_fast_lane_drains_before_clock_advances():
    kernel = Kernel()
    order = []

    def at_t1():
        order.append("t1")

    def immediate_spawner():
        kernel.schedule(0.0, order.append, "child")
        order.append("parent")

    kernel.queue.push(1.0, at_t1, ())
    kernel.schedule(0.0, immediate_spawner)
    kernel.run()
    assert order == ["parent", "child", "t1"]


def test_same_instant_process_interleaving_is_seeded_only():
    """Two same-seed GA-ish process soups step identically."""

    def soup(seed: int) -> list[str]:
        kernel = Kernel(seed=seed)
        log: list[str] = []
        sig = Signal("s")
        jitter = kernel.rng.get("jitter")

        def chatty(name: str):
            for k in range(6):
                yield Compute(0.0 if k % 2 else 0.001 * jitter.random())
                log.append(f"{name}:{k}")
                if k == 2:
                    yield Yield()

        def waiter():
            yield WaitSignal(sig)
            log.append("woke")

        kernel.spawn(waiter(), name="w")
        for n in ("a", "b", "c"):
            kernel.spawn(chatty(n), name=n)
        kernel.schedule(0.01, sig.fire)
        kernel.run()
        return log

    assert soup(3) == soup(3)
    assert soup(3) != soup(4)  # the jitter actually reaches the schedule


def test_time_order_violation_raises_runtime_error():
    """Satellite: the bare assert became an explicit RuntimeError."""
    kernel = Kernel()
    kernel.queue.push(1.0, lambda: None, ())
    kernel.now = 5.0  # simulate a corrupted clock
    with pytest.raises(RuntimeError, match="behind the clock"):
        kernel.run()


def test_time_order_violation_raises_in_traced_loop_too():
    kernel = Kernel(tracer=Tracer())
    kernel.queue.push(1.0, lambda: None, ())
    kernel.now = 5.0
    with pytest.raises(RuntimeError, match="behind the clock"):
        kernel.run()
