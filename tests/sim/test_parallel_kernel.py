"""Bounded-lag parallel kernel: bit-identity, planning, trace merge.

The tentpole promise of :mod:`repro.sim.parallel` is that a sharded run
is *bit-identical* to the serial kernel — same GOLDEN digest, same
CHAOS digest under faults, same JSONL trace.  These tests pin that at
shards ∈ {1, 2, 4} and exercise the planning/merge plumbing in
isolation.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.bench.determinism import GOLDEN
from repro.core.coherence import CoherenceMode
from repro.experiments.config import Scale
from repro.experiments.speedup import machine_for
from repro.ga.functions import get_function
from repro.ga.island import IslandGaConfig, run_island_ga
from repro.ga.sharded import ga_chaos_digest, ga_digest, run_island_ga_sharded
from repro.sim.parallel import ga_comm_graph, lookahead_of, plan_shards


# ---------------------------------------------------------------------------
# planning


def test_lookahead_positive_for_both_interconnects():
    from repro.cluster.machine import MachineConfig

    eth = lookahead_of(MachineConfig(n_nodes=2))
    sw = lookahead_of(MachineConfig(n_nodes=2, interconnect="switch"))
    assert eth > 0 and sw > 0


def test_plan_shards_balanced_and_deterministic():
    g = ga_comm_graph(4, 1000)
    p1 = plan_shards(g, 2, lookahead=1e-3, seed=0)
    p2 = plan_shards(g, 2, lookahead=1e-3, seed=0)
    assert p1 == p2
    assert p1.n_shards == 2
    assert sorted(len(p1.owned_by(k)) for k in range(2)) == [2, 2]
    # labels normalised in unit order: unit 0 always lands in shard 0
    assert p1.owner[0] == 0


def test_plan_shards_clamps_to_unit_count():
    g = ga_comm_graph(2, 100)
    p = plan_shards(g, 8, lookahead=1e-3)
    assert p.n_shards == 2


def test_plan_rejects_bad_labels():
    import networkx as nx

    g = nx.Graph()
    g.add_edge(3, 5)
    with pytest.raises(ValueError, match="0..n-1"):
        plan_shards(g, 2, lookahead=1e-3)


def test_window_of_quantises_by_lookahead():
    g = ga_comm_graph(2, 100)
    p = plan_shards(g, 2, lookahead=0.5)
    assert p.window_of(0.0) == 0
    assert p.window_of(0.49) == 0
    assert p.window_of(1.7) == 3


# ---------------------------------------------------------------------------
# bit-identity (the tentpole acceptance)


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_golden_digest_unchanged(golden_island, shards):
    result = run_island_ga(golden_island(), shards=shards)
    assert ga_digest(result) == GOLDEN["ga_result"]
    info = result.metrics.get("parallel", {})
    if shards > 1:
        # 2 demes: shards=4 clamps to 2 workers but still runs sharded
        assert info.get("sharded") or info.get("fallback")


def test_sharded_run_really_used_workers(golden_island):
    result = run_island_ga(golden_island(), shards=2)
    info = result.metrics["parallel"]
    if not info["sharded"]:  # pragma: no cover - platform without procs
        pytest.skip(f"worker processes unavailable: {info['fallback']}")
    assert info["shards"] == 2
    assert info["records_routed"] > 0
    assert sorted(info["owner"]) == [0, 1]


@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_chaos_digest_unchanged(golden_island, shards):
    from repro.faults.chaos import CHAOS_GOLDEN, _mk

    plan = _mk(7, duplicate=0.05, delay=0.05, reorder=0.05)
    result = run_island_ga(golden_island(faults=plan), shards=shards)
    info = result.metrics["parallel"]
    if not info["sharded"]:  # pragma: no cover - platform without procs
        pytest.skip(f"worker processes unavailable: {info['fallback']}")
    digest = ga_chaos_digest(result, info["fault_log"])
    assert digest == CHAOS_GOLDEN["ga-lossless-chaos"]


def test_noisy_function_falls_back_to_serial(golden_island):
    cfg = replace(golden_island(), fn=get_function(4), n_generations=5)
    result = run_island_ga(cfg, shards=2)
    info = result.metrics["parallel"]
    assert not info["sharded"]
    assert "noisy" in info["fallback"]


def test_instrument_hook_falls_back_to_serial(golden_island):
    seen = []
    result = run_island_ga(golden_island(), instrument=seen.append, shards=2)
    info = result.metrics["parallel"]
    assert not info["sharded"]
    assert "instrument" in info["fallback"]
    assert seen  # the hook still ran, serially
    assert ga_digest(result) == GOLDEN["ga_result"]


def test_single_deme_falls_back_to_serial():
    cfg = IslandGaConfig(
        fn=get_function(1),
        n_demes=1,
        mode=CoherenceMode.NON_STRICT,
        age=10,
        n_generations=5,
        seed=7,
    )
    result = run_island_ga(cfg, shards=2)
    assert not result.metrics["parallel"]["sharded"]


# ---------------------------------------------------------------------------
# traced runs and the deterministic merge


def test_traced_sharded_run_merges_and_validates(tmp_path):
    from repro.obs.schema import validate_trace

    mcfg = replace(machine_for(Scale.smoke(), 4, 11, load_bps=1e6), trace=True)
    cfg = IslandGaConfig(
        fn=get_function(1),
        n_demes=4,
        mode=CoherenceMode.NON_STRICT,
        age=10,
        n_generations=15,
        seed=11,
        machine=mcfg,
    )
    serial = run_island_ga(cfg)
    trace_path = str(tmp_path / "merged.jsonl")
    sharded = run_island_ga_sharded(cfg, shards=2, trace_path=trace_path)
    info = sharded.metrics["parallel"]
    if not info["sharded"]:  # pragma: no cover - platform without procs
        pytest.skip(f"worker processes unavailable: {info['fallback']}")
    assert ga_digest(sharded) == ga_digest(serial)

    assert info["merged_trace"] == trace_path
    verdict = validate_trace(trace_path, strict=True)
    assert verdict["ok"], verdict["errors"][:5]

    lines = [json.loads(ln) for ln in open(trace_path, encoding="utf-8")]
    kinds = {e["kind"] for e in lines}
    assert "par.window" in kinds
    assert lines[-1]["kind"] == "trace.meta"
    assert lines[-1]["shards"] == 2
    # the window spans carry the shard id and wall-wait accounting
    span = next(e for e in lines if e["kind"] == "par.window")
    assert span["shard"] in (0, 1)
    assert span["wall_wait_s"] >= 0.0


def test_window_span_events_sorted_and_schema_shaped():
    from repro.sim.parallel import plan_shards
    from repro.sim.parallel.records import ShardOutcome
    from repro.sim.parallel.trace import window_span_events

    plan = plan_shards(ga_comm_graph(2, 100), 2, lookahead=0.5)
    outcomes = [
        ShardOutcome(shard_id=1, digest="d", window_spans=[(0, 0.0, 0.1, 2)]),
        ShardOutcome(
            shard_id=0, digest="d", window_spans=[(1, 1.0, 0.2, 3), (0, 0.0, 0.0, 0)]
        ),
    ]
    events = window_span_events(outcomes, plan)
    assert [e["t"] for e in events] == sorted(e["t"] for e in events)
    assert events[0]["shard"] == 0  # tie on t broken by shard id
    assert all(e["kind"] == "par.window" and e["node"] == -1 for e in events)
    assert events[-1]["window"] == plan.window_of(1.0)


def test_merge_rejects_divergent_shard_traces(tmp_path):
    from repro.sim.parallel import merge_shard_traces, plan_shards
    from repro.sim.parallel.records import ShardOutcome

    plan = plan_shards(ga_comm_graph(2, 100), 2, lookahead=0.5)
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    a.write_text('{"t": 0.0, "kind": "x", "node": 0}\n')
    b.write_text('{"t": 0.0, "kind": "y", "node": 0}\n')
    outcomes = [
        ShardOutcome(shard_id=0, digest="d", trace_path=str(a)),
        ShardOutcome(shard_id=1, digest="d", trace_path=str(b)),
    ]
    with pytest.raises(RuntimeError, match="trace divergence"):
        merge_shard_traces(outcomes, str(tmp_path / "m.jsonl"), plan)


# ---------------------------------------------------------------------------
# RecordFeed protocol unit tests (no processes: a loopback double)


class _LoopbackConn:
    """Test double for one end of a coordinator pipe."""

    def __init__(self):
        self.sent = []
        self.inbox = []

    def send(self, msg):
        self.sent.append(msg)

    def poll(self, _timeout=0):
        return bool(self.inbox)

    def recv(self):
        if not self.inbox:
            raise EOFError
        return self.inbox.pop(0)


def _feed(lag_bound=10.0):
    from repro.sim.parallel.channel import RecordFeed

    plan = plan_shards(ga_comm_graph(2, 100), 2, lookahead=0.5, lag_bound=lag_bound)
    conn = _LoopbackConn()
    return RecordFeed(conn, 0, plan), conn


def test_feed_publish_sends_record_and_clock_beacon():
    from repro.sim.parallel.channel import CLK, REC
    from repro.sim.parallel.records import GenRecord

    feed, conn = _feed()
    feed.bind_clock(lambda: 1.25)
    rec = GenRecord("evolve", 0, 3, 0.1, 2.0, 3.0)
    feed.publish(rec)
    assert conn.sent[0] == (REC, 0, rec)
    assert (CLK, 0, 1.25) in conn.sent


def test_feed_consume_buffers_and_orders_records():
    from repro.sim.parallel.channel import REC
    from repro.sim.parallel.records import GenRecord

    feed, conn = _feed()
    r1 = GenRecord("start", 1, 0)
    r2 = GenRecord("evolve", 1, 1)
    conn.inbox += [(REC, r1), (REC, r2)]
    assert feed.consume(1) is r1
    assert feed.consume(1) is r2
    assert feed.stats()["records_in"] == 2


def test_feed_floor_updates_bump_epoch():
    from repro.sim.parallel.channel import FLOOR, REC
    from repro.sim.parallel.records import GenRecord

    feed, conn = _feed()
    conn.inbox += [(FLOOR, 2.5), (REC, GenRecord("start", 1, 0))]
    feed.consume(1)
    assert feed.floor == 2.5
    assert feed.epoch == 1
    # stale floor (<= current) is ignored
    conn.inbox += [(FLOOR, 1.0), (REC, GenRecord("evolve", 1, 1))]
    feed.consume(1)
    assert feed.floor == 2.5
    assert feed.epoch == 1


def test_feed_gate_blocks_until_floor_advances():
    from repro.sim.parallel.channel import FLOOR
    from repro.sim.parallel.records import GenRecord

    feed, conn = _feed(lag_bound=1.0)
    feed.bind_clock(lambda: 5.0)  # clock 5.0 > floor 0.0 + lag 1.0 -> gated
    # deliver the floor only on a *blocking* recv (poll stays false), so
    # the gate loop really takes the wait path before being released
    conn.poll = lambda _timeout=0: False
    conn.inbox.append((FLOOR, 4.5))  # 5.0 <= 4.5 + 1.0 -> released
    feed.publish(GenRecord("start", 0, 0))
    assert feed.floor == 4.5
    assert feed.stats()["gate_wait_s"] >= 0.0
    assert feed.spans()  # the wait was attributed to a window span


def test_feed_closed_channel_raises_runtime_error():
    from repro.sim.parallel.records import GenRecord

    feed, conn = _feed(lag_bound=0.1)
    feed.bind_clock(lambda: 99.0)
    with pytest.raises(RuntimeError, match="coordinator channel closed"):
        feed.publish(GenRecord("start", 0, 0))


def test_ghost_divergence_raises(golden_island):
    from repro.ga.sharded import _GhostDeme
    from repro.sim.parallel.channel import REC
    from repro.sim.parallel.records import GenRecord

    feed, conn = _feed()
    ghost = _GhostDeme(golden_island(), 1, feed)
    conn.inbox.append((REC, GenRecord("evolve", 1, 7)))
    with pytest.raises(RuntimeError, match="diverged"):
        ghost.start()  # expected ("start", 0)
