"""RNG registry: reproducibility, stream independence, name stability."""

import numpy as np

from repro.sim.rng import RngRegistry, stream_seed


def test_same_seed_same_stream():
    a = RngRegistry(7).get("ga.node0")
    b = RngRegistry(7).get("ga.node0")
    assert np.array_equal(a.random(100), b.random(100))


def test_different_names_give_different_streams():
    reg = RngRegistry(7)
    a = reg.get("ga.node0").random(50)
    b = reg.get("ga.node1").random(50)
    assert not np.array_equal(a, b)


def test_different_root_seeds_differ():
    a = RngRegistry(1).get("x").random(50)
    b = RngRegistry(2).get("x").random(50)
    assert not np.array_equal(a, b)


def test_stream_unaffected_by_other_stream_creation_order():
    """Keyed-by-name spawning: creating extra streams must not perturb others."""
    reg1 = RngRegistry(3)
    v1 = reg1.get("target").random(10)

    reg2 = RngRegistry(3)
    reg2.get("decoy-a").random(5)
    reg2.get("decoy-b").random(5)
    v2 = reg2.get("target").random(10)
    assert np.array_equal(v1, v2)


def test_get_returns_same_generator_object():
    reg = RngRegistry(0)
    assert reg.get("s") is reg.get("s")


def test_contains_and_names():
    reg = RngRegistry(0)
    assert "s" not in reg
    reg.get("s")
    reg.get("a")
    assert "s" in reg
    assert reg.names() == ["a", "s"]


def test_stream_seed_is_deterministic_across_calls():
    s1 = stream_seed(11, "eth.backoff")
    s2 = stream_seed(11, "eth.backoff")
    g1 = np.random.default_rng(s1)
    g2 = np.random.default_rng(s2)
    assert np.array_equal(g1.integers(0, 1000, 20), g2.integers(0, 1000, 20))


def test_unicode_stream_names_supported():
    reg = RngRegistry(0)
    gen = reg.get("nœud-0")
    assert 0.0 <= gen.random() < 1.0
