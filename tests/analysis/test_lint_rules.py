"""Per-rule positive/negative coverage for the RPR0xx lint.

Each rule gets at least one snippet it must flag and one adjacent,
legitimate spelling it must NOT flag — over-reach is as much a bug as
under-reach for a CI gate.
"""

import os

import pytest

from repro.analysis.lint import (
    DEFAULT_EXCLUDES,
    Finding,
    format_findings,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.analysis.rules import ALL_RULES

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def codes(source: str) -> set[str]:
    return {f.code for f in lint_source(source)}


# ---------------------------------------------------------------------------
# RPR001 — unseeded randomness
# ---------------------------------------------------------------------------
class TestUnseededRandomness:
    @pytest.mark.parametrize(
        "src",
        [
            "import random\nx = random.random()\n",
            "import random as rnd\nx = rnd.randint(0, 5)\n",
            "from random import shuffle\nshuffle(items)\n",
            "import numpy as np\nx = np.random.rand(3)\n",
            "import numpy as np\nnp.random.seed(42)\n",
            "from numpy import random as npr\nx = npr.normal()\n",
        ],
    )
    def test_flags_global_rng(self, src):
        assert "RPR001" in codes(src)

    @pytest.mark.parametrize(
        "src",
        [
            "import numpy as np\nrng = np.random.default_rng(7)\n",
            "import numpy as np\nss = np.random.SeedSequence(entropy=3)\n",
            "import numpy as np\ng = np.random.Generator(np.random.PCG64(1))\n",
            "import random\nr = random.Random(123)\n",
            # an unrelated module attribute that merely ends in .random
            "x = obj.random.whatever()\n",
        ],
    )
    def test_allows_seeded_constructors(self, src):
        assert "RPR001" not in codes(src)


# ---------------------------------------------------------------------------
# RPR002 — wall-clock reads
# ---------------------------------------------------------------------------
class TestWallClock:
    @pytest.mark.parametrize(
        "src",
        [
            "import time\nt = time.time()\n",
            "import time\nt = time.perf_counter()\n",
            "import time as t\nx = t.monotonic()\n",
            "from time import time\nx = time()\n",
            "import datetime\nnow = datetime.datetime.now()\n",
            "from datetime import datetime\nnow = datetime.utcnow()\n",
        ],
    )
    def test_flags_wall_clock(self, src):
        assert "RPR002" in codes(src)

    @pytest.mark.parametrize(
        "src",
        [
            "now = kernel.now\n",
            "import time\ntime.sleep  # referencing, not a banned call\n",
            "import time\ntime.strftime('%Y')\n",
            "from datetime import timedelta\nd = timedelta(seconds=1)\n",
        ],
    )
    def test_allows_simulated_clock(self, src):
        assert "RPR002" not in codes(src)


# ---------------------------------------------------------------------------
# RPR003 — iteration-order hazards
# ---------------------------------------------------------------------------
class TestIterationOrder:
    @pytest.mark.parametrize(
        "src",
        [
            "for x in {1, 2, 3}:\n    pass\n",
            "for x in set(names):\n    pass\n",
            "for x in frozenset(names):\n    pass\n",
            "ys = [f(x) for x in set(names)]\n",
            "ys = {f(x) for x in {a, b}}\n",
        ],
    )
    def test_flags_set_iteration(self, src):
        assert "RPR003" in codes(src)

    @pytest.mark.parametrize(
        "src",
        [
            "for x in sorted(set(names)):\n    pass\n",
            "for x in sorted({1, 2}):\n    pass\n",
            "for k in mapping:\n    pass\n",  # dict order is insertion order
            "for k, v in mapping.items():\n    pass\n",
            "ok = x in set(names)\n",  # membership test, not iteration
        ],
    )
    def test_allows_sorted_and_dicts(self, src):
        assert "RPR003" not in codes(src)


# ---------------------------------------------------------------------------
# RPR004 — illegal syscall yields
# ---------------------------------------------------------------------------
class TestIllegalYield:
    def test_flags_non_syscall_yield_in_sim_process(self):
        src = (
            "def proc(node, task):\n"
            "    yield Compute(1.0)\n"
            "    yield Frame(src=0, dst=1)\n"
        )
        assert "RPR004" in codes(src)

    def test_allows_pure_syscall_process(self):
        src = (
            "def proc(node, task):\n"
            "    yield Compute(1.0)\n"
            "    yield WaitSignal(sig)\n"
            "    yield Yield()\n"
            "    msg = yield from task.recv()\n"
            "    return msg\n"
        )
        assert "RPR004" not in codes(src)

    def test_ignores_ordinary_data_generators(self):
        # A generator that never yields a syscall isn't a sim process.
        src = (
            "def pairs(items):\n"
            "    for a in items:\n"
            "        yield make_pair(a)\n"
        )
        assert "RPR004" not in codes(src)

    def test_nested_function_yields_not_attributed_to_outer(self):
        src = (
            "def outer(task):\n"
            "    yield Compute(1.0)\n"
            "    def inner(xs):\n"
            "        for x in xs:\n"
            "            yield transform(x)\n"
            "    return inner\n"
        )
        assert "RPR004" not in codes(src)


# ---------------------------------------------------------------------------
# RPR005 — DSM-bypassing mutation
# ---------------------------------------------------------------------------
class TestDsmBypass:
    def test_flags_agebuf_update_outside_dsm(self):
        src = "def hack(dnode, v):\n    dnode.agebuf.update('x', v, 2, 0.0, 0.0)\n"
        assert "RPR005" in codes(src)

    def test_flags_local_store_assignment(self):
        src = "def hack(dnode, v):\n    dnode.local_store['x'] = v\n"
        assert "RPR005" in codes(src)

    def test_flags_copies_assignment(self):
        src = "def hack(buf, v):\n    buf._copies['x'] = v\n"
        assert "RPR005" in codes(src)

    def test_allows_dsm_implementation_classes(self):
        src = (
            "class DsmNode:\n"
            "    def write(self, locn, v):\n"
            "        self.local_store[locn] = v\n"
            "        self.agebuf.update(locn, v, 1, 0.0, 0.0)\n"
            "class AgeBuffer:\n"
            "    def update(self, locn, v):\n"
            "        self._copies[locn] = v\n"
        )
        assert "RPR005" not in codes(src)

    def test_allows_unrelated_update_calls(self):
        src = "def f(d, other):\n    d.update(other)\n    stats.update(other)\n"
        assert "RPR005" not in codes(src)


# ---------------------------------------------------------------------------
# RPR006 — negative Global_Read age
# ---------------------------------------------------------------------------
class TestNegativeAge:
    @pytest.mark.parametrize(
        "src",
        [
            "copy = yield_from(dnode.global_read('x', g, -1))\n",
            "def f(dnode, g):\n    return dnode.global_read('x', g, age=-3)\n",
        ],
    )
    def test_flags_negative_constant(self, src):
        assert "RPR006" in codes(src)

    @pytest.mark.parametrize(
        "src",
        [
            "def f(dnode, g):\n    return dnode.global_read('x', g, 0)\n",
            "def f(dnode, g, age):\n    return dnode.global_read('x', g, age)\n",
            "def f(dnode, g):\n    return dnode.global_read('x', g, age=10)\n",
        ],
    )
    def test_allows_nonnegative_and_dynamic(self, src):
        assert "RPR006" not in codes(src)


# ---------------------------------------------------------------------------
# Engine behaviour
# ---------------------------------------------------------------------------
class TestEngine:
    def test_every_rule_fires_on_bad_fixture(self):
        findings, errors = lint_paths([os.path.join(FIXTURES, "bad_example.py")])
        assert not errors
        fired = {f.code for f in findings}
        assert fired == {r.code for r in ALL_RULES}

    def test_clean_fixture_is_clean(self):
        findings, errors = lint_paths([os.path.join(FIXTURES, "clean_example.py")])
        assert not errors
        assert findings == []

    def test_fixture_dir_excluded_from_directory_walk(self):
        tests_root = os.path.dirname(os.path.dirname(__file__))
        walked = list(iter_python_files([tests_root]))
        assert not any(os.sep + "fixtures" + os.sep in p for p in walked)
        # ...but explicit files bypass the exclude list
        explicit = os.path.join(FIXTURES, "bad_example.py")
        assert list(iter_python_files([explicit])) == [explicit]

    def test_select_restricts_rules(self):
        src = "import time\nimport random\nrandom.random()\ntime.time()\n"
        only_clock = lint_source(src, select=["RPR002"])
        assert {f.code for f in only_clock} == {"RPR002"}

    def test_repo_src_is_lint_clean(self):
        repo_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        findings, errors = lint_paths([os.path.join(repo_root, "src")])
        assert not errors
        assert findings == [], format_findings(findings)

    def test_findings_have_location_and_fixit(self):
        findings = lint_source("import time\nt = time.time()\n", path="mod.py")
        assert len(findings) == 1
        f = findings[0]
        assert isinstance(f, Finding)
        assert (f.path, f.line) == ("mod.py", 2)
        assert f.fixit
        assert "mod.py:2:" in f.format()
        assert f.to_dict()["code"] == "RPR002"

    def test_json_output_shape(self):
        import json

        findings = lint_source("import time\ntime.time()\n", path="m.py")
        doc = json.loads(format_findings(findings, as_json=True))
        assert doc["count"] == 1
        assert doc["findings"][0]["code"] == "RPR002"

    def test_default_excludes_is_shared_constant(self):
        assert os.path.join("tests", "analysis", "fixtures") in DEFAULT_EXCLUDES

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings, errors = lint_paths([str(bad)])
        assert findings == []
        assert len(errors) == 1 and "broken.py" in errors[0]


class TestAllowPragma:
    """`# repro-lint: allow[RPRxxx]` suppresses exactly the named rule."""

    def test_pragma_suppresses_named_rule_on_its_line(self):
        src = "import time\nt = time.time()  # repro-lint: allow[RPR002]\n"
        assert lint_source(src) == []

    def test_pragma_does_not_suppress_other_rules(self):
        src = "import time\nt = time.time()  # repro-lint: allow[RPR001]\n"
        assert [f.code for f in lint_source(src)] == ["RPR002"]

    def test_pragma_only_covers_its_own_line(self):
        src = (
            "import time\n"
            "a = time.time()  # repro-lint: allow[RPR002]\n"
            "b = time.time()\n"
        )
        hits = lint_source(src)
        assert [f.line for f in hits] == [3]

    def test_pragma_accepts_a_code_list(self):
        src = "import time\nt = time.time()  # repro-lint: allow[RPR001, RPR002]\n"
        assert lint_source(src) == []


class TestLateImportAliases:
    """Imports placed after a use site must still feed alias resolution.

    A module-level ``import random as r`` below a function that calls
    ``r.random()`` is legal at runtime (the body executes after the
    import), so a single in-order traversal that only learns aliases as
    it passes them silently misses the finding.  ``Rule.check`` runs an
    import pre-pass over the whole tree first.
    """

    @pytest.mark.parametrize(
        ("src", "code"),
        [
            ("def f():\n    return r.random()\nimport random as r\n", "RPR001"),
            (
                "def f():\n    return now()\nfrom time import time as now\n",
                "RPR002",
            ),
            (
                "def f():\n    return npr.normal()\n"
                "from numpy import random as npr\n",
                "RPR001",
            ),
            (
                "def f():\n    return tm.perf_counter()\nimport time as tm\n",
                "RPR002",
            ),
        ],
    )
    def test_flags_use_above_late_import(self, src, code):
        assert code in codes(src)

    def test_late_seeded_constructor_still_allowed(self):
        src = "def f():\n    return np.random.default_rng(1)\nimport numpy as np\n"
        assert codes(src) == set()

    def test_unimported_name_still_clean(self):
        # no import anywhere: `r` is just a local object, not the RNG
        assert codes("def f(r):\n    return r.random()\n") == set()
