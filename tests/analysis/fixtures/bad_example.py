"""Deliberately broken module: every RPR0xx rule must fire on this file.

This fixture is excluded from the default lint walk (see
``repro.analysis.lint.DEFAULT_EXCLUDES``) and is never imported; CI
lints it *explicitly* and asserts a non-zero exit.
"""

import random
import time

import numpy as np

from repro.sim import Compute


def unseeded_randomness():
    a = random.random()                  # RPR001: stdlib global RNG
    b = np.random.rand(4)                # RPR001: numpy global RNG
    np.random.seed(0)                    # RPR001: mutates global state
    return a, b


def wall_clock():
    start = time.time()                  # RPR002: host clock
    return time.perf_counter() - start   # RPR002: host clock


def iteration_order(streams):
    names = []
    for s in {"mutate", "select", "migrate"}:    # RPR003: set iteration
        names.append(s)
    totals = [n for n in set(streams)]           # RPR003: set(...) in comp
    return names, totals


def bad_process(node, task):
    yield Compute(1.0)
    yield dict(op="send")                # RPR004: not a kernel request


def bypass_dsm(dnode, value):
    dnode.agebuf.update("x", value, 3, 0.0, 0.0)   # RPR005: skips write()
    dnode.local_store["x"] = value                 # RPR005: direct store


def negative_age(dnode, g):
    return dnode.global_read("x", g, -1)           # RPR006: negative bound
