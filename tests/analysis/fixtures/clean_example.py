"""Deliberately clean module: no RPR0xx rule may fire on this file.

Exercises the *allowed* spellings next to each rule's banned ones, so
rule over-reach shows up as a failing negative test rather than noise.
"""

import numpy as np

from repro.sim import Compute, WaitSignal


def seeded_randomness(seed):
    rng = np.random.default_rng(seed)                       # allowed
    ss = np.random.SeedSequence(entropy=seed, spawn_key=(1,))  # allowed
    return rng, ss


def simulated_clock(kernel):
    return kernel.now                                       # allowed


def stable_iteration(streams):
    return [s for s in sorted(set(streams))]                # allowed


def good_process(node, task, sig):
    yield Compute(1.0)
    yield WaitSignal(sig)
    msg = yield from task.recv()
    return msg


def proper_write(dsm, value, g):
    yield from dsm.node(0).write("x", value, iter_no=g, nbytes=8)
    copy = yield from dsm.node(1).global_read("x", g, 0)    # age 0 is legal
    return copy
