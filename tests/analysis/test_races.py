"""Happens-before race classifier: unit, property and acceptance tests.

The acceptance contract (ISSUE 1): on a P=4 f1 island run the
synchronous mode classifies race-free, the fully asynchronous mode shows
unbounded races, and `Global_Read(age=10)` shows only tolerated races
whose staleness respects the bound.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.races import (
    RaceClass,
    RaceClassifier,
    VectorClock,
    attach_race_classifier,
)
from repro.analysis.report import classify_three_modes, race_table
from repro.cluster import Machine, MachineConfig
from repro.core import Dsm, SharedLocationSpec
from repro.core.coherence import CoherenceMode
from repro.sim import Compute


# ---------------------------------------------------------------------------
# Vector clocks
# ---------------------------------------------------------------------------
class TestVectorClock:
    def test_tick_and_get(self):
        vc = VectorClock()
        vc.tick(0)
        vc.tick(0)
        vc.tick(3)
        assert (vc.get(0), vc.get(3), vc.get(7)) == (2, 1, 0)

    def test_join_is_componentwise_max(self):
        a = VectorClock({0: 3, 1: 1})
        b = VectorClock({1: 5, 2: 2})
        a.join(b)
        assert (a.get(0), a.get(1), a.get(2)) == (3, 5, 2)

    def test_leq_and_concurrency(self):
        lo = VectorClock({0: 1})
        hi = VectorClock({0: 2, 1: 1})
        assert lo.leq(hi) and not hi.leq(lo)
        x = VectorClock({0: 2})
        y = VectorClock({1: 2})
        assert x.concurrent_with(y) and y.concurrent_with(x)
        assert not lo.concurrent_with(hi)

    def test_copy_is_independent(self):
        a = VectorClock({0: 1})
        b = a.copy()
        b.tick(0)
        assert a.get(0) == 1 and b.get(0) == 2


# ---------------------------------------------------------------------------
# Classifier driven directly through its hooks (no simulator)
# ---------------------------------------------------------------------------
class _Msg:
    def __init__(self, src, msg_id):
        self.src = src
        self.msg_id = msg_id


class TestClassifierHooks:
    def test_ordered_missed_write_is_synchronized(self):
        rc = RaceClassifier()
        rc.on_write("x", 1, 0.0, writer=0)
        rc.on_write("x", 2, 1.0, writer=0)
        # writer sends a message *after* age-2 write; reader consumes it,
        # then reads the age-1 value: the age-2 write happens-before the
        # read, so the pair is ordered (not a race)
        rc.on_send(0, 1, 7, msg_id=100, time=1.5)
        rc.on_recv(1, _Msg(0, 100), time=2.0)
        rc.on_read(1, "x", returned_age=1, time=2.5)
        assert rc.synchronized_pairs == 1
        assert rc.tolerated_races == 0 and rc.unbounded_races == 0

    def test_concurrent_missed_write_without_bound_is_unbounded(self):
        rc = RaceClassifier()
        rc.on_write("x", 1, 0.0, writer=0)
        rc.on_write("x", 2, 1.0, writer=0)
        rc.on_read(1, "x", returned_age=1, time=2.0)  # read_local: no bound
        assert rc.unbounded_races == 1
        assert rc.pairs[0].classification is RaceClass.UNBOUNDED
        assert rc.pairs[0].staleness == 1

    def test_concurrent_missed_write_within_bound_is_tolerated(self):
        rc = RaceClassifier()
        rc.on_write("x", 5, 0.0, writer=0)
        rc.on_write("x", 6, 1.0, writer=0)
        rc.on_read(1, "x", returned_age=5, time=2.0, curr_iter=6, age_bound=2)
        assert rc.tolerated_races == 1 and rc.unbounded_races == 0

    def test_bound_violation_is_unbounded_even_with_bound(self):
        rc = RaceClassifier()
        rc.on_write("x", 1, 0.0, writer=0)
        rc.on_write("x", 9, 1.0, writer=0)
        rc.on_read(1, "x", returned_age=1, time=2.0, curr_iter=9, age_bound=2)
        assert rc.unbounded_races == 1
        # and the base ConsistencyChecker still flags the staleness bound
        assert any(v.invariant == "staleness-bound" for v in rc.violations)

    def test_read_of_latest_value_is_clean(self):
        rc = RaceClassifier()
        rc.on_write("x", 1, 0.0, writer=0)
        rc.on_read(1, "x", returned_age=1, time=1.0)
        assert rc.clean_reads == 1
        assert rc.pair_counts == {}

    def test_pair_cap_counts_but_stops_storing(self):
        rc = RaceClassifier(max_pairs=3)
        for age in range(1, 8):
            rc.on_write("x", age, float(age), writer=0)
        for i in range(5):
            rc.on_read(1, "x", returned_age=1, time=10.0 + i)
        assert len(rc.pairs) == 3
        assert rc.pairs_dropped > 0
        assert rc.unbounded_races == 5 * 6  # every occurrence still counted

    def test_race_marks_flow_into_tracer(self):
        from repro.sim.trace import Tracer

        tracer = Tracer()
        rc = RaceClassifier(tracer=tracer)
        rc.on_write("x", 1, 0.0, writer=0)
        rc.on_write("x", 2, 1.0, writer=0)
        rc.on_read(1, "x", returned_age=1, time=2.0)
        assert any(lbl.startswith("race:unbounded:x") for lbl in tracer.labels())

    def test_report_mentions_classification(self):
        rc = RaceClassifier()
        rc.on_write("x", 1, 0.0, writer=0)
        rc.on_write("x", 2, 1.0, writer=0)
        rc.on_read(1, "x", returned_age=1, time=2.0)
        text = rc.report()
        assert "unbounded races: 1" in text
        assert "[unbounded] x" in text


# ---------------------------------------------------------------------------
# Simulated writer/reader workloads
# ---------------------------------------------------------------------------
def _writer_reader_run(n_iters, writer_dt, reader_dt, synchronized):
    """One writer, one reader.  ``synchronized`` wraps each iteration in
    the textbook double barrier (write, barrier, read, barrier), which
    orders every write against every read; otherwise both free-run and
    the reader uses ``read_local``."""
    m = Machine(MachineConfig(n_nodes=2, seed=1))
    dsm = Dsm(m.vm)
    rc = attach_race_classifier(dsm)
    dsm.register(SharedLocationSpec("loc.0", writer=0, readers=(1,), value_nbytes=64))
    group = (0, 1)

    def writer(node, task):
        dnode = dsm.node(0)
        for i in range(n_iters):
            yield Compute(writer_dt)
            yield from dnode.write("loc.0", ("v", i), iter_no=i, nbytes=64)
            if synchronized:
                yield from task.barrier(group)
                yield from task.barrier(group)

    def reader(node, task):
        dnode = dsm.node(1)
        for i in range(n_iters):
            yield Compute(reader_dt)
            if synchronized:
                yield from task.barrier(group)
                copy = yield from dnode.global_read("loc.0", i, 0)
                yield from task.barrier(group)
            else:
                copy = yield from dnode.read_local("loc.0")
            if copy is not None:
                assert copy.age <= i if synchronized else True

    m.spawn_on(0, writer)
    m.spawn_on(1, reader)
    m.run_to_completion(until=10_000.0)
    return rc


@settings(max_examples=20, deadline=None)
@given(
    n_iters=st.integers(min_value=2, max_value=12),
    writer_dt=st.floats(min_value=1e-4, max_value=5e-3),
    reader_dt=st.floats(min_value=1e-4, max_value=5e-3),
)
def test_property_barrier_synchronized_schedules_are_race_free(
    n_iters, writer_dt, reader_dt
):
    """For ANY pacing, a double-barrier schedule classifies race-free:
    the happens-before edges from the barrier traffic order every write
    against every read."""
    rc = _writer_reader_run(n_iters, writer_dt, reader_dt, synchronized=True)
    assert rc.race_free, rc.report()
    assert rc.ok, rc.report()
    assert rc.reads_checked == n_iters


@settings(max_examples=20, deadline=None)
@given(
    n_iters=st.integers(min_value=5, max_value=20),
    writer_dt=st.floats(min_value=1e-4, max_value=2e-3),
    reader_dt=st.floats(min_value=1e-4, max_value=2e-3),
)
def test_property_async_schedules_classify_only_unbounded(
    n_iters, writer_dt, reader_dt
):
    """For ANY pacing, races a free-running reader does hit are
    unbounded (read_local carries no staleness contract), and the base
    consistency invariants still hold."""
    rc = _writer_reader_run(n_iters, writer_dt, reader_dt, synchronized=False)
    assert rc.tolerated_races == 0
    assert rc.synchronized_pairs == 0
    assert rc.ok, rc.report()


def test_seeded_racy_async_schedule_is_flagged():
    """A fixed schedule where the writer outpaces update delivery MUST
    produce at least one unbounded race (the simulator is deterministic,
    so this is a stable regression anchor)."""
    rc = _writer_reader_run(30, writer_dt=3e-4, reader_dt=5e-4, synchronized=False)
    assert rc.unbounded_races >= 1, rc.report()
    assert rc.ok, rc.report()


# ---------------------------------------------------------------------------
# Acceptance: the P=4 f1 island comparison
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def island_runs():
    return classify_three_modes(fid=1, n_demes=4, age=10, n_generations=60, seed=0)


class TestIslandAcceptance:
    def test_synchronous_is_race_free(self, island_runs):
        sync = island_runs[0]
        assert sync.mode is CoherenceMode.SYNCHRONOUS
        assert sync.classifier.race_free, sync.classifier.report()
        assert sync.classifier.ok

    def test_asynchronous_shows_unbounded_races(self, island_runs):
        async_ = island_runs[1]
        assert async_.mode is CoherenceMode.ASYNCHRONOUS
        assert async_.classifier.unbounded_races >= 1
        assert async_.classifier.tolerated_races == 0
        assert async_.classifier.ok

    def test_global_read_shows_only_tolerated_races_within_bound(self, island_runs):
        gr = island_runs[2]
        assert gr.mode is CoherenceMode.NON_STRICT
        assert gr.classifier.tolerated_races >= 1
        assert gr.classifier.unbounded_races == 0
        assert gr.classifier.max_observed_staleness() <= 10
        assert gr.classifier.ok

    def test_table_formats_all_modes(self, island_runs):
        table = race_table(island_runs)
        assert "synchronous" in table
        assert "Global_Read(age=10)" in table
        assert "unbounded" in table


class TestPerLocation:
    """Per-location breakdown feeding the static-dynamic cross-check."""

    def test_rows_count_pairs_and_staleness(self):
        rc = RaceClassifier()
        rc.on_write("x", 5, 0.0, writer=0)
        rc.on_write("x", 6, 1.0, writer=0)
        rc.on_read(1, "x", returned_age=5, time=2.0, curr_iter=6, age_bound=2)
        rc.on_write("y", 1, 3.0, writer=0)
        rc.on_write("y", 3, 4.0, writer=0)
        rc.on_read(1, "y", returned_age=1, time=5.0)  # read_local: no bound
        locs = rc.per_location()
        assert locs["x"]["tolerated"] == 1 and locs["x"]["unbounded"] == 0
        assert locs["y"]["unbounded"] == 1
        assert locs["y"]["max_staleness"] == 2
        # summary carries the same map for the coherence cross-check
        assert rc.summary()["locations"] == locs

    def test_empty_classifier_has_no_rows(self):
        assert RaceClassifier().per_location() == {}
