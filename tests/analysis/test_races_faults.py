"""Fault-injected races stay *tolerated*: the satellite-3 regression.

A dropped update makes the reader observe an older copy than it would
have on a healthy network — but as long as Global_Read's age bound held,
that is a tolerated data race by the paper's definition, and neither the
happens-before classifier nor the ConsistencyChecker may escalate it to
``unbounded`` (or a violation) just because faults were active.

The classifier is wired to the injector by ``attach_race_classifier``
(it discovers ``network.fault_injector`` on its own), so fault events
also land in its summary and trace marks.
"""

import pytest

from repro.analysis.races import attach_race_classifier
from repro.cluster import Machine, MachineConfig
from repro.core import ConsistencyChecker, Dsm, SharedLocationSpec
from repro.faults import FaultPlan, MessageFaults
from repro.sim import Compute, Tracer

AGE = 4
READER_ITERS = 25
WRITER_ITERS = 3 * READER_ITERS


@pytest.fixture(scope="module")
def faulted_run():
    """Writer/reader over a drop-heavy network, classifier attached."""
    plan = FaultPlan(seed=2, messages=MessageFaults(drop=0.35))
    m = Machine(MachineConfig(n_nodes=2, seed=1, faults=plan))
    dsm = Dsm(m.vm)
    dsm.checker = ConsistencyChecker()
    tracer = Tracer()
    rc = attach_race_classifier(dsm, tracer=tracer)
    dsm.register(SharedLocationSpec("x", writer=0, readers=(1,), value_nbytes=64))
    log = []

    def writer(node, task):
        dnode = dsm.node(0)
        for i in range(WRITER_ITERS):
            yield Compute(node.cost(0.001))
            yield from dnode.write("x", value=i, iter_no=i)

    def reader(node, task):
        dnode = dsm.node(1)
        for i in range(READER_ITERS):
            copy = yield from dnode.global_read("x", curr_iter=i, age=AGE)
            log.append((i, copy.age))
            yield Compute(node.cost(0.001))

    m.spawn_on(0, writer)
    m.spawn_on(1, reader)
    m.run_to_completion()
    return m, dsm, rc, tracer, log


def test_drops_were_actually_injected(faulted_run):
    m, _, rc, _, _ = faulted_run
    assert m.faults.stats.dropped > 0
    assert rc.fault_counts.get("drop", 0) > 0
    assert rc.fault_counts["drop"] == m.faults.stats.dropped


def test_age_bound_held_despite_drops(faulted_run):
    _, dsm, _, _, log = faulted_run
    assert len(log) == READER_ITERS
    for curr, got in log:
        assert got >= curr - AGE
    assert dsm.checker.ok, dsm.checker.report()
    assert dsm.checker.total_violations == 0


def test_drop_induced_staleness_classifies_tolerated_not_unbounded(faulted_run):
    _, _, rc, _, _ = faulted_run
    assert rc.unbounded_races == 0, rc.report()
    assert rc.tolerated_races > 0, rc.report()
    assert rc.max_observed_staleness() <= AGE


def test_summary_carries_fault_context(faulted_run):
    _, _, rc, tracer, _ = faulted_run
    s = rc.summary()
    assert s["faults_injected"].get("drop", 0) > 0
    assert s["unbounded_races"] == 0
    assert any(lbl == "fault:drop" for lbl in tracer.labels())
