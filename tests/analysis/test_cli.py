"""CLI exit codes and output formats for ``python -m repro.analysis``."""

import json
import os

import pytest

from repro.analysis.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


class TestLintCommand:
    def test_clean_tree_exits_zero(self):
        assert main(["lint", os.path.join(REPO_ROOT, "src")]) == 0

    def test_bad_fixture_exits_one(self, capsys):
        rc = main(["lint", os.path.join(FIXTURES, "bad_example.py")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "RPR001" in out and "finding(s)" in out

    def test_json_mode(self, capsys):
        rc = main(["lint", "--json", os.path.join(FIXTURES, "bad_example.py")])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] >= 6
        assert {f["code"] for f in doc["findings"]} >= {"RPR001", "RPR006"}

    def test_select_limits_rules(self, capsys):
        rc = main(
            ["lint", "--select", "RPR002", os.path.join(FIXTURES, "bad_example.py")]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "RPR002" in out and "RPR001" not in out

    def test_missing_path_exits_two(self, capsys):
        rc = main(["lint", "does/not/exist.py", os.path.join(FIXTURES, "bad_example.py")])
        assert rc == 2
        out = capsys.readouterr().out
        assert "no such file or directory" in out
        # the existing path was still linted, not masked by the error
        assert "RPR001" in out

    def test_unknown_select_code_exits_two(self, capsys):
        rc = main(["lint", "--select", "RPR999", os.path.join(REPO_ROOT, "src")])
        assert rc == 2
        assert "unknown rule code" in capsys.readouterr().out

    def test_unparsable_file_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "syntax_error.py"
        bad.write_text("def broken(:\n")
        assert main(["lint", str(bad)]) == 2
        assert "error:" in capsys.readouterr().out

    def test_extra_exclude_skips_directory(self, tmp_path):
        sub = tmp_path / "generated"
        sub.mkdir()
        (sub / "dirty.py").write_text("import time\ntime.time()\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert main(["lint", "--exclude", "generated", str(tmp_path)]) == 0


class TestRacesCommand:
    def test_gr_mode_passes_default_gate(self, capsys):
        rc = main(
            ["races", "--mode", "gr", "--generations", "20", "--demes", "3"]
        )
        assert rc == 0
        assert "tolerated races" in capsys.readouterr().out

    def test_async_mode_fails_unbounded_gate(self, capsys):
        rc = main(
            [
                "races", "--mode", "async", "--generations", "30",
                "--fail-on", "unbounded",
            ]
        )
        assert rc == 1

    def test_async_mode_passes_violations_gate(self):
        # unbounded races are the *point* of async mode; only broken
        # consistency invariants fail the default gate
        rc = main(["races", "--mode", "async", "--generations", "30"])
        assert rc == 0

    def test_json_output(self, capsys):
        rc = main(
            ["races", "--mode", "sync", "--generations", "15", "--json"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["mode"] == "synchronous"
        assert doc["unbounded_races"] == 0


class TestReportCommand:
    def test_three_mode_shape_holds(self, capsys):
        rc = main(["report", "--generations", "40"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "shape OK" in out
        assert "synchronous" in out and "asynchronous" in out

    def test_report_json(self, capsys):
        rc = main(["report", "--generations", "30", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["problems"] == []
        assert len(doc["runs"]) == 3


class TestSanitizerFixture:
    def test_sanitizer_attaches_when_enabled(self, monkeypatch):
        from repro.analysis.fixtures import sanitizer_enabled

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitizer_enabled()
        monkeypatch.delenv("REPRO_SANITIZE")
        assert not sanitizer_enabled()

    def test_sanitize_fixture_collects_classifiers(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        from repro.analysis.fixtures import sanitize_dsm

        gen = sanitize_dsm.__wrapped__()
        attached = next(gen)
        from repro.cluster import Machine, MachineConfig
        from repro.core import Dsm

        dsm = Dsm(Machine(MachineConfig(n_nodes=2, seed=0)).vm)
        assert len(attached) == 1
        assert dsm.checker is attached[0]
        assert dsm.vm.observer is attached[0]
        with pytest.raises(StopIteration):
            gen.send(None)


class TestCoherenceCommand:
    """``coherence`` subcommand: happy path and hard error paths."""

    SRC = os.path.join(REPO_ROOT, "src", "repro")

    def test_src_tree_is_clean(self, capsys):
        rc = main(["coherence", self.SRC, "--no-baseline"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "migrants.*" in out and "0 finding(s)" in out

    def test_json_envelope(self, capsys):
        rc = main(["coherence", self.SRC, "--no-baseline", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-analysis-coherence/1"
        assert doc["summary"]["findings"] == 0
        assert doc["summary"]["locations"] >= 3
        assert doc["digest"]

    def test_out_writes_envelope_file(self, tmp_path, capsys):
        out = tmp_path / "coherence.json"
        rc = main(["coherence", self.SRC, "--no-baseline", "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-analysis-coherence/1"

    def test_missing_trace_dir_exits_two(self, capsys):
        rc = main(
            ["coherence", self.SRC, "--no-baseline", "--traces", "no/such/dir"]
        )
        assert rc == 2
        assert "no such trace file or directory" in capsys.readouterr().out

    def test_malformed_trace_jsonl_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"t": 1, "kind": "gr.hit"}\nnot json at all\n')
        rc = main(["coherence", self.SRC, "--no-baseline", "--traces", str(bad)])
        assert rc == 2
        assert "not valid JSON" in capsys.readouterr().out

    def test_empty_trace_dir_exits_two(self, tmp_path, capsys):
        rc = main(
            ["coherence", self.SRC, "--no-baseline", "--traces", str(tmp_path)]
        )
        assert rc == 2
        assert "no .jsonl trace files" in capsys.readouterr().out

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        base.write_text("{not json")
        rc = main(["coherence", self.SRC, "--baseline", str(base)])
        assert rc == 2
        assert "not valid JSON" in capsys.readouterr().out

    def test_unparsable_source_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        rc = main(["coherence", str(bad)])
        assert rc == 2
        assert "error:" in capsys.readouterr().out

    def test_findings_exit_one_and_baseline_roundtrip(self, tmp_path, capsys):
        mod = tmp_path / "w.py"
        mod.write_text(
            "def proc(node, task, dsm):\n"
            "    dnode = dsm.node(0)\n"
            "    dnode.write('x', 1, 0, 8)\n"
            "    return dnode.read_local('x')\n"
        )
        assert main(["coherence", str(mod)]) == 1
        assert "RPR101" in capsys.readouterr().out
        base = tmp_path / "base.json"
        assert main(["coherence", str(mod), "--write-baseline", str(base)]) == 0
        capsys.readouterr()
        assert main(["coherence", str(mod), "--baseline", str(base)]) == 0
        assert "suppressed by baseline" in capsys.readouterr().out

    def test_races_json_feeds_crossval(self, tmp_path, capsys):
        # a fabricated races doc claiming unbounded races on migrants.*
        doc = {
            "schema": "repro-analysis-races/1",
            "locations": {
                "migrants.0": {
                    "synchronized": 0, "tolerated": 0, "unbounded": 4,
                    "reads": 4, "max_staleness": 40,
                },
            },
        }
        races = tmp_path / "races.json"
        races.write_text(json.dumps(doc))
        rc = main(
            ["coherence", self.SRC, "--no-baseline", "--races", str(races)]
        )
        assert rc == 1
        assert "RPR105" in capsys.readouterr().out
