"""The static coherence analyzer: AST pass, classifier, cross-check.

Covers the pipeline layer by layer on synthetic modules (scan →
classify → cross-validate → driver/baseline) and then pins the
repo-wide invariant the CI gate relies on: every DSM location in
``src/repro`` classifies, with zero non-baselined findings.
"""

import json
import os

import pytest

from repro.analysis.coherence import (
    BASELINE_SCHEMA,
    COHERENCE_SCHEMA,
    DynamicEvidence,
    classify_scan,
    cross_validate,
    evidence_from_races_doc,
    evidence_from_trace,
    load_baseline,
    run_coherence,
    scan_source,
)
from repro.analysis.coherence.astpass import ScanResult, scan_paths
from repro.analysis.coherence.driver import baseline_doc, render_text
from repro.util.envelope import envelope_digest

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
SRC = os.path.join(REPO_ROOT, "src", "repro")


def scan_of(source: str) -> ScanResult:
    mod = scan_source(source, path="synthetic.py")
    return ScanResult(modules=[mod])


def classify(source: str):
    return classify_scan(scan_of(source))


# ---------------------------------------------------------------------------
# AST pass: site discovery and resolution
# ---------------------------------------------------------------------------
class TestAstPass:
    def test_fstring_pattern_and_const_age(self):
        src = (
            "def proc(node, task, dsm):\n"
            "    dnode = dsm.node(0)\n"
            "    for p in range(4):\n"
            "        locn = f'm.{p}'\n"
            "        v = dnode.global_read(locn, 3, 0)\n"
            "        dnode.write(f'm.{p}', v, 3, 8)\n"
        )
        sites = scan_of(src).sites
        kinds = {(s.kind, s.pattern) for s in sites}
        assert ("global_read", "m.*") in kinds
        assert ("write", "m.*") in kinds
        read = next(s for s in sites if s.kind == "global_read")
        assert read.age is not None
        assert (read.age.kind, read.age.value) == ("const", 0)

    def test_age_from_config_dataclass_default(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Cfg:\n"
            "    age: int = 7\n"
            "    def __post_init__(self):\n"
            "        if self.age < 0:\n"
            "            raise ValueError('age')\n"
            "def run(cfg: Cfg, dnode):\n"
            "    return dnode.global_read('x', 1, cfg.age)\n"
        )
        (read,) = [s for s in scan_of(src).sites if s.kind == "global_read"]
        assert read.age.kind == "symbolic"
        assert read.age.value == 7
        assert read.age.nonneg

    def test_unresolvable_age_is_unknown(self):
        src = "def run(dnode, b):\n    return dnode.global_read('x', 1, b())\n"
        (read,) = [s for s in scan_of(src).sites if s.kind == "global_read"]
        assert read.age.kind == "unknown"

    def test_barrier_in_scope_flag(self):
        src = (
            "def proc(node, task, dsm):\n"
            "    dnode = dsm.node(0)\n"
            "    task.barrier('g')\n"
            "    return dnode.global_read('x', 1, 0)\n"
        )
        (read,) = [s for s in scan_of(src).sites if s.kind == "global_read"]
        assert read.barrier_in_scope

    def test_register_and_contract_discovery(self):
        src = (
            "from repro.core import dsm_contract\n"
            "dsm_contract('m.*', writers=1, age=5, tolerance='phase_concurrent',\n"
            "             reason='test')\n"
            "from repro.core.dsm import SharedLocationSpec\n"
            "def build(dsm):\n"
            "    for d in range(2):\n"
            "        dsm.register(SharedLocationSpec(f'm.{d}', 0))\n"
        )
        scan = scan_of(src)
        assert [s.pattern for s in scan.sites if s.kind == "register"] == ["m.*"]
        (c,) = scan.contracts
        assert (c.pattern, c.writers, c.age, c.tolerance) == (
            "m.*", 1, 5, "phase_concurrent",
        )

    def test_write_requires_known_node_receiver(self):
        # file handles also have .write; only DSM node vars count
        src = (
            "def save(path, dsm):\n"
            "    dnode = dsm.node(0)\n"
            "    with open(path, 'w') as fh:\n"
            "        fh.write('hello')\n"
            "    dnode.write('x', 1, 0, 8)\n"
        )
        writes = [s for s in scan_of(src).sites if s.kind == "write"]
        assert [s.pattern for s in writes] == ["x"]

    def test_scan_paths_reports_syntax_errors(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        scan = scan_paths([str(bad)])
        assert scan.modules == []
        assert len(scan.errors) == 1 and "broken.py" in scan.errors[0]


# ---------------------------------------------------------------------------
# Classifier: tolerance lattice and contract checks
# ---------------------------------------------------------------------------
class TestClassify:
    def test_phase_concurrent_needs_barrier(self):
        with_barrier = (
            "def proc(node, task, dsm):\n"
            "    dnode = dsm.node(0)\n"
            "    dnode.write('x', 1, 0, 8)\n"
            "    task.barrier('g')\n"
            "    return dnode.global_read('x', 1, 0)\n"
        )
        without = with_barrier.replace("    task.barrier('g')\n", "")
        (v,), _ = classify(with_barrier)
        assert (v.inferred_class, v.verdict) == ("phase_concurrent", "strict")
        (v,), _ = classify(without)
        assert v.inferred_class == "single_writer"

    def test_stale_reads_with_clean_reducer_are_commutative(self):
        src = (
            "def proc(node, task, dsm):\n"
            "    dnode = dsm.node(0)\n"
            "    dnode.write('x', 1, 0, 8)\n"
            "    return dnode.read_local('x')\n"
        )
        (v,), findings = classify(src)
        assert (v.inferred_class, v.verdict) == ("commutative", "tolerated")
        # no contract declared -> RPR101
        assert [f.code for f in findings] == ["RPR101"]

    def test_impure_reducer_degrades_to_unbounded(self):
        src = (
            "import random\n"
            "def proc(node, task, dsm):\n"
            "    dnode = dsm.node(0)\n"
            "    dnode.write('x', 1, 0, 8)\n"
            "    v = dnode.read_local('x')\n"
            "    return v + random.random()\n"
        )
        (v,), _ = classify(src)
        assert (v.inferred_class, v.verdict) == ("unbounded", "unbounded")
        assert any("impure reducer" in e for e in v.evidence)

    def test_rpr102_age_exceeds_contract(self):
        src = (
            "from repro.core import dsm_contract\n"
            "dsm_contract('x', age=5, tolerance='phase_concurrent')\n"
            "def proc(node, task, dsm):\n"
            "    dnode = dsm.node(0)\n"
            "    dnode.write('x', 1, 0, 8)\n"
            "    task.barrier('g')\n"
            "    return dnode.global_read('x', 1, 9)\n"
        )
        _, findings = classify(src)
        assert "RPR102" in {f.code for f in findings}

    def test_rpr103_read_local_under_bounded_contract(self):
        src = (
            "from repro.core import dsm_contract\n"
            "dsm_contract('x', age=5, tolerance='commutative')\n"
            "def proc(node, task, dsm):\n"
            "    dnode = dsm.node(0)\n"
            "    dnode.write('x', 1, 0, 8)\n"
            "    return dnode.read_local('x')\n"
        )
        _, findings = classify(src)
        assert "RPR103" in {f.code for f in findings}

    def test_rpr104_inferred_weaker_than_declared(self):
        src = (
            "from repro.core import dsm_contract\n"
            "dsm_contract('x', age=None, tolerance='read_only')\n"
            "def proc(node, task, dsm):\n"
            "    dnode = dsm.node(0)\n"
            "    dnode.write('x', 1, 0, 8)\n"
            "    return dnode.read_local('x')\n"
        )
        _, findings = classify(src)
        assert "RPR104" in {f.code for f in findings}

    def test_rpr106_commutative_claim_with_impure_reducer(self):
        src = (
            "import random\n"
            "from repro.core import dsm_contract\n"
            "dsm_contract('x', age=None, tolerance='unbounded')\n"
            "def proc(node, task, dsm):\n"
            "    dnode = dsm.node(0)\n"
            "    dnode.write('x', 1, 0, 8)\n"
            "    return dnode.read_local('x') + random.random()\n"
        )
        # tolerance='unbounded' avoids RPR104 noise; switch to the
        # commutative claim to trigger RPR106
        src106 = src.replace("tolerance='unbounded'", "tolerance='commutative'")
        _, findings = classify(src106)
        assert "RPR106" in {f.code for f in findings}
        _, findings = classify(src)
        assert "RPR106" not in {f.code for f in findings}

    def test_unresolved_pattern_is_per_site_rpr101(self):
        src = (
            "def proc(node, task, dsm, name):\n"
            "    dnode = dsm.node(0)\n"
            "    return dnode.global_read(name, 1, 0)\n"
        )
        verdicts, findings = classify(src)
        assert verdicts == []
        assert [f.code for f in findings] == ["RPR101"]
        assert findings[0].pattern == "<unresolved>"


# ---------------------------------------------------------------------------
# Cross-validation against dynamic evidence
# ---------------------------------------------------------------------------
class TestCrossval:
    @staticmethod
    def _static_tolerated():
        src = (
            "from repro.core import dsm_contract\n"
            "dsm_contract('m.*', age=5, tolerance='phase_concurrent')\n"
            "def proc(node, task, dsm):\n"
            "    dnode = dsm.node(0)\n"
            "    dnode.write('m.0', 1, 0, 8)\n"
            "    return dnode.global_read('m.0', 1, 3)\n"
        )
        verdicts, _ = classify(src)
        return verdicts

    def test_dynamic_unbounded_contradicts_static_tolerated(self):
        verdicts = self._static_tolerated()
        assert verdicts[0].verdict == "tolerated"
        ev = {"m.0": DynamicEvidence(locn="m.0", unbounded=3, reads=3)}
        findings = cross_validate(verdicts, ev)
        assert [f.code for f in findings] == ["RPR105"]
        assert "observed 'unbounded'" in findings[0].message

    def test_consistent_evidence_is_clean(self):
        verdicts = self._static_tolerated()
        ev = {
            "m.0": DynamicEvidence(
                locn="m.0", tolerated=5, reads=5, max_staleness=3
            )
        }
        assert cross_validate(verdicts, ev) == []

    def test_strict_observation_of_tolerated_location_is_clean(self):
        # the converse direction: conservative static verdicts survive
        verdicts = self._static_tolerated()
        ev = {"m.0": DynamicEvidence(locn="m.0", synchronized=5, reads=5)}
        assert cross_validate(verdicts, ev) == []

    def test_staleness_beyond_contract_age_fires(self):
        verdicts = self._static_tolerated()
        ev = {
            "m.0": DynamicEvidence(
                locn="m.0", tolerated=2, reads=2, max_staleness=9
            )
        }
        findings = cross_validate(verdicts, ev)
        assert [f.code for f in findings] == ["RPR105"]
        assert "exceeds the contract's declared age 5" in findings[0].message

    def test_dynamic_only_location_is_a_coverage_hole(self):
        findings = cross_validate(
            [], {"ghost": DynamicEvidence(locn="ghost", reads=4)}
        )
        assert [f.code for f in findings] == ["RPR105"]
        assert "never discovered statically" in findings[0].message

    def test_evidence_from_trace(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        lines = [
            {"t": 0.1, "kind": "gr.hit", "node": 0, "locn": "m.0",
             "curr_iter": 3, "age": 5, "staleness": 0},
            {"t": 0.2, "kind": "gr.hit", "node": 0, "locn": "m.0",
             "curr_iter": 4, "age": 5, "staleness": 2},
            {"t": 0.3, "kind": "gr.unblock", "node": 1, "locn": "m.0",
             "curr_iter": 5, "age": 5, "staleness": 7, "waited": 0.01},
            {"t": 0.4, "kind": "dsm.write", "node": 1, "locn": "m.0", "iter": 5},
        ]
        trace.write_text("".join(json.dumps(x) + "\n" for x in lines))
        ev = evidence_from_trace(str(trace))
        m = ev["m.0"]
        assert (m.reads, m.synchronized, m.tolerated, m.unbounded) == (3, 1, 1, 1)
        assert m.max_staleness == 7
        assert m.exposure == "unbounded"

    def test_malformed_trace_raises(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"t": 1}\nnot json\n')
        with pytest.raises(ValueError, match="not valid JSON"):
            evidence_from_trace(str(bad))

    def test_evidence_from_races_doc(self):
        doc = {
            "locations": {
                "m.0": {"synchronized": 1, "tolerated": 2, "unbounded": 0,
                        "reads": 3, "max_staleness": 2},
            }
        }
        ev = evidence_from_races_doc(doc)
        assert ev["m.0"].exposure == "tolerated"


# ---------------------------------------------------------------------------
# Driver: baseline workflow, envelope, exit codes
# ---------------------------------------------------------------------------
class TestDriver:
    SRC_WITH_FINDING = (
        "def proc(node, task, dsm):\n"
        "    dnode = dsm.node(0)\n"
        "    dnode.write('x', 1, 0, 8)\n"
        "    return dnode.read_local('x')\n"
    )

    def test_baseline_suppresses_and_reports_stale(self, tmp_path):
        mod = tmp_path / "w.py"
        mod.write_text(self.SRC_WITH_FINDING)
        rep = run_coherence([str(mod)])
        assert rep.exit_code == 1
        base = tmp_path / "base.json"
        base.write_text(
            json.dumps(
                {
                    "schema": BASELINE_SCHEMA,
                    "suppressions": [
                        {"fingerprint": "RPR101:x", "reason": "known"},
                        {"fingerprint": "RPR102:gone", "reason": "stale"},
                    ],
                }
            )
        )
        rep = run_coherence([str(mod)], baseline_path=str(base))
        assert rep.exit_code == 0
        assert [f.fingerprint for f in rep.suppressed] == ["RPR101:x"]
        assert [e.fingerprint for e in rep.stale_suppressions] == ["RPR102:gone"]
        assert "stale suppression" in render_text(rep)

    def test_malformed_baseline_is_an_error(self, tmp_path):
        mod = tmp_path / "w.py"
        mod.write_text(self.SRC_WITH_FINDING)
        base = tmp_path / "base.json"
        base.write_text('{"schema": "wrong/1", "suppressions": []}')
        rep = run_coherence([str(mod)], baseline_path=str(base))
        assert rep.exit_code == 2
        with pytest.raises(ValueError, match="expected schema"):
            load_baseline(str(base))

    def test_baseline_doc_round_trips(self, tmp_path):
        mod = tmp_path / "w.py"
        mod.write_text(self.SRC_WITH_FINDING)
        rep = run_coherence([str(mod)])
        doc = baseline_doc(rep.findings)
        base = tmp_path / "base.json"
        base.write_text(json.dumps(doc))
        entries = load_baseline(str(base))
        assert [e.fingerprint for e in entries] == ["RPR101:x"]
        rep2 = run_coherence([str(mod)], baseline_path=str(base))
        assert rep2.exit_code == 0 and not rep2.stale_suppressions

    def test_envelope_shape_and_digest(self, tmp_path):
        mod = tmp_path / "w.py"
        mod.write_text(self.SRC_WITH_FINDING)
        env = run_coherence([str(mod)]).to_envelope()
        assert env["schema"] == COHERENCE_SCHEMA
        assert env["summary"]["locations"] == 1
        assert env["summary"]["by_code"] == {"RPR101": 1}
        assert env["digest"] == envelope_digest(env)


# ---------------------------------------------------------------------------
# Repo-wide invariants (what the CI gate runs)
# ---------------------------------------------------------------------------
class TestRepoInvariant:
    def test_every_dsm_location_classifies_clean(self):
        rep = run_coherence([SRC])
        assert rep.errors == []
        assert rep.findings == []
        patterns = {v.pattern for v in rep.verdicts}
        # the two workloads' shared state must all be discovered
        assert {"migrants.*", "iface.*", "ifr.*.*"} <= patterns
        # and every location carries a declared contract
        assert all(v.contract is not None for v in rep.verdicts)

    def test_committed_baseline_is_valid_and_not_stale(self):
        path = os.path.join(REPO_ROOT, "tools", "coherence_baseline.json")
        entries = load_baseline(path)
        rep = run_coherence([SRC], baseline_path=path)
        assert rep.exit_code == 0
        assert not rep.stale_suppressions or entries


class TestTracedRunIntegration:
    """The full static↔dynamic loop on a real traced island-GA run."""

    def test_cross_check_passes_on_traced_run(self, tmp_path):
        from repro.obs.integration import traced_ga_run, write_artifacts

        run = traced_ga_run(n_generations=20, age=10, n_demes=4)
        write_artifacts(run, trace_path=str(tmp_path / "ga.jsonl"))
        rep = run_coherence([SRC], traces=[str(tmp_path)])
        assert rep.errors == []
        assert rep.findings == []
        # the traced run actually exercised the migrant locations
        assert any(l.startswith("migrants.") for l in rep.evidence)
        # and no observation was worse than its static verdict
        for locn, ev in rep.evidence.items():
            assert ev.unbounded == 0, (locn, ev)
