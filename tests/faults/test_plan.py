"""FaultPlan / MessageFaults / NodeFault declaration semantics."""

import pytest

from repro.faults import (
    DEFAULT_PROTECTED_TAGS,
    FaultPlan,
    MessageFaults,
    NodeFault,
)


def test_default_plan_is_noop():
    plan = FaultPlan.none()
    assert plan.is_noop
    assert not plan.messages.any_rate
    assert plan.node_faults == ()


def test_rates_must_be_probabilities():
    with pytest.raises(ValueError):
        MessageFaults(drop=1.5)
    with pytest.raises(ValueError):
        MessageFaults(duplicate=-0.1)
    with pytest.raises(ValueError):
        MessageFaults(drop=0.5, duplicate=0.3, delay=0.2, reorder=0.1)  # sum > 1


def test_window_validation():
    with pytest.raises(ValueError):
        MessageFaults(start=2.0, stop=1.0)
    m = MessageFaults(drop=0.1, start=1.0, stop=2.0)
    assert not m.active(0.5)
    assert m.active(1.0)
    assert m.active(1.999)
    assert not m.active(2.0)
    assert MessageFaults(drop=0.1).active(1e9)  # stop=None: forever


def test_node_fault_validation():
    with pytest.raises(ValueError):
        NodeFault(node=0, kind="explode", start=0.0, duration=1.0)
    with pytest.raises(ValueError):
        NodeFault(node=0, kind="pause", start=0.0, duration=0.0)
    with pytest.raises(ValueError):
        NodeFault(node=0, kind="slowdown", start=0.0, duration=1.0, factor=1.0)
    f = NodeFault(node=3, kind="pause", start=1.5, duration=0.5)
    assert f.end == 2.0


def test_faults_for_node_sorted_by_start():
    plan = FaultPlan(
        node_faults=(
            NodeFault(node=1, kind="pause", start=2.0, duration=0.1),
            NodeFault(node=1, kind="pause", start=0.5, duration=0.1),
            NodeFault(node=2, kind="crash", start=1.0, duration=0.1),
        )
    )
    mine = plan.faults_for_node(1)
    assert [f.start for f in mine] == [0.5, 2.0]
    assert plan.faults_for_node(0) == ()
    assert not plan.is_noop


def test_parse_full_spec():
    plan = FaultPlan.parse(
        "drop=0.05,dup=0.02,delay=0.05,delay_s=0.0005:0.005,reorder=0.1,"
        "seed=7,start=0.1,stop=2.5,pause=1:0.5:0.2,slow=2:1.0:0.5:3.0,"
        "crash=0:2.0:0.3"
    )
    m = plan.messages
    assert plan.seed == 7
    assert (m.drop, m.duplicate, m.delay, m.reorder) == (0.05, 0.02, 0.05, 0.1)
    assert m.delay_s == (0.0005, 0.005)
    assert (m.start, m.stop) == (0.1, 2.5)
    kinds = {(f.node, f.kind) for f in plan.node_faults}
    assert kinds == {(1, "pause"), (2, "slowdown"), (0, "crash")}
    assert next(f for f in plan.node_faults if f.kind == "slowdown").factor == 3.0


def test_parse_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown fault spec key"):
        FaultPlan.parse("dorp=0.05")
    with pytest.raises(ValueError, match="key=value"):
        FaultPlan.parse("drop")
    with pytest.raises(ValueError, match="NODE:START:DURATION"):
        FaultPlan.parse("pause=1:0.5")


def test_parse_stop_inf_and_single_delay():
    plan = FaultPlan.parse("delay=0.1,delay_s=0.002,stop=inf")
    assert plan.messages.stop is None
    assert plan.messages.delay_s == (0.002, 0.002)


def test_with_seed_rerolls_only_seed():
    plan = FaultPlan.parse("drop=0.1", seed=1)
    other = plan.with_seed(99)
    assert other.seed == 99
    assert other.messages == plan.messages


def test_barrier_tags_protected_by_default():
    assert set(DEFAULT_PROTECTED_TAGS) == {-1000, -1001}
    assert MessageFaults().protect_tags == DEFAULT_PROTECTED_TAGS


def test_describe_mentions_active_faults():
    plan = FaultPlan.parse("drop=0.05,crash=1:1.0:0.5,seed=3")
    text = plan.describe()
    assert "drop=0.05" in text
    assert "crash(n1@1+0.5)" in text
    assert "seed=3" in text
