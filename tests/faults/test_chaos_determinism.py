"""Chaos matrix determinism: same plan seed => identical trace digest.

These are the property (a) tests of the chaos suite: a fault-injected
run is a pure function of ``(workload, FaultPlan)``.  Two back-to-back
runs of any matrix case must produce bit-identical SHA-256 digests, and
every case must match its checked-in golden in ``CHAOS_GOLDEN``.
"""

import pytest

from repro.faults.chaos import CHAOS_GOLDEN, MATRIX, run_matrix, traffic_case
from repro.faults.plan import FaultPlan, MessageFaults

# the full matrix takes ~1.5 s; run the cheap traffic family twice for
# the rerun property and the whole matrix once against the goldens
_TRAFFIC_CASES = [n for n in MATRIX if n.startswith("traffic-")]


@pytest.mark.parametrize("name", _TRAFFIC_CASES)
def test_same_seed_two_runs_identical_digest(name):
    d1, s1 = MATRIX[name]()
    d2, s2 = MATRIX[name]()
    assert d1 == d2
    assert s1 == s2


def test_matrix_matches_goldens():
    results = run_matrix()
    assert set(results) == set(CHAOS_GOLDEN)
    mismatched = {
        n: (r["digest"], r["golden"]) for n, r in results.items() if not r["ok"]
    }
    assert mismatched == {}


def test_different_seed_changes_digest():
    plan = FaultPlan(seed=1, messages=MessageFaults(drop=0.15, stop=0.015))
    d1, _ = traffic_case(plan)
    d2, _ = traffic_case(plan.with_seed(12345))
    assert d1 != d2


def test_every_case_actually_injects():
    # a chaos case that injects nothing is testing nothing
    from repro.faults.chaos import ga_case

    healthy_ga_digest, _ = ga_case(FaultPlan.none())
    for name, producer in MATRIX.items():
        digest, summary = producer()
        if name == "traffic-crash":
            assert summary["crash_frames_lost"] > 0, name
        elif name == "ga-node-faults":
            # node faults leave message counters at zero; the evidence of
            # injection is that the GA's observable result moved
            assert digest != healthy_ga_digest, name
        elif name == "bayes-duplicate":
            assert summary["duplicate_messages"] > 0, name
            assert summary["converged"], name
        else:
            injected = (
                summary["dropped"]
                + summary["duplicated"]
                + summary["delayed"]
                + summary["reordered"]
            )
            assert injected > 0, name
