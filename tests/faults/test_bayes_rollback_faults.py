"""Property (c): Bayes rollback terminates under duplicated/reordered
anti-messages.

Three layers of defence, each pinned here:

* the GVT oracle ignores acknowledgements for messages it has already
  accounted (a duplicated delivery must not underflow ``in_flight`` or
  advance the floor early),
* correction versioning makes ``fold_correction`` idempotent and
  order-insensitive (a reordered stale correction cannot revert newer
  state and restart a settled cascade),
* the end-to-end sampler dedupes whole correction messages by
  ``(sender, msg_id)`` — and still converges with a bounded number of
  rollbacks under duplication and reordering plans.
"""

import numpy as np
import pytest

from repro.bayes import make_random_network
from repro.bayes.parallel import ParallelLsConfig, run_parallel_logic_sampling
from repro.bayes.rollback import GvtOracle, ProcessorState
from repro.cluster import MachineConfig
from repro.core.coherence import CoherenceMode
from repro.faults import FaultPlan, MessageFaults


# ---------------------------------------------------------------------------
# GVT oracle under duplicated acknowledgements
# ---------------------------------------------------------------------------

def test_oracle_tolerates_duplicate_acks():
    o = GvtOracle(2)
    o.message_sent(3)
    o.message_applied(3)
    assert o.in_flight == {}
    o.message_applied(3)  # the duplicate delivery's ack
    assert o.duplicate_acks == 1
    assert o.in_flight == {}  # no underflow, no resurrected key
    o.message_applied(99)  # ack for a message never sent
    assert o.duplicate_acks == 2


def test_oracle_floor_stays_conservative_under_duplicates():
    o = GvtOracle(2)
    o.progress = [5, 5]
    o.message_sent(2)
    o.message_sent(2)
    o.message_applied(2)
    assert o.floor() == 1  # one copy still in flight
    o.message_applied(2)
    assert o.floor() == 5
    o.message_applied(2)  # duplicate: floor must not move further
    assert o.floor() == 5
    assert o.duplicate_acks == 1


# ---------------------------------------------------------------------------
# Correction version filter
# ---------------------------------------------------------------------------

def make_state():
    net = make_random_network(16, 22, seed=1, name="small")
    owner = {v: v % 2 for v in net.nodes}
    st = ProcessorState(net, owner, 1, net.default_values(seed=0))
    assert st.remote_parents, "partition must leave proc 1 with remote inputs"
    return net, st


def test_fold_correction_discards_stale_versions():
    _, st = make_state()
    oracle = GvtOracle(2)
    rng = np.random.default_rng(0)
    u = min(st.remote_parents)

    st.sample_iteration(0, rng, oracle)
    st.fold_correction(u, 0, 1, 1, rng, oracle)
    assert st.remote_values[(u, 0)] == 1
    assert st.stats.stale_corrections == 0

    # same version again (a duplicated correction): discarded
    st.fold_correction(u, 0, 0, 1, rng, oracle)
    assert st.remote_values[(u, 0)] == 1
    assert st.stats.stale_corrections == 1

    # version 0 (the reordered original batch value): discarded
    st.fold_correction(u, 0, 0, 0, rng, oracle)
    assert st.remote_values[(u, 0)] == 1
    assert st.stats.stale_corrections == 2

    # a genuinely newer version still applies
    st.fold_correction(u, 0, 0, 2, rng, oracle)
    assert st.remote_values[(u, 0)] == 0
    assert st.stats.stale_corrections == 2


def test_recompute_versions_increase_per_location():
    _, st = make_state()
    oracle = GvtOracle(2)
    rng = np.random.default_rng(0)
    u = min(st.remote_parents)
    st.sample_iteration(0, rng, oracle)
    st.published_upto = 0  # pretend the batch for t=0 went out
    seen: dict[tuple[int, int], list[int]] = {}
    for k, value in enumerate([1, 0, 1, 0]):
        for (v, t, _, ver) in st.fold_correction(u, 0, value, k + 1, rng, oracle):
            seen.setdefault((v, t), []).append(ver)
    for key, versions in seen.items():
        assert versions == sorted(versions), key
        assert len(set(versions)) == len(versions), key


# ---------------------------------------------------------------------------
# End to end: the sampler under duplication / duplication + reordering
# ---------------------------------------------------------------------------

def run_faulted_sampler(messages, seed=7, max_iterations=30_000):
    net = make_random_network(16, 22, seed=1, name="small")
    return run_parallel_logic_sampling(
        ParallelLsConfig(
            net=net,
            query=max(net.nodes),
            n_procs=2,
            mode=CoherenceMode.NON_STRICT,
            age=5,
            seed=seed,
            machine=MachineConfig(
                n_nodes=2, seed=seed,
                faults=FaultPlan(seed=seed, messages=messages),
            ),
            max_iterations=max_iterations,
        )
    )


@pytest.mark.parametrize(
    "name,messages",
    [
        ("duplicate", MessageFaults(duplicate=0.2)),
        ("duplicate+reorder", MessageFaults(duplicate=0.1, reorder=0.2)),
    ],
)
def test_sampler_terminates_under_fault_plan(name, messages):
    r = run_faulted_sampler(messages)
    # termination with a bounded cascade: every rollback resamples work,
    # so rollbacks can never exceed the work actually performed
    total_sampled = sum(r.iterations_sampled)
    assert total_sampled > 0
    assert r.rollback.rollbacks < total_sampled
    assert r.converged


def test_duplicated_messages_are_counted_and_dropped():
    r = run_faulted_sampler(MessageFaults(duplicate=0.2))
    assert r.rollback.duplicate_messages > 0


def test_fault_free_counters_stay_zero():
    r = run_faulted_sampler(MessageFaults())
    assert r.rollback.duplicate_messages == 0
    assert r.rollback.stale_corrections == 0
