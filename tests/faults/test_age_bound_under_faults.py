"""Property (b): Global_Read never violates its age bound under faults.

The paper's §2 contract — a Global_Read(curr_iter, age) may only return
a copy with ``copy.age >= curr_iter - age`` — must hold not just on a
healthy network but under message drop, duplication, delay and reorder.
The DSM enforces it by construction (the blocking loop re-checks the
bound after every drain), so faults may slow readers down but can never
surface an over-stale value.

The producer writes ~3x more iterations than the reader consumes so a
dropped update is always followed by fresher ones and no plan here can
starve the reader into deadlock.
"""

import pytest

from repro.cluster import Machine, MachineConfig
from repro.core import ConsistencyChecker, Dsm, SharedLocationSpec
from repro.faults import FaultPlan, MessageFaults, NodeFault
from repro.sim import Compute

READER_ITERS = 30
WRITER_ITERS = 3 * READER_ITERS
AGE = 5

PLANS = {
    "drop": MessageFaults(drop=0.3),
    "duplicate": MessageFaults(duplicate=0.3),
    "delay": MessageFaults(delay=0.4, delay_s=(0.5e-3, 4e-3)),
    "reorder": MessageFaults(reorder=0.4),
    "mixed": MessageFaults(drop=0.1, duplicate=0.1, delay=0.1, reorder=0.1),
    "drop-window": MessageFaults(drop=0.8, start=0.005, stop=0.03),
}


def run_faulted(plan, seed=0, age=AGE, node_faults=()):
    m = Machine(
        MachineConfig(
            n_nodes=2,
            seed=seed,
            faults=FaultPlan(seed=seed, messages=plan, node_faults=node_faults),
        )
    )
    dsm = Dsm(m.vm)
    dsm.checker = ConsistencyChecker()
    dsm.register(SharedLocationSpec("x", writer=0, readers=(1,), value_nbytes=64))
    log = []

    def writer(node, task):
        dnode = dsm.node(0)
        for i in range(WRITER_ITERS):
            yield Compute(node.cost(0.001))
            yield from dnode.write("x", value=i, iter_no=i)

    def reader(node, task):
        dnode = dsm.node(1)
        for i in range(READER_ITERS):
            copy = yield from dnode.global_read("x", curr_iter=i, age=age)
            log.append((i, copy.age))
            yield Compute(node.cost(0.001))

    m.spawn_on(0, writer)
    m.spawn_on(1, reader)
    m.run_to_completion()
    return m, dsm, log


@pytest.mark.parametrize("name", sorted(PLANS))
def test_age_bound_holds_under_message_faults(name):
    m, dsm, log = run_faulted(PLANS[name])
    assert len(log) == READER_ITERS
    for curr, got in log:
        assert got >= curr - AGE, f"{name}: read age {got} at iter {curr}"
    assert dsm.checker.ok, dsm.checker.report()
    assert dsm.checker.total_violations == 0


@pytest.mark.parametrize("name", ["drop", "mixed", "drop-window"])
def test_lossy_plans_really_lose_updates(name):
    # the property above is vacuous if nothing was actually dropped
    m, _, _ = run_faulted(PLANS[name])
    assert m.faults is not None
    assert m.faults.stats.dropped > 0


def test_age_bound_holds_under_node_faults():
    faults = (
        NodeFault(node=0, kind="pause", start=0.01, duration=0.01),
        NodeFault(node=1, kind="slowdown", start=0.03, duration=0.02, factor=2.0),
    )
    m, dsm, log = run_faulted(MessageFaults(), node_faults=faults)
    assert len(log) == READER_ITERS
    for curr, got in log:
        assert got >= curr - AGE
    assert dsm.checker.ok, dsm.checker.report()
    # the pause really stalled the writer
    assert m.faults.node_models[0].stall_time > 0


def test_faulted_run_is_deterministic():
    r1 = run_faulted(PLANS["mixed"], seed=4)
    r2 = run_faulted(PLANS["mixed"], seed=4)
    assert r1[2] == r2[2]
    assert r1[0].faults.stats.as_dict() == r2[0].faults.stats.as_dict()
    assert r1[0].kernel.now == r2[0].kernel.now


def test_tighter_age_still_respected_under_drops():
    _, dsm, log = run_faulted(PLANS["drop"], age=1)
    for curr, got in log:
        assert got >= curr - 1
    assert dsm.checker.ok, dsm.checker.report()
