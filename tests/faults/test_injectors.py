"""Unit tests for the message and node fault injectors."""

import pytest

from repro.faults import FaultPlan, MessageFaults, NodeFault, NodeFaultModel, install_faults
from repro.network.ethernet import EthernetNetwork
from repro.network.frame import Frame
from repro.sim import Kernel


class StubNode:
    def __init__(self, node_id):
        self.node_id = node_id
        self.fault_model = None


def traffic(plan, n_frames=40, n_nodes=3, interval=0.5e-3, size=400):
    """Run a small frame mill under ``plan``; returns (delivered, injector)."""
    kernel = Kernel(seed=5)
    net = EthernetNetwork(kernel)
    delivered = []
    for i in range(n_nodes):
        net.attach(i, (lambda dst: lambda f: delivered.append((kernel.now, f.src, dst)))(i))
    injector = install_faults(
        kernel, net, [StubNode(i) for i in range(n_nodes)], plan
    )

    def send(k):
        src = k % n_nodes
        net.adapters[src].send(
            Frame(src=src, dst=(src + 1) % n_nodes, size_bytes=size)
        )
        if k + 1 < n_frames:
            kernel.schedule(interval, send, k + 1)

    kernel.schedule(0.0, send, 0)
    kernel.run()
    return delivered, injector


def plan_of(**rates):
    return FaultPlan(seed=3, messages=MessageFaults(**rates))


def test_noop_plan_changes_nothing():
    baseline, _ = traffic(plan_of())
    again, inj = traffic(plan_of())
    assert baseline == again
    assert inj.stats.eligible == 0  # no rates -> dice never rolled


def test_drop_all_loses_everything_inside_window():
    delivered, inj = traffic(plan_of(drop=1.0, stop=0.01), n_frames=40)
    assert inj.stats.dropped > 0
    # frames sent after the window close still arrive
    assert delivered
    assert all(t >= 0.01 for (t, _, _) in delivered)
    assert len(delivered) + inj.stats.dropped == 40


def test_duplicate_all_delivers_exactly_twice():
    from collections import Counter

    baseline, _ = traffic(plan_of())
    delivered, inj = traffic(plan_of(duplicate=1.0))
    assert inj.stats.duplicated == len(baseline)
    assert len(delivered) == 2 * len(baseline)
    # every stream carries exactly twice its fault-free frame count
    base_pairs = Counter((s, d) for (_, s, d) in baseline)
    dup_pairs = Counter((s, d) for (_, s, d) in delivered)
    assert dup_pairs == {pair: 2 * n for pair, n in base_pairs.items()}


def test_delay_preserves_count_and_adds_latency():
    from collections import Counter

    baseline, _ = traffic(plan_of())
    delivered, inj = traffic(plan_of(delay=1.0, delay_s=(0.01, 0.02)))
    assert inj.stats.delayed == len(baseline)
    assert len(delivered) == len(baseline)
    assert Counter((s, d) for (_, s, d) in delivered) == Counter(
        (s, d) for (_, s, d) in baseline
    )
    # every frame was held at least the minimum extra latency
    assert min(t for (t, _, _) in delivered) >= (
        min(t for (t, _, _) in baseline) + 0.01 - 1e-12
    )


def test_reorder_is_lossless():
    baseline, _ = traffic(plan_of())
    delivered, inj = traffic(plan_of(reorder=0.5))
    assert inj.stats.reordered > 0
    assert sorted((s, d) for (_, s, d) in delivered) == sorted(
        (s, d) for (_, s, d) in baseline
    )
    assert inj.messages.pending_held() == 0  # safety flush released the rest


def test_same_plan_seed_is_bit_identical():
    plan = plan_of(drop=0.1, duplicate=0.1, delay=0.1, reorder=0.1)
    d1, i1 = traffic(plan)
    d2, i2 = traffic(plan)
    assert d1 == d2
    assert i1.log.digest_fields() == i2.log.digest_fields()
    assert i1.stats.as_dict() == i2.stats.as_dict()


def test_different_plan_seed_rerolls_decisions():
    plan = plan_of(drop=0.3)
    _, i1 = traffic(plan)
    _, i2 = traffic(plan.with_seed(99))
    assert i1.log.rows() != i2.log.rows()


def test_kinds_filter_restricts_faults():
    plan = FaultPlan(seed=3, messages=MessageFaults(drop=1.0, kinds=("pvm",)))
    delivered, inj = traffic(plan)  # traffic frames are kind="data"
    assert inj.stats.eligible == 0
    assert len(delivered) == 40


def test_barrier_tagged_pvm_frames_are_protected():
    class Msg:
        tag = -1000

    kernel = Kernel(seed=0)
    net = EthernetNetwork(kernel)
    net.attach(0, lambda f: None)
    net.attach(1, lambda f: None)
    inj = install_faults(kernel, net, [], plan_of(drop=1.0))
    barrier = Frame(src=0, dst=1, size_bytes=10, kind="pvm", payload=(7, 0, 1, Msg()))
    assert not inj.messages._eligible(barrier)

    class Data(Msg):
        tag = 42

    plain = Frame(src=0, dst=1, size_bytes=10, kind="pvm", payload=(8, 0, 1, Data()))
    assert inj.messages._eligible(plain)


def test_fault_log_is_bounded():
    from repro.faults.injectors import FaultEvent, FaultLog

    log = FaultLog(max_events=2)
    for i in range(5):
        log.add(FaultEvent(time=float(i), kind="drop", src=0, dst=1,
                           frame_kind="data", frame_id=i))
    assert len(log) == 2
    assert log.dropped_records == 3
    assert log.digest_fields()[-1] == 3  # the overflow count is digested


def test_observer_sees_every_fault():
    events = []

    class Obs:
        def on_fault(self, kind, frame, time):
            events.append(kind)

    plan = plan_of(drop=0.2, duplicate=0.2, delay=0.2, reorder=0.2)
    kernel = Kernel(seed=5)
    net = EthernetNetwork(kernel)
    for i in range(2):
        net.attach(i, lambda f: None)
    inj = install_faults(kernel, net, [], plan)
    inj.observer = Obs()

    def send(k):
        net.adapters[0].send(Frame(src=0, dst=1, size_bytes=100))
        if k + 1 < 60:
            kernel.schedule(0.3e-3, send, k + 1)

    kernel.schedule(0.0, send, 0)
    kernel.run()
    assert len(events) == len(inj.log)
    assert {"drop", "duplicate", "delay", "reorder"} <= set(events)


# ---------------------------------------------------------------------------
# Node fault model
# ---------------------------------------------------------------------------

def test_pause_window_stalls_overlapping_work():
    model = NodeFaultModel((NodeFault(node=0, kind="pause", start=1.0, duration=1.0),))
    assert model.perturb(0.0, 0.5) == 0.5          # finishes before the window
    assert model.perturb(2.5, 1.0) == 1.0          # starts after the window
    assert model.perturb(0.5, 1.0) == pytest.approx(2.0)   # 0.5 work, 1.0 stall, 0.5 work
    assert model.perturb(1.2, 0.3) == pytest.approx(1.1)   # starts mid-pause
    assert model.stall_time > 0


def test_slowdown_stretches_overlap_by_factor():
    model = NodeFaultModel(
        (NodeFault(node=0, kind="slowdown", start=1.0, duration=1.0, factor=3.0),)
    )
    assert model.perturb(1.0, 0.5) == pytest.approx(1.5)   # fully inside: 3x
    assert model.perturb(0.0, 0.5) == 0.5                  # fully outside
    # half in, half out: 0.5 normal + 0.5 stretched to 1.5
    assert model.perturb(0.5, 1.0) == pytest.approx(2.0)


def test_cascading_pause_windows_accumulate():
    model = NodeFaultModel(
        (
            NodeFault(node=0, kind="pause", start=1.0, duration=1.0),
            NodeFault(node=0, kind="pause", start=2.5, duration=0.5),
        )
    )
    # 0.1 work by t=1, paused to 2, 0.6 more crosses 2.5, paused to 3 -> 3.1
    assert model.perturb(0.9, 0.7) == pytest.approx(2.2)


def test_crash_flushes_queued_egress_frames():
    # saturate the shared medium so node 0's adapter has queued frames at
    # the crash instant, then verify they are counted lost, not delivered
    kernel = Kernel(seed=1)
    net = EthernetNetwork(kernel)
    delivered = []
    net.attach(0, lambda f: None)
    net.attach(1, lambda f: delivered.append(f.frame_id))
    plan = FaultPlan(
        seed=0,
        node_faults=(NodeFault(node=0, kind="crash", start=0.5e-3, duration=1e-3),),
    )
    nodes = [StubNode(0), StubNode(1)]
    inj = install_faults(kernel, net, nodes, plan)

    def burst():
        for _ in range(20):
            net.adapters[0].send(Frame(src=0, dst=1, size_bytes=1400))

    kernel.schedule(0.0, burst)
    kernel.run()
    assert inj.stats.crash_frames_lost > 0
    assert len(delivered) == 20 - inj.stats.crash_frames_lost
    assert nodes[0].fault_model is not None  # pause semantics also installed


def test_machine_config_wires_faults_end_to_end():
    from repro.cluster import Machine, MachineConfig

    plan = FaultPlan.parse("drop=0.1,seed=2")
    m = Machine(MachineConfig(n_nodes=2, seed=0, faults=plan))
    assert m.faults is not None
    assert getattr(m.network, "fault_injector", None) is m.faults.messages
    healthy = Machine(MachineConfig(n_nodes=2, seed=0))
    assert healthy.faults is None
    noop = Machine(MachineConfig(n_nodes=2, seed=0, faults=FaultPlan.none()))
    assert noop.faults is None
