"""SharedLocationSpec validation and AgeBuffer semantics."""

import pytest

from repro.core import AgeBuffer, SharedLocationSpec, VersionedValue


class TestSpec:
    def test_valid_spec(self):
        spec = SharedLocationSpec("migrants.0", writer=0, readers=(1, 2), value_nbytes=100)
        assert spec.readers == (1, 2)

    def test_writer_in_readers_rejected(self):
        with pytest.raises(ValueError, match="reader set"):
            SharedLocationSpec("x", writer=0, readers=(0, 1))

    def test_duplicate_readers_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SharedLocationSpec("x", writer=0, readers=(1, 1))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            SharedLocationSpec("", writer=0, readers=(1,))

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            SharedLocationSpec("x", writer=0, readers=(1,), value_nbytes=0)

    def test_empty_reader_set_allowed(self):
        # a location nobody reads is legal (e.g. instrumentation)
        spec = SharedLocationSpec("x", writer=0, readers=())
        assert spec.readers == ()


class TestVersionedValue:
    def test_newer_comparison(self):
        old = VersionedValue(1, age=3, write_time=0.0)
        new = VersionedValue(2, age=4, write_time=1.0)
        assert new.is_newer_than(old)
        assert not old.is_newer_than(new)
        assert old.is_newer_than(None)

    def test_equal_age_is_not_newer(self):
        a = VersionedValue(1, age=3, write_time=0.0)
        b = VersionedValue(2, age=3, write_time=1.0)
        assert not b.is_newer_than(a)


class TestAgeBuffer:
    def test_update_and_get(self):
        buf = AgeBuffer(owner=1)
        assert buf.get("x") is None
        assert buf.age_of("x") is None
        assert buf.update("x", "v1", age=1, write_time=0.0, now=0.5)
        assert buf.get("x").value == "v1"
        assert buf.age_of("x") == 1
        assert "x" in buf and len(buf) == 1

    def test_newer_replaces_older(self):
        buf = AgeBuffer(owner=1)
        buf.update("x", "v1", age=1, write_time=0.0, now=0.5)
        assert buf.update("x", "v3", age=3, write_time=1.0, now=1.5)
        assert buf.get("x").value == "v3"
        assert buf.updates_applied == 2

    def test_stale_arrival_dropped(self):
        """Out-of-order arrival with smaller age never regresses the copy."""
        buf = AgeBuffer(owner=1)
        buf.update("x", "v5", age=5, write_time=2.0, now=2.5)
        assert not buf.update("x", "v2", age=2, write_time=0.5, now=2.6)
        assert buf.get("x").value == "v5"
        assert buf.updates_dropped_stale == 1

    def test_refresh_fires_signal(self):
        buf = AgeBuffer(owner=1)
        fired = []

        class Probe:
            def fire(self):
                fired.append(True)

        buf.refresh_signal = Probe()
        buf.update("x", "v", age=1, write_time=0.0, now=0.0)
        assert fired == [True]
        # a stale drop must not fire
        buf.update("x", "old", age=0, write_time=0.0, now=0.1)
        assert fired == [True]

    def test_locations_are_independent(self):
        buf = AgeBuffer(owner=1)
        buf.update("x", 1, age=10, write_time=0.0, now=0.0)
        buf.update("y", 2, age=1, write_time=0.0, now=0.0)
        assert buf.age_of("x") == 10
        assert buf.age_of("y") == 1
