"""The staleness predicate and Global_Read statistics, incl. property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import GlobalReadStats, satisfies_age_bound


class TestPredicate:
    def test_exact_boundary_satisfies(self):
        # value from iteration curr-age is the oldest acceptable one
        assert satisfies_age_bound(copy_age=5, curr_iter=10, age=5)

    def test_one_older_than_boundary_fails(self):
        assert not satisfies_age_bound(copy_age=4, curr_iter=10, age=5)

    def test_age_zero_requires_current_iteration(self):
        assert satisfies_age_bound(copy_age=10, curr_iter=10, age=0)
        assert not satisfies_age_bound(copy_age=9, curr_iter=10, age=0)

    def test_future_value_satisfies(self):
        # the producer may be ahead of the reader; newer is always fine
        assert satisfies_age_bound(copy_age=20, curr_iter=10, age=0)

    def test_missing_copy_never_satisfies(self):
        assert not satisfies_age_bound(None, curr_iter=0, age=100)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            satisfies_age_bound(0, curr_iter=1, age=-1)
        with pytest.raises(ValueError):
            satisfies_age_bound(0, curr_iter=-1, age=1)

    def test_early_iterations_always_satisfied_with_large_age(self):
        # curr_iter - age < 0: any existing copy qualifies
        assert satisfies_age_bound(copy_age=0, curr_iter=3, age=10)

    @given(
        copy_age=st.integers(min_value=0, max_value=10**6),
        curr_iter=st.integers(min_value=0, max_value=10**6),
        age=st.integers(min_value=0, max_value=10**6),
    )
    def test_property_monotone_in_age(self, copy_age, curr_iter, age):
        """Loosening the bound can only turn unsatisfied into satisfied."""
        if satisfies_age_bound(copy_age, curr_iter, age):
            assert satisfies_age_bound(copy_age, curr_iter, age + 1)

    @given(
        copy_age=st.integers(min_value=0, max_value=10**6),
        curr_iter=st.integers(min_value=0, max_value=10**6),
        age=st.integers(min_value=0, max_value=10**6),
    )
    def test_property_monotone_in_copy_age(self, copy_age, curr_iter, age):
        """A strictly fresher copy never breaks a satisfied bound."""
        if satisfies_age_bound(copy_age, curr_iter, age):
            assert satisfies_age_bound(copy_age + 1, curr_iter, age)

    @given(
        copy_age=st.integers(min_value=0, max_value=10**6),
        curr_iter=st.integers(min_value=0, max_value=10**6),
    )
    def test_property_age_zero_equals_at_least_current(self, copy_age, curr_iter):
        assert satisfies_age_bound(copy_age, curr_iter, 0) == (copy_age >= curr_iter)


class TestStats:
    def test_hit_rate_and_block_means(self):
        s = GlobalReadStats(calls=10, hits=7, blocked=3, block_time=0.6)
        assert s.hit_rate == pytest.approx(0.7)
        assert s.mean_block_time == pytest.approx(0.2)

    def test_zero_division_guards(self):
        s = GlobalReadStats()
        assert s.hit_rate == 0.0
        assert s.mean_block_time == 0.0

    def test_staleness_histogram_records(self):
        s = GlobalReadStats()
        s.record_return(curr_iter=10, copy_age=8)
        s.record_return(curr_iter=10, copy_age=8)
        s.record_return(curr_iter=10, copy_age=12)  # future value -> 0
        assert s.staleness_histogram == {2: 2, 0: 1}

    def test_merge_adds_counters_and_histograms(self):
        a = GlobalReadStats(calls=2, hits=1, blocked=1, block_time=0.5, requests_sent=1)
        a.staleness_histogram = {0: 1, 2: 1}
        b = GlobalReadStats(calls=3, hits=3)
        b.staleness_histogram = {2: 2}
        m = a.merge(b)
        assert m.calls == 5 and m.hits == 4 and m.blocked == 1
        assert m.block_time == 0.5 and m.requests_sent == 1
        assert m.staleness_histogram == {0: 1, 2: 3}
        # merge must not mutate inputs
        assert a.staleness_histogram == {0: 1, 2: 1}
