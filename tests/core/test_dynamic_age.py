"""Dynamic age adaptation (§6 future work): controller + end-to-end."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic_age import DynamicAgeController


class TestController:
    def test_blocking_raises_age_additively(self):
        c = DynamicAgeController(initial_age=4, window=2, increase_step=3)
        c.observe(blocked=True, staleness=0)
        assert c.age == 4  # mid-window: unchanged
        c.observe(blocked=False, staleness=0)
        assert c.age == 7

    def test_slack_lowers_age_multiplicatively(self):
        c = DynamicAgeController(initial_age=16, window=2, decrease_factor=0.5, slack=2)
        for _ in range(2):
            c.observe(blocked=False, staleness=1)  # 16 - 1 >= slack
        assert c.age == 8

    def test_borderline_staleness_keeps_age(self):
        c = DynamicAgeController(initial_age=6, window=2, slack=2)
        for _ in range(2):
            c.observe(blocked=False, staleness=5)  # within slack of the bound
        assert c.age == 6

    def test_clamped_to_bounds(self):
        c = DynamicAgeController(initial_age=59, max_age=60, window=1, increase_step=5)
        c.observe(blocked=True, staleness=0)
        assert c.age == 60
        c2 = DynamicAgeController(initial_age=1, min_age=0, window=1)
        c2.observe(blocked=False, staleness=0)
        c2.observe(blocked=False, staleness=0)
        assert c2.age >= 0

    def test_adjustments_logged(self):
        c = DynamicAgeController(initial_age=4, window=1)
        c.observe(blocked=True, staleness=0)
        assert c.adjustments == [(4, 6)]

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicAgeController(initial_age=99, max_age=10)
        with pytest.raises(ValueError):
            DynamicAgeController(window=0)
        with pytest.raises(ValueError):
            DynamicAgeController(decrease_factor=1.5)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=100)),
            max_size=200,
        )
    )
    def test_property_age_always_in_bounds(self, events):
        c = DynamicAgeController(initial_age=10, min_age=0, max_age=40)
        for blocked, staleness in events:
            age = c.observe(blocked, staleness)
            assert 0 <= age <= 40


class TestEndToEnd:
    def test_dynamic_age_island_ga_runs_and_adapts(self):
        from repro.cluster import MachineConfig
        from repro.core.coherence import CoherenceMode
        from repro.ga import IslandGaConfig, get_function, run_island_ga

        r = run_island_ga(
            IslandGaConfig(
                fn=get_function(1),
                n_demes=4,
                mode=CoherenceMode.NON_STRICT,
                age=5,
                dynamic_age=True,
                n_generations=50,
                seed=8,
                machine=MachineConfig(n_nodes=4, seed=8).with_load(6e6),
            )
        )
        assert r.generations_run == [50] * 4
        # under heavy load the bound must stay satisfied throughout
        assert r.gr_stats.calls == 4 * 3 * 50
