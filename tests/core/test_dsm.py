"""Integration tests for the DSM runtime and Global_Read.

These drive real producer/consumer processes over the simulated Ethernet
and check the paper's §2 semantics end to end.
"""

import pytest

from repro.cluster import Machine, MachineConfig
from repro.core import (
    ConsistencyChecker,
    Dsm,
    GlobalReadMode,
    SharedLocationSpec,
    UpdatePolicy,
)
from repro.sim import Compute, DeadlockError, ProcessFailure


def build(n_nodes=2, seed=0, mode=GlobalReadMode.WAIT, policy=UpdatePolicy.EAGER,
          check=True, **machine_kw):
    m = Machine(MachineConfig(n_nodes=n_nodes, seed=seed, **machine_kw))
    dsm = Dsm(m.vm, mode=mode, update_policy=policy)
    if check:
        dsm.checker = ConsistencyChecker()
    return m, dsm


def producer(dsm, tid, locn, n_iters, dt):
    """Writes its iteration number each iteration."""

    def proc(node, task):
        dnode = dsm.node(tid)
        for i in range(n_iters):
            yield Compute(node.cost(dt))
            yield from dnode.write(locn, value=i, iter_no=i)

    return proc


def gr_consumer(dsm, tid, locn, n_iters, age, dt, log):
    def proc(node, task):
        dnode = dsm.node(tid)
        for i in range(n_iters):
            copy = yield from dnode.global_read(locn, curr_iter=i, age=age)
            log.append((i, copy.age))
            yield Compute(node.cost(dt))

    return proc


def test_global_read_returns_within_bound_fast_producer():
    m, dsm = build()
    dsm.register(SharedLocationSpec("x", writer=0, readers=(1,), value_nbytes=64))
    log = []
    m.spawn_on(0, producer(dsm, 0, "x", n_iters=30, dt=0.001))
    m.spawn_on(1, gr_consumer(dsm, 1, "x", n_iters=30, age=5, dt=0.001, log=log))
    m.run_to_completion()
    assert len(log) == 30
    for curr, got in log:
        assert got >= curr - 5
    assert dsm.checker.ok, dsm.checker.report()


def test_global_read_blocks_when_producer_slow():
    """Consumer 10x faster than producer: Global_Read must throttle it."""
    m, dsm = build()
    dsm.register(SharedLocationSpec("x", writer=0, readers=(1,), value_nbytes=64))
    log = []
    m.spawn_on(0, producer(dsm, 0, "x", n_iters=20, dt=0.05))
    m.spawn_on(1, gr_consumer(dsm, 1, "x", n_iters=20, age=3, dt=0.005, log=log))
    t = m.run_to_completion()
    stats = dsm.node(1).gr_stats
    assert stats.blocked > 0
    assert stats.block_time > 0
    # throttled to roughly the producer's pace
    assert t == pytest.approx(20 * 0.05, rel=0.2)
    assert dsm.checker.ok, dsm.checker.report()


def test_age_zero_lockstep_without_barrier():
    m, dsm = build()
    dsm.register(SharedLocationSpec("x", writer=0, readers=(1,), value_nbytes=64))
    log = []
    m.spawn_on(0, producer(dsm, 0, "x", n_iters=10, dt=0.01))
    m.spawn_on(1, gr_consumer(dsm, 1, "x", n_iters=10, age=0, dt=0.001, log=log))
    m.run_to_completion()
    # age=0: every read sees at least the current iteration's value
    assert all(got >= curr for curr, got in log)


def test_larger_age_blocks_less():
    def blocks_for(age):
        m, dsm = build(seed=7)
        dsm.register(SharedLocationSpec("x", writer=0, readers=(1,), value_nbytes=64))
        log = []
        m.spawn_on(0, producer(dsm, 0, "x", n_iters=40, dt=0.01))
        m.spawn_on(1, gr_consumer(dsm, 1, "x", n_iters=40, age=age, dt=0.002, log=log))
        m.run_to_completion()
        return dsm.node(1).gr_stats.blocked

    assert blocks_for(0) >= blocks_for(5) >= blocks_for(20)
    assert blocks_for(0) > blocks_for(20)


def test_read_local_never_blocks_and_tolerates_missing():
    m, dsm = build()
    dsm.register(SharedLocationSpec("x", writer=0, readers=(1,), value_nbytes=64))
    got = []

    def consumer(node, task):
        dnode = dsm.node(1)
        copy = yield from dnode.read_local("x")  # nothing written yet
        got.append(copy)
        yield Compute(0.5)  # let some updates arrive
        copy = yield from dnode.read_local("x")
        got.append(copy)

    m.spawn_on(0, producer(dsm, 0, "x", n_iters=5, dt=0.01))
    m.spawn_on(1, consumer)
    m.run_to_completion()
    assert got[0] is None
    assert got[1] is not None and got[1].age >= 0


def test_only_writer_may_write():
    m, dsm = build()
    dsm.register(SharedLocationSpec("x", writer=0, readers=(1,)))

    def bad(node, task):
        yield from dsm.node(1).write("x", 1, 0)

    m.spawn_on(1, bad)
    with pytest.raises(ProcessFailure) as exc:
        m.run_to_completion()
    assert isinstance(exc.value.original, PermissionError)


def test_only_declared_reader_may_read():
    m, dsm = build(n_nodes=3)
    dsm.register(SharedLocationSpec("x", writer=0, readers=(1,)))

    def bad(node, task):
        yield from dsm.node(2).global_read("x", 0, 0)

    m.spawn_on(2, bad)
    with pytest.raises(ProcessFailure) as exc:
        m.run_to_completion()
    assert isinstance(exc.value.original, PermissionError)


def test_write_ages_must_increase():
    m, dsm = build()
    dsm.register(SharedLocationSpec("x", writer=0, readers=(1,)))

    def bad(node, task):
        dnode = dsm.node(0)
        yield from dnode.write("x", 1, 5)
        yield from dnode.write("x", 2, 5)

    m.spawn_on(0, bad)
    with pytest.raises(ProcessFailure, match="increase") as exc:
        m.run_to_completion()
    assert isinstance(exc.value.original, ValueError)


def test_unknown_location_and_duplicate_registration():
    m, dsm = build()
    spec = SharedLocationSpec("x", writer=0, readers=(1,))
    dsm.register(spec)
    with pytest.raises(ValueError):
        dsm.register(spec)
    with pytest.raises(KeyError):
        dsm.spec("y")
    with pytest.raises(KeyError):
        dsm.register(SharedLocationSpec("z", writer=0, readers=(9,)))


def test_reader_with_no_producer_deadlocks_cleanly():
    m, dsm = build()
    dsm.register(SharedLocationSpec("x", writer=0, readers=(1,)))

    def consumer(node, task):
        yield from dsm.node(1).global_read("x", 10, 0)

    def idle_writer(node, task):
        yield Compute(0.1)  # never writes

    m.spawn_on(0, idle_writer)
    m.spawn_on(1, consumer, name="blocked-reader")
    with pytest.raises(DeadlockError):
        m.run_to_completion()


def test_request_mode_daemon_defers_until_satisfying_write():
    m, dsm = build(mode=GlobalReadMode.REQUEST)
    dsm.register(SharedLocationSpec("x", writer=0, readers=(1,), value_nbytes=64))
    dsm.spawn_daemons()
    log = []

    def slow_producer(node, task):
        dnode = dsm.node(0)
        for i in range(5):
            yield Compute(0.1)
            yield from dnode.write("x", i, i)

    m.spawn_on(0, slow_producer)
    m.spawn_on(1, gr_consumer(dsm, 1, "x", n_iters=5, age=0, dt=0.001, log=log))
    m.run_to_completion()
    assert all(got >= curr for curr, got in log)
    stats = dsm.node(1).gr_stats
    assert stats.requests_sent > 0
    node0 = dsm.node(0)
    assert node0.stats.requests_served + node0.stats.requests_deferred > 0
    assert dsm.checker.ok, dsm.checker.report()


def test_request_mode_immediate_reply_when_value_exists():
    m, dsm = build(mode=GlobalReadMode.REQUEST, n_nodes=3)
    # node 2 is a late joiner: producer wrote before it ever read, and the
    # update propagation happened before it attached -> it must request.
    dsm.register(SharedLocationSpec("x", writer=0, readers=(1, 2), value_nbytes=64))
    dsm.spawn_daemons()
    got = []

    def prod(node, task):
        yield from dsm.node(0).write("x", "v", 7)

    def late_reader(node, task):
        yield Compute(1.0)
        # drop our copy to force the request path
        dsm.node(2).agebuf._copies.clear()
        copy = yield from dsm.node(2).global_read("x", 7, 0)
        got.append(copy.age)

    def other_reader(node, task):
        copy = yield from dsm.node(1).global_read("x", 7, 0)

    m.spawn_on(0, prod)
    m.spawn_on(1, other_reader)
    m.spawn_on(2, late_reader)
    m.run_to_completion()
    assert got == [7]


def test_coalesce_policy_reduces_updates_under_congestion():
    def updates_sent(policy):
        m, dsm = build(seed=3, policy=policy, check=False, loader_bps=(9e6,))
        dsm.register(SharedLocationSpec("x", writer=0, readers=(1,), value_nbytes=1400))

        def flushing_producer(node, task):
            dnode = dsm.node(0)
            for i in range(200):
                yield Compute(node.cost(0.0002))
                yield from dnode.write("x", value=i, iter_no=i)
            yield from dnode.flush()

        m.spawn_on(0, flushing_producer)

        def consumer(node, task):
            dnode = dsm.node(1)
            last = -1
            while last < 199:
                # age=0 at curr_iter=last+1 waits for a strictly newer value
                copy = yield from dnode.global_read("x", last + 1, 0)
                last = copy.age

        m.spawn_on(1, consumer)
        m.run_to_completion(until=1000.0)
        return dsm.node(0).stats

    eager = updates_sent(UpdatePolicy.EAGER)
    coal = updates_sent(UpdatePolicy.COALESCE)
    assert coal.updates_sent < eager.updates_sent
    assert coal.updates_coalesced > 0


def test_blocked_reader_sends_nothing_flow_control():
    """§1: the receiver process is throttled and cannot send its own
    messages while blocked -> program-level flow control."""
    m, dsm = build(n_nodes=2)
    dsm.register(SharedLocationSpec("a", writer=0, readers=(1,), value_nbytes=64))
    dsm.register(SharedLocationSpec("b", writer=1, readers=(0,), value_nbytes=64))

    def slow_peer(node, task):
        d = dsm.node(0)
        for i in range(10):
            yield Compute(0.1)
            yield from d.write("a", i, i)
            yield from d.global_read("b", i, 2)

    def fast_peer(node, task):
        d = dsm.node(1)
        for i in range(10):
            yield Compute(0.001)
            yield from d.write("b", i, i)
            yield from d.global_read("a", i, 2)

    m.spawn_on(0, slow_peer)
    m.spawn_on(1, fast_peer)
    m.run_to_completion()
    # The fast peer can run at most `age+1` iterations ahead, so its writes
    # are paced by the slow peer: total sends stay equal, but it spent most
    # of the run blocked rather than flooding.
    assert dsm.node(1).gr_stats.block_time > 0.5
    assert dsm.checker.ok, dsm.checker.report()


def test_merged_stats_across_nodes():
    m, dsm = build(n_nodes=3)
    dsm.register(SharedLocationSpec("x", writer=0, readers=(1, 2), value_nbytes=64))
    logs = [[], []]
    m.spawn_on(0, producer(dsm, 0, "x", n_iters=10, dt=0.01))
    m.spawn_on(1, gr_consumer(dsm, 1, "x", 10, age=2, dt=0.001, log=logs[0]))
    m.spawn_on(2, gr_consumer(dsm, 2, "x", 10, age=2, dt=0.001, log=logs[1]))
    m.run_to_completion()
    merged = dsm.merged_gr_stats()
    assert merged.calls == 20
    assert merged.calls == dsm.node(1).gr_stats.calls + dsm.node(2).gr_stats.calls
