"""Property-based verification of non-strict coherence.

Hypothesis generates random multi-producer/multi-consumer workloads
(random compute times, ages, iteration counts); every execution must
satisfy all four :mod:`repro.core.consistency` invariants.  This is the
strongest correctness evidence for the Global_Read implementation: the
staleness bound must hold under arbitrary interleavings, backlogs and
contention patterns.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine, MachineConfig
from repro.core import ConsistencyChecker, Dsm, SharedLocationSpec
from repro.core.consistency import Violation
from repro.sim import Compute


@st.composite
def workloads(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n_iters = draw(st.integers(min_value=1, max_value=15))
    # per-node: (compute_dt, age)
    params = [
        (
            draw(st.floats(min_value=1e-4, max_value=5e-2)),
            draw(st.integers(min_value=0, max_value=8)),
        )
        for _ in range(n_nodes)
    ]
    return n_nodes, seed, n_iters, params


@settings(max_examples=25, deadline=None)
@given(workloads())
def test_random_all_to_all_workloads_are_consistent(wl):
    """All-to-all: every node writes its own location and global_reads all
    others each iteration, with random paces and staleness bounds."""
    n_nodes, seed, n_iters, params = wl
    m = Machine(MachineConfig(n_nodes=n_nodes, seed=seed))
    dsm = Dsm(m.vm)
    dsm.checker = ConsistencyChecker()
    for w in range(n_nodes):
        readers = tuple(r for r in range(n_nodes) if r != w)
        dsm.register(SharedLocationSpec(f"loc.{w}", writer=w, readers=readers, value_nbytes=40))

    def peer(tid):
        dt, age = params[tid]

        def proc(node, task):
            dnode = dsm.node(tid)
            for i in range(n_iters):
                yield Compute(node.cost(dt))
                yield from dnode.write(f"loc.{tid}", value=(tid, i), iter_no=i)
                for other in range(n_nodes):
                    if other != tid:
                        copy = yield from dnode.global_read(f"loc.{other}", i, age)
                        assert copy.age >= i - age

        return proc

    for tid in range(n_nodes):
        m.spawn_on(tid, peer(tid))
    m.run_to_completion(until=10_000.0)
    assert dsm.checker.ok, dsm.checker.report()
    # every read the checker saw was a global_read within bound
    assert dsm.checker.reads_checked > 0
    assert dsm.checker.writes_checked == n_nodes * n_iters


def test_checker_flags_staleness_violation_directly():
    c = ConsistencyChecker()
    c.on_write("x", 1, 0.0)
    c.on_read(reader=1, locn="x", returned_age=1, time=1.0, curr_iter=10, age_bound=2)
    assert not c.ok
    kinds = {v.invariant for v in c.violations}
    assert "staleness-bound" in kinds


def test_checker_flags_phantom_and_nonmonotone_reads():
    c = ConsistencyChecker()
    c.on_write("x", 5, 0.0)
    c.on_read(1, "x", returned_age=4, time=1.0)  # never written
    c.on_write("x", 6, 2.0)
    c.on_read(1, "x", returned_age=6, time=3.0)
    c.on_read(1, "x", returned_age=5, time=4.0)  # went backwards
    kinds = [v.invariant for v in c.violations]
    assert "no-phantom-values" in kinds
    assert "monotone-reads" in kinds


def test_checker_flags_nonmonotone_writes():
    c = ConsistencyChecker()
    c.on_write("x", 3, 0.0)
    c.on_write("x", 3, 1.0)
    assert [v.invariant for v in c.violations] == ["producer-monotonicity"]


def test_checker_report_formats():
    c = ConsistencyChecker()
    assert "OK" in c.report()
    c.on_write("x", 5, 0.0)
    c.on_read(1, "x", returned_age=4, time=1.0)  # phantom
    assert "no-phantom-values" in c.report()


def test_violation_carries_reader_id():
    c = ConsistencyChecker()
    c.on_write("x", 5, 0.0)
    c.on_read(reader=3, locn="x", returned_age=4, time=1.0)  # phantom
    assert c.violations[0].reader == 3
    assert "reader=3" in c.report()
    # write-side invariants have no reader
    c.on_write("x", 5, 2.0)
    monotone = [v for v in c.violations if v.invariant == "producer-monotonicity"]
    assert monotone and monotone[0].reader is None
    # positional construction (pre-reader-field call sites) still works
    v = Violation("staleness-bound", "x", "detail", 1.0)
    assert v.reader is None


def test_violations_dedup_per_key_and_count_everything():
    c = ConsistencyChecker()
    c.on_write("x", 5, 0.0)
    n = 50
    for i in range(n):
        c.on_read(reader=1, locn="x", returned_age=4 - i, time=float(i))
    # phantom fires every read; monotone-reads from the second on
    from repro.core.consistency import PER_KEY_LIMIT

    phantom_stored = [v for v in c.violations if v.invariant == "no-phantom-values"]
    assert len(phantom_stored) == PER_KEY_LIMIT
    assert c.violation_counts[("no-phantom-values", "x")] == n
    assert c.violations_dropped > 0
    assert not c.ok
    assert c.total_violations == sum(c.violation_counts.values())


def test_violations_hard_cap_bounds_memory():
    c = ConsistencyChecker(max_violations=10)
    c.on_write("x", 100, 0.0)
    # distinct readers defeat per-key dedup, so the hard cap must hold
    for reader in range(500):
        c.on_read(reader=reader, locn="x", returned_age=0, time=1.0)
    assert len(c.violations) == 10
    assert c.total_violations >= 500
    assert not c.ok


def test_report_says_it_truncates():
    c = ConsistencyChecker()
    c.on_write("x", 100, 0.0)
    for reader in range(30):
        c.on_read(reader=reader, locn="x", returned_age=0, time=1.0)
    text = c.report()
    assert "showing first 20" in text
    assert "omitted" in text
    # the truncation message is accurate about the totals
    assert f"{c.total_violations} violation(s)" in text
