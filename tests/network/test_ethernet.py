"""Ethernet model: serialization, contention, broadcast, statistics."""

import pytest

from repro.network import BROADCAST, EthernetConfig, EthernetNetwork, Frame
from repro.sim import Kernel


def make_net(n_nodes=4, seed=0, config=None):
    kernel = Kernel(seed=seed)
    net = EthernetNetwork(kernel, config=config)
    inboxes = {i: [] for i in range(n_nodes)}
    for i in range(n_nodes):
        net.attach(i, inboxes[i].append)
    return kernel, net, inboxes


def test_single_frame_latency_matches_model():
    kernel, net, inboxes = make_net()
    cfg = net.config
    frame = Frame(src=0, dst=1, size_bytes=1000)
    net.adapters[0].send(frame)
    kernel.run()
    assert inboxes[1] == [frame]
    expected = cfg.ifg + cfg.tx_time(1000) + cfg.prop_delay
    assert frame.deliver_time == pytest.approx(expected)


def test_tx_time_min_frame_padding():
    cfg = EthernetConfig()
    # payloads below the 46-byte minimum are padded on the wire
    assert cfg.tx_time(1) == cfg.tx_time(46)
    assert cfg.tx_time(47) > cfg.tx_time(46)


def test_tx_time_10mbps_scale():
    cfg = EthernetConfig()
    # 1000 B payload + 26 B overhead = 8208 bits / 10 Mbps = 820.8 us
    assert cfg.tx_time(1000) == pytest.approx(8208e-7)


def test_mtu_enforced():
    kernel, net, _ = make_net()
    with pytest.raises(ValueError):
        net.adapters[0].send(Frame(src=0, dst=1, size_bytes=2000))
    with pytest.raises(ValueError):
        EthernetConfig().tx_time(1501)


def test_frames_serialize_on_shared_medium():
    """Two frames from different senders must not overlap in time."""
    kernel, net, inboxes = make_net()
    f1 = Frame(src=0, dst=2, size_bytes=1500)
    f2 = Frame(src=1, dst=3, size_bytes=1500)
    net.adapters[0].send(f1)
    net.adapters[1].send(f2)
    kernel.run()
    first, second = sorted([f1, f2], key=lambda f: f.tx_start_time)
    tx = net.config.tx_time(1500)
    assert second.tx_start_time >= first.tx_start_time + tx
    assert net.stats.contended_acquisitions >= 1


def test_queueing_delay_grows_with_backlog():
    kernel, net, _ = make_net()
    frames = [Frame(src=0, dst=1, size_bytes=1500) for _ in range(10)]
    for f in frames:
        net.adapters[0].send(f)
    kernel.run()
    delays = [f.queueing_delay for f in frames]
    assert delays == sorted(delays)
    assert delays[-1] > delays[0]


def test_broadcast_delivered_to_all_others_single_transmission():
    kernel, net, inboxes = make_net(n_nodes=5)
    frame = Frame(src=2, dst=BROADCAST, size_bytes=100)
    net.adapters[2].send(frame)
    kernel.run()
    for i in range(5):
        if i == 2:
            assert inboxes[i] == []
        else:
            assert inboxes[i] == [frame]
    assert net.stats.frames_sent == 1
    assert net.stats.broadcasts == 1


def test_round_robin_fairness_under_contention():
    """With all nodes continuously backlogged, each node gets medium turns."""
    kernel, net, inboxes = make_net(n_nodes=4, seed=1)
    order = []
    net.observe_deliveries(lambda f: order.append(f.src))
    for node in range(4):
        for _ in range(5):
            if node != 3:
                net.adapters[node].send(Frame(src=node, dst=3, size_bytes=1500))
            else:
                net.adapters[node].send(Frame(src=3, dst=0, size_bytes=1500))
    kernel.run()
    # every sender transmitted all its frames
    assert sorted(set(order)) == [0, 1, 2, 3]
    # no sender monopolised the first 8 slots
    assert len(set(order[:8])) >= 3


def test_utilization_and_counters():
    kernel, net, _ = make_net()
    for _ in range(3):
        net.adapters[0].send(Frame(src=0, dst=1, size_bytes=1000))
    kernel.run()
    s = net.stats
    assert s.frames_sent == 3
    assert s.bytes_sent == 3000
    assert s.wire_bytes_sent == 3 * 1026
    assert 0 < s.utilization(kernel.now) <= 1.0


def test_deterministic_across_runs():
    def run_once():
        kernel, net, _ = make_net(n_nodes=4, seed=99)
        times = []
        net.observe_deliveries(lambda f: times.append((f.frame_id, f.deliver_time)))
        for node in range(3):
            for _ in range(4):
                net.adapters[node].send(Frame(src=node, dst=3, size_bytes=700))
        kernel.run()
        return [t for _, t in times]

    assert run_once() == run_once()


def test_frame_to_self_rejected():
    with pytest.raises(ValueError):
        Frame(src=1, dst=1, size_bytes=10)


def test_send_through_wrong_adapter_rejected():
    kernel, net, _ = make_net()
    with pytest.raises(ValueError):
        net.adapters[0].send(Frame(src=1, dst=2, size_bytes=10))


def test_unknown_destination_raises():
    kernel, net, _ = make_net(n_nodes=2)
    net.adapters[0].send(Frame(src=0, dst=77, size_bytes=10))
    with pytest.raises(Exception):
        kernel.run()


def test_duplicate_attach_rejected():
    kernel, net, _ = make_net(n_nodes=2)
    with pytest.raises(ValueError):
        net.attach(0, lambda f: None)


def test_backlog_tracks_queue_occupancy():
    kernel, net, _ = make_net(n_nodes=4)
    net.adapters[0].send(Frame(src=0, dst=1, size_bytes=100))
    net.adapters[2].send(Frame(src=2, dst=1, size_bytes=100))
    assert net._backlog == {0, 2}
    kernel.run()
    # every queue drained -> the incrementally maintained set is empty
    assert net._backlog == set()
    assert all(not a.queue for a in net.adapters.values())


def test_flush_queue_keeps_backlog_consistent():
    kernel, net, _ = make_net(n_nodes=4)
    for _ in range(3):
        net.adapters[0].send(Frame(src=0, dst=1, size_bytes=100))
    assert 0 in net._backlog
    lost = net.flush_queue(0)
    # the frame mid-transmission already left the queue; the rest flush
    assert lost >= 1
    assert 0 not in net._backlog
    kernel.run()
    assert net._backlog == set()


def test_crash_injector_flush_leaves_arbitration_consistent():
    """A crash flush must not leave a stale backlog entry behind (the
    injector used to clear the adapter queue directly, which would
    desynchronise the incremental contender set)."""
    from repro.cluster.machine import Machine, MachineConfig
    from repro.faults.plan import FaultPlan, NodeFault
    from repro.sim import Compute

    plan = FaultPlan(
        node_faults=(NodeFault(node=1, kind="crash", start=0.001, duration=0.01),)
    )
    machine = Machine(MachineConfig(n_nodes=3, seed=5, faults=plan))

    def make_proc(node, task):
        def proc():
            for _ in range(20):
                yield from task.send(
                    (node.node_id + 1) % 3, 1, ("ping",), nbytes=400
                )
                yield Compute(0.0002)

        return proc()

    for i in range(3):
        machine.spawn_on(i, make_proc)
    machine.kernel.run(until=0.05)
    assert machine.network._backlog == {
        nid for nid, a in machine.network.adapters.items() if a.queue
    }


def test_flush_between_arbitration_win_and_tx_start():
    """PR-7 regression: a crash flush can land after a node *won* the
    medium but before its ``_start_tx`` fires.  The defensive empty-queue
    branch must release the medium, drop the stale backlog entry and
    re-arbitrate — otherwise the next sender is starved forever."""
    kernel, net, inboxes = make_net()
    f0 = Frame(src=0, dst=2, size_bytes=400)
    f1 = Frame(src=1, dst=2, size_bytes=400)
    net.adapters[0].send(f0)  # sole contender: wins, _start_tx in one IFG

    def mid_gap():
        assert net._transmitting  # the win already happened
        lost = net.flush_queue(0)
        assert lost == 1
        net.adapters[1].send(f1)

    kernel.schedule(net.config.ifg / 2, mid_gap)
    kernel.run()
    assert inboxes[2] == [f1]  # the waiting sender was re-acquired, not starved
    assert net._backlog == set()
    assert not net._transmitting


def test_backlog_exact_after_crash_recovery_traffic():
    """After a crash window ends, the recovered node's sends flow again
    and the incremental backlog set equals the true queue occupancy at
    every quiescent point (here: end of run)."""
    from repro.cluster.machine import Machine, MachineConfig
    from repro.faults.plan import FaultPlan, NodeFault
    from repro.sim import Compute

    plan = FaultPlan(
        node_faults=(NodeFault(node=0, kind="crash", start=0.002, duration=0.004),)
    )
    machine = Machine(MachineConfig(n_nodes=2, seed=9, faults=plan))
    seen = []
    orig_deliver = machine.network._deliver

    def observing_deliver(frame, dst):
        seen.append(frame)
        orig_deliver(frame, dst)

    machine.network._deliver = observing_deliver

    def make_proc(node, task):
        def proc():
            for k in range(30):
                yield from task.send(1 - node.node_id, 1, ("seq", k), nbytes=300)
                yield Compute(0.0004)

        return proc()

    for i in range(2):
        machine.spawn_on(i, make_proc)
    machine.kernel.run(until=0.1)
    assert machine.network._backlog == {
        nid for nid, a in machine.network.adapters.items() if a.queue
    }
    # frames enqueued after the crash window still flowed
    assert any(f.enqueue_time > 0.006 for f in seen)
