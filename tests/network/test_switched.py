"""Switched fabrics: tree topology arithmetic, busy clocks, multicast."""

import pytest

from repro.network import BROADCAST, Frame
from repro.network.switched import FABRICS, SwitchedConfig, SwitchedNetwork
from repro.sim import Kernel


def make_net(n_nodes=8, fabric="hierarchical", radix=4, seed=0, **kw):
    kernel = Kernel(seed=seed)
    net = SwitchedNetwork(kernel, SwitchedConfig(fabric=fabric, radix=radix, **kw))
    inboxes = {i: [] for i in range(n_nodes)}
    for i in range(n_nodes):
        net.attach(i, inboxes[i].append)
    return kernel, net, inboxes


class TestConfig:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError, match="fabric"):
            SwitchedConfig(fabric="torus")
        with pytest.raises(ValueError, match="radix"):
            SwitchedConfig(radix=1)
        with pytest.raises(ValueError, match="bandwidth"):
            SwitchedConfig(link_bandwidth_bps=0)

    def test_mtu_enforced_in_config_and_network(self):
        with pytest.raises(ValueError, match="MTU"):
            SwitchedConfig().tx_time(100000)
        kernel, net, _ = make_net()
        with pytest.raises(ValueError, match="MTU"):
            net.adapters[0].send(Frame(src=0, dst=1, size_bytes=100000))

    def test_hierarchical_trunks_stay_at_host_rate(self):
        cfg = SwitchedConfig(fabric="hierarchical", radix=4)
        assert cfg.trunk_bandwidth(0) == cfg.link_bandwidth_bps
        assert cfg.trunk_bandwidth(3) == cfg.link_bandwidth_bps

    def test_fat_tree_trunks_carry_their_subtree(self):
        cfg = SwitchedConfig(fabric="fat-tree", radix=4)
        # a level-l trunk serves radix**(l+1) hosts at full rate
        assert cfg.trunk_bandwidth(0) == 4 * cfg.link_bandwidth_bps
        assert cfg.trunk_bandwidth(2) == 64 * cfg.link_bandwidth_bps

    @pytest.mark.parametrize("fabric", FABRICS)
    def test_min_latency_independent_of_fabric_and_size(self, fabric):
        cfg = SwitchedConfig(fabric=fabric, radix=4)
        # the closest pair shares an edge switch in every fabric kind
        base = 2 * (cfg.tx_time(0) + cfg.link_latency) + cfg.switch_latency
        assert cfg.min_latency() == pytest.approx(base)
        assert cfg.min_latency(n_nodes=4096) == pytest.approx(base)


class TestUnicast:
    def test_same_edge_latency_matches_analytic(self):
        kernel, net, inboxes = make_net()
        f = Frame(src=0, dst=1, size_bytes=1000)
        net.adapters[0].send(f)
        kernel.run()
        assert inboxes[1] == [f]
        assert f.deliver_time == pytest.approx(net.min_frame_latency(0, 1, 1000))

    def test_cross_tree_path_is_longer(self):
        kernel, net, _ = make_net(n_nodes=8, radix=4)
        # 0 and 1 share an edge switch; 0 and 4 cross the root
        assert len(net.path_hops(0, 4)) > len(net.path_hops(0, 1)) == 2
        assert net.min_frame_latency(0, 4, 100) > net.min_frame_latency(0, 1, 100)

    def test_single_fabric_every_path_is_two_hops(self):
        _, net, _ = make_net(n_nodes=9, fabric="single")
        assert all(
            len(net.path_hops(s, d)) == 2
            for s in range(9) for d in range(9) if s != d
        )

    def test_path_endpoints_are_host_links(self):
        _, net, _ = make_net(n_nodes=32, radix=4)
        hops = net.path_hops(3, 29)
        assert hops[0][0] == ("h", 3, "u")
        assert hops[-1][0] == ("h", 29, "d")
        assert len(net.path_hops(29, 3)) == len(hops)

    def test_disjoint_pairs_transfer_concurrently(self):
        kernel, net, _ = make_net()
        f1 = Frame(src=0, dst=1, size_bytes=1000)
        f2 = Frame(src=2, dst=3, size_bytes=1000)
        net.adapters[0].send(f1)
        net.adapters[2].send(f2)
        kernel.run()
        one = net.min_frame_latency(0, 1, 1000)
        assert f1.deliver_time == pytest.approx(one)
        assert f2.deliver_time == pytest.approx(one)

    def test_shared_source_link_serialises(self):
        kernel, net, _ = make_net()
        cfg = net.config
        f1 = Frame(src=0, dst=1, size_bytes=1000)
        f2 = Frame(src=0, dst=2, size_bytes=1000)
        net.adapters[0].send(f1)
        net.adapters[0].send(f2)
        kernel.run()
        assert f2.deliver_time >= f1.deliver_time + cfg.tx_time(1000) * 0.99

    def test_fat_tree_beats_oversubscribed_tree_under_cross_traffic(self):
        """Many flows crossing the root: the hierarchical trunk is the
        bottleneck; the fat-tree's fattened trunk absorbs them."""
        def worst_delivery(fabric):
            kernel, net, _ = make_net(n_nodes=8, fabric=fabric, radix=4)
            frames = [Frame(src=s, dst=s + 4, size_bytes=1500) for s in range(4)]
            for f in frames:
                net.adapters[f.src].send(f)
            kernel.run()
            return max(f.deliver_time for f in frames)

        assert worst_delivery("fat-tree") < worst_delivery("hierarchical")

    def test_pending_frames_returns_to_zero(self):
        kernel, net, _ = make_net()
        net.adapters[0].send(Frame(src=0, dst=5, size_bytes=64))
        assert net.pending_frames() == 1
        kernel.run()
        assert net.pending_frames() == 0


class TestMulticast:
    @pytest.mark.parametrize("fabric", FABRICS)
    def test_broadcast_reaches_everyone_else_exactly_once(self, fabric):
        kernel, net, inboxes = make_net(n_nodes=13, fabric=fabric, radix=4)
        f = Frame(src=5, dst=BROADCAST, size_bytes=200)
        net.adapters[5].send(f)
        kernel.run()
        assert inboxes[5] == []
        assert all(inboxes[i] == [f] for i in range(13) if i != 5)

    def test_each_link_carries_the_frame_once(self):
        """Tree replication: the sender's host link is serialised once,
        so the last receiver is NOT n-2 sender transmissions behind the
        first — the per-destination cost of the crossbar model."""
        kernel, net, _ = make_net(n_nodes=16, radix=4)
        cfg = net.config
        f = Frame(src=0, dst=BROADCAST, size_bytes=1500)
        net.adapters[0].send(f)
        kernel.run()
        # up-link busy exactly one transmission, not 15
        assert net._busy[("h", 0, "u")] == pytest.approx(cfg.tx_time(1500))

    def test_broadcast_accounts_one_frame_per_delivery(self):
        kernel, net, _ = make_net(n_nodes=6, fabric="single")
        net.adapters[0].send(Frame(src=0, dst=BROADCAST, size_bytes=100))
        kernel.run()
        assert net.stats.frames_sent == 5
        assert net.stats.broadcasts == 1

    def test_partial_edge_switches_are_skipped(self):
        """Node count not a multiple of radix: empty subtrees terminate
        the flood without scheduling anything."""
        kernel, net, inboxes = make_net(n_nodes=10, radix=4)
        net.adapters[9].send(Frame(src=9, dst=BROADCAST, size_bytes=64))
        kernel.run()
        assert sum(len(v) for v in inboxes.values()) == 9


class TestMachineIntegration:
    def test_machine_builds_switched_network(self):
        from repro.cluster import Machine, MachineConfig

        m = Machine(MachineConfig(n_nodes=4, interconnect="switched"))
        assert isinstance(m.network, SwitchedNetwork)

    def test_hw_multicast_requires_switched_fabric(self):
        from repro.cluster import MachineConfig

        with pytest.raises(ValueError, match="hw_multicast"):
            MachineConfig(n_nodes=4, interconnect="ethernet", hw_multicast=True)

    def test_lookahead_is_the_fabric_min_latency(self):
        from repro.cluster import MachineConfig
        from repro.sim.parallel import lookahead_of

        mcfg = MachineConfig(n_nodes=4, interconnect="switched")
        assert lookahead_of(mcfg) == pytest.approx(mcfg.switched.min_latency())
        assert lookahead_of(mcfg) > 0
