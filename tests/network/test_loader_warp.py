"""Loader offered-load accuracy and warp metric behaviour."""

import pytest

from repro.network import (
    EthernetNetwork,
    Frame,
    LoaderConfig,
    NetworkLoader,
    WarpMeter,
)
from repro.sim import Kernel


def test_loader_offered_load_close_to_target():
    kernel = Kernel(seed=5)
    net = EthernetNetwork(kernel)
    loader = NetworkLoader(
        kernel, net, LoaderConfig(offered_load_bps=1e6, frame_payload_bytes=1024),
        src_node=98, dst_node=99,
    )
    loader.start()
    horizon = 5.0
    kernel.run(stop_when=lambda: kernel.now >= horizon)
    offered = loader.frames_injected * 1024 * 8 / kernel.now
    assert offered == pytest.approx(1e6, rel=0.15)


def test_loader_zero_load_rejected():
    kernel = Kernel()
    net = EthernetNetwork(kernel)
    with pytest.raises(ValueError):
        NetworkLoader(
            kernel, net, LoaderConfig(offered_load_bps=0.0), src_node=0, dst_node=1
        )


def test_loader_stop_after():
    kernel = Kernel(seed=5)
    net = EthernetNetwork(kernel)
    loader = NetworkLoader(
        kernel,
        net,
        LoaderConfig(offered_load_bps=2e6, frame_payload_bytes=512, stop_after=1.0),
        src_node=0,
        dst_node=1,
    )
    loader.start()
    kernel.run()
    assert kernel.now < 2.0
    assert loader.frames_delivered == loader.frames_injected


def test_loader_double_start_rejected():
    kernel = Kernel(seed=5)
    net = EthernetNetwork(kernel)
    loader = NetworkLoader(
        kernel, net, LoaderConfig(offered_load_bps=1e5, stop_after=0.1),
        src_node=0, dst_node=1,
    )
    loader.start()
    with pytest.raises(RuntimeError):
        loader.start()


def _paced_sender(kernel, net, gap, n, size=200):
    """Inject n frames 0->1 spaced `gap` seconds apart."""

    def inject(i):
        net.adapters[0].send(Frame(src=0, dst=1, size_bytes=size, kind="pvm"))
        if i + 1 < n:
            kernel.schedule(gap, inject, i + 1)

    kernel.schedule(0.0, inject, 0)


def test_warp_is_one_on_stable_network():
    kernel = Kernel(seed=1)
    net = EthernetNetwork(kernel)
    net.attach(0, lambda f: None)
    net.attach(1, lambda f: None)
    meter = WarpMeter().attach(net)
    _paced_sender(kernel, net, gap=0.01, n=20)
    kernel.run()
    assert meter.overall.count == 19
    assert meter.mean_warp == pytest.approx(1.0, abs=0.01)


def test_warp_exceeds_one_when_load_ramps_up():
    """Start a heavy loader midway; arrival gaps stretch -> warp > 1."""
    kernel = Kernel(seed=2)
    net = EthernetNetwork(kernel)
    net.attach(0, lambda f: None)
    net.attach(1, lambda f: None)
    meter = WarpMeter(kinds={"pvm"}, keep_samples=True).attach(net)
    _paced_sender(kernel, net, gap=0.002, n=100, size=1000)
    for i, load in enumerate([9e6, 9e6]):
        loader = NetworkLoader(
            kernel,
            net,
            LoaderConfig(offered_load_bps=load, frame_payload_bytes=1500),
            src_node=8 + 2 * i,
            dst_node=9 + 2 * i,
            name=f"loader{i}",
        )
        loader.start(delay=0.05)
    kernel.run(stop_when=lambda: meter.overall.count >= 99)
    assert meter.max_warp > 1.5
    # sustained warp above 1 over the loaded portion, not just a transient
    assert sum(meter.samples[-30:]) / 30 > 1.2


def test_warp_filters_kinds():
    kernel = Kernel(seed=3)
    net = EthernetNetwork(kernel)
    net.attach(0, lambda f: None)
    net.attach(1, lambda f: None)
    meter = WarpMeter(kinds={"pvm"}).attach(net)
    for _ in range(5):
        net.adapters[0].send(Frame(src=0, dst=1, size_bytes=64, kind="load"))
    kernel.run()
    assert meter.overall.count == 0


def test_warp_per_stream_keys():
    kernel = Kernel(seed=4)
    net = EthernetNetwork(kernel)
    for i in range(3):
        net.attach(i, lambda f: None)
    meter = WarpMeter().attach(net)

    def inject(i):
        net.adapters[0].send(Frame(src=0, dst=1, size_bytes=100))
        net.adapters[2].send(Frame(src=2, dst=1, size_bytes=100))
        if i < 4:
            kernel.schedule(0.01, inject, i + 1)

    kernel.schedule(0.0, inject, 0)
    kernel.run()
    assert set(meter.stream_means()) == {(1, 0), (1, 2)}


def test_warp_sample_retention_is_bounded():
    """Per-stream raw samples cap out; streaming stats never do."""
    kernel = Kernel(seed=6)
    net = EthernetNetwork(kernel)
    net.attach(0, lambda f: None)
    net.attach(1, lambda f: None)
    meter = WarpMeter(keep_samples=True, max_stream_samples=8).attach(net)
    _paced_sender(kernel, net, gap=0.01, n=30)
    kernel.run()
    # 29 samples observed on the one stream, 8 kept, the rest counted
    assert meter.overall.count == 29
    assert len(meter.stream_samples[(1, 0)]) == 8
    assert len(meter.samples) == 8
    assert meter.samples_dropped == 21
    # the mean folds every sample in, capped retention or not
    assert meter.mean_warp == pytest.approx(1.0, abs=0.01)


def test_warp_default_cap_is_roomy():
    meter = WarpMeter(keep_samples=True)
    assert meter.max_stream_samples == 65_536
    assert meter.samples_dropped == 0
