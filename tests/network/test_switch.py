"""Switch model: parallel links, per-link serialization, broadcast replication."""

import pytest

from repro.network import BROADCAST, Frame, SwitchConfig, SwitchNetwork
from repro.sim import Kernel


def make_net(n_nodes=4, seed=0, config=None):
    kernel = Kernel(seed=seed)
    net = SwitchNetwork(kernel, config=config)
    inboxes = {i: [] for i in range(n_nodes)}
    for i in range(n_nodes):
        net.attach(i, inboxes[i].append)
    return kernel, net, inboxes


def test_point_to_point_latency():
    kernel, net, inboxes = make_net()
    cfg = net.config
    f = Frame(src=0, dst=1, size_bytes=4096)
    net.adapters[0].send(f)
    kernel.run()
    assert inboxes[1] == [f]
    expected = 2 * cfg.tx_time(4096) + cfg.switch_latency
    assert f.deliver_time == pytest.approx(expected)


def test_disjoint_pairs_transfer_concurrently():
    """0->1 and 2->3 share no links; both must finish in one transfer time."""
    kernel, net, _ = make_net()
    cfg = net.config
    f1 = Frame(src=0, dst=1, size_bytes=4096)
    f2 = Frame(src=2, dst=3, size_bytes=4096)
    net.adapters[0].send(f1)
    net.adapters[2].send(f2)
    kernel.run()
    one_transfer = 2 * cfg.tx_time(4096) + cfg.switch_latency
    assert f1.deliver_time == pytest.approx(one_transfer)
    assert f2.deliver_time == pytest.approx(one_transfer)


def test_same_egress_serializes():
    kernel, net, _ = make_net()
    cfg = net.config
    f1 = Frame(src=0, dst=1, size_bytes=4096)
    f2 = Frame(src=0, dst=2, size_bytes=4096)
    net.adapters[0].send(f1)
    net.adapters[0].send(f2)
    kernel.run()
    assert f2.deliver_time >= f1.deliver_time + cfg.tx_time(4096) * 0.99


def test_same_ingress_serializes():
    kernel, net, _ = make_net()
    cfg = net.config
    f1 = Frame(src=0, dst=2, size_bytes=4096)
    f2 = Frame(src=1, dst=2, size_bytes=4096)
    net.adapters[0].send(f1)
    net.adapters[1].send(f2)
    kernel.run()
    ends = sorted([f1.deliver_time, f2.deliver_time])
    assert ends[1] >= ends[0] + cfg.tx_time(4096) * 0.99


def test_broadcast_replicates_per_destination():
    kernel, net, inboxes = make_net(n_nodes=4)
    f = Frame(src=0, dst=BROADCAST, size_bytes=100)
    net.adapters[0].send(f)
    kernel.run()
    assert all(inboxes[i] == [f] for i in (1, 2, 3))
    assert net.stats.frames_sent == 3  # one copy per destination


def test_switch_is_much_faster_than_ethernet():
    from repro.network import EthernetConfig

    eth = EthernetConfig()
    sw = SwitchConfig()
    assert sw.tx_time(1000) < eth.tx_time(1000) / 10


def test_switch_mtu_enforced():
    with pytest.raises(ValueError):
        SwitchConfig().tx_time(100000)
