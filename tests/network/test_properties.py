"""Property-based tests for the link models: conservation and sanity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import BROADCAST, EthernetNetwork, Frame, SwitchNetwork
from repro.sim import Kernel


@st.composite
def traffic(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=1000))
    frames = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_nodes - 1),  # src
                st.integers(min_value=-1, max_value=n_nodes - 1),  # dst or -1
                st.integers(min_value=1, max_value=1500),  # size
            ),
            min_size=1,
            max_size=40,
        )
    )
    return n_nodes, seed, frames


@settings(max_examples=40, deadline=None)
@given(traffic(), st.booleans())
def test_property_every_frame_delivered_exactly_right(t, use_switch):
    """Conservation: each unicast frame arrives exactly once at its
    destination; each broadcast arrives exactly once at every other node;
    nothing is duplicated, dropped, or delivered to the sender."""
    n_nodes, seed, frames = t
    kernel = Kernel(seed=seed)
    net = (SwitchNetwork if use_switch else EthernetNetwork)(kernel)
    received = {i: [] for i in range(n_nodes)}
    for i in range(n_nodes):
        net.attach(i, (lambda i: lambda f: received[i].append(f))(i))

    expected = {i: 0 for i in range(n_nodes)}
    sent = 0
    for src, dst, size in frames:
        if dst == src:
            continue
        target = BROADCAST if dst < 0 else dst
        net.adapters[src].send(Frame(src=src, dst=target, size_bytes=size))
        sent += 1
        if target == BROADCAST:
            for j in range(n_nodes):
                if j != src:
                    expected[j] += 1
        else:
            expected[dst] += 1
    kernel.run()
    for i in range(n_nodes):
        assert len(received[i]) == expected[i]
        assert all(f.src != i for f in received[i])
    if sent:
        util = net.stats.utilization(kernel.now)
        assert util > 0.0
        if not use_switch:
            # the shared medium serialises everything: utilization <= 1;
            # the switch's busy_time sums over parallel links, so its
            # aggregate "utilization" may legitimately exceed 1
            assert util <= 1.0


@settings(max_examples=30, deadline=None)
@given(traffic())
def test_property_delays_are_causal(t):
    """Timestamps are ordered: enqueue <= tx start <= delivery, and the
    medium never spends more busy time than elapsed time."""
    n_nodes, seed, frames = t
    kernel = Kernel(seed=seed)
    net = EthernetNetwork(kernel)
    delivered = []
    for i in range(n_nodes):
        net.attach(i, delivered.append)
    for src, dst, size in frames:
        if dst == src or dst < 0:
            continue
        net.adapters[src].send(Frame(src=src, dst=dst, size_bytes=size))
    kernel.run()
    for f in delivered:
        assert 0.0 <= f.enqueue_time <= f.tx_start_time <= f.deliver_time
        assert f.queueing_delay >= 0.0
        assert f.latency > 0.0
    assert net.stats.busy_time <= kernel.now + 1e-12
