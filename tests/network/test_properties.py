"""Property-based tests for the link models: conservation and sanity.

Two generations of link model are covered: the shared Ethernet and the
SP2-style crossbar (``traffic`` strategy, below), and the switched
store-and-forward fabrics of :mod:`repro.network.switched`
(``switched_traffic``), whose properties are parametrized over every
fabric kind — single switch, oversubscribed hierarchical tree,
full-bisection fat-tree — and additionally checked under seeded
drop/duplicate fault plans.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.injectors import MessageFaultInjector
from repro.faults.plan import FaultPlan, MessageFaults
from repro.network import BROADCAST, EthernetNetwork, Frame, SwitchNetwork
from repro.network.switched import FABRICS, SwitchedConfig, SwitchedNetwork
from repro.sim import Kernel


@st.composite
def traffic(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=1000))
    frames = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_nodes - 1),  # src
                st.integers(min_value=-1, max_value=n_nodes - 1),  # dst or -1
                st.integers(min_value=1, max_value=1500),  # size
            ),
            min_size=1,
            max_size=40,
        )
    )
    return n_nodes, seed, frames


@settings(max_examples=40, deadline=None)
@given(traffic(), st.booleans())
def test_property_every_frame_delivered_exactly_right(t, use_switch):
    """Conservation: each unicast frame arrives exactly once at its
    destination; each broadcast arrives exactly once at every other node;
    nothing is duplicated, dropped, or delivered to the sender."""
    n_nodes, seed, frames = t
    kernel = Kernel(seed=seed)
    net = (SwitchNetwork if use_switch else EthernetNetwork)(kernel)
    received = {i: [] for i in range(n_nodes)}
    for i in range(n_nodes):
        net.attach(i, (lambda i: lambda f: received[i].append(f))(i))

    expected = {i: 0 for i in range(n_nodes)}
    sent = 0
    for src, dst, size in frames:
        if dst == src:
            continue
        target = BROADCAST if dst < 0 else dst
        net.adapters[src].send(Frame(src=src, dst=target, size_bytes=size))
        sent += 1
        if target == BROADCAST:
            for j in range(n_nodes):
                if j != src:
                    expected[j] += 1
        else:
            expected[dst] += 1
    kernel.run()
    for i in range(n_nodes):
        assert len(received[i]) == expected[i]
        assert all(f.src != i for f in received[i])
    if sent:
        util = net.stats.utilization(kernel.now)
        assert util > 0.0
        if not use_switch:
            # the shared medium serialises everything: utilization <= 1;
            # the switch's busy_time sums over parallel links, so its
            # aggregate "utilization" may legitimately exceed 1
            assert util <= 1.0


@settings(max_examples=30, deadline=None)
@given(traffic())
def test_property_delays_are_causal(t):
    """Timestamps are ordered: enqueue <= tx start <= delivery, and the
    medium never spends more busy time than elapsed time."""
    n_nodes, seed, frames = t
    kernel = Kernel(seed=seed)
    net = EthernetNetwork(kernel)
    delivered = []
    for i in range(n_nodes):
        net.attach(i, delivered.append)
    for src, dst, size in frames:
        if dst == src or dst < 0:
            continue
        net.adapters[src].send(Frame(src=src, dst=dst, size_bytes=size))
    kernel.run()
    for f in delivered:
        assert 0.0 <= f.enqueue_time <= f.tx_start_time <= f.deliver_time
        assert f.queueing_delay >= 0.0
        assert f.latency > 0.0
    assert net.stats.busy_time <= kernel.now + 1e-12


# ---------------------------------------------------------------------------
# switched fabrics (repro.network.switched), parametrized over fabric kind
# ---------------------------------------------------------------------------


@st.composite
def switched_traffic(draw):
    """Random (n_nodes, radix, frames) with staggered send times."""
    n_nodes = draw(st.integers(min_value=2, max_value=18))
    radix = draw(st.integers(min_value=2, max_value=5))
    frames = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_nodes - 1),  # src
                st.integers(min_value=-1, max_value=n_nodes - 1),  # dst or -1
                st.integers(min_value=1, max_value=1500),  # size
                st.integers(min_value=0, max_value=1000),  # send time, µs
            ),
            min_size=1,
            max_size=40,
        )
    )
    return n_nodes, radix, frames


def _drive(fabric, t, plan=None):
    """Build a fabric, send ``t``'s frames at their times, run to empty.

    Returns ``(net, sent, delivered)`` where ``sent`` is the list of
    Frame objects actually submitted (self-sends skipped) and
    ``delivered`` the list of ``(recv_time, node, frame)`` in delivery
    order.
    """
    n_nodes, radix, frames = t
    kernel = Kernel(seed=0)
    net = SwitchedNetwork(kernel, SwitchedConfig(fabric=fabric, radix=radix))
    delivered = []
    for i in range(n_nodes):
        net.attach(i, (lambda i: lambda f: delivered.append((kernel.now, i, f)))(i))
    if plan is not None:
        MessageFaultInjector(kernel, net, plan)

    sent = []
    for src, dst, size, at in frames:
        if dst == src:
            continue
        f = Frame(src=src, dst=BROADCAST if dst < 0 else dst, size_bytes=size)
        sent.append(f)
        kernel.schedule_at(at * 1e-6, net.adapters[src].send, f)
    kernel.run()
    return net, sent, delivered


@pytest.mark.parametrize("fabric", FABRICS)
@settings(max_examples=30, deadline=None)
@given(switched_traffic())
def test_property_switched_exactly_once(fabric, t):
    """Fault-free conservation: every unicast frame arrives exactly once
    at its destination, every broadcast exactly once at every other
    node; nothing is lost, duplicated, or echoed to the sender."""
    n_nodes = t[0]
    net, sent, delivered = _drive(fabric, t)
    got = {}
    for _, node, f in delivered:
        got[(id(f), node)] = got.get((id(f), node), 0) + 1
        assert f.src != node
    for f in sent:
        if f.dst == BROADCAST:
            targets = [n for n in range(n_nodes) if n != f.src]
        else:
            targets = [f.dst]
        for n in targets:
            assert got.pop((id(f), n), 0) == 1
    assert not got  # no deliveries beyond the expected ones
    assert net.pending_frames() == 0


@pytest.mark.parametrize("fabric", FABRICS)
@settings(max_examples=30, deadline=None)
@given(switched_traffic())
def test_property_switched_fifo_per_src_dst(fabric, t):
    """Frames between one (src, dst) pair arrive in send order — the
    busy-until clocks never let a later frame overtake on the same path."""
    _, sent, delivered = _drive(fabric, t)
    order = {id(f): k for k, f in enumerate(sent)}
    per_pair: dict = {}
    for _, node, f in delivered:
        per_pair.setdefault((f.src, node), []).append(f)
    for seq in per_pair.values():
        expect = sorted(seq, key=lambda f: (f.enqueue_time, order[id(f)]))
        assert [id(f) for f in seq] == [id(f) for f in expect]


@pytest.mark.parametrize("fabric", FABRICS)
@settings(max_examples=30, deadline=None)
@given(switched_traffic())
def test_property_switched_latency_lower_bound(fabric, t):
    """No frame beats the analytic zero-contention latency of its path."""
    net, _, delivered = _drive(fabric, t)
    for recv_t, node, f in delivered:
        lower = net.min_frame_latency(f.src, node, f.size_bytes)
        assert recv_t - f.enqueue_time >= lower * (1 - 1e-9)
        assert recv_t - f.enqueue_time >= net.config.min_latency() * (1 - 1e-9)


@pytest.mark.parametrize("fabric", FABRICS)
@settings(max_examples=30, deadline=None)
@given(switched_traffic())
def test_property_switched_timestamps_causal(fabric, t):
    """enqueue <= tx start < delivery, and every busy clock stops at or
    before the last event the kernel ran."""
    net, _, delivered = _drive(fabric, t)
    for recv_t, _, f in delivered:
        assert f.enqueue_time <= f.tx_start_time < recv_t
    if delivered:
        horizon = max(rt for rt, _, _ in delivered)
        assert all(done <= horizon + 1e-12 for done in net._busy.values())


@pytest.mark.parametrize("fabric", FABRICS)
@settings(max_examples=20, deadline=None)
@given(switched_traffic())
def test_property_switched_deterministic(fabric, t):
    """Two identical runs produce the identical delivery sequence."""
    def signature():
        _, sent, delivered = _drive(fabric, t)
        order = {id(f): k for k, f in enumerate(sent)}
        return [(rt, node, order[id(f)]) for rt, node, f in delivered]

    assert signature() == signature()


@pytest.mark.parametrize("fabric", FABRICS)
@settings(max_examples=20, deadline=None)
@given(switched_traffic())
def test_property_switched_accounting_conserved(fabric, t):
    """Stats count one frame per delivery, bytes match, busy_time > 0
    whenever something was sent."""
    net, sent, delivered = _drive(fabric, t)
    assert net.stats.frames_sent == len(delivered)
    assert net.stats.bytes_sent == sum(f.size_bytes for _, _, f in delivered)
    if sent:
        assert net.stats.busy_time > 0.0


@pytest.mark.parametrize("fabric", FABRICS)
@settings(max_examples=20, deadline=None)
@given(switched_traffic(), st.integers(min_value=0, max_value=1000))
def test_property_switched_drop_plan_loses_only(fabric, t, seed):
    """Under a drop plan: delivered is a subset of sent, and per
    (src, dst) the delivery order is a subsequence of the send order."""
    plan = FaultPlan(seed=seed, messages=MessageFaults(drop=0.3))
    _, sent, delivered = _drive(fabric, t, plan=plan)
    sent_ids = {id(f) for f in sent}
    order = {id(f): k for k, f in enumerate(sent)}
    per_pair: dict = {}
    for _, node, f in delivered:
        assert id(f) in sent_ids
        per_pair.setdefault((f.src, node), []).append(f)
    for seq in per_pair.values():
        # drops only remove deliveries: the survivors stay in send order
        expect = sorted(seq, key=lambda f: (f.enqueue_time, order[id(f)]))
        assert [id(f) for f in seq] == [id(f) for f in expect]


@pytest.mark.parametrize("fabric", FABRICS)
@settings(max_examples=20, deadline=None)
@given(switched_traffic(), st.integers(min_value=0, max_value=1000))
def test_property_switched_duplicate_plan_adds_only(fabric, t, seed):
    """Under a duplication plan: every expected delivery still happens
    (dup is lossless), every extra copy is of a frame really sent, and
    dedupe by frame identity recovers exactly the fault-free set."""
    n_nodes = t[0]
    plan = FaultPlan(seed=seed, messages=MessageFaults(duplicate=0.4))
    _, sent, delivered = _drive(fabric, t, plan=plan)
    expected = set()
    for f in sent:
        targets = (
            [n for n in range(n_nodes) if n != f.src]
            if f.dst == BROADCAST else [f.dst]
        )
        expected.update((id(f), n) for n in targets)
    got = [(id(f), node) for _, node, f in delivered]
    assert set(got) == expected  # dedupe recovers the exact fault-free set
    assert len(got) >= len(expected)


@settings(max_examples=40, deadline=None)
@given(
    st.sampled_from(FABRICS),
    st.integers(min_value=2, max_value=6),  # radix
    st.integers(min_value=2, max_value=64),  # n_nodes
    st.integers(min_value=0, max_value=1500),  # size
)
def test_property_switched_path_oracle_well_formed(fabric, radix, n_nodes, size):
    """For every pair: paths start/end on the right host links, the
    analytic latency is symmetric in path length and never beats the
    fabric-wide minimum."""
    kernel = Kernel(seed=0)
    net = SwitchedNetwork(kernel, SwitchedConfig(fabric=fabric, radix=radix))
    for i in range(n_nodes):
        net.attach(i, lambda f: None)
    pairs = [(0, n_nodes - 1), (0, 1), (n_nodes // 2, 0)]
    for src, dst in pairs:
        if src == dst:
            continue
        hops = net.path_hops(src, dst)
        assert hops[0][0] == ("h", src, "u")
        assert hops[-1][0] == ("h", dst, "d")
        assert len(hops) == len(net.path_hops(dst, src))
        assert len(hops) % 2 == 0  # climb and descend are symmetric
        lat = net.min_frame_latency(src, dst, size)
        assert lat >= net.config.min_latency() * (1 - 1e-9)


@settings(max_examples=25, deadline=None)
@given(
    st.sampled_from(FABRICS),
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=2, max_value=40),
)
def test_property_switched_broadcast_uses_each_link_once(fabric, radix, n_nodes):
    """Tree multicast: the sender's up-link is serialised exactly once
    per broadcast, so its busy clock advances by one wire time — not by
    (n-1) sender transmissions as per-destination replication would."""
    kernel = Kernel(seed=0)
    net = SwitchedNetwork(kernel, SwitchedConfig(fabric=fabric, radix=radix))
    count = [0]
    for i in range(n_nodes):
        net.attach(i, lambda f: count.__setitem__(0, count[0] + 1))
    net.adapters[0].send(Frame(src=0, dst=BROADCAST, size_bytes=700))
    kernel.run()
    assert count[0] == n_nodes - 1
    assert net._busy[("h", 0, "u")] == pytest.approx(net.config.tx_time(700))
