"""PackBuffer: typed packing, sizes, unpack ordering and error paths."""

import numpy as np
import pytest

from repro.pvm import PackBuffer


def test_pack_unpack_roundtrip_in_order():
    buf = PackBuffer()
    buf.pkint([1, 2, 3]).pkdouble([0.5, 1.5]).pkstr("hello")
    assert np.array_equal(buf.upkint(), [1, 2, 3])
    assert np.array_equal(buf.upkdouble(), [0.5, 1.5])
    assert buf.upkstr() == "hello"
    assert buf.exhausted


def test_nbytes_accounting():
    buf = PackBuffer()
    buf.pkint([1, 2, 3])        # 12
    buf.pkdouble([0.5, 1.5])    # 16
    buf.pkbyte(b"abc")          # 3
    buf.pkstr("hi")             # 3 (2 + NUL)
    assert buf.nbytes == 12 + 16 + 3 + 3


def test_scalar_pack_becomes_length_one_array():
    buf = PackBuffer()
    buf.pkint(7).pkdouble(2.5)
    assert buf.upkint().tolist() == [7]
    assert buf.upkdouble().tolist() == [2.5]


def test_type_mismatch_raises():
    buf = PackBuffer().pkint([1])
    with pytest.raises(TypeError, match="type mismatch"):
        buf.upkdouble()


def test_unpack_past_end_raises():
    buf = PackBuffer().pkint([1])
    buf.upkint()
    with pytest.raises(IndexError):
        buf.upkint()


def test_rewind_allows_rereading():
    buf = PackBuffer().pkint([4, 5])
    first = buf.upkint()
    buf.rewind()
    assert np.array_equal(buf.upkint(), first)


def test_pkbyte_roundtrip():
    buf = PackBuffer().pkbyte(b"\x00\xff\x7f")
    assert bytes(buf.upkbyte()) == b"\x00\xff\x7f"


def test_empty_buffer_is_exhausted_and_zero_bytes():
    buf = PackBuffer()
    assert buf.nbytes == 0
    assert buf.exhausted


def test_packed_arrays_are_copies():
    """Mutating the source after packing must not change the message."""
    src = np.array([1, 2, 3])
    buf = PackBuffer().pkint(src)
    src[0] = 99
    assert buf.upkint()[0] == 1
