"""Property-based tests for the messaging layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import EthernetNetwork, SwitchNetwork
from repro.pvm import PackBuffer, VirtualMachine
from repro.sim import Kernel


@settings(max_examples=30, deadline=None)
@given(
    n_doubles=st.integers(min_value=0, max_value=4000),
    n_ints=st.integers(min_value=0, max_value=1000),
    text=st.text(max_size=64),
    switch=st.booleans(),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_any_message_roundtrips_across_either_network(
    n_doubles, n_ints, text, switch, seed
):
    """Arbitrary typed payloads of arbitrary size survive fragmentation,
    transmission and reassembly byte-for-byte on both link models."""
    kernel = Kernel(seed=seed)
    net = (SwitchNetwork if switch else EthernetNetwork)(kernel)
    vm = VirtualMachine(kernel, net)
    t0, t1 = vm.add_task(0), vm.add_task(1)

    doubles = np.arange(n_doubles, dtype=np.float64) * 0.5
    ints = np.arange(n_ints, dtype=np.int64) - 7
    buf = PackBuffer()
    buf.pkdouble(doubles).pkint(ints).pkstr(text)
    got = {}

    def sender():
        yield from t0.send(1, tag=5, payload=buf)

    def receiver():
        msg = yield from t1.recv(src=0, tag=5)
        got["doubles"] = msg.payload.upkdouble()
        got["ints"] = msg.payload.upkint()
        got["text"] = msg.payload.upkstr()
        got["nbytes"] = msg.nbytes

    kernel.spawn(sender())
    kernel.spawn(receiver())
    kernel.run()
    assert np.array_equal(got["doubles"], doubles) or (
        n_doubles == 0 and got["doubles"].size == 1  # scalar promotion
    )
    assert np.array_equal(got["ints"], ints) or (n_ints == 0 and got["ints"].size == 1)
    assert got["text"] == text
    assert got["nbytes"] == buf.nbytes


@settings(max_examples=20, deadline=None)
@given(
    n_msgs=st.integers(min_value=1, max_value=30),
    sizes=st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=30),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_pairwise_fifo_under_mixed_sizes(n_msgs, sizes, seed):
    """Messages of wildly different sizes from one sender arrive in send
    order (fragments of a big message never let a later small one pass)."""
    kernel = Kernel(seed=seed)
    net = EthernetNetwork(kernel)
    vm = VirtualMachine(kernel, net)
    t0, t1 = vm.add_task(0), vm.add_task(1)
    n = min(n_msgs, len(sizes))
    got = []

    def sender():
        for i in range(n):
            yield from t0.send(1, tag=1, payload=(i,), nbytes=sizes[i % len(sizes)])

    def receiver():
        for _ in range(n):
            msg = yield from t1.recv()
            got.append(msg.payload[0])

    kernel.spawn(sender())
    kernel.spawn(receiver())
    kernel.run()
    assert got == list(range(n))
