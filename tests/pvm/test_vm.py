"""VirtualMachine/Task: send/recv semantics, fragmentation, barrier, mcast."""

import numpy as np
import pytest

from repro.network import EthernetConfig, EthernetNetwork, SwitchNetwork
from repro.pvm import ANY_SOURCE, ANY_TAG, PackBuffer, PvmOverheads, VirtualMachine
from repro.sim import DeadlockError, Kernel


def make_vm(n=4, seed=0, network_cls=EthernetNetwork, overheads=None):
    kernel = Kernel(seed=seed)
    net = network_cls(kernel)
    vm = VirtualMachine(kernel, net, overheads=overheads)
    tasks = [vm.add_task(i) for i in range(n)]
    return kernel, vm, tasks


def test_send_recv_roundtrip():
    kernel, vm, (t0, t1, *_) = make_vm()
    got = {}

    def sender():
        yield from t0.send(1, tag=7, payload=PackBuffer().pkdouble([3.14]))

    def receiver():
        msg = yield from t1.recv(src=0, tag=7)
        got["value"] = float(msg.payload.upkdouble()[0])
        got["latency"] = msg.latency

    kernel.spawn(sender())
    kernel.spawn(receiver())
    kernel.run()
    assert got["value"] == 3.14
    assert got["latency"] > 0


def test_recv_blocks_until_message_arrives():
    kernel, vm, (t0, t1, *_) = make_vm()
    times = {}

    def sender():
        from repro.sim import Compute

        yield Compute(2.0)
        yield from t0.send(1, tag=1, payload=PackBuffer().pkint(1))

    def receiver():
        yield from t1.recv()
        times["recv_done"] = kernel.now

    kernel.spawn(sender())
    kernel.spawn(receiver())
    kernel.run()
    assert times["recv_done"] > 2.0


def test_pairwise_fifo_order():
    kernel, vm, (t0, t1, *_) = make_vm()
    got = []

    def sender():
        for i in range(10):
            yield from t0.send(1, tag=5, payload=PackBuffer().pkint(i))

    def receiver():
        for _ in range(10):
            msg = yield from t1.recv(src=0, tag=5)
            got.append(int(msg.payload.upkint()[0]))

    kernel.spawn(sender())
    kernel.spawn(receiver())
    kernel.run()
    assert got == list(range(10))


def test_tag_and_source_filtering():
    kernel, vm, (t0, t1, t2, _) = make_vm()
    got = []

    def s0():
        yield from t0.send(2, tag=1, payload=PackBuffer().pkint(10))

    def s1():
        yield from t1.send(2, tag=2, payload=PackBuffer().pkint(20))

    def receiver():
        m = yield from t2.recv(src=1, tag=ANY_TAG)
        got.append(int(m.payload.upkint()[0]))
        m = yield from t2.recv(src=ANY_SOURCE, tag=1)
        got.append(int(m.payload.upkint()[0]))

    kernel.spawn(s0())
    kernel.spawn(s1())
    kernel.spawn(receiver())
    kernel.run()
    assert got == [20, 10]


def test_nrecv_nonblocking():
    kernel, vm, (t0, t1, *_) = make_vm()
    results = []

    def receiver():
        results.append(t1.nrecv())  # nothing yet
        msg = yield from t1.recv()
        results.append(msg)

    def sender():
        yield from t0.send(1, tag=3, payload=PackBuffer().pkint(5))

    kernel.spawn(receiver())
    kernel.spawn(sender())
    kernel.run()
    assert results[0] is None
    assert results[1] is not None


def test_probe_and_pending():
    kernel, vm, (t0, t1, *_) = make_vm()
    seen = {}

    def sender():
        for _ in range(3):
            yield from t0.send(1, tag=9, payload=PackBuffer().pkint(0))

    def checker():
        from repro.sim import Compute

        yield Compute(1.0)  # let everything arrive
        seen["probe"] = t1.probe(tag=9)
        seen["pending"] = t1.pending(tag=9)
        seen["probe_other"] = t1.probe(tag=99)

    kernel.spawn(sender())
    kernel.spawn(checker())
    kernel.run()
    assert seen["probe"] is True
    assert seen["pending"] == 3
    assert seen["probe_other"] is False


def test_large_message_fragments_and_reassembles():
    kernel, vm, (t0, t1, *_) = make_vm()
    payload = PackBuffer().pkdouble(np.arange(1000.0))  # 8000 B > 1500 MTU
    got = {}

    def sender():
        yield from t0.send(1, tag=1, payload=payload)

    def receiver():
        msg = yield from t1.recv()
        got["data"] = msg.payload.upkdouble()

    frames_before = vm.network.stats.frames_sent
    kernel.spawn(sender())
    kernel.spawn(receiver())
    kernel.run()
    assert np.array_equal(got["data"], np.arange(1000.0))
    n_frames = vm.network.stats.frames_sent - frames_before
    assert n_frames == -(-(8000 + vm.overheads.header_bytes) // 1500)


def test_send_overhead_charged_as_compute():
    ov = PvmOverheads(send_fixed=1e-3, send_per_byte=0.0)
    kernel, vm, (t0, t1, *_) = make_vm(overheads=ov)

    def sender():
        yield from t0.send(1, tag=1, payload=PackBuffer().pkint(1))

    h = kernel.spawn(sender())
    kernel.spawn(iter_recv(t1))
    kernel.run()
    assert h.busy_time == pytest.approx(1e-3)


def iter_recv(task, n=1):
    def proc():
        for _ in range(n):
            yield from task.recv()

    return proc()


def test_mcast_reaches_all_destinations_not_self():
    kernel, vm, tasks = make_vm(n=4)
    got = {i: [] for i in range(4)}

    def sender():
        yield from tasks[0].mcast([0, 1, 2, 3], tag=4, payload=PackBuffer().pkint(1))

    def receiver(i):
        msg = yield from tasks[i].recv(tag=4)
        got[i].append(msg.src)

    kernel.spawn(sender())
    for i in (1, 2, 3):
        kernel.spawn(receiver(i))
    kernel.run()
    assert got[0] == [] and all(got[i] == [0] for i in (1, 2, 3))


def test_barrier_synchronizes_entry_times():
    kernel, vm, tasks = make_vm(n=4)
    release_times = {}

    def member(i):
        from repro.sim import Compute

        yield Compute(float(i))  # staggered arrival: 0,1,2,3 s
        yield from tasks[i].barrier(range(4))
        release_times[i] = kernel.now

    for i in range(4):
        kernel.spawn(member(i))
    kernel.run()
    # nobody may leave before the last member (t=3.0) arrived
    assert min(release_times.values()) >= 3.0
    # and release is prompt (well under one second after)
    assert max(release_times.values()) < 3.2


def test_barrier_single_member_is_noop():
    kernel, vm, tasks = make_vm(n=1)

    def member():
        yield from tasks[0].barrier([0])
        return "out"

    h = kernel.spawn(member())
    kernel.run()
    assert h.result == "out"


def test_barrier_nonmember_rejected():
    kernel, vm, tasks = make_vm(n=2)

    def member():
        yield from tasks[0].barrier([1])

    kernel.spawn(member())
    with pytest.raises(Exception):
        kernel.run()


def test_recv_deadlock_detected_when_no_sender():
    kernel, vm, (t0, *_) = make_vm()

    def receiver():
        yield from t0.recv()

    kernel.spawn(receiver(), name="lonely")
    with pytest.raises(DeadlockError):
        kernel.run()


def test_send_to_unknown_task_raises():
    kernel, vm, (t0, *_) = make_vm(n=2)

    def sender():
        yield from t0.send(42, tag=0, payload=PackBuffer().pkint(1))

    kernel.spawn(sender())
    with pytest.raises(Exception):
        kernel.run()


def test_works_over_switch_network_too():
    kernel, vm, (t0, t1, *_) = make_vm(network_cls=SwitchNetwork)
    got = {}

    def sender():
        yield from t0.send(1, tag=1, payload=PackBuffer().pkdouble(np.arange(3000.0)))

    def receiver():
        msg = yield from t1.recv()
        got["n"] = msg.payload.upkdouble().size

    kernel.spawn(sender())
    kernel.spawn(receiver())
    kernel.run()
    assert got["n"] == 3000


def test_duplicate_task_rejected():
    kernel, vm, _ = make_vm(n=2)
    with pytest.raises(ValueError):
        vm.add_task(0)


def test_message_counters():
    kernel, vm, (t0, t1, *_) = make_vm()

    def sender():
        for _ in range(4):
            yield from t0.send(1, tag=1, payload=PackBuffer().pkint(1))

    def receiver():
        for _ in range(4):
            yield from t1.recv()

    kernel.spawn(sender())
    kernel.spawn(receiver())
    kernel.run()
    assert t0.messages_sent == 4
    assert t1.messages_received == 4
    assert vm.total_messages() == 4
    assert t0.bytes_sent == 16


# ---------------------------------------------------------------------------
# hardware multicast (switched fabrics with a tree, DESIGN.md §14)
# ---------------------------------------------------------------------------


def make_switched_vm(n=4, seed=0, hw_multicast=True):
    from repro.network.switched import SwitchedConfig, SwitchedNetwork

    kernel = Kernel(seed=seed)
    net = SwitchedNetwork(kernel, SwitchedConfig(radix=4))
    vm = VirtualMachine(kernel, net, hw_multicast=hw_multicast)
    tasks = [vm.add_task(i) for i in range(n)]
    return kernel, vm, tasks


def test_hw_multicast_full_fanout_uses_one_wire_broadcast():
    kernel, vm, tasks = make_switched_vm()
    got = {i: [] for i in range(4)}

    def sender():
        yield from tasks[0].mcast([1, 2, 3], tag=4, payload=(1, 2), nbytes=64)

    def receiver(i):
        msg = yield from tasks[i].recv(tag=4)
        got[i].append((msg.src, msg.dst, msg.payload))

    kernel.spawn(sender())
    for i in (1, 2, 3):
        kernel.spawn(receiver(i))
    kernel.run()
    # every receiver sees the message addressed to itself (not BROADCAST)
    assert all(got[i] == [(0, i, (1, 2))] for i in (1, 2, 3))
    # one frame climbed the tree; accounting stays logical
    assert vm.network.stats.broadcasts == 1
    assert tasks[0].messages_sent == 3
    assert tasks[0].bytes_sent == 3 * 64


def test_hw_multicast_partial_fanout_falls_back_to_unicast():
    """A broadcast reaches every adapter; a partial destination set must
    therefore go out as unicasts or it would leak to non-destinations."""
    kernel, vm, tasks = make_switched_vm()

    def sender():
        yield from tasks[0].mcast([1, 2], tag=4, payload=(1,), nbytes=32)

    def receiver(i):
        yield from tasks[i].recv(tag=4)

    kernel.spawn(sender())
    for i in (1, 2):
        kernel.spawn(receiver(i))
    kernel.run()
    assert vm.network.stats.broadcasts == 0


def test_hw_multicast_packbuffer_falls_back_to_unicast():
    """PackBuffer payloads carry a shared unpack cursor — receivers would
    race on it, so they must never ride one shared BROADCAST frame."""
    kernel, vm, tasks = make_switched_vm()
    values = []

    def sender():
        yield from tasks[0].mcast([1, 2, 3], tag=4, payload=PackBuffer().pkint(7))

    def receiver(i):
        msg = yield from tasks[i].recv(tag=4)
        values.append(int(msg.payload.upkint()[0]))

    kernel.spawn(sender())
    for i in (1, 2, 3):
        kernel.spawn(receiver(i))
    kernel.run()
    assert values == [7, 7, 7]  # every copy unpacks independently
    assert vm.network.stats.broadcasts == 0


def test_hw_multicast_off_by_default():
    kernel, vm, tasks = make_switched_vm(hw_multicast=False)

    def sender():
        yield from tasks[0].mcast([1, 2, 3], tag=4, payload=(1,), nbytes=16)

    def receiver(i):
        yield from tasks[i].recv(tag=4)

    kernel.spawn(sender())
    for i in (1, 2, 3):
        kernel.spawn(receiver(i))
    kernel.run()
    assert vm.network.stats.broadcasts == 0
