"""Migration topologies: wiring shapes, symmetry, seeded determinism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga.topology import (
    TOPOLOGIES,
    TopologySpec,
    comm_graph,
    grid_shape,
    in_peers,
    readers_of,
)


class TestSpec:
    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError, match="topology"):
            TopologySpec(kind="mesh")
        with pytest.raises(ValueError, match="degree"):
            TopologySpec(kind="random", degree=0)
        with pytest.raises(ValueError, match="group"):
            TopologySpec(kind="hierarchical", group=1)

    def test_out_of_range_deme_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            in_peers(TopologySpec(), 4, 4)


class TestShapes:
    def test_all_matches_historical_enumeration(self):
        """The digest-neutrality anchor: "all" must reproduce the exact
        ascending peer list the pre-topology code inlined."""
        spec = TopologySpec(kind="all")
        for n in (2, 3, 8):
            for d in range(n):
                assert in_peers(spec, d, n) == [p for p in range(n) if p != d]
                assert readers_of(spec, d, n) == tuple(
                    p for p in range(n) if p != d
                )

    def test_ring_has_two_neighbours(self):
        spec = TopologySpec(kind="ring")
        assert in_peers(spec, 0, 8) == [1, 7]
        assert in_peers(spec, 3, 8) == [2, 4]
        assert in_peers(spec, 0, 2) == [1]  # two demes: one neighbour

    def test_grid_shape_prefers_squarest_factorisation(self):
        assert grid_shape(16) == (4, 4)
        assert grid_shape(12) == (3, 4)
        assert grid_shape(7) == (1, 7)  # prime: degenerates to a ring

    def test_torus_has_four_neighbours(self):
        spec = TopologySpec(kind="torus")
        assert in_peers(spec, 5, 16) == [1, 4, 6, 9]  # 4x4 grid, cell (1,1)
        # prime count falls back to the ring
        assert in_peers(spec, 0, 7) == [1, 6]

    def test_hierarchical_groups_and_leader_ring(self):
        spec = TopologySpec(kind="hierarchical", group=4)
        # non-leader: its own block only
        assert in_peers(spec, 5, 16) == [4, 6, 7]
        # leader of block 1: block plus the neighbouring leaders
        assert in_peers(spec, 4, 16) == [0, 5, 6, 7, 8]

    def test_random_is_seeded_and_order_free(self):
        a = TopologySpec(kind="random", seed=3, degree=3)
        peers = {d: in_peers(a, d, 32) for d in range(32)}
        assert all(len(p) == 3 for p in peers.values())
        # independent of evaluation order, pure function of (seed, n, d)
        assert in_peers(a, 17, 32) == peers[17]
        b = TopologySpec(kind="random", seed=4, degree=3)
        assert any(in_peers(b, d, 32) != peers[d] for d in range(32))

    def test_random_readers_are_the_exact_inverse(self):
        spec = TopologySpec(kind="random", seed=1, degree=2)
        n = 16
        for writer in range(n):
            readers = readers_of(spec, writer, n)
            assert readers == tuple(
                d for d in range(n) if writer in in_peers(spec, d, n)
            )


topo_specs = st.builds(
    TopologySpec,
    kind=st.sampled_from(TOPOLOGIES),
    seed=st.integers(min_value=0, max_value=99),
    degree=st.integers(min_value=1, max_value=4),
    group=st.integers(min_value=2, max_value=6),
)


@settings(max_examples=60, deadline=None)
@given(topo_specs, st.integers(min_value=2, max_value=48))
def test_property_wiring_well_formed(spec, n):
    """Every kind: peers are ascending, in-range, self-free, and every
    deme can reach migrants (no isolated deme)."""
    for d in range(n):
        peers = in_peers(spec, d, n)
        assert peers == sorted(set(peers))
        assert all(0 <= p < n and p != d for p in peers)
        assert peers  # n >= 2: nobody is isolated


@settings(max_examples=60, deadline=None)
@given(topo_specs, st.integers(min_value=2, max_value=48))
def test_property_readers_invert_in_peers(spec, n):
    """writer in in_peers(reader) iff reader in readers_of(writer) —
    the DSM registration contract every kind must satisfy."""
    for writer in range(n):
        for reader in readers_of(spec, writer, n):
            assert writer in in_peers(spec, reader, n)
    for d in range(n):
        for p in in_peers(spec, d, n):
            assert d in readers_of(spec, p, n)


@settings(max_examples=40, deadline=None)
@given(topo_specs, st.integers(min_value=2, max_value=32))
def test_property_symmetric_kinds_are_symmetric(spec, n):
    """Structured kinds: migration is mutual (readers == in-peers)."""
    if spec.kind == "random":
        return
    for d in range(n):
        assert readers_of(spec, d, n) == tuple(in_peers(spec, d, n))


@settings(max_examples=30, deadline=None)
@given(topo_specs, st.integers(min_value=2, max_value=32))
def test_property_comm_graph_covers_every_deme(spec, n):
    g = comm_graph(spec, n, 100)
    assert sorted(g.nodes) == list(range(n))
    for d in range(n):
        for p in in_peers(spec, d, n):
            assert g.has_edge(d, p)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=99), st.integers(min_value=3, max_value=40))
def test_property_random_wiring_deterministic(seed, n):
    spec = TopologySpec(kind="random", seed=seed, degree=2)
    assert [in_peers(spec, d, n) for d in range(n)] == [
        in_peers(spec, d, n) for d in range(n)
    ]
