"""Island-GA unit tests: mode mechanics, migration, throttling, metrics."""

import pytest

from repro.cluster import MachineConfig
from repro.core.coherence import CoherenceMode
from repro.ga import IslandGaConfig, get_function, run_island_ga


class TestConfigValidation:
    def test_bad_configs_rejected(self):
        fn = get_function(1)
        with pytest.raises(ValueError):
            IslandGaConfig(fn=fn, n_demes=0, mode=CoherenceMode.SYNCHRONOUS)
        with pytest.raises(ValueError):
            IslandGaConfig(fn=fn, n_demes=2, mode=CoherenceMode.NON_STRICT, age=-1)
        with pytest.raises(ValueError):
            IslandGaConfig(
                fn=fn, n_demes=2, mode=CoherenceMode.SYNCHRONOUS,
                migration_fraction=0.0,
            )

    def test_machine_node_count_must_match(self):
        fn = get_function(1)
        cfg = IslandGaConfig(
            fn=fn, n_demes=4, mode=CoherenceMode.SYNCHRONOUS,
            machine=MachineConfig(n_nodes=2),
        )
        with pytest.raises(ValueError, match="demes"):
            run_island_ga(cfg)


class TestMechanics:
    def test_all_demes_run_all_generations_without_target(self, run_island):
        r = run_island(CoherenceMode.SYNCHRONOUS, gens=15)
        assert r.generations_run == [15, 15, 15]
        assert r.completion_time is None
        assert r.total_time > 0

    def test_single_deme_runs_without_communication(self, run_island):
        r = run_island(CoherenceMode.NON_STRICT, age=5, demes=1, gens=10)
        assert r.messages_sent == 0
        assert r.generations_run == [10]

    def test_sync_demes_stay_aligned(self, run_island):
        """Barrier + age-0 reads: all demes end every generation together,
        so the per-deme generation counters always match."""
        r = run_island(CoherenceMode.SYNCHRONOUS, gens=20, demes=4)
        assert len(set(r.generations_run)) == 1

    def test_gr_age_bounds_blocking(self, run_island):
        tight = run_island(CoherenceMode.NON_STRICT, age=0, gens=30, seed=9)
        loose = run_island(CoherenceMode.NON_STRICT, age=20, gens=30, seed=9)
        assert tight.gr_stats.blocked >= loose.gr_stats.blocked
        assert tight.gr_stats.calls == loose.gr_stats.calls

    def test_async_never_blocks(self, run_island):
        r = run_island(CoherenceMode.ASYNCHRONOUS, gens=30)
        assert r.gr_stats.calls == 0
        assert r.gr_stats.blocked == 0

    def test_migration_improves_over_isolated_demes(self, run_island):
        """Demes with migration reach better quality than the same demes
        in isolation (migration_fraction ~ 0 is not allowed; compare one
        isolated deme against the connected archipelago's best)."""
        fn = get_function(6)
        connected = run_island(CoherenceMode.NON_STRICT, age=5, demes=4, gens=60, fn=fn)
        isolated = [
            run_island(CoherenceMode.NON_STRICT, age=5, demes=1, gens=60, seed=4, fn=fn)
        ]
        assert connected.best_fitness <= min(i.best_fitness for i in isolated) + 1e-9

    def test_target_stops_simulation_early(self, run_island):
        full = run_island(CoherenceMode.ASYNCHRONOUS, gens=60, seed=2)
        easy_target = full.per_deme_best[0] + 1000.0  # trivially reachable
        early = run_island(CoherenceMode.ASYNCHRONOUS, gens=60, seed=2, target=easy_target)
        assert early.completion_time is not None
        assert early.completion_time <= full.total_time

    def test_found_optimum_threshold(self, run_island):
        r = run_island(CoherenceMode.ASYNCHRONOUS, gens=80, demes=4)
        assert r.found_optimum(10.0)  # sphere easily below 10
        assert not r.found_optimum(-1.0)


class TestMetrics:
    def test_message_count_scales_with_demes(self, run_island):
        r2 = run_island(CoherenceMode.ASYNCHRONOUS, demes=2, gens=10)
        r4 = run_island(CoherenceMode.ASYNCHRONOUS, demes=4, gens=10)
        # (G+1) writes x (P-1) readers x P demes
        assert r2.messages_sent == 11 * 1 * 2
        assert r4.messages_sent == 11 * 3 * 4

    def test_result_carries_network_and_gr_stats(self, run_island):
        r = run_island(CoherenceMode.NON_STRICT, age=3, gens=10)
        assert 0 <= r.network_utilization < 1
        assert r.gr_stats.calls == 3 * 2 * 10  # demes x peers x generations
        assert len(r.per_deme_best) == 3

    def test_best_fitness_is_min_over_demes(self, run_island):
        r = run_island(CoherenceMode.SYNCHRONOUS, gens=15)
        assert r.best_fitness == min(r.per_deme_best)
