"""Table 1 test-bed functions: minima, domains, vectorisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga.functions import (
    TEST_FUNCTIONS,
    f4_noiseless,
    get_function,
    reseed_f4,
)


def test_eight_functions_defined():
    assert len(TEST_FUNCTIONS) == 8
    assert [f.fid for f in TEST_FUNCTIONS] == list(range(1, 9))


def test_get_function_lookup_and_error():
    assert get_function(5).name == "foxholes"
    with pytest.raises(KeyError):
        get_function(9)


def test_f1_minimum_at_origin():
    fn = get_function(1)
    assert fn(np.zeros((1, 3)))[0] == 0.0
    assert fn(np.ones((1, 3)))[0] == 3.0


def test_f2_minimum_at_one_one():
    fn = get_function(2)
    assert fn(np.array([[1.0, 1.0]]))[0] == 0.0
    assert fn(np.array([[0.0, 0.0]]))[0] == 1.0


def test_f3_step_shifted_minimum_is_zero():
    """Table 1 lists min 0: the shifted step function 30 + sum(floor(x))."""
    fn = get_function(3)
    worst_floor = np.full((1, 5), -5.12)  # floor = -6 per variable
    assert fn(worst_floor)[0] == 0.0
    assert fn(np.zeros((1, 5)))[0] == 30.0


def test_f4_noise_distribution_and_reseed():
    fn = get_function(4)
    assert fn.noisy
    x = np.zeros((2000, 30))
    reseed_f4(42)
    vals = fn(x)
    # noiseless part is 0; samples must look like N(0, 1)
    assert abs(vals.mean()) < 0.1
    assert abs(vals.std() - 1.0) < 0.1
    reseed_f4(42)
    assert np.array_equal(fn(x), vals)  # reseed reproduces the stream
    assert f4_noiseless(x).sum() == 0.0


def test_f5_foxholes_global_minimum():
    fn = get_function(5)
    val = fn(np.array([[-32.0, -32.0]]))[0]
    assert val == pytest.approx(0.998004, abs=1e-4)
    # far from every foxhole the function is much larger
    assert fn(np.array([[0.5, 17.3]]))[0] > 1.2


def test_f6_rastrigin_minimum_and_bumps():
    fn = get_function(6)
    assert fn(np.zeros((1, 20)))[0] == pytest.approx(0.0, abs=1e-9)
    assert fn(np.full((1, 20), 0.5))[0] > 100  # cos ripple maxima


def test_f7_schwefel_minimum():
    fn = get_function(7)
    x = np.full((1, 10), 420.9687)
    assert fn(x)[0] == pytest.approx(-4189.83, abs=0.5)


def test_f8_griewank_minimum():
    fn = get_function(8)
    assert fn(np.zeros((1, 10)))[0] == pytest.approx(0.0, abs=1e-12)


def test_domain_validation():
    fn = get_function(1)
    with pytest.raises(ValueError, match="outside"):
        fn(np.full((1, 3), 6.0))
    with pytest.raises(ValueError, match="variables"):
        fn(np.zeros((1, 4)))


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=1000))
def test_property_minimum_is_lower_bound(fid, seed):
    """No sampled point beats the documented minimum (modulo F4's noise)."""
    fn = get_function(fid)
    rng = np.random.default_rng(seed)
    x = rng.uniform(fn.lower, fn.upper, size=(64, fn.n_vars))
    if fn.noisy:
        vals = f4_noiseless(x)
        floor = 0.0
    else:
        vals = fn(x)
        floor = fn.min_value
    assert np.all(vals >= floor - 1e-9)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=8))
def test_property_vectorised_matches_rowwise(fid):
    fn = get_function(fid)
    if fn.noisy:
        return  # stochastic: batch and row-wise draws differ by design
    rng = np.random.default_rng(fid)
    x = rng.uniform(fn.lower, fn.upper, size=(16, fn.n_vars))
    batch = fn(x)
    rows = np.array([fn(x[i : i + 1])[0] for i in range(16)])
    assert np.allclose(batch, rows)
