"""Population container and generational operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga.operators import (
    GaParams,
    ScalingWindow,
    mutate,
    roulette_select,
    selection_weights,
    single_point_crossover,
)
from repro.ga.population import Population


def make_pop(fit):
    fit = np.asarray(fit, dtype=float)
    rng = np.random.default_rng(0)
    return Population(rng.integers(0, 2, size=(fit.size, 12), dtype=np.uint8), fit)


class TestPopulation:
    def test_best_worst_queries(self):
        pop = make_pop([3.0, 1.0, 2.0])
        assert pop.best_index == 1
        assert pop.best_fitness == 1.0
        assert pop.mean_fitness == pytest.approx(2.0)
        assert pop.size == 3

    def test_best_individuals_sorted(self):
        pop = make_pop([3.0, 1.0, 2.0])
        g, f = pop.best_individuals(2)
        assert f.tolist() == [1.0, 2.0]
        with pytest.raises(ValueError):
            pop.best_individuals(0)
        with pytest.raises(ValueError):
            pop.best_individuals(4)

    def test_replace_worst_improves(self):
        pop = make_pop([10.0, 20.0, 30.0])
        migr_g = np.ones((2, 12), dtype=np.uint8)
        migr_g[1, 0] = 0  # make them distinct
        installed = pop.replace_worst(migr_g, np.array([5.0, 15.0]))
        assert installed == 2
        assert sorted(pop.fitness.tolist()) == [5.0, 10.0, 15.0]

    def test_replace_worst_never_degrades(self):
        pop = make_pop([1.0, 2.0, 3.0])
        before = pop.fitness.copy()
        installed = pop.replace_worst(
            np.ones((2, 12), dtype=np.uint8), np.array([50.0, 60.0])
        )
        assert installed == 0
        assert np.array_equal(pop.fitness, before)

    def test_replace_worst_skips_duplicates(self):
        pop = make_pop([10.0, 20.0])
        dup = pop.genomes[0].copy()
        installed = pop.replace_worst(dup[None, :], np.array([0.5]))
        assert installed == 0  # identical chromosome not reinstalled

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Population(np.zeros((3, 4), dtype=np.uint8), np.zeros(2))
        with pytest.raises(ValueError):
            Population(np.zeros(4, dtype=np.uint8), np.zeros(1))
        pop = make_pop([1.0, 2.0])
        with pytest.raises(ValueError):
            pop.replace_worst(np.zeros((2, 12), dtype=np.uint8), np.zeros(1))


class TestScalingWindow:
    def test_w1_uses_current_generation(self):
        w = ScalingWindow(window=1)
        w.update(10.0)
        assert w.scaling_baseline == 10.0
        w.update(5.0)
        assert w.scaling_baseline == 5.0

    def test_w3_remembers_recent_worst(self):
        w = ScalingWindow(window=3)
        for v in (10.0, 7.0, 5.0):
            w.update(v)
        assert w.scaling_baseline == 10.0
        w.update(4.0)  # 10.0 falls out of the window
        assert w.scaling_baseline == 7.0

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            ScalingWindow().scaling_baseline


class TestSelection:
    def test_weights_favor_fitter_minimisation(self):
        f = np.array([1.0, 5.0, 9.0])
        w = selection_weights(f, baseline=9.0)
        assert w[0] > w[1] > w[2] == 0.0
        assert w.sum() == pytest.approx(1.0)

    def test_flat_population_uniform(self):
        w = selection_weights(np.array([3.0, 3.0]), baseline=3.0)
        assert np.allclose(w, 0.5)

    def test_roulette_distribution(self):
        rng = np.random.default_rng(0)
        f = np.array([0.0, 10.0])
        idx = roulette_select(f, baseline=10.0, n=2000, rng=rng)
        assert np.all(idx == 0)  # second has zero weight


class TestCrossoverMutation:
    def test_crossover_rate_zero_copies_parents(self):
        rng = np.random.default_rng(1)
        a = np.zeros((5, 10), dtype=np.uint8)
        b = np.ones((5, 10), dtype=np.uint8)
        ca, cb = single_point_crossover(a, b, rate=0.0, rng=rng)
        assert np.array_equal(ca, a) and np.array_equal(cb, b)

    def test_crossover_rate_one_swaps_suffixes(self):
        rng = np.random.default_rng(2)
        a = np.zeros((20, 10), dtype=np.uint8)
        b = np.ones((20, 10), dtype=np.uint8)
        ca, cb = single_point_crossover(a, b, rate=1.0, rng=rng)
        for row_a, row_b in zip(ca, cb):
            # each child is a prefix of one parent + suffix of the other
            k = int(np.argmax(row_a == 1)) if row_a.any() else 10
            assert np.all(row_a[:k] == 0) and np.all(row_a[k:] == 1)
            assert np.all(row_b[:k] == 1) and np.all(row_b[k:] == 0)
            assert 1 <= k <= 9 or not row_a.any() is False

    def test_crossover_preserves_multiset_of_bits_per_column(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 2, (30, 16), dtype=np.uint8)
        b = rng.integers(0, 2, (30, 16), dtype=np.uint8)
        ca, cb = single_point_crossover(a, b, rate=0.7, rng=rng)
        assert np.array_equal(ca + cb, a + b)

    def test_mutation_rate_statistics(self):
        rng = np.random.default_rng(4)
        g = np.zeros((100, 100), dtype=np.uint8)
        m = mutate(g, rate=0.01, rng=rng)
        flipped = m.sum()
        assert 50 <= flipped <= 150  # ~100 expected
        assert not np.shares_memory(m, g)

    def test_mutation_zero_is_identity(self):
        rng = np.random.default_rng(5)
        g = rng.integers(0, 2, (10, 20), dtype=np.uint8)
        assert np.array_equal(mutate(g, 0.0, rng), g)


class TestParams:
    def test_paper_defaults(self):
        p = GaParams()
        assert (p.population_size, p.crossover_rate, p.mutation_rate) == (50, 0.6, 0.001)
        assert p.scaling_window == 1 and p.elitist

    def test_validation(self):
        with pytest.raises(ValueError):
            GaParams(population_size=1)
        with pytest.raises(ValueError):
            GaParams(crossover_rate=1.5)
        with pytest.raises(ValueError):
            GaParams(mutation_rate=-0.1)
        with pytest.raises(ValueError):
            GaParams(generation_gap=0.5)
        with pytest.raises(ValueError):
            GaParams(scaling_window=0)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=40),
    rate=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=500),
)
def test_property_crossover_children_bits_come_from_parents(n, rate, seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 2, (n, 24), dtype=np.uint8)
    b = rng.integers(0, 2, (n, 24), dtype=np.uint8)
    ca, cb = single_point_crossover(a, b, rate, rng)
    # column-wise conservation: crossover only exchanges aligned bits
    assert np.array_equal(np.sort(np.stack([ca, cb]), axis=0),
                          np.sort(np.stack([a, b]), axis=0))
