"""Fitness cache and serial GA behaviour."""

import numpy as np
import pytest

from repro.ga import FitnessCache, GaCostModel, get_function, run_serial_ga
from repro.ga.operators import GaParams


class TestFitnessCache:
    def test_caches_identical_genomes(self):
        calls = []

        def ev(g):
            calls.append(g.shape[0])
            return g.sum(axis=1).astype(float)

        cache = FitnessCache(ev)
        g = np.array([[1, 0], [1, 0], [0, 1]], dtype=np.uint8)
        out1 = cache(g)
        assert out1.tolist() == [1.0, 1.0, 1.0]
        assert cache.misses == 2 and cache.hits == 1  # [1,0] evaluated once
        out2 = cache(g)
        assert np.array_equal(out1, out2)
        assert cache.hits == 4
        assert sum(calls) == 2

    def test_disabled_cache_is_passthrough(self):
        cache = FitnessCache(lambda g: g.sum(axis=1).astype(float), enabled=False)
        g = np.zeros((3, 4), dtype=np.uint8)
        cache(g)
        cache(g)
        assert cache.misses == 6 and cache.hits == 0
        assert len(cache) == 0

    def test_lru_bound(self):
        cache = FitnessCache(lambda g: g.sum(axis=1).astype(float), max_entries=4)
        rng = np.random.default_rng(0)
        for _ in range(10):
            cache(rng.integers(0, 2, (3, 16), dtype=np.uint8))
        assert len(cache) <= 4

    def test_hit_rate(self):
        cache = FitnessCache(lambda g: g.sum(axis=1).astype(float))
        assert cache.hit_rate == 0.0
        g = np.zeros((1, 4), dtype=np.uint8)
        cache(g)
        cache(g)
        assert cache.hit_rate == 0.5


class TestCostModel:
    def test_eval_cost_grows_with_dims_and_transcendentals(self):
        m = GaCostModel()
        assert m.eval_cost(get_function(4)) > m.eval_cost(get_function(1))
        # rastrigin (20 vars, transcendental) costs more than sphere (3 vars)
        assert m.eval_cost(get_function(6)) > 2 * m.eval_cost(get_function(1))

    def test_generation_cost_components(self):
        m = GaCostModel()
        fn = get_function(1)
        c0 = m.generation_cost(fn, population=50, evaluations=0)
        c10 = m.generation_cost(fn, population=50, evaluations=10)
        assert c10 - c0 == pytest.approx(10 * m.eval_cost(fn))
        assert c0 == pytest.approx(50 * (m.genop_per_individual + m.cache_lookup))


class TestSerialGa:
    def test_deterministic_given_seed(self):
        fn = get_function(1)
        a = run_serial_ga(fn, seed=3, n_generations=40)
        b = run_serial_ga(fn, seed=3, n_generations=40)
        assert a.best_fitness == b.best_fitness
        assert a.sim_time == b.sim_time
        c = run_serial_ga(fn, seed=4, n_generations=40)
        assert c.best_fitness != a.best_fitness or c.sim_time != a.sim_time

    def test_best_history_monotone_nonincreasing(self):
        r = run_serial_ga(get_function(6), seed=1, n_generations=60)
        assert np.all(np.diff(r.best_history) <= 1e-12)
        assert np.all(np.diff(r.time_history) > 0)

    def test_sphere_converges_toward_zero(self):
        r = run_serial_ga(get_function(1), seed=0, n_generations=150)
        assert r.best_fitness < 0.05
        assert r.found_optimum(0.05)

    def test_elitism_from_params(self):
        """With elitism the running best never regresses (checked via history)."""
        r = run_serial_ga(
            get_function(2), seed=5, n_generations=80, params=GaParams(elitist=True)
        )
        assert r.best_history[-1] <= r.best_history[0]

    def test_cache_active_for_deterministic_functions(self):
        r = run_serial_ga(get_function(1), seed=1, n_generations=100)
        assert 0.0 < r.cache_hit_rate < 1.0
        assert r.evaluations < 101 * 50  # strictly fewer than no-cache

    def test_noisy_f4_disables_cache(self):
        r = run_serial_ga(get_function(4), seed=1, n_generations=20)
        assert r.cache_hit_rate == 0.0
        assert r.evaluations == 21 * 50

    def test_time_to_target(self):
        r = run_serial_ga(get_function(1), seed=2, n_generations=100)
        assert r.time_to_target(r.best_fitness) <= r.sim_time
        assert r.time_to_target(-1.0) is None
        # a loose target is hit earlier than a tight one
        t_loose = r.time_to_target(r.best_history[0])
        t_tight = r.time_to_target(r.best_fitness)
        assert t_loose <= t_tight

    def test_population_size_override(self):
        small = run_serial_ga(get_function(1), seed=1, n_generations=10)
        big = run_serial_ga(get_function(1), seed=1, n_generations=10, population_size=200)
        assert big.sim_time > small.sim_time
