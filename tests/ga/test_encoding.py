"""Binary encoding: decode correctness, Gray mode, bounds, properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga.encoding import BinaryEncoding
from repro.ga.functions import get_function


def test_decode_endpoints_and_midrange():
    enc = BinaryEncoding(n_vars=1, bits_per_var=4, lower=0.0, upper=15.0)
    zeros = np.zeros((1, 4), dtype=np.uint8)
    ones = np.ones((1, 4), dtype=np.uint8)
    assert enc.decode(zeros)[0, 0] == 0.0
    assert enc.decode(ones)[0, 0] == 15.0
    # 0b0101 = 5
    assert enc.decode(np.array([[0, 1, 0, 1]], dtype=np.uint8))[0, 0] == 5.0


def test_decode_multivariable_layout():
    enc = BinaryEncoding(n_vars=2, bits_per_var=2, lower=0.0, upper=3.0)
    chrom = np.array([[1, 0, 0, 1]], dtype=np.uint8)  # fields 0b10=2, 0b01=1
    assert enc.decode(chrom).tolist() == [[2.0, 1.0]]


def test_encode_decode_roundtrip():
    enc = BinaryEncoding(n_vars=3, bits_per_var=8, lower=-1.0, upper=1.0)
    ints = np.array([[0, 128, 255]])
    bits = enc.encode_ints(ints)
    decoded = enc.decode(bits)
    span = 255
    expected = -1.0 + 2.0 * ints / span
    assert np.allclose(decoded, expected)


def test_gray_roundtrip_matches_plain():
    plain = BinaryEncoding(n_vars=2, bits_per_var=6, lower=0.0, upper=63.0)
    gray = BinaryEncoding(n_vars=2, bits_per_var=6, lower=0.0, upper=63.0, gray=True)
    ints = np.array([[0, 63], [17, 42], [1, 32]])
    assert np.allclose(plain.decode(plain.encode_ints(ints)), ints)
    assert np.allclose(gray.decode(gray.encode_ints(ints)), ints)


def test_gray_adjacent_ints_differ_by_one_bit():
    enc = BinaryEncoding(n_vars=1, bits_per_var=8, lower=0.0, upper=255.0, gray=True)
    ints = np.arange(255)
    a = enc.encode_ints(ints[:, None])
    b = enc.encode_ints((ints + 1)[:, None])
    hamming = np.sum(a != b, axis=1)
    assert np.all(hamming == 1)


def test_random_population_shape_and_values():
    enc = BinaryEncoding(n_vars=3, bits_per_var=10, lower=-5.12, upper=5.12)
    pop = enc.random_population(50, np.random.default_rng(0))
    assert pop.shape == (50, 30)
    assert pop.dtype == np.uint8
    assert set(np.unique(pop)) <= {0, 1}


def test_for_function_uses_table1_settings():
    fn = get_function(5)
    enc = BinaryEncoding.for_function(fn)
    assert enc.n_vars == 2
    assert enc.bits_per_var == 17
    assert enc.length == 34
    assert enc.nbytes == 5


def test_validation():
    with pytest.raises(ValueError):
        BinaryEncoding(n_vars=0, bits_per_var=4, lower=0, upper=1)
    with pytest.raises(ValueError):
        BinaryEncoding(n_vars=1, bits_per_var=4, lower=1.0, upper=1.0)
    with pytest.raises(ValueError):
        BinaryEncoding(n_vars=1, bits_per_var=31, lower=0, upper=1)
    enc = BinaryEncoding(n_vars=1, bits_per_var=4, lower=0, upper=1)
    with pytest.raises(ValueError, match="length"):
        enc.decode(np.zeros((1, 5), dtype=np.uint8))
    with pytest.raises(ValueError):
        enc.encode_ints([[16]])


@settings(max_examples=40, deadline=None)
@given(
    bits=st.integers(min_value=1, max_value=16),
    n_vars=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=999),
    gray=st.booleans(),
)
def test_property_decode_within_bounds(bits, n_vars, seed, gray):
    enc = BinaryEncoding(n_vars=n_vars, bits_per_var=bits, lower=-2.5, upper=7.5, gray=gray)
    pop = enc.random_population(32, np.random.default_rng(seed))
    x = enc.decode(pop)
    assert x.shape == (32, n_vars)
    assert np.all(x >= -2.5) and np.all(x <= 7.5)
