"""Quickstart: the Global_Read primitive in 60 lines.

Builds a two-node simulated multicomputer (10 Mbps Ethernet + PVM), a
shared location written by node 0 every iteration, and a reader on node 1
that is 10x faster than the writer.  ``Global_Read(locn, curr_iter, age)``
returns a value generated no earlier than iteration ``curr_iter - age``:
with a small age the fast reader is throttled to the writer's pace (the
paper's program-level flow control); ``read_local`` (slow-memory read)
never blocks and returns ever-staler copies.

Run:  python examples/quickstart.py
"""

from repro.cluster import Machine, MachineConfig
from repro.core import Dsm, SharedLocationSpec
from repro.sim import Compute


def main() -> None:
    machine = Machine(MachineConfig(n_nodes=2, seed=42))
    dsm = Dsm(machine.vm)
    dsm.register(SharedLocationSpec("temperature", writer=0, readers=(1,), value_nbytes=8))

    N_ITERS = 20

    def writer(node, task):
        d = dsm.node(0)
        for i in range(N_ITERS):
            yield Compute(node.cost(10e-3))  # a slow producer: 10 ms/iter
            yield from d.write("temperature", 20.0 + i, iter_no=i)

    def reader(node, task):
        d = dsm.node(1)
        for i in range(N_ITERS):
            yield Compute(node.cost(1e-3))  # a fast consumer: 1 ms/iter
            copy = yield from d.global_read("temperature", curr_iter=i, age=3)
            print(
                f"  t={task.vm.kernel.now * 1e3:7.2f} ms  iter={i:2d}  "
                f"read value={copy.value:<5}  (age {copy.age}, "
                f"staleness {max(0, i - copy.age)})"
            )

    machine.spawn_on(0, writer, name="writer")
    machine.spawn_on(1, reader, name="reader")
    total = machine.run_to_completion()

    stats = dsm.node(1).gr_stats
    print(f"\ncompleted in {total * 1e3:.1f} ms of simulated time")
    print(
        f"Global_Read: {stats.calls} calls, {stats.hits} served from the local "
        f"buffer, {stats.blocked} blocked for {stats.block_time * 1e3:.1f} ms total"
    )
    print(
        "the fast reader was throttled to the slow writer's pace - that is "
        "the paper's receiver-driven flow control"
    )


if __name__ == "__main__":
    main()
