"""Network load, warp and the growing benefit of non-strict coherence.

Reproduces the paper's §5.2 setting in miniature: a 4-deme island GA
shares the 10 Mbps Ethernet with a background loader at increasing
offered loads (the paper's 0.5/1/2 Mbps network-loader program on two
extra nodes), while the warp metric (§4.3) quantifies network-load
change.  The Global_Read variant's advantage over the synchronous one
grows with load — the paper's central loaded-network observation.

Run:  python examples/loaded_network_study.py
"""

from repro.cluster import MachineConfig, NodeSpec
from repro.core.coherence import CoherenceMode
from repro.experiments.warp_study import probe_warp
from repro.ga import IslandGaConfig, get_function, run_island_ga, run_serial_ga


def main() -> None:
    print("warp of a paced probe stream while background load ramps up:")
    for load in (0.0, 0.5e6, 1e6, 2e6, 6e6):
        w = probe_warp(load)
        print(
            f"  load {w['load_mbps']:>4.1f} Mbps: mean warp {w['mean_warp']:.3f}, "
            f"max warp {w['max_warp']:.2f}"
        )

    fn = get_function(1)
    G = 250
    P = 4
    serial = run_serial_ga(fn, seed=5, n_generations=G, population_size=50 * P)
    bar = float(serial.best_history[int(0.6 * G)])
    serial_time = serial.time_to_target(bar)

    print(f"\nisland GA (f1, {P} demes) under background load, speedup to "
          f"equal quality vs serial:")
    print(f"{'load':>10s} {'sync':>7s} {'gr10':>7s} {'gr10/sync':>10s}")
    for load in (0.0, 0.5e6, 1e6, 2e6):
        speeds = {}
        for label, mode, age in (
            ("sync", CoherenceMode.SYNCHRONOUS, 0),
            ("gr10", CoherenceMode.NON_STRICT, 10),
        ):
            cfg = IslandGaConfig(
                fn=fn, n_demes=P, mode=mode, age=age, n_generations=3 * G,
                seed=5, target=bar,
                machine=MachineConfig(
                    n_nodes=P, seed=5, node_spec=NodeSpec(jitter_sigma=0.12)
                ).with_load(load),
            )
            r = run_island_ga(cfg)
            speeds[label] = (
                serial_time / r.completion_time if r.completion_time else 0.0
            )
        ratio = speeds["gr10"] / speeds["sync"] if speeds["sync"] else float("inf")
        print(
            f"{load / 1e6:>8.1f} M {speeds['sync']:>7.2f} {speeds['gr10']:>7.2f} "
            f"{ratio:>9.2f}x"
        )
    print(
        "\nas the network gets more congested, the benefit of non-strict "
        "cache coherence increases (the paper's Figure 4)"
    )


if __name__ == "__main__":
    main()
