"""Parallel probabilistic inference with rollback and Global_Read.

Runs the paper's second application on the synthetic Hailfinder network:
serial logic sampling to the 90 % +-0.01 stopping rule, then the three
parallel implementations on two simulated nodes.  Shows the asynchronous
sampler's default-value gambles and rollbacks, and how the Global_Read
age bound trades blocking for rollback depth and message batching.

Run:  python examples/bayes_inference.py
"""

import numpy as np

from repro.bayes import (
    ParallelLsConfig,
    make_hailfinder,
    run_parallel_logic_sampling,
    run_serial_logic_sampling,
)
from repro.core.coherence import CoherenceMode
from repro.experiments.table2 import pick_query


def main() -> None:
    net = make_hailfinder(seed=0)
    query = pick_query(net)
    print(
        f"network {net.name}: {net.n_nodes} nodes, {net.n_edges} edges, "
        f"arity {net.max_values_per_node}; query node {query}\n"
    )

    serial = run_serial_logic_sampling(net, query=query, seed=11)
    print(
        f"serial logic sampling: {serial.n_runs} runs, "
        f"{serial.sim_time:.2f} s simulated, "
        f"posterior {np.round(serial.posterior, 3)}"
    )

    variants = [
        ("synchronous", CoherenceMode.SYNCHRONOUS, 0),
        ("asynchronous", CoherenceMode.ASYNCHRONOUS, 0),
        ("Global_Read age=10", CoherenceMode.NON_STRICT, 10),
        ("Global_Read age=30", CoherenceMode.NON_STRICT, 30),
    ]
    print(f"\n{'variant':20s} {'time':>8s} {'speedup':>8s} {'gambles':>8s} "
          f"{'hit rate':>8s} {'rollbacks':>9s} {'messages':>9s}")
    for name, mode, age in variants:
        r = run_parallel_logic_sampling(
            ParallelLsConfig(
                net=net, query=query, n_procs=2, mode=mode, age=age, seed=11,
                max_iterations=40_000,
            )
        )
        assert r.converged
        assert np.all(np.abs(r.posterior - serial.posterior) < 0.05)
        print(
            f"{name:20s} {r.completion_time:>6.2f} s "
            f"{serial.sim_time / r.completion_time:>8.2f} "
            f"{r.rollback.gambles:>8d} {r.rollback.gamble_hit_rate:>8.2f} "
            f"{r.rollback.rollbacks:>9d} {r.messages_sent:>9d}"
        )
    print(
        "\nall variants agree with the serial posterior (rollback keeps the "
        "estimate unbiased); only completion time differs - the paper's "
        "data-race tolerance"
    )


if __name__ == "__main__":
    main()
