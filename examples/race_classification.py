"""Classify the data races of one island-GA config in all three modes.

The paper's central claim (§2.1) is that emerging applications tolerate
data races *up to a staleness bound*: the races a `Global_Read(age)`
program admits are exactly the bounded ones, while a fully asynchronous
program races without limit and a barrier-synchronized one does not race
at all.  This example makes the claim concrete: it runs the same P-deme
f1 island GA under the three coherence organisations with the
happens-before race classifier attached, and prints one verdict table.

Expected shape (any seed):

* synchronous    — every missed write is ordered by barrier traffic:
                   0 tolerated, 0 unbounded;
* asynchronous   — free-running `read_local` carries no contract:
                   >= 1 unbounded race;
* Global_Read    — races exist but all are tolerated, and the maximum
                   observed staleness never exceeds the declared age.

Run:  python examples/race_classification.py [function-id] [n-demes] [age]
"""

import sys

from repro.analysis.report import classify_three_modes, race_table


def main(fid: int = 1, n_demes: int = 4, age: int = 10) -> None:
    print(
        f"f{fid} island GA, {n_demes} demes, Global_Read age bound {age}: "
        "classifying every (missed write, read) pair...\n"
    )
    runs = classify_three_modes(fid=fid, n_demes=n_demes, age=age, n_generations=60, seed=0)
    print(race_table(runs))

    gr = runs[-1]
    print(
        f"\nGlobal_Read run: {gr.classifier.tolerated_races} tolerated race(s), "
        f"max staleness {gr.classifier.max_observed_staleness()} <= bound {gr.age}; "
        f"{gr.classifier.total_violations} consistency violation(s)."
    )
    sample = [
        p for p in gr.classifier.pairs
        if p.classification.value == "tolerated"
    ][:3]
    if sample:
        print("sample tolerated pairs:")
        for pair in sample:
            print(f"  {pair.describe()}")


if __name__ == "__main__":
    main(
        fid=int(sys.argv[1]) if len(sys.argv) > 1 else 1,
        n_demes=int(sys.argv[2]) if len(sys.argv) > 2 else 4,
        age=int(sys.argv[3]) if len(sys.argv) > 3 else 10,
    )
