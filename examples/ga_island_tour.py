"""Island-model parallel GA: synchronous vs asynchronous vs Global_Read.

Reproduces one cell of the paper's Figure 2 protocol end to end:

1. run the corresponding serial GA (population 50 x P) on a Table 1
   function and take a mid-trajectory quality bar;
2. run the island GA on P simulated nodes under each coherence mode,
   measuring the simulated time to reach that bar;
3. report speedups, message counts and Global_Read blocking statistics.

Run:  python examples/ga_island_tour.py [function-id] [n-demes]
"""

import sys

from repro.cluster import MachineConfig, NodeSpec
from repro.core.coherence import CoherenceMode
from repro.ga import IslandGaConfig, get_function, run_island_ga, run_serial_ga


def main(fid: int = 1, n_demes: int = 8) -> None:
    fn = get_function(fid)
    print(f"function f{fn.fid} ({fn.name}), {n_demes} demes of 50 individuals\n")

    G = 250
    serial = run_serial_ga(fn, seed=7, n_generations=G, population_size=50 * n_demes)
    bar = float(serial.best_history[int(0.6 * G)])
    serial_time = serial.time_to_target(bar)
    print(
        f"serial baseline: {serial.sim_time:.2f} s for {G} generations, "
        f"best {serial.best_fitness:.4g}; quality bar {bar:.4g} reached "
        f"at {serial_time:.2f} s"
    )

    variants = [
        ("synchronous", CoherenceMode.SYNCHRONOUS, 0),
        ("asynchronous", CoherenceMode.ASYNCHRONOUS, 0),
        ("Global_Read age=0", CoherenceMode.NON_STRICT, 0),
        ("Global_Read age=10", CoherenceMode.NON_STRICT, 10),
        ("Global_Read age=30", CoherenceMode.NON_STRICT, 30),
    ]
    print(f"\n{'variant':20s} {'time-to-bar':>12s} {'speedup':>8s} "
          f"{'gens':>5s} {'messages':>9s} {'blocked':>8s}")
    for name, mode, age in variants:
        cfg = IslandGaConfig(
            fn=fn,
            n_demes=n_demes,
            mode=mode,
            age=age,
            n_generations=3 * G,
            seed=7,
            target=bar,
            machine=MachineConfig(
                n_nodes=n_demes, seed=7, node_spec=NodeSpec(jitter_sigma=0.12)
            ),
        )
        r = run_island_ga(cfg)
        if r.completion_time is None:
            print(f"{name:20s} {'did not converge':>12s}")
            continue
        print(
            f"{name:20s} {r.completion_time:>10.2f} s "
            f"{serial_time / r.completion_time:>8.2f} "
            f"{r.generations_to_target:>5d} {r.messages_sent:>9d} "
            f"{r.gr_stats.blocked:>8d}"
        )
    print(
        "\nthe partially asynchronous (Global_Read) demes avoid both the "
        "synchronous version's barrier + straggler waits and the "
        "asynchronous version's stale-migrant convergence penalty"
    )


if __name__ == "__main__":
    fid = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    demes = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    main(fid, demes)
