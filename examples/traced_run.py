"""A traced partially-asynchronous GA run, end to end.

Builds a 4-node simulated machine with the `repro.obs` trace bus
attached (``MachineConfig(trace=True)``), runs a small island GA under
``Global_Read`` (age 10), then:

1. writes the structured event trace to ``traced_run.jsonl``,
2. writes the metrics snapshot to ``traced_run_metrics.json``,
3. renders the run report (timelines, blocking, warp) right here.

The same trace renders from the shell with::

    python -m repro.obs report traced_run.jsonl --metrics traced_run_metrics.json

Tracing is determinism-neutral: this run's result is bit-identical to
the same run with ``trace=False`` (see DESIGN.md §10 and tests/obs/).

Run:  python examples/traced_run.py
"""

import json

from repro.cluster import MachineConfig, NodeSpec
from repro.core.coherence import CoherenceMode
from repro.ga import IslandGaConfig, get_function, run_island_ga
from repro.obs.metrics import machine_metrics
from repro.obs.report import render_report


def main() -> None:
    fn = get_function(1)  # f1, the paper's best-case function
    config = MachineConfig(
        n_nodes=4,
        seed=11,
        node_spec=NodeSpec(jitter_sigma=0.02),
        # one fast node: it outruns its neighbours' updates, so the age
        # bound throttles it — the blocking shows up in the trace
        speed_factors=(1.0, 1.0, 1.0, 1.6),
        measure_warp=True,
        trace=True,  # <- attaches the TraceBus to the kernel
    )
    holder = {}
    result = run_island_ga(
        IslandGaConfig(
            fn=fn,
            n_demes=4,
            mode=CoherenceMode.NON_STRICT,
            age=4,
            n_generations=60,
            seed=11,
            machine=config,
        ),
        instrument=lambda dsm: holder.setdefault("dsm", dsm),
    )
    bus = holder["dsm"].vm.kernel.obs
    print(
        f"run finished: best {result.best_fitness:.4g} in "
        f"{result.total_time:.2f} simulated s; "
        f"{len(bus.events)} trace events ({bus.dropped} dropped)\n"
    )

    bus.write_jsonl("traced_run.jsonl")
    metrics = result.metrics or machine_metrics(holder["dsm"].vm.machine)
    with open("traced_run_metrics.json", "w", encoding="utf-8") as fh:
        json.dump(metrics, fh, indent=2, sort_keys=True)
    print("wrote traced_run.jsonl and traced_run_metrics.json\n")

    print(render_report(bus.events, metrics=metrics))


if __name__ == "__main__":
    main()
