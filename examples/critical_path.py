"""Causal analysis of a traced run: spans, attribution, critical path.

Runs the same 4-node island GA twice — once with a strict staleness
bound (age=0) and once relaxed (age=10) — then uses the causal layer
(DESIGN.md §11) on the in-memory traces:

1. builds the span graph and attributes each node's wall time to
   compute / Global_Read blocking / network / rollback / idle,
2. walks the cross-node critical path and prints its composition,
3. diffs the two runs by iteration — the Figure-4 trade-off in two
   numbers (blocking falls, staleness rises),
4. writes ``critical_path_dashboard.html``, the single-file HTML view.

The same artifacts come from the shell via ``python -m repro.obs
critical-path / diff / dashboard`` on a ``--trace`` JSONL file.

Run:  python examples/critical_path.py
"""

from repro.cluster import MachineConfig, NodeSpec
from repro.core.coherence import CoherenceMode
from repro.ga import IslandGaConfig, get_function, run_island_ga
from repro.obs.causal import attribute, build_spans, critical_path
from repro.obs.dashboard import render_dashboard
from repro.obs.diff import diff_traces, render_diff


def traced_run(age: int):
    """One traced 4-deme GA run at the given age bound; returns its bus."""
    config = MachineConfig(
        n_nodes=4,
        seed=11,
        node_spec=NodeSpec(jitter_sigma=0.02),
        speed_factors=(1.0, 1.0, 1.0, 1.6),  # one fast node -> blocking
        measure_warp=True,
        trace=True,
    )
    holder: dict = {}
    run_island_ga(
        IslandGaConfig(
            fn=get_function(1),
            n_demes=4,
            mode=CoherenceMode.NON_STRICT,
            age=age,
            n_generations=60,
            seed=11,
            machine=config,
        ),
        instrument=lambda dsm: holder.setdefault("dsm", dsm),
    )
    return holder["dsm"].vm.kernel.obs


def main() -> None:
    strict = traced_run(age=0)
    relaxed = traced_run(age=10)

    g = build_spans(relaxed.events)
    attr = attribute(g)
    print(f"span graph: {len(g.spans)} spans over {g.events} events, "
          f"t_end {g.t_end:.3f}s\n")

    print("wall-time attribution (relaxed run, seconds):")
    print("node   compute  blocked  network  rollback  idle   attributed")
    for node, pn in sorted(attr["per_node"].items()):
        print(f"{node:>4}   {pn['compute']:.3f}    {pn['gr_blocking']:.3f}"
              f"    {pn['network']:.3f}    {pn['rollback']:.3f}"
              f"     {pn['idle']:.3f}  {pn['attributed_fraction']:.1%}")
    print(f"minimum attributed fraction: "
          f"{attr['min_attributed_fraction']:.1%}\n")

    cp = critical_path(g)
    print(f"critical path: {len(cp['segments'])} segments from node "
          f"{cp['start_node']}, coverage {cp['coverage']:.1%}")
    for kind, secs in sorted(cp["by_kind"].items(), key=lambda kv: -kv[1]):
        print(f"  {kind:<12} {secs:.3f}s  ({secs / cp['t_end']:.1%})")
    print()

    d = diff_traces(strict.events, relaxed.events,
                    label_a="age=0", label_b="age=10")
    print(render_diff(d))

    html = render_dashboard(relaxed.events, title="island GA, age=10")
    with open("critical_path_dashboard.html", "w", encoding="utf-8") as fh:
        fh.write(html)
    print("\nwrote critical_path_dashboard.html — open it in a browser")


if __name__ == "__main__":
    main()
