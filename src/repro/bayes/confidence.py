"""Posterior estimation with the paper's confidence stopping rule.

§4.3: "we run the programs to estimate the posterior conditional
probability distribution of the query nodes in the belief network with
90% confidence intervals to a precision of ±0.01."

The estimator counts committed runs per query-node value and stops when
the normal-approximation CI half-width ``z * sqrt(p(1-p)/n)`` of every
value's frequency is within the precision (z = 1.645 for 90 %).  A
minimum sample count guards the normal approximation at extreme p.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: two-sided z for a 90 % confidence interval
Z_90 = 1.6448536269514722


@dataclass
class PosteriorEstimator:
    """Running posterior estimate for one query node."""

    n_values: int
    precision: float = 0.01
    z: float = Z_90
    min_samples: int = 100
    counts: np.ndarray = field(default=None)
    n: int = 0

    def __post_init__(self) -> None:
        if self.n_values < 2:
            raise ValueError("query node needs >= 2 values")
        if not 0 < self.precision < 0.5:
            raise ValueError("precision must be in (0, 0.5)")
        self.counts = np.zeros(self.n_values, dtype=np.int64)

    def add(self, value: int) -> None:
        """Fold one committed run's query-node value in."""
        self.counts[value] += 1
        self.n += 1

    def add_batch(self, values: np.ndarray) -> None:
        """Fold a batch of accepted sample values into the running posterior."""
        self.counts += np.bincount(values, minlength=self.n_values)
        self.n += len(values)

    @property
    def posterior(self) -> np.ndarray:
        """Current normalized posterior estimate over the query's values."""
        if self.n == 0:
            raise ValueError("no committed samples yet")
        return self.counts / self.n

    def half_widths(self) -> np.ndarray:
        """CI half-width of each value's estimated frequency."""
        if self.n == 0:
            return np.full(self.n_values, np.inf)
        p = self.posterior
        return self.z * np.sqrt(p * (1.0 - p) / self.n)

    @property
    def converged(self) -> bool:
        """True when every value's CI is within the target precision."""
        if self.n < self.min_samples:
            return False
        return bool(np.all(self.half_widths() <= self.precision))

    def samples_needed_upper_bound(self) -> int:
        """Worst-case (p = 0.5) sample count for the precision — a sanity
        bound used by tests and run caps."""
        return int(np.ceil((self.z / self.precision) ** 2 * 0.25))
