"""Synthetic stand-in for the Hailfinder belief network.

The real Hailfinder (a 56-node weather-forecasting network from the
Decision Systems Laboratory, University of Pittsburgh [1]) is the one
real network in the paper's Table 2; its full CPTs are not reproducible
here, so we synthesise a network matching every structural statistic
Table 2 reports — and those statistics are all the experiments depend on
(DESIGN.md §2):

=====================  ======  =========
statistic              paper   this module
nodes                  56      56
edges per node         1.2     1.2  (67 edges)
values per node        4       4
edge-cut, 2 parts      4       4 (by construction: two 28-node clusters
                                  joined by exactly 4 cross edges)
=====================  ======  =========

Real diagnostic networks are causally skewed — most events strongly
follow their parents — so CPTs use a small Dirichlet concentration,
which also reproduces Hailfinder's comparatively short uniprocessor
inference time (3.15 s vs ~11 s; skewed posteriors need fewer samples
for a ±0.01 confidence interval) and its high default-value hit rate in
the asynchronous sampler.
"""

from __future__ import annotations

import numpy as np

from repro.bayes.network import BayesianNetwork, BayesNode

N_NODES = 56
CLUSTER = 28
N_EDGES = 67  # 56 * 1.2 = 67.2 -> 67
N_CROSS = 4
N_VALUES = 4


def make_hailfinder(seed: int = 0, dirichlet_alpha: float = 0.12) -> BayesianNetwork:
    """Build the synthetic Hailfinder-like network (deterministic in seed)."""
    rng = np.random.default_rng(seed)
    parents: dict[int, list[int]] = {v: [] for v in range(N_NODES)}
    edges: set[tuple[int, int]] = set()

    # Within-cluster edges: a chain backbone (27 edges, keeping the DAG a
    # single causal spine as diagnostic networks have) plus random forward
    # chords.  The chain+chord structure makes any balanced split of a
    # cluster cost >= 2 internal edges, so the cheapest balanced bisection
    # of the whole network is the cluster split cutting the 4 cross edges
    # (as METIS found for the real Hailfinder).
    per_cluster = (N_EDGES - N_CROSS) // 2  # 31 each, +1 remainder below
    remainder = (N_EDGES - N_CROSS) - 2 * per_cluster
    for c, extra in ((0, remainder), (1, 0)):
        base = c * CLUSTER
        want = per_cluster + extra
        for i in range(CLUSTER - 1):  # chain backbone
            u, v = base + i, base + i + 1
            edges.add((u, v))
            parents[v].append(u)
        placed = CLUSTER - 1
        while placed < want:
            u, v = sorted(rng.integers(base, base + CLUSTER, size=2))
            u, v = int(u), int(v)
            if u == v or (u, v) in edges or len(parents[v]) >= 3:
                continue
            edges.add((u, v))
            parents[v].append(u)
            placed += 1

    # Exactly four cross edges from cluster 0 into cluster 1 (forward in
    # node order, so the graph stays a DAG); these are the only edges a
    # balanced bisection must cut.
    while sum(1 for (u, v) in edges if u < CLUSTER <= v) < N_CROSS:
        u = int(rng.integers(0, CLUSTER))
        v = int(rng.integers(CLUSTER, N_NODES))
        if (u, v) in edges or len(parents[v]) >= 3:
            continue
        edges.add((u, v))
        parents[v].append(u)

    # Dominant-outcome CPTs: every node has one dominant state that most
    # CPT rows favour (rare-event semantics — a diagnostic node is "normal"
    # under most parent combinations).  This gives the skewed *marginals*
    # real diagnostic networks have, which is what produces (a) the short
    # uniprocessor inference time (skewed posteriors need fewer samples
    # for ±0.01) and (b) the high default-value hit rate that §3.2's
    # gamble exploits.
    nodes = []
    for v in range(N_NODES):
        ps = tuple(sorted(parents[v]))
        shape = tuple(N_VALUES for _ in ps) + (N_VALUES,)
        dominant = int(rng.integers(0, N_VALUES))
        n_rows = int(np.prod(shape[:-1])) if ps else 1
        rows = rng.dirichlet([dirichlet_alpha] * N_VALUES, size=n_rows)
        bias = np.zeros(N_VALUES)
        bias[dominant] = 1.0
        rows = 0.12 * rows + 0.88 * bias  # rows sum to 1 by construction
        cpt = rows.reshape(shape)
        nodes.append(BayesNode(name=v, n_values=N_VALUES, parents=ps, cpt=cpt))
    net = BayesianNetwork(nodes, name="Hailfinder")
    assert net.n_edges == N_EDGES
    return net
