"""Probabilistic inference in Bayesian belief networks (§3.2, §4.2.2).

Implements, from scratch:

* belief-network representation with CPT validation
  (:mod:`repro.bayes.network`),
* the four Table 2 networks — random A/AA/C generators and a synthetic
  Hailfinder with matching structural statistics
  (:mod:`repro.bayes.random_nets`, :mod:`repro.bayes.hailfinder`),
* serial *logic sampling* [Pearl 1988] with the paper's 90 % ±0.01
  confidence stopping rule (:mod:`repro.bayes.logic_sampling`,
  :mod:`repro.bayes.confidence`),
* the parallel samplers (:mod:`repro.bayes.parallel`): synchronous
  (staged lock-step exchange), fully asynchronous with default-value
  gambling and rollback via corrections/anti-messages
  (:mod:`repro.bayes.rollback` — "synchronization via rollback" [2]),
  and the Global_Read-throttled partially asynchronous version,
* the calibrated cost model (:mod:`repro.bayes.costs`) reproducing
  Table 2's uniprocessor inference times.
"""

from repro.bayes.network import BayesianNetwork, BayesNode
from repro.bayes.random_nets import make_random_network, make_table2_network
from repro.bayes.hailfinder import make_hailfinder
from repro.bayes.costs import LsCostModel
from repro.bayes.confidence import PosteriorEstimator
from repro.bayes.logic_sampling import SerialLsResult, run_serial_logic_sampling
from repro.bayes.parallel import ParallelLsConfig, ParallelLsResult, run_parallel_logic_sampling

__all__ = [
    "BayesianNetwork",
    "BayesNode",
    "make_random_network",
    "make_table2_network",
    "make_hailfinder",
    "LsCostModel",
    "PosteriorEstimator",
    "SerialLsResult",
    "run_serial_logic_sampling",
    "ParallelLsConfig",
    "ParallelLsResult",
    "run_parallel_logic_sampling",
]
