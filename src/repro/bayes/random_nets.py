"""Random belief-network generation (networks A, AA and C of Table 2).

§4.2.2: "The first three networks—A, AA, and C—are randomly generated,
i.e., a completely interconnected graph of a given number of nodes was
first built and then edges were removed randomly until it had a required
number of edges."

We generate the same object directly: choose a random topological order,
then draw the required number of edges from the ordered pairs.  A
*locality* parameter biases edges toward nearby positions in the order —
random inference networks are locally clustered, and locality is what
makes the paper's 2-way edge-cuts (24/30/24 on ~119/130/108 edges)
achievable; a fully uniform edge distribution would cut nearly half the
edges.  CPTs are Dirichlet-distributed with a concentration parameter
controlling skew.
"""

from __future__ import annotations

import numpy as np

from repro.bayes.network import BayesianNetwork, BayesNode

#: Table 2's structural parameters for the three random networks
TABLE2_RANDOM = {
    "A": {"n_nodes": 54, "edges_per_node": 2.2, "n_values": 2},
    "AA": {"n_nodes": 54, "edges_per_node": 2.4, "n_values": 2},
    "C": {"n_nodes": 54, "edges_per_node": 2.0, "n_values": 2},
}


def make_random_network(
    n_nodes: int,
    n_edges: int,
    n_values: int = 2,
    seed: int = 0,
    locality: float = 6.0,
    dirichlet_alpha: float = 1.0,
    max_parents: int = 4,
    name: str = "random",
) -> BayesianNetwork:
    """Generate a random DAG belief network.

    Parameters
    ----------
    locality:
        Mean of the geometric-ish distance between an edge's endpoints in
        the topological order; small values cluster edges locally (smaller
        partition cuts).  ``float("inf")`` gives uniform random pairs.
    dirichlet_alpha:
        CPT rows ~ Dirichlet(alpha,...); alpha < 1 skews rows (more
        deterministic events), alpha = 1 is uniform on the simplex.
    max_parents:
        In-degree cap, keeping CPTs tractable (real diagnostic networks
        are sparse in parents).
    """
    max_edges = n_nodes * (n_nodes - 1) // 2
    if not 0 <= n_edges <= max_edges:
        raise ValueError(f"n_edges must be in [0, {max_edges}]")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n_nodes)

    parents: dict[int, list[int]] = {int(v): [] for v in range(n_nodes)}
    edges: set[tuple[int, int]] = set()
    attempts = 0
    while len(edges) < n_edges and attempts < 200 * n_edges:
        attempts += 1
        child_pos = int(rng.integers(1, n_nodes))
        if np.isinf(locality):
            parent_pos = int(rng.integers(0, child_pos))
        else:
            gap = 1 + int(rng.geometric(min(1.0, 1.0 / locality)))
            parent_pos = child_pos - gap
            if parent_pos < 0:
                continue
        u = int(order[parent_pos])
        v = int(order[child_pos])
        if (u, v) in edges or len(parents[v]) >= max_parents:
            continue
        edges.add((u, v))
        parents[v].append(u)
    if len(edges) < n_edges:
        raise RuntimeError(
            f"could not place {n_edges} edges under max_parents={max_parents}"
        )

    nodes = []
    for v in range(n_nodes):
        ps = tuple(sorted(parents[v]))
        shape = tuple(n_values for _ in ps) + (n_values,)
        cpt = rng.dirichlet([dirichlet_alpha] * n_values, size=shape[:-1]).reshape(shape)
        nodes.append(BayesNode(name=v, n_values=n_values, parents=ps, cpt=cpt))
    return BayesianNetwork(nodes, name=name)


def make_table2_network(which: str, seed: int = 0) -> BayesianNetwork:
    """Networks A, AA or C with Table 2's structural parameters."""
    try:
        spec = TABLE2_RANDOM[which]
    except KeyError:
        raise KeyError(
            f"unknown random network {which!r}; choose from {sorted(TABLE2_RANDOM)}"
        ) from None
    # Table 2's "edges per node" is edges/nodes; invert it exactly.
    n_edges = int(round(spec["n_nodes"] * spec["edges_per_node"]))
    return make_random_network(
        n_nodes=spec["n_nodes"],
        n_edges=n_edges,
        n_values=spec["n_values"],
        seed=seed + {"A": 11, "AA": 22, "C": 33}[which],
        name=which,
    )
