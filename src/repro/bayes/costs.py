"""Calibrated cost model for logic sampling.

Calibrated against Table 2's uniprocessor inference times: the random
54-node binary networks take 11.12–11.81 s and Hailfinder 3.15 s on the
77 MHz reference node.  With the paper's stopping rule (90 % CI to
±0.01), a mid-range posterior needs ≈ (1.645/0.01)²·p(1−p) ≈ up to
≈ 6.8 k samples; 6.8 k samples × 54 nodes × ~30 µs/node-sample ≈ 11 s —
so ~30 µs per node-sample (≈ 2300 cycles at 77 MHz for a CPT row lookup,
a random draw and bookkeeping) reproduces the random-network row, and
Hailfinder's skewed posteriors need fewer samples, reproducing its 3.15 s
without any extra tuning.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LsCostModel:
    """Baseline-seconds costs of logic-sampling operations."""

    #: sampling one node for one run (CPT lookup + random draw)
    sample_per_node: float = 30e-6
    #: recomputing one node during a rollback (same work as sampling)
    resample_per_node: float = 30e-6
    #: folding one committed run into the posterior counts
    commit_per_iter: float = 2e-6
    #: one confidence-interval convergence check
    ci_check: float = 20e-6
    #: processing one arriving interface-value batch (unpack + compare)
    apply_batch_base: float = 10e-6
    apply_batch_per_value: float = 1e-6

    def iteration_cost(self, n_nodes: int) -> float:
        """Sampling one full run over ``n_nodes`` local nodes."""
        return self.sample_per_node * n_nodes

    def rollback_cost(self, n_resampled: int) -> float:
        """Simulated-seconds cost of re-sampling ``n_resampled`` nodes after a
        rollback."""
        return self.resample_per_node * n_resampled
