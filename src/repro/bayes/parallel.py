"""Parallel logic sampling: synchronous, asynchronous, Global_Read.

The belief network is partitioned across processors (§3.2: "a subset of
the network is assigned to each processor"); each processor samples its
own nodes once per run (iteration) and needs the values its *remote
parents* took in the same run.  The three implementations:

SYNCHRONOUS
    Lock-step: a barrier aligns runs and, within each run, interface
    values are exchanged in topological *stages* so every processor
    samples with actual values only.  Pays per-run synchronisation and
    staging latency — the implementation whose drawbacks §3.2 sets out to
    fix.
ASYNCHRONOUS (rollback)
    Never waits: a missing remote value is gambled to be the node's modal
    prior (*default*) value; actual interface values are published every
    run; a failed gamble rolls the affected descendants back and
    corrections (anti-message + corrected value) cascade.  Unthrottled —
    a fast processor strays arbitrarily far ahead, flooding the network
    and accumulating costly rollbacks.
NON_STRICT (Global_Read)
    As asynchronous, but before sampling run ``t`` the processor issues
    ``Global_Read(iface_w, t-1, age)`` on every writer ``w``: it may run
    at most ``age`` runs ahead of its slowest input.  This bounds
    rollback depth and message backlog ("restrict the number of costly
    rollbacks by not allowing any processor to stray far ahead (or to lag
    far behind)") and gives writers room to batch up to ``age`` runs of
    values per message — the update-coalescing the paper credits
    asynchronous DSMs with.

Runs are *committed* to the posterior estimator only below the GVT floor
(:mod:`repro.bayes.rollback`), so all three variants compute the same
statistically valid estimate and differ only in completion time —
matching the paper's premise that asynchrony affects performance, not
correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bayes.confidence import PosteriorEstimator
from repro.bayes.costs import LsCostModel
from repro.bayes.network import BayesianNetwork
from repro.bayes.rollback import GvtOracle, ProcessorState, RollbackStats
from repro.cluster.machine import Machine, MachineConfig
from repro.core.coherence import CoherenceMode
from repro.core.contract import dsm_contract
from repro.core.dsm import Dsm
from repro.core.global_read import GlobalReadStats
from repro.core.location import SharedLocationSpec
from repro.obs.metrics import machine_metrics
from repro.sim import CompletionCounter
from repro.partition.metrics import edge_cut as _edge_cut
from repro.partition.multilevel import best_of
from repro.sim import Compute

#: PVM tag for rollback corrections.  Corrections live outside the DSM's
#: aged locations because they revisit *older* iterations, which the
#: monotone-age write rule (correctly) forbids for shared locations.
CORRECTION_TAG = 77

#: staleness contracts for the interface-value locations (checked by the
#: static coherence analyzer, repro.analysis.coherence).  Optimistic
#: interface batches are gambles that rollback corrections repair, so a
#: missed update is a performance event, never a correctness one —
#: unbounded staleness is tolerable and Global_Read's age only throttles
#: how far a processor may stray.  The synchronous staged exchange is
#: the opposite claim: barrier-separated write/read phases with strict
#: age-0 reads.
dsm_contract(
    "iface.*",
    writers=1,
    age=None,
    tolerance="commutative",
    reason="rollback corrections repair any missed interface update",
)
dsm_contract(
    "ifr.*",
    writers=1,
    age=0,
    tolerance="phase_concurrent",
    reason="synchronous staged exchange: barrier-separated phases, strict reads",
)


@dataclass(frozen=True)
class ParallelLsConfig:
    """One parallel-inference run (one bar of Figure 3)."""

    net: BayesianNetwork
    query: int
    n_procs: int = 2
    mode: CoherenceMode = CoherenceMode.NON_STRICT
    age: int = 10
    seed: int = 0
    precision: float = 0.01
    costs: LsCostModel = field(default_factory=LsCostModel)
    machine: MachineConfig | None = None
    max_iterations: int = 50_000
    #: commit/CI bookkeeping cadence at the query owner (in runs)
    check_every: int = 32

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise ValueError("need at least one processor")
        if self.age < 0:
            raise ValueError("age must be >= 0")
        if self.query not in self.net.nodes:
            raise KeyError(f"unknown query node {self.query}")


@dataclass
class ParallelLsResult:
    """Measurements of one run (§4.3 metrics)."""

    network: str
    mode: CoherenceMode
    age: int
    n_procs: int
    completion_time: float | None
    converged: bool
    posterior: np.ndarray
    committed_runs: int
    iterations_sampled: list[int]
    edge_cut: float
    rollback: RollbackStats
    gr_stats: GlobalReadStats
    messages_sent: int
    mean_warp: float = 0.0
    #: repro.obs metrics snapshot (plain dict, see repro.obs.metrics)
    metrics: dict = field(default_factory=dict)


class _BnRecorder:
    def __init__(self) -> None:
        self.converged = False
        self.completion_time: float | None = None
        self.posterior: np.ndarray | None = None
        self.committed = 0


def _stage_of(net: BayesianNetwork, owner: dict[int, int]) -> dict[int, int]:
    """stage(v) = cross-partition depth: the number of ownership changes
    along the deepest path into v.  Drives the synchronous exchange."""
    stage: dict[int, int] = {}
    for v in net.topo_order:
        best = 0
        for u in net.nodes[v].parents:
            hop = 1 if owner[u] != owner[v] else 0
            best = max(best, stage[u] + hop)
        stage[v] = best
    return stage


def run_parallel_logic_sampling(
    cfg: ParallelLsConfig, instrument=None
) -> ParallelLsResult:
    """Execute one parallel logic-sampling run on a fresh machine.

    ``instrument``, if given, is called with the freshly built
    :class:`~repro.core.dsm.Dsm` before any process is spawned —
    mirroring :func:`repro.ga.island.run_island_ga`, so the race
    classifier and the trace extractor in :mod:`repro.obs.integration`
    attach the same way to both applications.
    """
    net = cfg.net
    mcfg = cfg.machine or MachineConfig(
        n_nodes=cfg.n_procs, seed=cfg.seed, measure_warp=True
    )
    if mcfg.n_nodes != cfg.n_procs:
        raise ValueError("machine node count must equal n_procs")
    machine = Machine(mcfg)
    dsm = Dsm(machine.vm)
    if instrument is not None:
        instrument(dsm)

    if cfg.n_procs == 1:
        owner = {v: 0 for v in net.nodes}
    else:
        owner = best_of(net.skeleton(), cfg.n_procs, tries=4, seed=cfg.seed)
    cut = _edge_cut(net.skeleton(), owner)
    defaults = net.default_values(seed=cfg.seed)
    states = [ProcessorState(net, owner, p, defaults) for p in range(cfg.n_procs)]
    if machine.kernel.obs is not None:
        for st in states:
            st.obs = machine.kernel.obs
    oracle = GvtOracle(cfg.n_procs)
    recorder = _BnRecorder()
    stage = _stage_of(net, owner)
    q_owner = owner[cfg.query]
    sync = cfg.mode is CoherenceMode.SYNCHRONOUS
    non_strict = cfg.mode is CoherenceMode.NON_STRICT
    # Writers may batch as many runs per message as readers tolerate
    # staleness; sync and fully-async publish every run.
    batch = max(1, min(cfg.age, 16)) if non_strict else 1

    # ---- shared-location declarations ----------------------------------
    if sync:
        # publications: per (writer, stage) the interface nodes at that stage
        sync_pubs: dict[int, dict[int, list[int]]] = {}
        for p, st in enumerate(states):
            by_stage: dict[int, list[int]] = {}
            for v in st.interface_nodes:
                by_stage.setdefault(stage[v], []).append(v)
            sync_pubs[p] = {s: sorted(ns) for s, ns in by_stage.items()}
        # needs: per reader the (writer, stage) pairs it must fetch
        sync_needs: dict[int, set[tuple[int, int]]] = {
            p: {(w, stage[u]) for u, w in states[p].remote_parents.items()}
            for p in range(cfg.n_procs)
        }
        for p, pubs in sync_pubs.items():
            for s, nodes in pubs.items():
                readers = tuple(
                    r for r in range(cfg.n_procs) if r != p and (p, s) in sync_needs[r]
                )
                dsm.register(
                    SharedLocationSpec(
                        f"ifr.{p}.{s}", writer=p, readers=readers,
                        value_nbytes=4 + len(nodes),
                    )
                )
    else:
        for p, st in enumerate(states):
            if st.interface_nodes:
                dsm.register(
                    SharedLocationSpec(
                        f"iface.{p}",
                        writer=p,
                        readers=tuple(st.readers),
                        value_nbytes=8 + batch * (4 + len(st.interface_nodes)),
                    )
                )

    est = PosteriorEstimator(net.nodes[cfg.query].n_values, precision=cfg.precision)

    # ---- per-processor process ------------------------------------------
    def processor(p: int):
        st = states[p]

        def proc(node, task):
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=cfg.seed, spawn_key=(101, p))
            )
            dnode = dsm.node(p)
            unpublished: list[int] = []
            pending_out: list[tuple[int, int, int, int]] = []
            seen_corrections: set[tuple[int, int]] = set()
            next_commit = 1

            def on_update(locn: str, age: int, entries) -> float:
                """Fold one interface batch into the optimistic state."""
                cost = cfg.costs.apply_batch_base
                w = int(locn.split(".")[1])
                w_ifaces = states[w].interface_nodes
                for (tt, vals) in entries:
                    cost += cfg.costs.apply_batch_per_value * len(vals)
                    for u, val in zip(w_ifaces, vals):
                        if u in st.remote_parents:
                            pending_out.extend(
                                st.apply_actual(u, tt, int(val), rng, oracle)
                            )
                oracle.message_applied(entries[0][0])
                return cost

            if not sync:
                dnode.on_update = on_update

            def flush_corrections():
                while pending_out:
                    outs, pending_out[:] = list(pending_out), []
                    min_t = min(tt for (_, tt, _, _) in outs)
                    for r in st.readers:
                        oracle.message_sent(min_t)
                        # 6 bytes per correction on the wire: node id,
                        # iteration delta, value, and the (small) version
                        # counter packed together
                        yield from task.send(
                            r, CORRECTION_TAG, list(outs), 8 + 6 * len(outs)
                        )

            def drain_corrections():
                cost = 0.0
                while True:
                    msg = task.nrecv(tag=CORRECTION_TAG)
                    if msg is None:
                        break
                    cost += task.consume_cost(msg)
                    # end-to-end dedupe: a duplicated frame can complete
                    # fragment reassembly twice, re-delivering the same
                    # message; re-applying it would double-ack the oracle
                    # and re-trigger settled rollbacks
                    key = (msg.src, msg.msg_id)
                    if key in seen_corrections:
                        st.stats.duplicate_messages += 1
                        continue
                    seen_corrections.add(key)
                    st.stats.corrections_received += len(msg.payload)
                    min_t = min(tt for (_, tt, _, _) in msg.payload)
                    for (u, tt, val, ver) in msg.payload:
                        if u in st.remote_parents:
                            pending_out.extend(
                                st.fold_correction(u, tt, int(val), ver, rng, oracle)
                            )
                    oracle.message_applied(min_t)
                if cost:
                    yield Compute(cost)

            def sync_iteration(t: int):
                """One lock-step run: staged exchange, actual values only."""
                yield from task.barrier(range(cfg.n_procs))
                vals: dict[int, int] = {}
                max_stage = max((stage[v] for v in st.own_nodes), default=0)
                for s in range(0, max_stage + 1):
                    for (w, ws) in sorted(sync_needs[p]):
                        if ws != s - 1:
                            continue
                        copy = yield from dnode.global_read(f"ifr.{w}.{ws}", t, 0)
                        _, arrived = copy.value
                        for u, val in zip(sync_pubs[w][ws], arrived):
                            st.remote_values[(u, t)] = int(val)
                    stage_nodes = [v for v in st.own_nodes if stage[v] == s]
                    us = rng.random(len(stage_nodes))
                    for i, v in enumerate(stage_nodes):
                        nd = net.nodes[v]
                        pv = tuple(
                            vals[u] if u in st.own_set else st.remote_values[(u, t)]
                            for u in nd.parents
                        )
                        vals[v] = net.sample_node_scalar(v, pv, us[i])
                    if stage_nodes:
                        yield Compute(
                            node.cost(
                                cfg.costs.sample_per_node * len(stage_nodes),
                                label="sample",
                            )
                        )
                    if s in sync_pubs[p]:
                        snap = [vals[v] for v in sync_pubs[p][s]]
                        yield from dnode.write(f"ifr.{p}.{s}", (t, snap), t, 4 + len(snap))
                st.own_values[t] = vals
                oracle.sampled(p, t)

            def optimistic_iteration(t: int):
                """One asynchronous / Global_Read run."""
                if non_strict and t - 1 - cfg.age >= 1:
                    # receiver-driven throttle: stay within `age` runs of
                    # every input's published progress.  Skipped while the
                    # bound is vacuous (t-1-age < 1): Global_Read returns a
                    # *value* and would otherwise block on inputs that are
                    # not even required to exist yet.
                    for w in st.writers:
                        yield from dnode.global_read(f"iface.{w}", t - 1, cfg.age)
                else:
                    yield from dnode.drain()
                yield from drain_corrections()
                st.sample_iteration(t, rng, oracle)
                yield Compute(
                    node.cost(cfg.costs.iteration_cost(len(st.own_nodes)), label="sample")
                )
                if st.interface_nodes:
                    unpublished.append(t)
                    if len(unpublished) >= batch or t == cfg.max_iterations:
                        entries = [(tt, st.iface_snapshot(tt)) for tt in unpublished]
                        for _ in st.readers:
                            oracle.message_sent(unpublished[0])
                        yield from dnode.write(
                            f"iface.{p}",
                            entries,
                            t,
                            8 + len(unpublished) * (4 + len(st.interface_nodes)),
                        )
                        st.published_upto = t
                        unpublished.clear()
                yield from flush_corrections()

            t = 0
            for t in range(1, cfg.max_iterations + 1):
                if recorder.converged:
                    break
                if sync and cfg.n_procs > 1:
                    yield from sync_iteration(t)
                else:
                    yield from optimistic_iteration(t)

                if p == q_owner and t % cfg.check_every == 0:
                    floor = oracle.floor()
                    added = 0
                    while next_commit <= floor:
                        est.add(st.own_values[next_commit][cfg.query])
                        next_commit += 1
                        added += 1
                    if st.obs is not None and added:
                        st.obs.emit("gvt.advance", node=p, floor=floor)
                        st.obs.emit(
                            "bn.commit", node=p, runs=added, total=est.n
                        )
                    if added:
                        yield Compute(
                            node.cost(
                                added * cfg.costs.commit_per_iter + cfg.costs.ci_check,
                                label="commit",
                            )
                        )
                        recorder.committed = est.n
                        if est.converged:
                            recorder.converged = True
                            recorder.completion_time = task.vm.kernel.now
                            recorder.posterior = est.posterior.copy()
                            break
            return t

        return proc

    handles = [
        machine.spawn_on(p, processor(p), name=f"bnproc{p}") for p in range(cfg.n_procs)
    ]
    counter = CompletionCounter(handles)
    machine.kernel.run(
        stop_when=lambda: recorder.converged or counter.remaining == 0
    )
    rb = RollbackStats()
    for st in states:
        rb = rb.merge(st.stats)
    return ParallelLsResult(
        network=net.name,
        mode=cfg.mode,
        age=cfg.age,
        n_procs=cfg.n_procs,
        completion_time=recorder.completion_time,
        converged=recorder.converged,
        posterior=recorder.posterior if recorder.posterior is not None else np.array([]),
        committed_runs=recorder.committed,
        iterations_sampled=[oracle.progress[p] for p in range(cfg.n_procs)],
        edge_cut=cut,
        rollback=rb,
        gr_stats=dsm.merged_gr_stats(),
        messages_sent=machine.vm.total_messages(),
        mean_warp=machine.warp.mean_warp if machine.warp else 0.0,
        metrics=machine_metrics(machine, dsm=dsm, rollback=rb),
    )
