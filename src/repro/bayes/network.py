"""Bayesian belief network representation.

A network is a DAG of discrete nodes; each node carries a conditional
probability table (CPT) over its values given every combination of parent
values (Figure 1 of the paper shows a five-node example).  The class
validates acyclicity and CPT shape/normalisation at construction and
provides the structural statistics Table 2 reports, vectorised ancestral
sampling for the serial sampler, and the undirected skeleton used by the
graph partitioner.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np


@dataclass
class BayesNode:
    """One event node: ``cpt[parent_state_1, ..., parent_state_k, value]``.

    ``cpt`` has one leading axis per parent (in ``parents`` order, sized by
    that parent's arity) and a trailing axis of size ``n_values`` that sums
    to 1.  A parentless node's CPT is just its prior (shape
    ``(n_values,)``).
    """

    name: int
    n_values: int
    parents: tuple[int, ...]
    cpt: np.ndarray

    def __post_init__(self) -> None:
        self.parents = tuple(self.parents)
        self.cpt = np.asarray(self.cpt, dtype=np.float64)
        if self.n_values < 2:
            raise ValueError(f"node {self.name}: needs >= 2 values")
        if self.cpt.shape[-1] != self.n_values:
            raise ValueError(
                f"node {self.name}: CPT last axis {self.cpt.shape[-1]} != "
                f"n_values {self.n_values}"
            )
        if self.cpt.ndim != len(self.parents) + 1:
            raise ValueError(
                f"node {self.name}: CPT rank {self.cpt.ndim} != "
                f"{len(self.parents)} parents + 1"
            )
        if np.any(self.cpt < 0):
            raise ValueError(f"node {self.name}: negative probability")
        sums = self.cpt.sum(axis=-1)
        if not np.allclose(sums, 1.0, atol=1e-9):
            raise ValueError(f"node {self.name}: CPT rows must sum to 1")


class BayesianNetwork:
    """A validated belief network with sampling support."""

    def __init__(self, nodes: list[BayesNode], name: str = "bn") -> None:
        self.name = name
        self.nodes: dict[int, BayesNode] = {}
        for node in nodes:
            if node.name in self.nodes:
                raise ValueError(f"duplicate node {node.name}")
            self.nodes[node.name] = node
        for node in nodes:
            for p in node.parents:
                if p not in self.nodes:
                    raise ValueError(f"node {node.name}: unknown parent {p}")
                if self.nodes[p].n_values != node.cpt.shape[node.parents.index(p)]:
                    raise ValueError(
                        f"node {node.name}: CPT axis for parent {p} has size "
                        f"{node.cpt.shape[node.parents.index(p)]} but parent "
                        f"has {self.nodes[p].n_values} values"
                    )
        self._dag = nx.DiGraph()
        self._dag.add_nodes_from(self.nodes)
        for node in nodes:
            for p in node.parents:
                self._dag.add_edge(p, node.name)
        if not nx.is_directed_acyclic_graph(self._dag):
            cycle = nx.find_cycle(self._dag)
            raise ValueError(f"network contains a cycle: {cycle}")
        # deterministic topological order: break ties by node name
        self.topo_order: list[int] = list(
            nx.lexicographical_topological_sort(self._dag)
        )
        # cumulative CPTs for the fast scalar sampling path (parallel
        # samplers draw one node of one run at a time; a row lookup plus
        # searchsorted is ~50x cheaper than the batch path for batch=1)
        self._cum_cpt: dict[int, np.ndarray] = {
            n.name: n.cpt.cumsum(axis=-1) for n in nodes
        }

    # -- structure (Table 2's rows) --------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes in the network."""
        return len(self.nodes)

    @property
    def n_edges(self) -> int:
        """Number of directed edges in the network."""
        return self._dag.number_of_edges()

    @property
    def edges_per_node(self) -> float:
        """Mean out-degree — Table 2's ``edges/node`` column."""
        return self.n_edges / self.n_nodes

    @property
    def max_values_per_node(self) -> int:
        """Largest node cardinality — Table 2's ``values/node`` column."""
        return max(n.n_values for n in self.nodes.values())

    def children(self, name: int) -> list[int]:
        """The node ids with an incoming edge from ``name``."""
        return sorted(self._dag.successors(name))

    def dag(self) -> nx.DiGraph:
        """The directed graph (copy-safe view)."""
        return self._dag

    def skeleton(self) -> nx.Graph:
        """Undirected skeleton, the input to the graph partitioner."""
        return self._dag.to_undirected()

    def table2_row(self) -> dict:
        """The structural statistics Table 2 reports for each network."""
        return {
            "name": self.name,
            "nodes": self.n_nodes,
            "edges_per_node": round(self.edges_per_node, 2),
            "values_per_node": self.max_values_per_node,
        }

    # -- sampling ---------------------------------------------------------
    def sample_node(
        self, name: int, parent_values: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample node ``name`` for a batch given ``(batch, k)`` parent values."""
        node = self.nodes[name]
        parent_values = np.atleast_2d(parent_values)
        if node.parents:
            probs = node.cpt[tuple(parent_values[:, i] for i in range(len(node.parents)))]
        else:
            probs = np.broadcast_to(node.cpt, (parent_values.shape[0], node.n_values))
        u = rng.random(probs.shape[0])
        return (probs.cumsum(axis=1) < u[:, None]).sum(axis=1).astype(np.int64)

    def sample_node_scalar(
        self, name: int, parent_values: tuple, u: float
    ) -> int:
        """Sample one node for one run given scalar parent values and a
        uniform draw ``u`` (the parallel samplers' hot path)."""
        row = self._cum_cpt[name]
        if parent_values:
            row = row[parent_values]
        return int(np.searchsorted(row, u, side="right"))

    def ancestral_samples(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` full joint samples; returns ``(n, n_nodes)`` indexed by
        position in a name-sorted node list."""
        names = sorted(self.nodes)
        col = {name: i for i, name in enumerate(names)}
        out = np.empty((n, len(names)), dtype=np.int64)
        for name in self.topo_order:
            node = self.nodes[name]
            if node.parents:
                pv = out[:, [col[p] for p in node.parents]]
            else:
                pv = np.empty((n, 0), dtype=np.int64)
            out[:, col[name]] = self.sample_node(name, pv, rng)
        return out

    def prior_marginals(self, n_samples: int = 2000, seed: int = 0) -> dict[int, np.ndarray]:
        """Monte-Carlo estimate of each node's marginal distribution.

        Used to choose the *default values* of the asynchronous sampler:
        "The default values for the interface nodes are determined on the
        basis of the conditional probability distribution of the nodes"
        (§3.2 — e.g. A defaults to false because p(A=false)=0.80).
        """
        rng = np.random.default_rng(seed)
        samples = self.ancestral_samples(n_samples, rng)
        names = sorted(self.nodes)
        out = {}
        for i, name in enumerate(names):
            counts = np.bincount(samples[:, i], minlength=self.nodes[name].n_values)
            out[name] = counts / n_samples
        return out

    def default_values(self, n_samples: int = 2000, seed: int = 0) -> dict[int, int]:
        """Modal value of each node's prior marginal (the async gamble)."""
        return {
            name: int(np.argmax(marg))
            for name, marg in self.prior_marginals(n_samples, seed).items()
        }
