"""Rollback machinery for asynchronous parallel logic sampling.

§3.2: each processor gambles that an unreceived interface-node value
equals its *default* (the node's modal prior value).  "When a processor
receives a value from a node that differs from the default value for that
node, the value of the child node and the values of all the nodes in the
network that are dependent on this node and that have already been
computed must be invalidated and recomputed.  The processor then has to
*roll back*.  We use standard rollback techniques [2], such as sending
antimessages, to implement the rollback."

This module holds the two pieces of bookkeeping:

* :class:`ProcessorState` — one processor's optimistic state: its own
  sampled values per iteration, the actual remote values received so far,
  the outstanding gambles, and the rollback operation (recompute the
  affected descendants of a changed input, diff the processor's published
  interface values, and emit corrections — the anti-message + corrected
  value pair, fused into one "supersede" message as modern optimistic
  engines do).
* :class:`GvtOracle` — the global-virtual-time floor below which no
  correction can ever arrive, so runs can be *committed* to the
  estimator.  A real deployment computes this floor with a distributed
  GVT algorithm [2]; the simulation computes it centrally from the same
  information (per-processor progress, outstanding gambles, in-flight
  messages), which is behaviourally equivalent and documented in
  DESIGN.md as a simulation shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bayes.network import BayesianNetwork
from repro.obs.prof import prof_section


@dataclass
class RollbackStats:
    """Counters reported by the parallel-sampler experiments."""

    gambles: int = 0
    gamble_hits: int = 0
    rollbacks: int = 0
    nodes_resampled: int = 0
    corrections_sent: int = 0
    corrections_received: int = 0
    #: corrections skipped because a newer version for the same (node, t)
    #: was already applied — nonzero only under message reordering
    stale_corrections: int = 0
    #: whole correction messages discarded as duplicates (same sender
    #: message id seen before) — nonzero only under message duplication
    duplicate_messages: int = 0
    #: cascade-depth distribution: recompute-set size -> rollback count
    #: (the Lubachevsky/Weiss "does optimism pay" quantity; reported by
    #: the repro.obs metrics snapshot as the rb.depth histogram)
    depth_histogram: dict = field(default_factory=dict)

    @property
    def gamble_hit_rate(self) -> float:
        """Fraction of resolved gambles that matched the actual value."""
        resolved = self.gamble_hits + self.rollbacks
        return self.gamble_hits / resolved if resolved else 1.0

    def record_rollback_depth(self, depth: int) -> None:
        """Count one rollback whose recompute set had ``depth`` nodes."""
        self.depth_histogram[depth] = self.depth_histogram.get(depth, 0) + 1

    def merge(self, other: "RollbackStats") -> "RollbackStats":
        """Aggregate counters across processors (for result envelopes)."""
        merged_depths = dict(self.depth_histogram)
        for k, v in other.depth_histogram.items():
            merged_depths[k] = merged_depths.get(k, 0) + v
        return RollbackStats(
            gambles=self.gambles + other.gambles,
            gamble_hits=self.gamble_hits + other.gamble_hits,
            rollbacks=self.rollbacks + other.rollbacks,
            nodes_resampled=self.nodes_resampled + other.nodes_resampled,
            corrections_sent=self.corrections_sent + other.corrections_sent,
            corrections_received=self.corrections_received + other.corrections_received,
            stale_corrections=self.stale_corrections + other.stale_corrections,
            duplicate_messages=self.duplicate_messages + other.duplicate_messages,
            depth_histogram=merged_depths,
        )


class GvtOracle:
    """Central GVT floor: the largest iteration t such that every run
    <= t is final everywhere (no unsampled work, no outstanding gamble,
    no in-flight batch or correction touching it)."""

    def __init__(self, n_procs: int):
        self.progress = [0] * n_procs  # iterations fully sampled, per proc
        #: per-proc dict: iteration -> number of unresolved gambles
        self.pending_gambles: list[dict[int, int]] = [dict() for _ in range(n_procs)]
        #: in-flight message count per lowest-iteration-it-carries
        self.in_flight: dict[int, int] = {}
        #: acknowledgements for messages already fully accounted — nonzero
        #: only when fault injection duplicates a message end to end
        self.duplicate_acks = 0

    # -- processor hooks -------------------------------------------------
    def sampled(self, proc: int, t: int) -> None:
        """Record that ``proc`` committed a sample for iteration ``t``."""
        self.progress[proc] = max(self.progress[proc], t)

    def gamble_opened(self, proc: int, t: int) -> None:
        """Record that ``proc`` started a gambled (optimistic) iteration ``t``."""
        d = self.pending_gambles[proc]
        d[t] = d.get(t, 0) + 1

    def gamble_resolved(self, proc: int, t: int) -> None:
        """Record that ``proc`` resolved its gamble on iteration ``t``."""
        d = self.pending_gambles[proc]
        d[t] -= 1
        if d[t] == 0:
            del d[t]

    def message_sent(self, min_iter: int) -> None:
        """Account an in-flight message carrying iterations >= ``min_iter``."""
        self.in_flight[min_iter] = self.in_flight.get(min_iter, 0) + 1

    def message_applied(self, min_iter: int) -> None:
        """Retire the in-flight message accounted by :meth:`message_sent`."""
        n = self.in_flight.get(min_iter, 0)
        if n <= 0:
            # a duplicated delivery acking a message the original already
            # cleared: ignoring it keeps the floor conservative (never
            # advanced early) instead of underflowing the count
            self.duplicate_acks += 1
            return
        if n == 1:
            del self.in_flight[min_iter]
        else:
            self.in_flight[min_iter] = n - 1

    # -- the floor --------------------------------------------------------
    def floor(self) -> int:
        """Largest iteration t with every run <= t final everywhere."""
        f = min(self.progress)
        for d in self.pending_gambles:
            if d:
                f = min(f, min(d) - 1)
        if self.in_flight:
            f = min(f, min(self.in_flight) - 1)
        return f


class ProcessorState:
    """One processor's partition view and optimistic sample store."""

    def __init__(
        self,
        net: BayesianNetwork,
        owner: dict[int, int],
        proc: int,
        defaults: dict[int, int],
    ) -> None:
        self.net = net
        self.proc = proc
        self.defaults = defaults
        self.own_nodes = [v for v in net.topo_order if owner[v] == proc]
        self.own_set = set(self.own_nodes)
        #: remote parents feeding this partition: node -> owning proc
        self.remote_parents: dict[int, int] = {}
        for v in self.own_nodes:
            for u in net.nodes[v].parents:
                if owner[u] != proc:
                    self.remote_parents[u] = owner[u]
        #: own nodes with a child on another processor (published)
        self.interface_nodes = sorted(
            v
            for v in self.own_nodes
            if any(owner[c] != proc for c in net.children(v))
        )
        #: procs that read our interface values
        self.readers = sorted(
            {
                owner[c]
                for v in self.interface_nodes
                for c in net.children(v)
                if owner[c] != proc
            }
        )
        #: procs we depend on
        self.writers = sorted(set(self.remote_parents.values()))
        #: descendants of each remote parent within our partition, in
        #: topological order (the rollback recompute set)
        self._affected: dict[int, list[int]] = {}
        dag = net.dag()
        import networkx as nx

        for u in self.remote_parents:
            desc = nx.descendants(dag, u) & self.own_set
            self._affected[u] = [v for v in self.own_nodes if v in desc]

        # optimistic state
        self.own_values: dict[int, dict[int, int]] = {}  # t -> {node: value}
        self.remote_values: dict[tuple[int, int], int] = {}  # (node, t) -> value
        self.gambles: dict[int, dict[int, int]] = {}  # t -> {node: assumed}
        self.published_upto = -1
        # correction versioning: each correction we emit for (node, t)
        # carries a per-(node, t) sequence number (the batch publication
        # is implicitly version 0); receivers apply a correction only if
        # its version exceeds the last one applied for that (node, t), so
        # a reordered stale correction can never revert newer state and
        # correction ping-pong cascades are bounded (DESIGN.md §9)
        self.sent_versions: dict[tuple[int, int], int] = {}
        self.applied_versions: dict[tuple[int, int], int] = {}
        self.stats = RollbackStats()
        #: the machine's repro.obs trace bus, wired in by the parallel
        #: sampler after machine construction (None = tracing off)
        self.obs = None

    # ------------------------------------------------------------------
    def input_value(self, u: int, t: int, oracle: GvtOracle) -> int:
        """Value of remote parent ``u`` for run ``t``: the actual if we
        have it, else the default (opening a gamble).

        A gamble on ``(u, t)`` is opened (and counted) at most once —
        re-reading the same missing input during a rollback recompute
        reuses the already-assumed default, otherwise the oracle's
        pending-gamble count could never return to zero.
        """
        val = self.remote_values.get((u, t))
        if val is not None:
            return val
        g = self.gambles.setdefault(t, {})
        if u not in g:
            g[u] = self.defaults[u]
            self.stats.gambles += 1
            oracle.gamble_opened(self.proc, t)
        return g[u]

    def sample_iteration(self, t: int, rng: np.random.Generator, oracle: GvtOracle) -> None:
        """Sample all own nodes for run ``t`` (optimistically)."""
        with prof_section("numpy.bayes"):
            vals: dict[int, int] = {}
            us = rng.random(len(self.own_nodes))
            for i, v in enumerate(self.own_nodes):
                node = self.net.nodes[v]
                pv = tuple(
                    vals[u] if u in self.own_set else self.input_value(u, t, oracle)
                    for u in node.parents
                )
                vals[v] = self.net.sample_node_scalar(v, pv, us[i])
            self.own_values[t] = vals
        oracle.sampled(self.proc, t)

    def apply_actual(
        self,
        u: int,
        t: int,
        value: int,
        rng: np.random.Generator,
        oracle: GvtOracle,
        cause: str = "actual",
        version: int = 0,
    ) -> list[tuple[int, int, int, int]]:
        """Fold an actual remote value in; returns corrections to send.

        Corrections are ``(node, t, new_value, version)`` tuples for our
        own interface nodes whose already-published value for ``t``
        changed; ``version`` is the per-(node, t) sequence number readers
        use to discard stale reordered corrections.  ``cause`` and
        ``version`` only annotate the ``rb.begin`` trace event (what kind
        of message triggered a rollback, and which correction version);
        they never affect the fold itself.
        """
        old = self.remote_values.get((u, t))
        self.remote_values[(u, t)] = value
        gamble = self.gambles.get(t, {}).pop(u, None)
        if gamble is not None:
            oracle.gamble_resolved(self.proc, t)
            if gamble == value:
                self.stats.gamble_hits += 1
                return []
            self.stats.rollbacks += 1
            return self._recompute(u, t, rng, oracle, cause="gamble", version=version)
        if old is not None and old != value:
            # a correction superseding an earlier actual: cascade rollback
            self.stats.rollbacks += 1
            return self._recompute(u, t, rng, oracle, cause=cause, version=version)
        return []

    def fold_correction(
        self,
        u: int,
        t: int,
        value: int,
        version: int,
        rng: np.random.Generator,
        oracle: GvtOracle,
    ) -> list[tuple[int, int, int, int]]:
        """Apply one received correction, discarding stale versions.

        Under reordering a version-``k`` correction can arrive after
        version ``k+1`` for the same ``(u, t)``; applying it would revert
        state to a superseded value and re-trigger the very cascade the
        newer correction settled.  The monotone version filter makes the
        fold idempotent and order-insensitive.
        """
        if version <= self.applied_versions.get((u, t), 0):
            self.stats.stale_corrections += 1
            return []
        self.applied_versions[(u, t)] = version
        return self.apply_actual(
            u, t, value, rng, oracle, cause="correction", version=version
        )

    def _recompute(
        self,
        u: int,
        t: int,
        rng: np.random.Generator,
        oracle: GvtOracle,
        cause: str = "actual",
        version: int = 0,
    ) -> list[tuple[int, int, int, int]]:
        """Resample the descendants of ``u`` for run ``t``; diff publications."""
        vals = self.own_values.get(t)
        if vals is None:
            return []  # not sampled yet; the stored actual will be used
        affected = self._affected[u]
        self.stats.nodes_resampled += len(affected)
        self.stats.record_rollback_depth(len(affected))
        if self.obs is not None:
            # cause ∈ {gamble, actual, correction}; writer = the process
            # owning the triggering input — the parent edge of a cascade
            self.obs.emit(
                "rb.begin", node=self.proc, input=u, iter=t, depth=len(affected),
                cause=cause, writer=self.remote_parents.get(u, -1), version=version,
            )
        changed: list[tuple[int, int, int, int]] = []
        us = rng.random(len(affected))
        for i, v in enumerate(affected):
            node = self.net.nodes[v]
            pv = tuple(
                vals[p] if p in self.own_set else self.input_value(p, t, oracle)
                for p in node.parents
            )
            new = self.net.sample_node_scalar(v, pv, us[i])
            if new != vals[v]:
                vals[v] = new
                if v in self.interface_nodes and t <= self.published_upto:
                    ver = self.sent_versions.get((v, t), 0) + 1
                    self.sent_versions[(v, t)] = ver
                    changed.append((v, t, new, ver))
        self.stats.corrections_sent += len(changed)
        if self.obs is not None:
            self.obs.emit(
                "rb.end", node=self.proc, input=u, iter=t,
                depth=len(affected), corrections=len(changed),
            )
        return changed

    def iface_snapshot(self, t: int) -> list[int]:
        """Interface-node values for run ``t`` in interface order."""
        vals = self.own_values[t]
        return [vals[v] for v in self.interface_nodes]
