"""Serial logic sampling (the uniprocessor baseline of Table 2).

Pearl's logic-sampling algorithm: draw full ancestral samples of the
network; the posterior of a query node is the frequency of its values
over accepted runs.  With evidence, runs whose evidence nodes disagree
with the observation are rejected (the algorithm's classic weakness —
and one reason real networks "tend to be large and complex" to infer
on, motivating the parallel implementations).

Simulated time is charged per node-sample via :class:`LsCostModel`,
reproducing Table 2's uniprocessor inference times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bayes.confidence import PosteriorEstimator
from repro.bayes.costs import LsCostModel
from repro.bayes.network import BayesianNetwork


@dataclass
class SerialLsResult:
    """Outcome of one serial inference run."""

    network: str
    query: int
    posterior: np.ndarray
    n_runs: int
    n_accepted: int
    sim_time: float
    converged: bool

    @property
    def acceptance_rate(self) -> float:
        """Fraction of generated runs whose evidence matched (accepted runs / total)."""
        return self.n_accepted / self.n_runs if self.n_runs else 0.0


def run_serial_logic_sampling(
    net: BayesianNetwork,
    query: int,
    evidence: dict[int, int] | None = None,
    seed: int = 0,
    precision: float = 0.01,
    costs: LsCostModel | None = None,
    batch: int = 64,
    max_runs: int = 500_000,
) -> SerialLsResult:
    """Estimate ``P(query | evidence)`` to the paper's precision.

    Samples in vectorised batches; the CI check runs once per batch
    (charged via the cost model).  ``max_runs`` bounds pathological
    evidence whose acceptance rate would make the run unbounded.
    """
    if query not in net.nodes:
        raise KeyError(f"unknown query node {query}")
    evidence = dict(evidence or {})
    for e in evidence:
        if e not in net.nodes:
            raise KeyError(f"unknown evidence node {e}")
        if not 0 <= evidence[e] < net.nodes[e].n_values:
            raise ValueError(f"evidence value out of range for node {e}")
    if query in evidence:
        raise ValueError("query node cannot also be evidence")
    costs = costs or LsCostModel()
    rng = np.random.default_rng(seed)
    names = sorted(net.nodes)
    qcol = names.index(query)
    ecols = [(names.index(e), v) for e, v in sorted(evidence.items())]

    est = PosteriorEstimator(net.nodes[query].n_values, precision=precision)
    sim_time = 0.0
    n_runs = 0
    while n_runs < max_runs:
        samples = net.ancestral_samples(batch, rng)
        n_runs += batch
        sim_time += batch * costs.iteration_cost(net.n_nodes)
        accept = np.ones(batch, dtype=bool)
        for col, v in ecols:
            accept &= samples[:, col] == v
        accepted = samples[accept, qcol]
        if accepted.size:
            est.add_batch(accepted)
            sim_time += accepted.size * costs.commit_per_iter
        sim_time += costs.ci_check
        if est.converged:
            break
    return SerialLsResult(
        network=net.name,
        query=query,
        posterior=est.posterior if est.n else np.array([]),
        n_runs=n_runs,
        n_accepted=est.n,
        sim_time=sim_time,
        converged=est.converged,
    )
