"""Generational GA operators with DeJong's parameterisation.

§4.2.1: "Our experiments are limited to a particular class of GAs
characterized by the following six parameters: population size (N),
crossover rate (C), mutation rate (M), generation gap (G), scaling window
(W), selection strategy (S).  Based on DeJong's work, the parameter
settings which we use in our experiments are: N=50, C=0.6, M=0.001, G=1,
W=1, and S=E."

* Selection: roulette wheel on scaled fitness.  Minimisation objective
  ``f`` becomes selection weight ``f_worst - f``, where ``f_worst`` is
  the worst objective over the last ``W`` generations (the *scaling
  window*).  W=1 means "the worst of the current generation".
* Crossover: single-point at rate C over mating pairs.
* Mutation: independent bit flips at rate M.
* S=E (elitist): the best individual of generation *t* replaces the worst
  of generation *t+1* if it did not survive.
* G=1: full generational replacement (the elitist slot aside).

All operators are numpy-vectorised over the population.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.ga.population import Population


@dataclass
class GaParams:
    """The six DeJong parameters (defaults = the paper's settings)."""

    population_size: int = 50
    crossover_rate: float = 0.6
    mutation_rate: float = 0.001
    generation_gap: float = 1.0
    scaling_window: int = 1
    elitist: bool = True

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if self.generation_gap != 1.0:
            raise ValueError("only G=1 (full replacement) is implemented, as in the paper")
        if self.scaling_window < 1:
            raise ValueError("scaling_window must be >= 1")


@dataclass
class ScalingWindow:
    """Tracks the worst objective over the last W generations (W=1 default)."""

    window: int = 1
    _worsts: deque = field(default_factory=deque)

    def update(self, worst_of_generation: float) -> None:
        """Slide the window forward with this generation's worst raw fitness."""
        self._worsts.append(float(worst_of_generation))
        while len(self._worsts) > self.window:
            self._worsts.popleft()

    @property
    def scaling_baseline(self) -> float:
        """Current scaling baseline: the worst fitness over the window."""
        if not self._worsts:
            raise ValueError("scaling window is empty; call update() first")
        return max(self._worsts)


def selection_weights(fitness: np.ndarray, baseline: float) -> np.ndarray:
    """Scaled roulette weights for minimisation: ``baseline - f``, clipped
    at 0, uniform fallback when the population is flat."""
    w = np.clip(baseline - fitness, 0.0, None)
    total = w.sum()
    if total <= 0.0:
        return np.full(fitness.shape, 1.0 / fitness.size)
    return w / total


def roulette_select(
    fitness: np.ndarray, baseline: float, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Indices of ``n`` parents drawn by fitness-proportionate selection."""
    return rng.choice(fitness.size, size=n, p=selection_weights(fitness, baseline))


def single_point_crossover(
    parents_a: np.ndarray,
    parents_b: np.ndarray,
    rate: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised single-point crossover over paired parent arrays."""
    a = parents_a.copy()
    b = parents_b.copy()
    n, length = a.shape
    do = rng.random(n) < rate
    points = rng.integers(1, length, size=n)
    cols = np.arange(length)
    swap_mask = do[:, None] & (cols[None, :] >= points[:, None])
    a[swap_mask], b[swap_mask] = parents_b[swap_mask], parents_a[swap_mask]
    return a, b


def mutate(genomes: np.ndarray, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Independent bit flips at ``rate`` (returns a new array)."""
    flips = rng.random(genomes.shape) < rate
    return np.bitwise_xor(genomes, flips.astype(np.uint8))


def evolve_one_generation(
    pop: Population,
    params: GaParams,
    scaling: ScalingWindow,
    evaluate,
    rng: np.random.Generator,
) -> Population:
    """One full generational step (select -> crossover -> mutate -> elitism).

    ``evaluate`` maps an (n, L) genome array to (n,) objective values; the
    caller supplies a fitness-cache-wrapped evaluator so surviving
    individuals are not re-evaluated (the software-caching optimisation of
    [19]).
    """
    scaling.update(float(pop.fitness.max()))
    n = params.population_size
    baseline = scaling.scaling_baseline
    idx = roulette_select(pop.fitness, baseline, n + (n % 2), rng)
    pa = pop.genomes[idx[0::2]]
    pb = pop.genomes[idx[1::2]]
    ca, cb = single_point_crossover(pa, pb, params.crossover_rate, rng)
    children = np.concatenate([ca, cb], axis=0)[:n]
    children = mutate(children, params.mutation_rate, rng)
    fitness = evaluate(children)
    new_pop = Population(children, fitness)
    if params.elitist and pop.best_fitness < new_pop.best_fitness:
        worst = int(np.argmax(new_pop.fitness))
        new_pop.genomes[worst] = pop.genomes[pop.best_index]
        new_pop.fitness[worst] = pop.best_fitness
    return new_pop
