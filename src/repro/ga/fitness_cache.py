"""Software fitness caching ([19], §5).

"For the sequential GA programs, we developed a software caching technique
to reduce the recomputation of fitness values of surviving individuals."

Generational GAs re-create many chromosomes verbatim (clones selected
without crossover/mutation, the elitist copy, migrants already seen).  The
cache maps chromosome bytes to fitness so only genuinely new chromosomes
are evaluated — both the serial baseline and the demes use it, keeping the
serial/parallel comparison fair.  Hit statistics feed the compute-cost
model: simulated evaluation time is charged per *miss*.

Noisy functions (F4) must not be cached — a cached noisy value would
freeze one noise draw forever — so the cache can be constructed disabled
and then behaves as a transparent pass-through.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

import numpy as np


class FitnessCache:
    """Memoising wrapper around a population evaluator.

    LRU-bounded (default 100k entries) so long runs cannot grow without
    limit; the hit/miss counters expose the effective evaluation count.
    """

    def __init__(
        self,
        evaluate: Callable[[np.ndarray], np.ndarray],
        enabled: bool = True,
        max_entries: int = 100_000,
    ) -> None:
        self._evaluate = evaluate
        self.enabled = enabled
        self.max_entries = max_entries
        self._store: OrderedDict[bytes, float] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __call__(self, genomes: np.ndarray) -> np.ndarray:
        genomes = np.atleast_2d(genomes)
        n = genomes.shape[0]
        if not self.enabled:
            self.misses += n
            return self._evaluate(genomes)

        out = np.empty(n, dtype=np.float64)
        keys: list[bytes] = [row.tobytes() for row in genomes]
        # first occurrence of each unknown chromosome in this batch
        unique_miss: dict[bytes, int] = {}
        dup_rows: list[int] = []
        for i, key in enumerate(keys):
            val = self._store.get(key)
            if val is not None:
                self._store.move_to_end(key)
                out[i] = val
                self.hits += 1
            elif key in unique_miss:
                dup_rows.append(i)  # duplicate within the batch: one eval
                self.hits += 1
            else:
                unique_miss[key] = i
        if unique_miss:
            rows = list(unique_miss.values())
            self.misses += len(rows)
            vals = self._evaluate(genomes[rows])
            for i, v in zip(rows, vals):
                out[i] = v
                self._store[keys[i]] = float(v)
            for i in dup_rows:
                out[i] = self._store[keys[i]]
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
        return out

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._store)
