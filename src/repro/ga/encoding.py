"""Binary chromosome encoding.

DeJong-style GAs represent each variable as a fixed-width binary field
concatenated into one chromosome.  Decoding maps the unsigned integer of
each field linearly onto ``[lower, upper]``.  An optional Gray-code mode
is provided (Mühlenbein's study used Gray coding; DeJong's original used
plain binary — plain binary is the default here, matching DeJong's
parameter study the paper bases its settings on).

All operations are vectorised over whole populations: chromosomes are
``(n, L)`` uint8 arrays of 0/1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ga.functions import TestFunction


@dataclass(frozen=True)
class BinaryEncoding:
    """Fixed-point binary encoding for ``n_vars`` variables."""

    n_vars: int
    bits_per_var: int
    lower: float
    upper: float
    gray: bool = False

    def __post_init__(self) -> None:
        if self.n_vars < 1 or self.bits_per_var < 1:
            raise ValueError("n_vars and bits_per_var must be >= 1")
        if not self.upper > self.lower:
            raise ValueError("upper must exceed lower")
        if self.bits_per_var > 30:
            raise ValueError("bits_per_var > 30 overflows the int decode")

    @classmethod
    def for_function(cls, fn: TestFunction, gray: bool = False) -> "BinaryEncoding":
        """The encoding matching ``fn``'s bit width, bounds and dimensionality."""
        return cls(fn.n_vars, fn.bits_per_var, fn.lower, fn.upper, gray=gray)

    @property
    def length(self) -> int:
        """Chromosome length L in bits."""
        return self.n_vars * self.bits_per_var

    @property
    def nbytes(self) -> int:
        """Packed wire size of one chromosome (what migration messages pay)."""
        return -(-self.length // 8)

    def random_population(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform random ``(n, L)`` chromosome array."""
        return rng.integers(0, 2, size=(n, self.length), dtype=np.uint8)

    def decode(self, chromosomes: np.ndarray) -> np.ndarray:
        """Map ``(n, L)`` bits to ``(n, n_vars)`` real points (vectorised)."""
        chroms = np.atleast_2d(chromosomes)
        if chroms.shape[1] != self.length:
            raise ValueError(
                f"chromosome length {chroms.shape[1]} != encoding length {self.length}"
            )
        fields = chroms.reshape(chroms.shape[0], self.n_vars, self.bits_per_var)
        if self.gray:
            # Gray -> binary: b_i = g_0 xor ... xor g_i (prefix xor)
            fields = np.bitwise_xor.accumulate(fields, axis=2)
        weights = 1 << np.arange(self.bits_per_var - 1, -1, -1, dtype=np.int64)
        ints = fields.astype(np.int64) @ weights
        span = (1 << self.bits_per_var) - 1
        return self.lower + (self.upper - self.lower) * ints / span

    def encode_ints(self, ints: np.ndarray) -> np.ndarray:
        """Inverse helper (tests): field integers ``(n, n_vars)`` to bits."""
        ints = np.atleast_2d(np.asarray(ints, dtype=np.int64))
        if np.any(ints < 0) or np.any(ints >= (1 << self.bits_per_var)):
            raise ValueError("field integer out of range")
        shifts = np.arange(self.bits_per_var - 1, -1, -1)
        bits = (ints[:, :, None] >> shifts) & 1
        if self.gray:
            # binary -> Gray: g_i = b_i xor b_{i-1}
            gray = bits.copy()
            gray[:, :, 1:] = np.bitwise_xor(bits[:, :, 1:], bits[:, :, :-1])
            bits = gray
        return bits.reshape(ints.shape[0], self.length).astype(np.uint8)
