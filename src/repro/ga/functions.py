"""The eight-function GA test bed (Table 1).

Functions 1–5 are DeJong's classic F1–F5 [Goldberg 1989]; 6–8 are the
Rastrigin, Schwefel and Griewank functions from Mühlenbein, Schomisch &
Born's parallel-GA study [13].  All are *minimisation* problems evaluated
on binary-encoded chromosomes.

Every function is vectorised: ``f(X)`` takes an ``(n_points, n_vars)``
array and returns ``(n_points,)`` values.  ``optimum_threshold`` is the
"global optimum found" criterion used for the solution-quality metric
(§4.3): close enough to the known minimum that only the true basin
qualifies.

Notes on fidelity
-----------------
* F3 (step function): DeJong's original is ``sum(floor(x_i))`` with
  minimum −30; Table 1 lists the minimum as 0, i.e. the common shifted
  form ``30 + sum(floor(x_i))``.  We implement the shifted form so our
  Table 1 row matches the paper's.
* F4 (quartic with noise) adds Gauss(0,1) per evaluation; Table 1 lists
  ``min ≤ −2.5`` because the noise can push values below 0.  A
  deterministic ``noiseless`` variant is provided for tests.
* F5 (Shekel's foxholes) is the reciprocal form with minimum ≈ 0.998004
  (Table 1's 0.99804).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class TestFunction:
    """One row of Table 1."""

    fid: int
    name: str
    n_vars: int
    lower: float
    upper: float
    f: Callable[[np.ndarray], np.ndarray]
    min_value: float
    #: "global optimum found" if best fitness <= this (solution quality)
    optimum_threshold: float
    bits_per_var: int = 10
    #: whether evaluations are stochastic (F4's additive noise)
    noisy: bool = False

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.n_vars:
            raise ValueError(
                f"f{self.fid} expects {self.n_vars} variables, got {x.shape[1]}"
            )
        if np.any(x < self.lower - 1e-9) or np.any(x > self.upper + 1e-9):
            raise ValueError(f"f{self.fid}: point outside [{self.lower}, {self.upper}]")
        return self.f(x)


def _f1_sphere(x: np.ndarray) -> np.ndarray:
    return np.sum(x * x, axis=1)


def _f2_rosenbrock(x: np.ndarray) -> np.ndarray:
    return 100.0 * (x[:, 0] ** 2 - x[:, 1]) ** 2 + (1.0 - x[:, 0]) ** 2


def _f3_step(x: np.ndarray) -> np.ndarray:
    return 30.0 + np.sum(np.floor(x), axis=1)


# F4's noise draws from a module-level generator that experiments reseed
# via `reseed_f4`; per-evaluation noise is part of DeJong's definition.
_f4_rng = np.random.default_rng(0)


def reseed_f4(seed: int) -> None:
    """Reseed F4's evaluation noise (call once per experiment run)."""
    global _f4_rng
    _f4_rng = np.random.default_rng(seed)


def _f4_quartic(x: np.ndarray) -> np.ndarray:
    i = np.arange(1, x.shape[1] + 1, dtype=np.float64)
    return np.sum(i * x**4, axis=1) + _f4_rng.standard_normal(x.shape[0])


def f4_noiseless(x: np.ndarray) -> np.ndarray:
    """Deterministic F4 (for tests and quality thresholds)."""
    x = np.atleast_2d(x)
    i = np.arange(1, x.shape[1] + 1, dtype=np.float64)
    return np.sum(i * x**4, axis=1)


# DeJong F5's 5x5 grid of foxhole centres.
_F5_A1 = np.tile(np.array([-32.0, -16.0, 0.0, 16.0, 32.0]), 5)
_F5_A2 = np.repeat(np.array([-32.0, -16.0, 0.0, 16.0, 32.0]), 5)


def _f5_foxholes(x: np.ndarray) -> np.ndarray:
    j = np.arange(1, 26, dtype=np.float64)
    d = (x[:, 0:1] - _F5_A1) ** 6 + (x[:, 1:2] - _F5_A2) ** 6
    inner = np.sum(1.0 / (j + d), axis=1)
    return 1.0 / (0.002 + inner)


def _f6_rastrigin(x: np.ndarray) -> np.ndarray:
    a = 10.0
    return a * x.shape[1] + np.sum(x * x - a * np.cos(2.0 * np.pi * x), axis=1)


def _f7_schwefel(x: np.ndarray) -> np.ndarray:
    return np.sum(-x * np.sin(np.sqrt(np.abs(x))), axis=1)


def _f8_griewank(x: np.ndarray) -> np.ndarray:
    i = np.arange(1, x.shape[1] + 1, dtype=np.float64)
    return (
        np.sum(x * x, axis=1) / 4000.0
        - np.prod(np.cos(x / np.sqrt(i)), axis=1)
        + 1.0
    )


TEST_FUNCTIONS: tuple[TestFunction, ...] = (
    TestFunction(1, "sphere", 3, -5.12, 5.12, _f1_sphere, 0.0, 0.01, bits_per_var=10),
    TestFunction(2, "rosenbrock", 2, -2.048, 2.048, _f2_rosenbrock, 0.0, 0.01, bits_per_var=12),
    TestFunction(3, "step", 5, -5.12, 5.12, _f3_step, 0.0, 0.5, bits_per_var=10),
    TestFunction(4, "quartic-noise", 30, -1.28, 1.28, _f4_quartic, -2.5, 1.0, bits_per_var=8, noisy=True),
    TestFunction(5, "foxholes", 2, -65.536, 65.536, _f5_foxholes, 0.998004, 1.01, bits_per_var=17),
    TestFunction(6, "rastrigin", 20, -5.12, 5.12, _f6_rastrigin, 0.0, 5.0, bits_per_var=10),
    TestFunction(7, "schwefel", 10, -500.0, 500.0, _f7_schwefel, -4189.83, -4000.0, bits_per_var=10),
    TestFunction(8, "griewank", 10, -600.0, 600.0, _f8_griewank, 0.0, 0.5, bits_per_var=10),
)


def get_function(fid: int) -> TestFunction:
    """Look up a Table 1 function by its number (1-8)."""
    for fn in TEST_FUNCTIONS:
        if fn.fid == fid:
            return fn
    raise KeyError(f"no test function {fid}; valid ids are 1..8")
