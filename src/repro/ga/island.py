"""Island-model parallel GA: synchronous, asynchronous and Global_Read.

§3.1/§4.2.1: the population is split into demes, one per node; every
generation each deme broadcasts its best N/2 individuals to all other
demes and replaces its worst individuals with arriving migrants.  The
three implementations differ only in how a deme *obtains* its peers'
migrants — everything else (operators, costs, RNG streams) is shared, so
measured differences are attributable to the coherence mode alone:

=================  ====================================================
SYNCHRONOUS        write migrants → group barrier → ``global_read(g, 0)``
                   per peer (wait for everyone's generation-g migrants)
ASYNCHRONOUS       write migrants → ``read_local`` per peer (whatever
                   copy is present, however stale; never blocks)
NON_STRICT         write migrants → ``global_read(g, age)`` per peer
                   (block only if a peer's copy is older than ``age``
                   generations — the paper's partially asynchronous GA)
=================  ====================================================

Completion metric (§4.3 / §5.1.1): the simulated time at which any deme's
best-so-far first reaches the convergence target (the serial baseline's
final best), measured over a capped number of generations.  The paper
equivalently runs the asynchronous/controlled versions "for enough
generations so that the subpopulation converged further than the
synchronous version".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.machine import Machine, MachineConfig
from repro.core.coherence import CoherenceMode, UpdatePolicy
from repro.core.contract import dsm_contract
from repro.core.dsm import Dsm
from repro.core.global_read import GlobalReadStats
from repro.core.location import SharedLocationSpec
from repro.ga.costs import GaCostModel
from repro.ga.encoding import BinaryEncoding
from repro.ga.fitness_cache import FitnessCache
from repro.ga.functions import TestFunction, reseed_f4
from repro.ga.operators import GaParams, ScalingWindow, evolve_one_generation
from repro.ga.population import Population
from repro.ga.topology import TopologySpec, in_peers, readers_of
from repro.obs.metrics import machine_metrics
from repro.obs.prof import prof_section
from repro.sim import CompletionCounter, Compute

#: staleness contract for the migrant-exchange locations.  Incorporation
#: is pure selection (pool immigrants, stable argsort, replace_worst):
#: order- and staleness-insensitive, so arbitrarily stale copies are
#: algorithmically tolerable — the asynchronous mode reads them with no
#: bound by design, and Global_Read's age only trades convergence speed
#: for blocking.  The static coherence analyzer checks this claim
#: against the source (see repro.analysis.coherence).
dsm_contract(
    "migrants.*",
    writers=1,
    age=None,
    tolerance="commutative",
    reason="selection-based migrant incorporation is order/staleness-insensitive",
)


@dataclass(frozen=True)
class IslandGaConfig:
    """One island-GA run (a single trial of one bar of Figure 2/4)."""

    fn: TestFunction
    n_demes: int
    mode: CoherenceMode
    age: int = 0
    n_generations: int = 300
    seed: int = 0
    params: GaParams = field(default_factory=GaParams)
    costs: GaCostModel = field(default_factory=GaCostModel)
    machine: MachineConfig | None = None
    #: emigrants per generation = migration_fraction * N (paper: N/2)
    migration_fraction: float = 0.5
    #: convergence target (serial baseline's final best); None = run all
    #: generations and only record quality
    target: float | None = None
    gray: bool = False
    #: DSM write-propagation policy (EAGER = the paper's direct sends;
    #: COALESCE = Mermera-style sender buffering, ablation A3)
    update_policy: UpdatePolicy = UpdatePolicy.EAGER
    #: adapt the Global_Read age at runtime (§6 future work); when set,
    #: ``age`` is the controller's initial value
    dynamic_age: bool = False
    #: migration topology (see repro.ga.topology); "all" reproduces the
    #: paper's all-to-all exchange bit-identically
    topology: str = "all"
    topology_seed: int = 0
    topology_degree: int = 3
    topology_group: int = 8

    def topology_spec(self) -> TopologySpec:
        """The migration wiring of this run as a :class:`TopologySpec`."""
        return TopologySpec(
            kind=self.topology,
            seed=self.topology_seed,
            degree=self.topology_degree,
            group=self.topology_group,
        )

    def __post_init__(self) -> None:
        self.topology_spec()  # validates the topology fields
        if self.n_demes < 1:
            raise ValueError("need at least one deme")
        if self.age < 0:
            raise ValueError("age must be >= 0")
        if not 0.0 < self.migration_fraction <= 1.0:
            raise ValueError("migration_fraction must be in (0, 1]")
        if self.mode is CoherenceMode.NON_STRICT and self.age is None:
            raise ValueError("NON_STRICT requires an age")


@dataclass
class IslandGaResult:
    """Measurements of one run (the paper's §4.3 metrics)."""

    mode: CoherenceMode
    age: int
    n_demes: int
    fid: int
    #: simulated time at which the target was first reached (None = never)
    completion_time: float | None
    #: simulated time when the run stopped (target hit or all generations)
    total_time: float
    #: generation at which the target was reached, per the winning deme
    generations_to_target: int | None
    best_fitness: float
    mean_fitness: float
    per_deme_best: list[float] = field(default_factory=list)
    generations_run: list[int] = field(default_factory=list)
    messages_sent: int = 0
    mean_warp: float = 0.0
    max_warp: float = 0.0
    network_utilization: float = 0.0
    gr_stats: GlobalReadStats = field(default_factory=GlobalReadStats)
    #: repro.obs metrics snapshot (plain dict, see repro.obs.metrics)
    metrics: dict = field(default_factory=dict)

    def found_optimum(self, threshold: float) -> bool:
        """Whether the best fitness reached ``threshold`` of the known optimum."""
        return self.best_fitness <= threshold


class _Recorder:
    """Tracks per-deme progress and the global time-to-target."""

    def __init__(self, target: float | None):
        self.target = target
        self.target_time: float | None = None
        self.target_generation: int | None = None
        self.best: dict[int, float] = {}
        self.mean: dict[int, float] = {}
        self.generations: dict[int, int] = {}

    def report(self, deme: int, gen: int, best: float, mean: float, now: float) -> None:
        self.best[deme] = min(best, self.best.get(deme, np.inf))
        self.mean[deme] = mean
        self.generations[deme] = gen
        if (
            self.target is not None
            and self.target_time is None
            and best <= self.target
        ):
            self.target_time = now
            self.target_generation = gen

    @property
    def done(self) -> bool:
        return self.target is not None and self.target_time is not None


class _LocalDeme:
    """Authoritative deme computation (the serial path and owner shards).

    The heavy, non-simulated work of one deme — fitness evaluation,
    ``evolve_one_generation``, migrant extraction, incorporation — lives
    behind this small interface so a sharded run can swap in a ghost
    implementation (:mod:`repro.ga.sharded`) that replays records from
    the owning shard instead of recomputing.  The simulated side of the
    process (Compute charges, DSM traffic, barriers, Global_Reads) is
    identical either way, which is what keeps sharded event streams
    bit-identical to serial.

    Every method is a pure reordering of the original inline code: all
    numpy work still happens between the same two kernel events it did
    before the refactor (pinned by the GOLDEN digests).
    """

    def __init__(self, cfg: IslandGaConfig, deme: int) -> None:
        fn = cfg.fn
        self.cfg = cfg
        self.deme = deme
        self.enc = BinaryEncoding.for_function(fn, gray=cfg.gray)
        self.n_mig = max(
            1, int(round(cfg.migration_fraction * cfg.params.population_size))
        )
        self.rng = np.random.default_rng(
            np.random.SeedSequence(entropy=cfg.seed, spawn_key=(fn.fid, deme))
        )
        self.cache = FitnessCache(
            lambda g: fn(self.enc.decode(g)), enabled=not fn.noisy
        )
        self.scaling = ScalingWindow(window=cfg.params.scaling_window)
        self.pop: Population | None = None
        self.best_so_far = float("inf")

    def start(self) -> tuple[float, float, float, tuple]:
        """Initial population + evaluation; returns (cost_s, best, mean, migrants)."""
        cfg = self.cfg
        with prof_section("numpy.ga"):
            genomes = self.enc.random_population(cfg.params.population_size, self.rng)
            self.pop = Population(genomes, self.cache(genomes))
            self.best_so_far = self.pop.best_fitness
            cost = cfg.costs.generation_cost(cfg.fn, self.pop.size, self.cache.misses)
            mg, mf = self.pop.best_individuals(self.n_mig)
        return cost, self.best_so_far, self.pop.mean_fitness, (mg, mf)

    def evolve(self, g: int) -> tuple[float, float, float, tuple]:
        """One generation of evolution; returns (cost_s, best, mean, migrants)."""
        cfg = self.cfg
        with prof_section("numpy.ga"):
            misses_before = self.cache.misses
            self.pop = evolve_one_generation(
                self.pop, cfg.params, self.scaling, self.cache, self.rng
            )
            cost = cfg.costs.generation_cost(
                cfg.fn, self.pop.size, self.cache.misses - misses_before
            )
            self.best_so_far = min(self.best_so_far, self.pop.best_fitness)
            mg, mf = self.pop.best_individuals(self.n_mig)
        return cost, self.best_so_far, self.pop.mean_fitness, (mg, mf)

    def incorporate(self, pool_g: np.ndarray, pool_f: np.ndarray) -> tuple[float, float]:
        """Install the best arrivals; returns post-incorporation (best, mean)."""
        with prof_section("numpy.ga"):
            order = np.argsort(pool_f, kind="stable")[: self.n_mig]
            self.pop.replace_worst(pool_g[order], pool_f[order])
            self.best_so_far = min(self.best_so_far, self.pop.best_fitness)
        return self.best_so_far, self.pop.mean_fitness

    def finish(self) -> float:
        """The deme's final best-so-far (the process return value)."""
        return self.best_so_far


def _deme_process(
    cfg: IslandGaConfig, dsm: Dsm, deme: int, recorder: _Recorder, model=None
):
    """Build the simulated process for one deme.

    ``model`` is the execution-model factory: ``(cfg, deme) ->`` an
    object with the :class:`_LocalDeme` interface.  ``None`` (the serial
    default) computes locally; :mod:`repro.ga.sharded` substitutes
    owner/ghost implementations for sharded runs.
    """
    fn = cfg.fn
    enc = BinaryEncoding.for_function(fn, gray=cfg.gray)
    n_mig = max(1, int(round(cfg.migration_fraction * cfg.params.population_size)))
    peers = in_peers(cfg.topology_spec(), deme, cfg.n_demes)
    # only the synchronous barrier needs the full group; materialising it
    # per deme is O(n_demes^2) across the run — ruinous at 4096 demes
    group = (
        range(cfg.n_demes) if cfg.mode is CoherenceMode.SYNCHRONOUS else None
    )
    migrant_nbytes = n_mig * (enc.nbytes + 8)

    def proc(node, task):
        exec_ = (model or _LocalDeme)(cfg, deme)
        dnode = dsm.node(deme)
        age_ctl = None
        if cfg.dynamic_age and cfg.mode is CoherenceMode.NON_STRICT:
            from repro.core.dynamic_age import DynamicAgeController

            age_ctl = DynamicAgeController(initial_age=cfg.age)
        cost, best, mean, (mg, mf) = exec_.start()
        yield Compute(node.cost(cost))
        recorder.report(deme, 0, best, mean, task.vm.kernel.now)

        # generation-0 emigrants so nobody blocks on a missing first copy
        yield from dnode.write(f"migrants.{deme}", (mg, mf), 0, migrant_nbytes)

        for g in range(1, cfg.n_generations + 1):
            cost, best, mean, (mg, mf) = exec_.evolve(g)
            yield Compute(node.cost(cost, label="evolve"))
            recorder.report(deme, g, best, mean, task.vm.kernel.now)

            # emigrate this generation's best
            yield from dnode.write(f"migrants.{deme}", (mg, mf), g, migrant_nbytes)

            # immigrate according to the coherence mode
            if cfg.mode is CoherenceMode.SYNCHRONOUS and cfg.n_demes > 1:
                yield from task.barrier(group)
            arrivals: list[tuple[np.ndarray, np.ndarray]] = []
            for p in peers:
                locn = f"migrants.{p}"
                if cfg.mode is CoherenceMode.ASYNCHRONOUS:
                    copy = yield from dnode.read_local(locn)
                elif cfg.mode is CoherenceMode.SYNCHRONOUS:
                    copy = yield from dnode.global_read(locn, g, 0)
                elif age_ctl is not None:
                    blocked_before = dnode.gr_stats.blocked
                    copy = yield from dnode.global_read(locn, g, age_ctl.age)
                    age_ctl.observe(
                        dnode.gr_stats.blocked > blocked_before,
                        max(0, g - copy.age),
                    )
                else:
                    copy = yield from dnode.global_read(locn, g, cfg.age)
                if copy is not None:
                    arrivals.append(copy.value)
            if arrivals:
                pool_g = np.concatenate([a[0] for a in arrivals], axis=0)
                pool_f = np.concatenate([a[1] for a in arrivals], axis=0)
                yield Compute(
                    node.cost(
                        cfg.costs.incorporate_per_migrant * pool_f.size,
                        label="incorporate",
                    )
                )
                best, mean = exec_.incorporate(pool_g, pool_f)
                recorder.report(deme, g, best, mean, task.vm.kernel.now)
        return exec_.finish()

    return proc


def run_island_ga(
    cfg: IslandGaConfig, instrument=None, shards: int = 1, deme_model=None
) -> IslandGaResult:
    """Execute one island-GA run on a freshly built machine.

    ``instrument``, if given, is called with the freshly built
    :class:`~repro.core.dsm.Dsm` before any process is spawned — the
    race classifier (:mod:`repro.analysis.races`) attaches itself this
    way without perturbing the run.

    ``shards > 1`` executes the run on the bounded-lag parallel kernel
    (:mod:`repro.sim.parallel`): worker processes each replay the full
    event stream but only compute the demes they own, so the result is
    bit-identical to serial (DESIGN.md §13).  Falls back to serial —
    with the reason recorded under ``result.metrics["parallel"]`` —
    when the run cannot shard (noisy fitness function, single deme,
    instrument hook) or worker processes cannot start.

    ``deme_model`` is the internal execution-model hook used by the
    sharded workers themselves; see :func:`_deme_process`.
    """
    if shards > 1 and deme_model is None:
        from repro.ga.sharded import run_island_ga_sharded

        return run_island_ga_sharded(cfg, shards=shards, instrument=instrument)
    mcfg = cfg.machine or MachineConfig(n_nodes=cfg.n_demes, seed=cfg.seed, measure_warp=True)
    if mcfg.n_nodes != cfg.n_demes:
        raise ValueError(
            f"machine has {mcfg.n_nodes} nodes but the run wants {cfg.n_demes} demes"
        )
    reseed_f4(cfg.seed * 8 + cfg.fn.fid)
    machine = Machine(mcfg)
    dsm = Dsm(machine.vm, update_policy=cfg.update_policy)
    if instrument is not None:
        instrument(dsm)
    n_mig = max(1, int(round(cfg.migration_fraction * cfg.params.population_size)))
    enc = BinaryEncoding.for_function(cfg.fn, gray=cfg.gray)
    topo = cfg.topology_spec()
    for d in range(cfg.n_demes):
        readers = readers_of(topo, d, cfg.n_demes)
        dsm.register(
            SharedLocationSpec(
                f"migrants.{d}",
                writer=d,
                readers=readers,
                value_nbytes=n_mig * (enc.nbytes + 8),
            )
        )
    recorder = _Recorder(cfg.target)
    handles = [
        machine.spawn_on(
            d, _deme_process(cfg, dsm, d, recorder, model=deme_model), name=f"deme{d}"
        )
        for d in range(cfg.n_demes)
    ]
    counter = CompletionCounter(handles)
    machine.kernel.run(
        stop_when=lambda: recorder.done or counter.remaining == 0
    )
    total_time = machine.kernel.now
    return IslandGaResult(
        mode=cfg.mode,
        age=cfg.age,
        n_demes=cfg.n_demes,
        fid=cfg.fn.fid,
        completion_time=recorder.target_time,
        total_time=total_time,
        generations_to_target=recorder.target_generation,
        best_fitness=min(recorder.best.values()),
        mean_fitness=float(np.mean(list(recorder.mean.values()))),
        # a deme that had not reported when the target stopped the
        # simulation contributes inf/0 (it did no measurable work yet)
        per_deme_best=[recorder.best.get(d, np.inf) for d in range(cfg.n_demes)],
        generations_run=[recorder.generations.get(d, 0) for d in range(cfg.n_demes)],
        messages_sent=machine.vm.total_messages(),
        mean_warp=machine.warp.mean_warp if machine.warp else 0.0,
        max_warp=machine.warp.max_warp if machine.warp else 0.0,
        network_utilization=machine.network.stats.utilization(total_time),
        gr_stats=dsm.merged_gr_stats(),
        metrics=machine_metrics(machine, dsm=dsm),
    )
