"""The optimised serial GA baseline.

§5: "Speedups for the parallel programs are reported with respect to
corresponding sequential programs, which we optimized to a good extent
(e.g. ... a software caching technique to reduce the recomputation of
fitness values of surviving individuals)."

The serial GA runs the identical generational machinery the demes use and
accounts simulated time through the same :class:`GaCostModel`, so serial
vs. parallel completion times are directly comparable.  Its trajectory
(best-so-far per generation with timestamps) provides both the speedup
denominator and the convergence *target* the asynchronous variants must
reach (§5.1.1: convergence "further than the synchronous version").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ga.costs import GaCostModel
from repro.ga.encoding import BinaryEncoding
from repro.ga.fitness_cache import FitnessCache
from repro.ga.functions import TestFunction, reseed_f4
from repro.ga.operators import GaParams, ScalingWindow, evolve_one_generation
from repro.ga.population import Population


@dataclass
class SerialGaResult:
    """Trajectory and totals of one serial run."""

    fid: int
    n_generations: int
    sim_time: float
    best_fitness: float
    mean_fitness: float
    #: best-so-far after each generation
    best_history: np.ndarray = field(repr=False, default=None)
    #: simulated completion time of each generation
    time_history: np.ndarray = field(repr=False, default=None)
    evaluations: int = 0
    cache_hit_rate: float = 0.0

    def time_to_target(self, target: float) -> float | None:
        """Earliest simulated time at which best-so-far <= target."""
        hit = np.nonzero(self.best_history <= target)[0]
        return float(self.time_history[hit[0]]) if hit.size else None

    def found_optimum(self, threshold: float) -> bool:
        """Whether the best fitness reached ``threshold`` of the known optimum."""
        return bool(self.best_fitness <= threshold)


def run_serial_ga(
    fn: TestFunction,
    seed: int = 0,
    n_generations: int = 1000,
    params: GaParams | None = None,
    costs: GaCostModel | None = None,
    gray: bool = False,
    population_size: int | None = None,
) -> SerialGaResult:
    """Run the serial GA on ``fn`` and return its full trajectory.

    Deterministic in ``seed`` (including F4's evaluation noise, reseeded
    per run).  ``population_size`` overrides the DeJong N=50 when the
    caller scales total population (the parallel experiments keep the
    serial baseline at N=50, as the paper does).
    """
    params = params or GaParams()
    if population_size is not None:
        params = GaParams(
            population_size=population_size,
            crossover_rate=params.crossover_rate,
            mutation_rate=params.mutation_rate,
            scaling_window=params.scaling_window,
            elitist=params.elitist,
        )
    costs = costs or GaCostModel()
    rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(fn.fid,)))
    reseed_f4(seed * 8 + fn.fid)
    enc = BinaryEncoding.for_function(fn, gray=gray)
    cache = FitnessCache(lambda g: fn(enc.decode(g)), enabled=not fn.noisy)

    genomes = enc.random_population(params.population_size, rng)
    pop = Population(genomes, cache(genomes))
    scaling = ScalingWindow(window=params.scaling_window)

    sim_time = 0.0
    best_hist = np.empty(n_generations + 1)
    time_hist = np.empty(n_generations + 1)
    best_so_far = pop.best_fitness
    sim_time += costs.generation_cost(fn, params.population_size, cache.misses)
    best_hist[0], time_hist[0] = best_so_far, sim_time

    for g in range(1, n_generations + 1):
        misses_before = cache.misses
        pop = evolve_one_generation(pop, params, scaling, cache, rng)
        new_evals = cache.misses - misses_before
        sim_time += costs.generation_cost(fn, params.population_size, new_evals)
        best_so_far = min(best_so_far, pop.best_fitness)
        best_hist[g], time_hist[g] = best_so_far, sim_time

    return SerialGaResult(
        fid=fn.fid,
        n_generations=n_generations,
        sim_time=sim_time,
        best_fitness=best_so_far,
        mean_fitness=pop.mean_fitness,
        best_history=best_hist,
        time_history=time_hist,
        evaluations=cache.misses,
        cache_hit_rate=cache.hit_rate,
    )
