"""Genetic algorithms: the paper's first driver application (§3.1, §4.2.1).

Implements, from scratch:

* the eight-function minimisation test bed of Table 1
  (:mod:`repro.ga.functions` — DeJong F1–F5 plus Mühlenbein's Rastrigin,
  Schwefel and Griewank),
* binary chromosome encoding/decoding (:mod:`repro.ga.encoding`),
* DeJong-parameterised generational GA machinery — roulette selection
  with scaling window, single-point crossover, bit mutation, elitism
  (:mod:`repro.ga.operators`),
* the software fitness cache of [19] (:mod:`repro.ga.fitness_cache`),
* the optimised *serial* GA baseline (:mod:`repro.ga.sga`),
* the island-model parallel GA in its synchronous, fully asynchronous and
  Global_Read (partially asynchronous) forms (:mod:`repro.ga.island`),
* the calibrated compute-cost model (:mod:`repro.ga.costs`).

Paper parameter settings (§4.2.1): N=50, C=0.6, M=0.001, G=1, W=1, S=E.
"""

from repro.ga.functions import TEST_FUNCTIONS, TestFunction, get_function
from repro.ga.encoding import BinaryEncoding
from repro.ga.population import Population
from repro.ga.operators import GaParams, evolve_one_generation
from repro.ga.fitness_cache import FitnessCache
from repro.ga.costs import GaCostModel
from repro.ga.sga import SerialGaResult, run_serial_ga
from repro.ga.island import IslandGaConfig, IslandGaResult, run_island_ga

__all__ = [
    "TEST_FUNCTIONS",
    "TestFunction",
    "get_function",
    "BinaryEncoding",
    "Population",
    "GaParams",
    "evolve_one_generation",
    "FitnessCache",
    "GaCostModel",
    "SerialGaResult",
    "run_serial_ga",
    "IslandGaConfig",
    "IslandGaResult",
    "run_island_ga",
]
