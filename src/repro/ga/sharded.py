"""Sharded island GA on the bounded-lag parallel kernel.

This is the island GA's adapter for :mod:`repro.sim.parallel`: every
shard worker runs the *complete* simulated cluster (kernel, network,
PVM, DSM, all deme processes — the replicated event stream of
DESIGN.md §13) but performs the heavy numpy work (population
initialisation, ``evolve_one_generation``, fitness evaluation, migrant
incorporation) only for the demes its shard owns.  Non-owned demes run
as *ghosts*: the same simulated process, but the compute step replays a
:class:`~repro.sim.parallel.records.GenRecord` published by the owning
shard instead of recomputing — same cost charged, same best/mean
reported, same migrant payload written to the DSM.

Because the simulated side is untouched, a sharded run is bit-identical
to serial: the GOLDEN ``ga_result`` digest and the CHAOS_GOLDEN fault
digests are pinned at shards ∈ {1, 2, 4} by ``tests/sim/
test_parallel_kernel.py`` and CI's parallel-smoke job.

Runs that cannot shard fall back to serial gracefully, with the reason
recorded under ``result.metrics["parallel"]["fallback"]``:

* noisy fitness (f4) — demes interleave draws from one module-level
  RNG, so partitioned compute cannot replay the serial draw order;
* a single deme — nothing to partition;
* an ``instrument`` hook — a live closure cannot cross the process
  boundary to the workers;
* worker processes unavailable on the platform.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.bench.determinism import digest_values
from repro.cluster.machine import MachineConfig
from repro.ga.island import IslandGaConfig, IslandGaResult, _LocalDeme, run_island_ga
from repro.sim.parallel.records import GenRecord, ShardOutcome


def ga_digest(result: IslandGaResult) -> str:
    """The GOLDEN ``ga_result`` digest recipe over one run's result."""
    return digest_values(
        result.completion_time,
        result.total_time,
        result.best_fitness,
        result.mean_fitness,
        [float(b) for b in result.per_deme_best],
        list(result.generations_run),
        result.messages_sent,
        result.mean_warp,
        result.max_warp,
    )


def ga_chaos_digest(result: IslandGaResult, log_fields: list) -> str:
    """The CHAOS_GOLDEN ``ga-*`` digest recipe (result + injected faults)."""
    return digest_values(
        result.completion_time,
        result.total_time,
        result.best_fitness,
        result.mean_fitness,
        [float(b) for b in result.per_deme_best],
        list(result.generations_run),
        result.messages_sent,
        log_fields,
    )


class _OwnerDeme:
    """Authoritative deme on its owning shard: compute, then publish.

    Wraps :class:`~repro.ga.island._LocalDeme` and ships each step's
    outputs (cost, best, mean, migrant payload) to the coordinator for
    the ghost replicas on other shards.  Publication happens *between*
    simulated events — it costs wall time only, never simulated time —
    and the bounded-lag gate inside ``publish`` is what keeps this shard
    within ``lag_bound`` of the distributed floor.
    """

    def __init__(self, cfg: IslandGaConfig, deme: int, feed) -> None:
        self._local = _LocalDeme(cfg, deme)
        self.deme = deme
        self.feed = feed
        self._gen = 0

    def start(self):
        """Compute the initial population step and publish its record."""
        cost, best, mean, mig = self._local.start()
        self.feed.publish(
            GenRecord("start", self.deme, 0, cost, best, mean, mig)
        )
        return cost, best, mean, mig

    def evolve(self, g: int):
        """Compute generation ``g`` and publish its record."""
        cost, best, mean, mig = self._local.evolve(g)
        self._gen = g
        self.feed.publish(
            GenRecord("evolve", self.deme, g, cost, best, mean, mig)
        )
        return cost, best, mean, mig

    def incorporate(self, pool_g: np.ndarray, pool_f: np.ndarray):
        """Incorporate arrivals and publish the post-incorporation stats."""
        best, mean = self._local.incorporate(pool_g, pool_f)
        self.feed.publish(GenRecord("inc", self.deme, self._gen, 0.0, best, mean))
        return best, mean

    def finish(self) -> float:
        """The deme's final best-so-far."""
        return self._local.finish()


class _GhostDeme:
    """Replica of a deme owned elsewhere: replay records, never compute.

    Consumes the owner's records strictly in publication order; a
    kind/generation mismatch means the shards' event streams diverged
    and raises immediately (the coordinator surfaces the traceback).
    The deme's simulated process is otherwise identical to the owner's
    — it charges the same Compute cost, writes the same migrant payload
    to the DSM and reports the same best/mean to the recorder.
    """

    def __init__(self, cfg: IslandGaConfig, deme: int, feed) -> None:
        self.deme = deme
        self.feed = feed
        self.best_so_far = float("inf")
        self._gen = 0

    def _next(self, kind: str, gen: int) -> GenRecord:
        rec = self.feed.consume(self.deme)
        if rec.kind != kind or rec.gen != gen:
            raise RuntimeError(
                f"ghost deme {self.deme} record stream diverged: expected "
                f"({kind!r}, gen {gen}), got ({rec.kind!r}, gen {rec.gen}) — "
                "shards are not replaying the identical event stream"
            )
        return rec

    def start(self):
        """Replay the initial population step from the owner's record."""
        rec = self._next("start", 0)
        self.best_so_far = rec.best
        return rec.cost, rec.best, rec.mean, rec.payload

    def evolve(self, g: int):
        """Replay generation ``g`` from the owner's record."""
        rec = self._next("evolve", g)
        self._gen = g
        self.best_so_far = rec.best
        return rec.cost, rec.best, rec.mean, rec.payload

    def incorporate(self, pool_g: np.ndarray, pool_f: np.ndarray):
        """Replay the post-incorporation stats from the owner's record."""
        rec = self._next("inc", self._gen)
        self.best_so_far = rec.best
        return rec.best, rec.mean

    def finish(self) -> float:
        """The deme's final best-so-far, as replayed."""
        return self.best_so_far


class GaShardScenario:
    """The island GA rendered as a :func:`repro.sim.parallel.run_sharded`
    scenario: units are demes, the communication graph is the all-to-all
    migrant exchange, and the shard executor swaps owner/ghost deme
    models into :func:`~repro.ga.island.run_island_ga`.
    """

    def __init__(self, cfg: IslandGaConfig) -> None:
        self.cfg = cfg

    # -- coordinator-side protocol -------------------------------------
    def units(self) -> int:
        """Partitionable units: one per deme."""
        return self.cfg.n_demes

    def comm_graph(self):
        """Migrant-exchange graph under the run's migration topology.

        All-to-all gives the historical complete graph; structured
        topologies (ring/torus/hierarchical/random) give the partitioner
        a sparse graph it can actually cut well, so neighbouring demes
        land on the same shard and cross-shard record traffic shrinks.
        """
        from repro.ga.encoding import BinaryEncoding
        from repro.ga.topology import comm_graph

        enc = BinaryEncoding.for_function(self.cfg.fn, gray=self.cfg.gray)
        n_mig = max(
            1,
            int(
                round(
                    self.cfg.migration_fraction
                    * self.cfg.params.population_size
                )
            ),
        )
        return comm_graph(
            self.cfg.topology_spec(), self.cfg.n_demes, n_mig * (enc.nbytes + 8)
        )

    def machine_config(self) -> MachineConfig:
        """The machine the run will build (for lookahead extraction)."""
        return self.cfg.machine or MachineConfig(
            n_nodes=self.cfg.n_demes, seed=self.cfg.seed, measure_warp=True
        )

    def shardable(self) -> tuple[bool, str]:
        """Whether partitioned compute can replay the serial run exactly."""
        if self.cfg.fn.noisy:
            return (
                False,
                "noisy fitness function: demes interleave draws from a "
                "shared RNG, so partitioned compute cannot replay the "
                "serial draw order",
            )
        if self.cfg.n_demes < 2:
            return False, "single deme: nothing to partition"
        return True, ""

    def run_serial(self) -> IslandGaResult:
        """The graceful fallback: the ordinary serial run."""
        return run_island_ga(self.cfg)

    # -- worker-side executor ------------------------------------------
    def run_shard(self, ctx) -> ShardOutcome:
        """Run this shard's replica of the full cluster (worker process)."""
        cfg = self.cfg
        if ctx.trace_path is not None:
            cfg = replace(cfg, machine=replace(self.machine_config(), trace=True))

        holder: dict = {}

        def grab(dsm) -> None:
            holder["dsm"] = dsm
            ctx.feed.bind_clock(lambda: dsm.vm.kernel.now)
            if getattr(ctx, "profile", False):
                from repro.obs.prof import current

                # the worker activated the ambient profiler; wire the
                # kernel loop's section hooks into the same one
                dsm.vm.kernel.prof = current()

        owned = ctx.plan.owned_by(ctx.shard_id)

        def model(mcfg: IslandGaConfig, deme: int):
            if deme in owned:
                return _OwnerDeme(mcfg, deme, ctx.feed)
            return _GhostDeme(mcfg, deme, ctx.feed)

        result = run_island_ga(cfg, instrument=grab, deme_model=model)

        kernel = holder["dsm"].vm.kernel
        injector = getattr(holder["dsm"].vm.network, "fault_injector", None)
        fault_log = injector.log.digest_fields() if injector is not None else []

        trace_path = None
        if ctx.trace_path is not None and kernel.obs is not None:
            kernel.obs.write_jsonl(ctx.trace_path)
            trace_path = ctx.trace_path

        return ShardOutcome(
            shard_id=ctx.shard_id,
            digest=digest_values(
                ga_digest(result),
                list(fault_log),
                float(kernel.now),
                int(kernel.events_executed),
            ),
            clock=float(kernel.now),
            events=int(kernel.events_executed),
            result=result,
            fault_log=fault_log,
            trace_path=trace_path,
        )


def run_island_ga_sharded(
    cfg: IslandGaConfig,
    shards: int,
    instrument=None,
    trace_path: str | None = None,
    lag_bound: float | None = None,
    profile: bool = False,
) -> IslandGaResult:
    """Run one island GA across ``shards`` worker processes.

    Entry point behind ``run_island_ga(cfg, shards=N)``.  Bit-identical
    to the serial run (the coordinator enforces cross-shard digest
    equality); falls back to serial — recording why under
    ``result.metrics["parallel"]`` — whenever sharding is impossible.
    """
    if instrument is not None:
        result = run_island_ga(cfg, instrument=instrument)
        result.metrics["parallel"] = {
            "shards": 1,
            "sharded": False,
            "fallback": "instrument hook cannot cross the process boundary",
        }
        return result

    from repro.sim.parallel.coordinator import run_sharded

    run = run_sharded(
        GaShardScenario(cfg),
        shards,
        seed=cfg.seed,
        lag_bound=lag_bound,
        trace_path=trace_path,
        profile=profile,
    )
    result: IslandGaResult = run.result
    info: dict = {
        "shards": run.n_shards,
        "sharded": run.sharded,
        "fallback": run.fallback,
    }
    if run.sharded:
        info.update(
            {
                "owner": list(run.plan.owner),
                "lookahead": run.plan.lookahead,
                "lag_bound": run.plan.lag_bound,
                "records_routed": run.records_routed,
                "floor_broadcasts": run.floor_broadcasts,
                "feed": [o.feed_stats for o in run.outcomes],
                "fault_log": run.outcomes[0].fault_log,
                "merged_trace": run.merged_trace,
            }
        )
        if profile:
            info["prof"] = [o.prof for o in run.outcomes]
    result.metrics["parallel"] = info
    return result
