"""Population container: chromosomes + fitness with the operations the
serial and island GAs share (best/worst queries, migrant extraction,
worst-replacement incorporation)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Population:
    """``genomes``: (N, L) uint8 bits; ``fitness``: (N,) objective values
    (minimisation — smaller is fitter)."""

    genomes: np.ndarray
    fitness: np.ndarray

    def __post_init__(self) -> None:
        self.genomes = np.ascontiguousarray(self.genomes, dtype=np.uint8)
        self.fitness = np.asarray(self.fitness, dtype=np.float64)
        if self.genomes.ndim != 2:
            raise ValueError("genomes must be a 2-D bit array")
        if self.fitness.shape != (self.genomes.shape[0],):
            raise ValueError(
                f"fitness shape {self.fitness.shape} does not match "
                f"{self.genomes.shape[0]} individuals"
            )

    @property
    def size(self) -> int:
        """Number of individuals."""
        return self.genomes.shape[0]

    @property
    def best_index(self) -> int:
        """Index of the fittest individual (ties break low)."""
        return int(np.argmin(self.fitness))

    @property
    def best_fitness(self) -> float:
        """Fitness of the fittest individual."""
        return float(self.fitness.min())

    @property
    def mean_fitness(self) -> float:
        """Mean fitness over the population."""
        return float(self.fitness.mean())

    def best_individuals(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` fittest (genomes, fitness), fittest first.

        This is what a deme emigrates: "the best fit N/2 individuals found
        in each generation" (§4.2.1).
        """
        if not 0 < k <= self.size:
            raise ValueError(f"k must be in 1..{self.size}, got {k}")
        idx = np.argsort(self.fitness, kind="stable")[:k]
        return self.genomes[idx].copy(), self.fitness[idx].copy()

    def replace_worst(self, genomes: np.ndarray, fitness: np.ndarray) -> int:
        """Replace the worst individuals with the incoming migrants.

        "Each processor then replaces the worst individuals in its
        subpopulation with these migrants" (§4.2.1).  Two guards keep
        incorporation sane: a migrant only displaces a strictly worse
        resident, and a migrant identical to a resident chromosome is
        skipped (installing clones of the global elite every generation
        would collapse deme diversity — the standard island-GA duplicate
        check).  Returns the number actually installed.
        """
        genomes = np.atleast_2d(genomes)
        fitness = np.asarray(fitness, dtype=np.float64)
        if genomes.shape[0] != fitness.shape[0]:
            raise ValueError("migrant genomes/fitness length mismatch")
        k = min(genomes.shape[0], self.size)
        order = np.argsort(fitness, kind="stable")[:k]  # best migrants first
        worst = np.argsort(self.fitness, kind="stable")[::-1]  # worst residents first
        resident_keys = {row.tobytes() for row in self.genomes}
        installed = 0
        w_iter = iter(worst)
        for m in order:
            key = genomes[m].tobytes()
            if key in resident_keys:
                continue  # duplicate of a resident: skip
            w = next(w_iter, None)
            if w is None or fitness[m] >= self.fitness[w]:
                break  # no strictly-worse resident left to displace
            self.genomes[w] = genomes[m]
            self.fitness[w] = fitness[m]
            resident_keys.add(key)
            installed += 1
        return installed
