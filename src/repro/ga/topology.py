"""Migration topologies for the island GA.

The paper's island GA broadcasts migrants all-to-all — fine at 8 SP2
nodes, quadratic death at thousands of demes.  *The Distributed Genetic
Algorithm Revisited* (Belding; PAPERS.md) studies exactly the structured
alternatives this module provides: each deme reads migrants only from a
small, fixed set of *in-peers*, so migration traffic is O(degree) per
deme and the DSM reader sets stay constant-size as the deme count grows.

Topology kinds
--------------
``all``
    every other deme — the paper's default.  Peer and reader
    enumeration is ascending, byte-identical to the historical inline
    expressions, so the GOLDEN/CHAOS_GOLDEN digests are unaffected.
``ring``
    in-peers ``(d-1) mod n`` and ``(d+1) mod n``.
``torus``
    4-neighbour wraparound grid; the grid is ``rows x cols`` with
    ``rows`` the largest divisor of ``n`` not exceeding ``sqrt(n)``
    (prime ``n`` degenerates to a ring).
``hierarchical``
    demes are grouped in blocks of ``group`` consecutive ids;
    within-group migration is all-to-all and the group leaders (lowest
    id of each block) additionally form a ring — Belding's
    two-level island structure.
``random``
    each deme draws ``degree`` distinct in-peers with a seeded
    generator; the draw for deme ``d`` depends only on
    ``(seed, n_demes, d)``, never on evaluation order.

Every function is a pure function of the spec — no hidden state — so
shard workers, the serial kernel and the experiment drivers all derive
the identical wiring.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

TOPOLOGIES = ("all", "ring", "torus", "hierarchical", "random")


@dataclass(frozen=True)
class TopologySpec:
    """Which demes exchange migrants with which."""

    kind: str = "all"
    #: entropy for ``random`` wiring (ignored by the structured kinds)
    seed: int = 0
    #: in-degree of each deme under ``random``
    degree: int = 3
    #: block size of ``hierarchical`` groups
    group: int = 8

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.kind!r}; expected one of {TOPOLOGIES}"
            )
        if self.degree < 1:
            raise ValueError("degree must be >= 1")
        if self.group < 2:
            raise ValueError("group must be >= 2")


def grid_shape(n: int) -> tuple[int, int]:
    """``rows x cols`` of the torus grid: rows = largest divisor <= sqrt(n)."""
    rows = 1
    for r in range(int(np.sqrt(n)), 0, -1):
        if n % r == 0:
            rows = r
            break
    return rows, n // rows


def _random_peers(spec: TopologySpec, deme: int, n_demes: int) -> list[int]:
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=spec.seed, spawn_key=(n_demes, deme))
    )
    options = np.array([p for p in range(n_demes) if p != deme])
    k = min(spec.degree, options.size)
    return sorted(int(p) for p in rng.choice(options, size=k, replace=False))


def in_peers(spec: TopologySpec, deme: int, n_demes: int) -> list[int]:
    """The demes whose migrants ``deme`` incorporates, ascending."""
    if n_demes < 2:
        return []
    if not 0 <= deme < n_demes:
        raise ValueError(f"deme {deme} out of range for {n_demes} demes")
    if spec.kind == "all":
        return [p for p in range(n_demes) if p != deme]
    if spec.kind == "ring":
        return sorted({(deme - 1) % n_demes, (deme + 1) % n_demes} - {deme})
    if spec.kind == "torus":
        rows, cols = grid_shape(n_demes)
        if rows == 1:  # prime deme count: the grid collapses to a ring
            return in_peers(TopologySpec(kind="ring"), deme, n_demes)
        i, j = divmod(deme, cols)
        neigh = {
            ((i - 1) % rows) * cols + j,
            ((i + 1) % rows) * cols + j,
            i * cols + (j - 1) % cols,
            i * cols + (j + 1) % cols,
        }
        return sorted(neigh - {deme})
    if spec.kind == "hierarchical":
        gid, n_groups = deme // spec.group, -(-n_demes // spec.group)
        lo = gid * spec.group
        peers = set(range(lo, min(lo + spec.group, n_demes)))
        if deme == lo and n_groups > 1:  # group leader: ring of leaders
            peers.add(((gid - 1) % n_groups) * spec.group)
            peers.add(((gid + 1) % n_groups) * spec.group)
        return sorted(peers - {deme})
    return _random_peers(spec, deme, n_demes)


def readers_of(spec: TopologySpec, writer: int, n_demes: int) -> tuple[int, ...]:
    """Demes that read ``migrants.<writer>`` (the DSM reader set), ascending.

    The structured kinds are symmetric (``p`` reads ``d`` iff ``d`` reads
    ``p``), so readers == in-peers; ``random`` is directed and needs the
    inverse map.
    """
    if spec.kind == "random":
        return tuple(
            d
            for d in range(n_demes)
            if d != writer and writer in in_peers(spec, d, n_demes)
        )
    return tuple(in_peers(spec, writer, n_demes))


def comm_graph(spec: TopologySpec, n_demes: int, migrant_nbytes: int) -> nx.Graph:
    """The migration pattern as the shard partitioner's unit graph.

    Undirected — the bounded-lag planner cares about which demes
    communicate at all, not direction — with every deme present as a
    node (isolated demes still need an owner shard).
    """
    g = nx.Graph()
    g.add_nodes_from(range(n_demes))
    for d in range(n_demes):
        for p in in_peers(spec, d, n_demes):
            g.add_edge(d, p, weight=float(migrant_nbytes))
    return g
