"""Calibrated compute-cost model for the GA programs.

The simulation charges per-operation *baseline seconds* (reference node =
the paper's 77 MHz RS/6000-591).  Absolute constants cannot be recovered
from the paper (it reports no uniprocessor GA times), so they are
calibrated to place the experiment in the operating regime the paper
describes — see DESIGN.md and EXPERIMENTS.md:

* DeJong test functions are cheap (tens of microseconds of C at 77 MHz),
  so a deme's per-generation compute is a few **milliseconds** — the same
  order as a single PVM message's software + wire cost.  This is the
  "high communication-to-computation ratio" (§1, §6) that makes these
  benchmarks interesting on a 10 Mbps Ethernet: migration traffic
  dominates as the node count grows, reproducing Figure 2's
  "synchronous and asynchronous versions do not scale well above 8";
* the software fitness cache [19] absorbs most evaluations once the
  population starts converging, so generation cost is dominated by the
  per-individual operator/bookkeeping term.

Evaluation cost is charged per cache *miss* (see
:mod:`repro.ga.fitness_cache`); genetic-operator cost per individual per
generation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ga.functions import TestFunction


@dataclass(frozen=True)
class GaCostModel:
    """Baseline-seconds costs for GA operations on the reference node."""

    #: fixed cost of one fitness evaluation (decode + call overhead)
    eval_base: float = 0.08e-3
    #: additional evaluation cost per variable (loops over dimensions)
    eval_per_var: float = 0.008e-3
    #: extra factor for transcendental-heavy functions (sin/cos/sqrt)
    transcendental_factor: float = 2.0
    #: selection + crossover + mutation cost per individual per generation
    genop_per_individual: float = 0.08e-3
    #: migrant incorporation cost per migrant considered
    incorporate_per_migrant: float = 0.005e-3
    #: fitness-cache lookup cost per individual (hits still pay this)
    cache_lookup: float = 0.004e-3

    def eval_cost(self, fn: TestFunction) -> float:
        """Baseline seconds for ONE fitness evaluation of ``fn``."""
        base = self.eval_base + self.eval_per_var * fn.n_vars
        if fn.fid in (5, 6, 7, 8):  # foxholes/rastrigin/schwefel/griewank
            base *= self.transcendental_factor
        return base

    def generation_cost(
        self, fn: TestFunction, population: int, evaluations: int
    ) -> float:
        """Baseline seconds for one generation: ``evaluations`` cache
        misses plus genetic operators and cache lookups over the whole
        population."""
        return (
            evaluations * self.eval_cost(fn)
            + population * (self.genop_per_individual + self.cache_lookup)
        )
