"""Lightweight event tracing.

The tracer records ``(time, label)`` pairs for executed kernel events and
arbitrary application marks.  It exists for three consumers:

* determinism regression tests (two runs with the same seed must produce
  identical traces),
* the warp network-load metric, which needs send/arrival timestamps,
* ad-hoc debugging of protocol interleavings.

Recording is O(1) per event and can be bounded with ``max_records`` so a
long benchmark run does not accumulate unbounded memory.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: the instant and a human-readable label."""

    time: float
    label: str


class Tracer:
    """Append-only trace of kernel events and application marks."""

    def __init__(self, max_records: int | None = None) -> None:
        self.records: list[TraceRecord] = []
        self.max_records = max_records
        self.dropped = 0

    def record(self, time: float, event: Any) -> None:
        """Called by the kernel for every executed event."""
        fn = event.fn
        label = getattr(fn, "__qualname__", getattr(fn, "__name__", repr(fn)))
        self.mark(time, label)

    def mark(self, time: float, label: str) -> None:
        """Record an application-level mark."""
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, label))

    def labels(self) -> list[str]:
        """The distinct event labels recorded, in first-seen order."""
        return [r.label for r in self.records]

    def digest(self) -> str:
        """SHA-256 over the full trace, for determinism regression tests.

        Times are hashed via ``repr`` (shortest round-trip form), so the
        digest is exact — two traces digest equal iff every record matches
        bit-for-bit.  Dropped-record counts are folded in so a truncated
        trace cannot collide with its complete prefix.
        """
        h = hashlib.sha256()
        for r in self.records:
            h.update(repr(r.time).encode())
            h.update(b"|")
            h.update(r.label.encode())
            h.update(b"\n")
        h.update(f"dropped={self.dropped}".encode())
        return h.hexdigest()

    def __len__(self) -> int:
        return len(self.records)
