"""Lightweight event tracing.

The tracer records ``(time, label)`` pairs for executed kernel events and
arbitrary application marks.  It exists for three consumers:

* determinism regression tests (two runs with the same seed must produce
  identical traces),
* the warp network-load metric, which needs send/arrival timestamps,
* ad-hoc debugging of protocol interleavings.

Recording is O(1) per event and can be bounded with ``max_records`` so a
long benchmark run does not accumulate unbounded memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: the instant and a human-readable label."""

    time: float
    label: str


class Tracer:
    """Append-only trace of kernel events and application marks."""

    def __init__(self, max_records: int | None = None) -> None:
        self.records: list[TraceRecord] = []
        self.max_records = max_records
        self.dropped = 0

    def record(self, time: float, event: Any) -> None:
        """Called by the kernel for every executed event."""
        fn = event.fn
        label = getattr(fn, "__qualname__", getattr(fn, "__name__", repr(fn)))
        self.mark(time, label)

    def mark(self, time: float, label: str) -> None:
        """Record an application-level mark."""
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, label))

    def labels(self) -> list[str]:
        return [r.label for r in self.records]

    def __len__(self) -> int:
        return len(self.records)
