"""The discrete-event kernel: clock, scheduler and process stepping.

One :class:`Kernel` instance owns the simulated clock, the event queue, the
process table and the root RNG registry.  Everything else in the repository
(network, PVM, DSM, applications) is built as plain objects that schedule
callbacks and park/wake processes through the kernel.

Design notes
------------
* **Determinism.**  The event queue is totally ordered (see
  :mod:`repro.sim.events`); signal wakeups preserve FIFO arrival order; all
  randomness flows through :class:`repro.sim.rng.RngRegistry` streams.  Two
  runs with identical seeds produce bit-identical traces.
* **Failure model.**  An exception inside any process aborts the run with
  :class:`~repro.sim.errors.ProcessFailure`; the paper's experiments assume
  dedicated, reliable nodes, so partial failure is out of scope.
* **Budgets.**  ``run()`` accepts simulated-time and event-count limits so
  that livelocked configurations (a flooding asynchronous GA on a saturated
  network) terminate with :class:`~repro.sim.errors.SimulationLimitError`
  instead of hanging the test suite.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Iterable

from repro.sim.errors import DeadlockError, ProcessFailure, SimulationLimitError
from repro.sim.events import Event, EventQueue, PRIORITY_LATE, PRIORITY_NORMAL
from repro.sim.process import (
    Compute,
    Join,
    ProcessHandle,
    ProcessState,
    Signal,
    WaitAny,
    WaitSignal,
    Yield,
)
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


class Kernel:
    """Deterministic discrete-event simulation kernel.

    Parameters
    ----------
    seed:
        Root seed for the :class:`RngRegistry`; every named stream derives
        from it.
    tracer:
        Optional :class:`Tracer` collecting per-event records (used by the
        warp metric and by debugging tests).
    """

    def __init__(self, seed: int = 0, tracer: Tracer | None = None) -> None:
        self.now: float = 0.0
        self.queue = EventQueue()
        self.rng = RngRegistry(seed)
        self.tracer = tracer
        self._pids = itertools.count()
        self.processes: list[ProcessHandle] = []
        self._events_executed = 0
        self._failure: ProcessFailure | None = None

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay!r})")
        return self.queue.push(self.now + delay, fn, args, priority=priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule at t={time!r} < now={self.now!r}")
        return self.queue.push(time, fn, args, priority=priority)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def spawn(self, gen: Generator, name: str | None = None) -> ProcessHandle:
        """Register a generator as a simulated process; it starts when the
        simulation reaches the current instant's queue position."""
        handle = ProcessHandle(
            name=name or f"proc-{len(self.processes)}",
            gen=gen,
            pid=next(self._pids),
            _kernel=self,
        )
        self.processes.append(handle)
        self.schedule(0.0, self._step, handle, None)
        return handle

    def _wake_from_signal(self, handle: ProcessHandle, signal: Signal) -> None:
        """Internal: called by :meth:`Signal.fire` for each parked waiter."""
        if handle.state is not ProcessState.BLOCKED:
            return  # already woken by another signal in a WaitAny set
        # Detach from every signal in the (possibly WaitAny) parked set.
        for s in handle._parked_on:
            if s is not signal and handle in s._waiters:
                s._waiters.remove(handle)
        handle._parked_on = ()
        handle.state = ProcessState.READY
        self.schedule(0.0, self._step, handle, signal)

    def _finish(self, handle: ProcessHandle, result: Any) -> None:
        handle.state = ProcessState.DONE
        handle.result = result
        joiners, handle._joiners = handle._joiners, []
        for j in joiners:
            j.state = ProcessState.READY
            self.schedule(0.0, self._step, j, result)

    def _step(self, handle: ProcessHandle, send_value: Any) -> None:
        """Advance one process by one yield."""
        if handle.done:
            return
        handle.state = ProcessState.RUNNING
        try:
            request = handle.gen.send(send_value)
        except StopIteration as stop:
            self._finish(handle, stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - deliberately broad
            handle.state = ProcessState.FAILED
            handle.error = exc
            self._failure = ProcessFailure(handle.name, exc)
            return
        self._dispatch(handle, request)

    def _dispatch(self, handle: ProcessHandle, request: Any) -> None:
        """Act on a request yielded by a process."""
        if isinstance(request, Compute):
            handle.state = ProcessState.COMPUTING
            handle.busy_time += request.seconds
            self.schedule(request.seconds, self._step, handle, request.seconds)
        elif isinstance(request, WaitSignal):
            handle.state = ProcessState.BLOCKED
            handle._parked_on = (request.signal,)
            request.signal._waiters.append(handle)
        elif isinstance(request, WaitAny):
            handle.state = ProcessState.BLOCKED
            handle._parked_on = request.signals
            for s in request.signals:
                s._waiters.append(handle)
        elif isinstance(request, Yield):
            handle.state = ProcessState.READY
            self.schedule(0.0, self._step, handle, None, priority=PRIORITY_LATE)
        elif isinstance(request, Join):
            target = request.handle
            if target.done:
                self.schedule(0.0, self._step, handle, target.result)
            else:
                handle.state = ProcessState.BLOCKED
                handle._parked_on = ()
                target._joiners.append(handle)
        else:
            raise TypeError(
                f"process {handle.name!r} yielded unsupported request {request!r}"
            )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> None:
        """Run until the queue drains or a limit/stop condition triggers.

        Parameters
        ----------
        until:
            Simulated-time budget; exceeding it raises
            :class:`SimulationLimitError`.
        max_events:
            Event-count budget; same failure mode.
        stop_when:
            Optional predicate checked after every event; a True return
            stops the run cleanly (used for "run until converged").

        Raises
        ------
        DeadlockError
            If the queue drains while processes are still blocked.
        ProcessFailure
            If any process raised; the original exception is chained.
        """
        while True:
            if self._failure is not None:
                failure, self._failure = self._failure, None
                raise failure from failure.original
            if stop_when is not None and stop_when():
                return
            ev = self.queue.pop()
            if ev is None:
                self._check_deadlock()
                return
            if until is not None and ev.time > until:
                raise SimulationLimitError(
                    "simulated-time", until, self.now, self._events_executed
                )
            if max_events is not None and self._events_executed >= max_events:
                raise SimulationLimitError(
                    "event-count", max_events, self.now, self._events_executed
                )
            assert ev.time >= self.now, "event queue violated time order"
            self.now = ev.time
            self._events_executed += 1
            if self.tracer is not None:
                self.tracer.record(self.now, ev)
            ev.fn(*ev.args)

    def run_until_done(self, handles: Iterable[ProcessHandle], **kw: Any) -> None:
        """Run until every handle in ``handles`` has terminated."""
        targets = list(handles)
        self.run(stop_when=lambda: all(h.done for h in targets), **kw)
        for h in targets:
            if not h.done:  # queue drained before completion
                self._check_deadlock()
                raise DeadlockError([h.describe_block() for h in targets if not h.done])

    def _check_deadlock(self) -> None:
        parked = [
            p.describe_block()
            for p in self.processes
            if p.state is ProcessState.BLOCKED
        ]
        if parked:
            raise DeadlockError(parked)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def events_executed(self) -> int:
        return self._events_executed

    def stats(self) -> dict:
        """Summary counters, handy for benchmark output."""
        return {
            "now": self.now,
            "events_executed": self._events_executed,
            "processes": len(self.processes),
            "pending_events": len(self.queue),
        }
