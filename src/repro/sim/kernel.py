"""The discrete-event kernel: clock, scheduler and process stepping.

One :class:`Kernel` instance owns the simulated clock, the event queue, the
process table and the root RNG registry.  Everything else in the repository
(network, PVM, DSM, applications) is built as plain objects that schedule
callbacks and park/wake processes through the kernel.

Design notes
------------
* **Determinism.**  The event queue is totally ordered (see
  :mod:`repro.sim.events`); signal wakeups preserve FIFO arrival order; all
  randomness flows through :class:`repro.sim.rng.RngRegistry` streams.  Two
  runs with identical seeds produce bit-identical traces.
* **Failure model.**  An exception inside any process aborts the run with
  :class:`~repro.sim.errors.ProcessFailure`; the paper's experiments assume
  dedicated, reliable nodes, so partial failure is out of scope.
* **Budgets.**  ``run()`` accepts simulated-time and event-count limits so
  that livelocked configurations (a flooding asynchronous GA on a saturated
  network) terminate with :class:`~repro.sim.errors.SimulationLimitError`
  instead of hanging the test suite.
* **Fast path.**  ``run()`` dispatches to a tight loop when no tracer,
  budget or stop predicate is installed, same-instant resumptions ride the
  event queue's FIFO fast lane, and yielded requests are routed through a
  type-tag dispatch table instead of an ``isinstance`` chain.  None of this
  changes the pop order: traces stay bit-identical to the slow path (the
  determinism regression suite in ``tests/sim/test_determinism.py`` pins
  this with golden digests).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Iterable

from repro.sim.errors import DeadlockError, ProcessFailure, SimulationLimitError
from repro.sim.events import Event, EventQueue, PRIORITY_LATE, PRIORITY_NORMAL
from repro.sim.process import (
    Compute,
    Join,
    ProcessHandle,
    ProcessState,
    Signal,
    WaitAny,
    WaitSignal,
    Yield,
)
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


class CompletionCounter:
    """O(1) "are they all done?" check over a fixed set of process handles.

    Counts terminations via per-handle watcher callbacks instead of
    rescanning every handle after every event, turning the ubiquitous
    ``stop_when=lambda: all(h.done for h in handles)`` from O(processes)
    per event into a single integer comparison.
    """

    __slots__ = ("remaining",)

    def __init__(self, handles: Iterable[ProcessHandle]) -> None:
        self.remaining = 0
        for h in handles:
            if not h.done:
                self.remaining += 1
                h._watchers.append(self._one_done)

    def _one_done(self) -> None:
        self.remaining -= 1

    def all_done(self) -> bool:
        """True when every registered process has finished."""
        return self.remaining == 0


class Kernel:
    """Deterministic discrete-event simulation kernel.

    Parameters
    ----------
    seed:
        Root seed for the :class:`RngRegistry`; every named stream derives
        from it.
    tracer:
        Optional :class:`Tracer` collecting per-event records (used by the
        warp metric and by debugging tests).
    """

    def __init__(self, seed: int = 0, tracer: Tracer | None = None) -> None:
        self.now: float = 0.0
        self.queue = EventQueue()
        self.rng = RngRegistry(seed)
        self.tracer = tracer
        #: optional repro.obs.bus.TraceBus; every subsystem's trace hook
        #: is guarded by ``kernel.obs is not None`` so the default costs
        #: one attribute check and changes nothing about the run
        self.obs = None
        #: optional repro.obs.prof.HostProfiler; same None-guard contract
        #: as ``obs`` — attaching one charges host wall-clock per event
        #: category in the general loop and must never change the run
        self.prof = None
        self._pids = itertools.count()
        self.processes: list[ProcessHandle] = []
        self._events_executed = 0
        self._failure: ProcessFailure | None = None

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay == 0.0 and priority == PRIORITY_NORMAL:
            # Same-instant fast lane: FIFO append, no heap sift.
            return self.queue.push_immediate(self.now, fn, args)
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay!r})")
        return self.queue.push(self.now + delay, fn, args, priority=priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule at t={time!r} < now={self.now!r}")
        return self.queue.push(time, fn, args, priority=priority)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def spawn(self, gen: Generator, name: str | None = None) -> ProcessHandle:
        """Register a generator as a simulated process; it starts when the
        simulation reaches the current instant's queue position."""
        handle = ProcessHandle(
            name=name or f"proc-{len(self.processes)}",
            gen=gen,
            pid=next(self._pids),
            _kernel=self,
        )
        self.processes.append(handle)
        self.queue.push_immediate(self.now, self._step, (handle, None))
        if self.obs is not None:
            self.obs.emit("proc.spawn", pid=handle.pid, name=handle.name)
        return handle

    def _wake_from_signal(self, handle: ProcessHandle, signal: Signal) -> None:
        """Internal: called by :meth:`Signal.fire` for each parked waiter."""
        if handle.state is not ProcessState.BLOCKED:
            return  # already woken by another signal in a WaitAny set
        # Detach from every signal in the (possibly WaitAny) parked set.
        for s in handle._parked_on:
            if s is not signal and handle in s._waiters:
                s._waiters.remove(handle)
        handle._parked_on = ()
        handle.state = ProcessState.READY
        self.queue.push_immediate(self.now, self._step, (handle, signal))
        if self.obs is not None:
            self.obs.emit(
                "proc.wake", pid=handle.pid, name=handle.name, signal=signal.name
            )

    def _notify_watchers(self, handle: ProcessHandle) -> None:
        if handle._watchers:
            watchers, handle._watchers = handle._watchers, []
            for w in watchers:
                w()

    def _finish(self, handle: ProcessHandle, result: Any) -> None:
        handle.state = ProcessState.DONE
        handle.result = result
        joiners, handle._joiners = handle._joiners, []
        for j in joiners:
            j.state = ProcessState.READY
            self.queue.push_immediate(self.now, self._step, (j, result))
        self._notify_watchers(handle)
        if self.obs is not None:
            self.obs.emit("proc.done", pid=handle.pid, name=handle.name)

    def _step(self, handle: ProcessHandle, send_value: Any) -> None:
        """Advance one process by one yield."""
        if handle.state in _TERMINAL_STATES:
            return
        handle.state = ProcessState.RUNNING
        try:
            request = handle.gen.send(send_value)
        except StopIteration as stop:
            self._finish(handle, stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - deliberately broad
            handle.state = ProcessState.FAILED
            handle.error = exc
            self._failure = ProcessFailure(handle.name, exc)
            self._notify_watchers(handle)
            if self.obs is not None:
                self.obs.emit(
                    "proc.fail", pid=handle.pid, name=handle.name,
                    error=type(exc).__name__,
                )
            return
        handler = _DISPATCH.get(request.__class__)
        if handler is None:
            handler = _dispatch_slow(handle, request)
        handler(self, handle, request)

    # -- request handlers (type-tag dispatch, see _DISPATCH below) ------
    def _do_compute(self, handle: ProcessHandle, request: Compute) -> None:
        seconds = request.seconds
        handle.state = ProcessState.COMPUTING
        handle.busy_time += seconds
        if seconds == 0.0:
            self.queue.push_immediate(self.now, self._step, (handle, seconds))
        else:
            self.queue.push(self.now + seconds, self._step, (handle, seconds))

    def _do_wait_signal(self, handle: ProcessHandle, request: WaitSignal) -> None:
        handle.state = ProcessState.BLOCKED
        handle._parked_on = (request.signal,)
        request.signal._waiters.append(handle)
        if self.obs is not None:
            self.obs.emit(
                "proc.block", pid=handle.pid, name=handle.name,
                signal=request.signal.name,
            )

    def _do_wait_any(self, handle: ProcessHandle, request: WaitAny) -> None:
        handle.state = ProcessState.BLOCKED
        handle._parked_on = request.signals
        for s in request.signals:
            s._waiters.append(handle)
        if self.obs is not None:
            self.obs.emit(
                "proc.block", pid=handle.pid, name=handle.name,
                signal="|".join(s.name for s in request.signals),
            )

    def _do_yield(self, handle: ProcessHandle, request: Yield) -> None:
        handle.state = ProcessState.READY
        self.queue.push(self.now, self._step, (handle, None), priority=PRIORITY_LATE)

    def _do_join(self, handle: ProcessHandle, request: Join) -> None:
        target = request.handle
        if target.done:
            self.queue.push_immediate(self.now, self._step, (handle, target.result))
        else:
            handle.state = ProcessState.BLOCKED
            handle._parked_on = ()
            target._joiners.append(handle)

    def _dispatch(self, handle: ProcessHandle, request: Any) -> None:
        """Act on a request yielded by a process."""
        handler = _DISPATCH.get(request.__class__)
        if handler is None:
            handler = _dispatch_slow(handle, request)
        handler(self, handle, request)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> None:
        """Run until the queue drains or a limit/stop condition triggers.

        Parameters
        ----------
        until:
            Simulated-time budget; exceeding it raises
            :class:`SimulationLimitError`.
        max_events:
            Event-count budget; same failure mode.
        stop_when:
            Optional predicate checked after every event; a True return
            stops the run cleanly (used for "run until converged").

        Raises
        ------
        DeadlockError
            If the queue drains while processes are still blocked.
        ProcessFailure
            If any process raised; the original exception is chained.
        RuntimeError
            If the queue yields an event earlier than the current clock
            (a corrupted queue — e.g. events pushed into the past through
            the raw :class:`EventQueue` API).
        """
        if (
            until is None
            and max_events is None
            and stop_when is None
            and self.tracer is None
            and self.prof is None
        ):
            self._run_fast()
            return
        prof = self.prof
        if prof is not None:
            # Host-time attribution rides the general loop (already pinned
            # bit-identical to the fast path): everything between events is
            # kernel.loop, each callback is charged to its subsystem.
            prof.push("kernel.loop")
        categories: dict[str, str] = {}
        try:
            while True:
                if self._failure is not None:
                    failure, self._failure = self._failure, None
                    raise failure from failure.original
                if stop_when is not None and stop_when():
                    return
                ev = self.queue.pop()
                if ev is None:
                    self._check_deadlock()
                    return
                if until is not None and ev.time > until:
                    raise SimulationLimitError(
                        "simulated-time", until, self.now, self._events_executed
                    )
                if max_events is not None and self._events_executed >= max_events:
                    raise SimulationLimitError(
                        "event-count", max_events, self.now, self._events_executed
                    )
                if ev.time < self.now:
                    raise RuntimeError(
                        f"event queue violated time order: popped t={ev.time!r} "
                        f"behind the clock at t={self.now!r}"
                    )
                self.now = ev.time
                self._events_executed += 1
                if self.tracer is not None:
                    self.tracer.record(self.now, ev)
                if prof is None:
                    ev.fn(*ev.args)
                else:
                    fn = ev.fn
                    module = getattr(fn, "__module__", "") or ""
                    cat = categories.get(module)
                    if cat is None:
                        from repro.obs.prof import category_of_module

                        cat = categories[module] = category_of_module(module)
                    prof.push(cat)
                    try:
                        fn(*ev.args)
                    finally:
                        prof.pop()
        finally:
            if prof is not None:
                prof.pop()

    def _run_fast(self) -> None:
        """Branch-lean main loop: no tracer, no budgets, no stop predicate.

        Executes the exact same events in the exact same order as the
        general loop — it only skips the per-event checks that are
        statically known to be disabled for this call.
        """
        queue_pop = self.queue.pop
        while True:
            if self._failure is not None:
                failure, self._failure = self._failure, None
                raise failure from failure.original
            ev = queue_pop()
            if ev is None:
                self._check_deadlock()
                return
            time = ev.time
            if time < self.now:
                raise RuntimeError(
                    f"event queue violated time order: popped t={time!r} "
                    f"behind the clock at t={self.now!r}"
                )
            self.now = time
            self._events_executed += 1
            ev.fn(*ev.args)

    def run_until_done(self, handles: Iterable[ProcessHandle], **kw: Any) -> None:
        """Run until every handle in ``handles`` has terminated.

        The stop check is O(1) per event: a :class:`CompletionCounter`
        decrements as processes finish, rather than rescanning every
        handle after every event.
        """
        targets = list(handles)
        counter = CompletionCounter(targets)
        if counter.remaining:
            self.run(stop_when=counter.all_done, **kw)
        for h in targets:
            if not h.done:  # queue drained before completion
                self._check_deadlock()
                raise DeadlockError([h.describe_block() for h in targets if not h.done])

    def _check_deadlock(self) -> None:
        parked = [
            p.describe_block()
            for p in self.processes
            if p.state is ProcessState.BLOCKED
        ]
        if parked:
            raise DeadlockError(parked)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def events_executed(self) -> int:
        """Number of events executed so far."""
        return self._events_executed

    def stats(self) -> dict:
        """Summary counters, handy for benchmark output."""
        return {
            "now": self.now,
            "events_executed": self._events_executed,
            "processes": len(self.processes),
            "pending_events": len(self.queue),
        }


_TERMINAL_STATES = frozenset((ProcessState.DONE, ProcessState.FAILED))

#: Exact-type dispatch for yielded requests.  ``request.__class__`` lookup
#: replaces the old isinstance chain; subclasses fall back to
#: :func:`_dispatch_slow`, which walks the MRO once and memoizes.
_DISPATCH: dict[type, Callable[[Kernel, ProcessHandle, Any], None]] = {
    Compute: Kernel._do_compute,
    WaitSignal: Kernel._do_wait_signal,
    WaitAny: Kernel._do_wait_any,
    Yield: Kernel._do_yield,
    Join: Kernel._do_join,
}


def _dispatch_slow(
    handle: ProcessHandle, request: Any
) -> Callable[[Kernel, ProcessHandle, Any], None]:
    """Resolve a handler for a request subclass; memoize into _DISPATCH."""
    for base in type(request).__mro__[1:]:
        handler = _DISPATCH.get(base)
        if handler is not None:
            _DISPATCH[type(request)] = handler
            return handler
    raise TypeError(
        f"process {handle.name!r} yielded unsupported request {request!r}"
    )
