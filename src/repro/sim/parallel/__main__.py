"""CLI: ``python -m repro.sim.parallel --check`` — the parallel-smoke gate.

Runs the bit-identity battery CI gates merges on:

1. the GOLDEN ``ga_result`` recipe at shards ∈ {1, 2, 4} — every digest
   must equal ``GOLDEN["ga_result"]``;
2. the CHAOS ``ga-lossless-chaos`` recipe (duplicate/delay/reorder
   faults, seed 7) at shards=2 — digest must equal the pinned
   ``CHAOS_GOLDEN`` value, including the injected-fault log;
3. a Figure-4-shaped scenario (4 demes, 1 Mbps background load,
   tracing on) serial vs shards=2 — results bit-identical, per-shard
   traces byte-identical, and the merged trace (with ``par.window``
   span events) valid under ``repro.obs validate --strict``.

Writes a JSON report (``--out``), leaves the merged/per-shard trace
artifacts under ``--trace-dir`` for upload, exits 1 on any mismatch.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import replace


def _golden_checks(shard_counts: tuple[int, ...]) -> list[dict]:
    from repro.bench.determinism import GOLDEN
    from repro.core.coherence import CoherenceMode
    from repro.experiments.config import Scale
    from repro.experiments.speedup import machine_for
    from repro.ga.functions import get_function
    from repro.ga.island import IslandGaConfig, run_island_ga
    from repro.ga.sharded import ga_digest

    cfg = IslandGaConfig(
        fn=get_function(1),
        n_demes=2,
        mode=CoherenceMode.NON_STRICT,
        age=10,
        n_generations=40,
        seed=7,
        machine=machine_for(Scale.smoke(), 2, 7),
    )
    rows = []
    for shards in shard_counts:
        result = run_island_ga(cfg, shards=shards)
        digest = ga_digest(result)
        info = result.metrics.get("parallel", {})
        rows.append(
            {
                "check": f"golden_ga@{shards}shard",
                "digest": digest,
                "golden": GOLDEN["ga_result"],
                "sharded": bool(info.get("sharded")),
                "ok": digest == GOLDEN["ga_result"],
            }
        )
    return rows


def _chaos_check(shards: int) -> dict:
    from repro.core.coherence import CoherenceMode
    from repro.experiments.config import Scale
    from repro.experiments.speedup import machine_for
    from repro.faults.chaos import CHAOS_GOLDEN, _mk
    from repro.ga.functions import get_function
    from repro.ga.island import IslandGaConfig, run_island_ga
    from repro.ga.sharded import ga_chaos_digest

    plan = _mk(7, duplicate=0.05, delay=0.05, reorder=0.05)
    cfg = IslandGaConfig(
        fn=get_function(1),
        n_demes=2,
        mode=CoherenceMode.NON_STRICT,
        age=10,
        n_generations=40,
        seed=7,
        machine=machine_for(Scale.smoke(), 2, 7, faults=plan),
    )
    result = run_island_ga(cfg, shards=shards)
    info = result.metrics.get("parallel", {})
    digest = ga_chaos_digest(result, info.get("fault_log", []))
    golden = CHAOS_GOLDEN["ga-lossless-chaos"]
    return {
        "check": f"chaos_ga@{shards}shard",
        "digest": digest,
        "golden": golden,
        "sharded": bool(info.get("sharded")),
        "ok": digest == golden,
    }


def _figure4_traced_check(shards: int, trace_dir: str) -> dict:
    from repro.core.coherence import CoherenceMode
    from repro.experiments.config import Scale
    from repro.experiments.speedup import machine_for
    from repro.ga.functions import get_function
    from repro.ga.island import IslandGaConfig, run_island_ga
    from repro.ga.sharded import ga_digest, run_island_ga_sharded
    from repro.obs.schema import validate_trace

    mcfg = replace(machine_for(Scale.smoke(), 4, 11, load_bps=1e6), trace=True)
    cfg = IslandGaConfig(
        fn=get_function(1),
        n_demes=4,
        mode=CoherenceMode.NON_STRICT,
        age=10,
        n_generations=30,
        seed=11,
        machine=mcfg,
    )
    os.makedirs(trace_dir, exist_ok=True)
    trace_path = os.path.join(trace_dir, "figure4_sharded.jsonl")
    serial = run_island_ga(cfg)
    sharded = run_island_ga_sharded(cfg, shards=shards, trace_path=trace_path)
    info = sharded.metrics.get("parallel", {})
    identical = ga_digest(sharded) == ga_digest(serial)
    merged = info.get("merged_trace")
    trace_ok = False
    trace_report: dict = {}
    if merged:
        trace_report = validate_trace(merged, strict=True)
        trace_ok = bool(trace_report.get("ok"))
    return {
        "check": f"figure4_traced@{shards}shard",
        "digest": ga_digest(sharded),
        "golden": ga_digest(serial),
        "sharded": bool(info.get("sharded")),
        "merged_trace": merged,
        "trace_events": trace_report.get("events"),
        "trace_errors": trace_report.get("errors", [])[:5],
        "ok": identical and bool(info.get("sharded")) and trace_ok,
    }


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.sim.parallel`` entry point; exits 1 on mismatch."""
    parser = argparse.ArgumentParser(prog="python -m repro.sim.parallel")
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the parallel-kernel bit-identity battery (CI gate)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="shard count for the chaos and traced checks (default: 2)",
    )
    parser.add_argument("--out", default=None, help="write the JSON report here")
    parser.add_argument(
        "--trace-dir",
        default="parallel-traces",
        help="directory for merged/per-shard trace artifacts (default: ./parallel-traces)",
    )
    args = parser.parse_args(argv)
    if not args.check:
        parser.error("nothing to do: pass --check")

    checks: list[dict] = []
    print("[parallel] GOLDEN recipe at shards 1/2/4 ...", flush=True)
    checks += _golden_checks((1, 2, 4))
    print(f"[parallel] CHAOS recipe at shards={args.shards} ...", flush=True)
    checks.append(_chaos_check(args.shards))
    print(f"[parallel] traced figure4 scenario at shards={args.shards} ...", flush=True)
    checks.append(_figure4_traced_check(args.shards, args.trace_dir))

    report = {"schema": "repro-parallel-check/1", "checks": checks}
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"[parallel] wrote {args.out}")

    failed = [c for c in checks if not c["ok"]]
    for c in checks:
        status = "ok" if c["ok"] else "FAIL"
        print(f"[parallel] {c['check']}: {status} (sharded={c['sharded']})")
    if failed:
        for c in failed:
            print(
                f"[parallel] MISMATCH {c['check']}: {c['digest']} != {c['golden']}",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
