"""Bounded-lag parallel event kernel: intra-scenario PDES across processes.

One big simulated scenario no longer has to run on one core: the
coordinator (:func:`run_sharded`) partitions the scenario's units into
shards with the multilevel partitioner, runs one worker process per
shard, and advances them under a bounded-lag window protocol with a
GVT-style distributed floor (DESIGN.md §13; the conservative scheme of
Lubachevsky, with Synchronous Relaxation as the documented stretch
mode).

The execution model is *replicated event stream, partitioned compute*:
every shard replays the complete (cheap) kernel/network/DSM event
stream — the shared-Ethernet arbitration makes any event-partitioned
alternative zero-lookahead, see DESIGN.md §13 — while the expensive
application work (GA evolution, fitness evaluation) runs only on the
unit's owning shard and is replayed elsewhere from exchanged records.
That construction makes sharded runs **bit-identical to serial** (the
GOLDEN and CHAOS_GOLDEN digests are pinned at shards ∈ {1, 2, 4}), and
the coordinator enforces it at runtime by requiring every shard to
produce the same result digest and the same JSONL trace.

Entry points: ``run_island_ga(cfg, shards=N)`` for the island GA,
``python -m repro.sim.parallel --check`` for the CI digest gate.
"""

from repro.sim.parallel.channel import RecordFeed
from repro.sim.parallel.coordinator import ShardedRun, default_shards, run_sharded
from repro.sim.parallel.plan import ShardPlan, ga_comm_graph, lookahead_of, plan_shards
from repro.sim.parallel.records import GenRecord, ShardOutcome
from repro.sim.parallel.trace import merge_shard_traces
from repro.sim.parallel.worker import ShardContext

__all__ = [
    "GenRecord",
    "RecordFeed",
    "ShardContext",
    "ShardOutcome",
    "ShardPlan",
    "ShardedRun",
    "default_shards",
    "ga_comm_graph",
    "lookahead_of",
    "merge_shard_traces",
    "plan_shards",
    "run_sharded",
]
