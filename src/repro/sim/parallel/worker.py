"""Shard worker entry point (runs in a child OS process).

A worker owns one shard: it rebuilds the complete scenario (machine,
kernel, DSM, application processes — the *entire* simulated cluster,
not a slice of it), binds a :class:`~repro.sim.parallel.channel.
RecordFeed` to its kernel clock, and runs the scenario's shard
executor.  Owned units compute authoritatively and publish records;
ghost units replay records from their owning shards.  Because every
worker replays the identical totally-ordered event stream, the shard's
result is bit-identical to a serial run — the coordinator cross-checks
the shards' digests to enforce exactly that.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass

from repro.sim.parallel.channel import DONE, ERR, RecordFeed
from repro.sim.parallel.plan import ShardPlan


@dataclass
class ShardContext:
    """Everything a scenario's shard executor needs from the harness."""

    shard_id: int
    plan: ShardPlan
    feed: RecordFeed
    #: per-shard JSONL trace destination (None = tracing off)
    trace_path: str | None = None
    #: host-time profiling requested for this worker (repro.obs.prof)
    profile: bool = False


def shard_worker_main(conn, scenario, shard_id: int, plan: ShardPlan,
                      trace_path: str | None = None,
                      profile: bool = False) -> None:
    """Child-process body: run one shard replica and report the outcome.

    Any exception — including determinism tripwires like a diverged
    record stream — is shipped back as a formatted traceback; the
    coordinator re-raises it in the parent.

    With ``profile`` on, a :class:`~repro.obs.prof.HostProfiler` is
    activated as this process's ambient profiler for the whole replica
    run — the scenario executor attaches it to its kernel, ambient
    sections (``par.ipc``, ``numpy.*``, ``obs.io``) charge into it —
    and its snapshot ships back on ``outcome.prof``.
    """
    prof = None
    if profile:
        from repro.obs.prof import HostProfiler, activate

        prof = HostProfiler()
        prof.meta["shard"] = shard_id
        activate(prof)
    try:
        feed = RecordFeed(conn, shard_id, plan)
        ctx = ShardContext(
            shard_id=shard_id, plan=plan, feed=feed, trace_path=trace_path,
            profile=profile,
        )
        outcome = scenario.run_shard(ctx)
        outcome.feed_stats = feed.stats()
        outcome.window_spans = feed.spans()
        if prof is not None:
            from repro.obs.prof import deactivate

            deactivate()
            outcome.prof = prof.snapshot()
        conn.send((DONE, shard_id, outcome))
        # Linger until the coordinator closes the pipe: it may still be
        # routing records to us for streams we have already finished, and
        # exiting early would turn those sends into broken pipes.
        try:
            while True:
                conn.recv()
        except EOFError:
            pass
    except BaseException:
        try:
            conn.send((ERR, shard_id, traceback.format_exc()))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()
