"""Record types exchanged between shard workers and the coordinator.

The bounded-lag parallel kernel (DESIGN.md §13) partitions the heavy
*application* computation across worker processes while every worker
replays the full (cheap) simulated event stream.  The unit of exchange
is the :class:`GenRecord`: whatever an owned unit computes that its
ghost replicas on other shards need to replay the identical stream —
a compute cost, report values, and the migrant payload the unit writes
to the DSM.

Records are plain picklable dataclasses: the transport is a
``multiprocessing`` pipe, whose :meth:`Connection.send` pickles for us.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class GenRecord:
    """One owned-unit production step, replayed verbatim by ghosts.

    ``kind`` names the step within the unit's per-generation protocol
    (for the island GA: ``"start"``, ``"evolve"``, ``"inc"``); ``gen``
    is the application generation/iteration the step belongs to.  Ghosts
    consume a unit's records strictly in publication order, so a
    kind/gen mismatch on consume is a determinism violation and raises.
    """

    kind: str
    unit: int
    gen: int
    #: baseline seconds of simulated compute the step charges (before
    #: the consuming node's jitter/speed model, which is replayed locally)
    cost: float = 0.0
    best: float = math.inf
    mean: float = math.inf
    #: opaque application payload (e.g. the GA's ``(genomes, fitness)``
    #: migrant arrays) — whatever the unit writes to shared state
    payload: Any = None


@dataclass
class ShardOutcome:
    """What one shard worker reports back when its replica run finishes.

    Every shard executes the identical event stream, so every field
    except ``trace_path``/``feed_stats``/``window_spans``/``prof`` must
    agree across shards — the coordinator enforces digest equality as a
    built-in determinism check before returning shard 0's ``result``.
    """

    shard_id: int
    #: canonical digest over the scenario's observable result (and the
    #: injected-fault log, when a fault plan is active)
    digest: str
    #: final simulated clock of the shard's kernel
    clock: float = 0.0
    #: kernel events executed (identical across shards by construction)
    events: int = 0
    #: the scenario result object (picklable); shard 0's is returned
    result: Any = None
    #: injected-fault log digest fields (empty without a fault plan)
    fault_log: list = field(default_factory=list)
    #: per-shard JSONL trace file, when the scenario traced the run
    trace_path: str | None = None
    #: RecordFeed counters (records in/out, wall seconds blocked)
    feed_stats: dict = field(default_factory=dict)
    #: per-floor-epoch synchronization waits for obs attribution:
    #: ``[(epoch, floor, wall_wait_s, waits), ...]``
    window_spans: list = field(default_factory=list)
    #: :meth:`repro.obs.prof.HostProfiler.snapshot` of this worker
    #: process (None unless the run was profiled)
    prof: dict | None = None
