"""Shard planning: unit→shard assignment and lookahead extraction.

The coordinator partitions the scenario's *unit-communication graph*
(for the island GA: demes, edges weighted by migrant traffic) with the
repo's METIS-style multilevel partitioner, so heavily-communicating
units land in the same shard and the record traffic crossing shard
boundaries is minimised.

The *lookahead* is the classical conservative-PDES bound — the minimum
simulated latency of any cross-shard interaction, extracted from the
interconnect model: no shard can affect another sooner than one
minimum-size frame can cross the network.  The bounded-lag scheme
(Lubachevsky) uses it as the window quantum; the coordinator's floor
broadcasts are quantised to window boundaries (DESIGN.md §13).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.cluster.machine import MachineConfig
from repro.partition.multilevel import partition


@dataclass(frozen=True)
class ShardPlan:
    """Static plan for one sharded run."""

    n_shards: int
    #: unit index -> owning shard id
    owner: tuple[int, ...]
    #: minimum cross-shard simulated latency (seconds) — the window quantum
    lookahead: float
    #: bounded-lag horizon (simulated seconds): a shard wall-pauses once
    #: its clock exceeds ``floor + lag_bound`` until the floor advances
    lag_bound: float

    def owned_by(self, shard_id: int) -> frozenset:
        """The unit indices shard ``shard_id`` computes authoritatively."""
        return frozenset(u for u, s in enumerate(self.owner) if s == shard_id)

    def window_of(self, t: float) -> int:
        """Bounded-lag window index containing simulated time ``t``."""
        return int(t / self.lookahead) if self.lookahead > 0 else 0


def lookahead_of(mcfg: MachineConfig) -> float:
    """Minimum cross-node frame latency of the configured interconnect.

    Ethernet: inter-frame gap + wire time of a minimum frame + one-way
    propagation.  Switch: minimum egress + crossbar + ingress traversal.
    Switched fabrics: two host-link traversals around one edge switch —
    a genuine per-link latency floor, which is what finally gives the
    bounded-lag kernel frame-level lookahead (shared-bus arbitration
    has none past the minimum frame; DESIGN.md §13/§14).  This is the
    natural conservative lookahead — no simulated node can influence
    another in less simulated time than this.
    """
    if mcfg.interconnect == "ethernet":
        c = mcfg.ethernet
        return c.ifg + c.tx_time(c.min_payload) + c.prop_delay
    if mcfg.interconnect == "switched":
        return mcfg.switched.min_latency()
    c = mcfg.switch
    return 2.0 * c.tx_time(0) + c.switch_latency


def plan_shards(
    graph: nx.Graph,
    n_shards: int,
    lookahead: float,
    seed: int = 0,
    lag_bound: float | None = None,
) -> ShardPlan:
    """Partition ``graph``'s units into ``n_shards`` shards.

    ``n_shards`` is clamped to the unit count.  Part labels from the
    recursive bisection are normalised to 0..k-1 in order of first
    appearance (unit order), so the plan — like everything else in the
    simulator — is a pure function of its inputs.
    """
    units = sorted(graph.nodes)
    if units != list(range(len(units))):
        raise ValueError("unit-communication graph must be labelled 0..n-1")
    k = max(1, min(n_shards, len(units)))
    if k == 1:
        raw = {u: 0 for u in units}
    else:
        raw = partition(graph, k, seed=seed)
    relabel: dict[int, int] = {}
    owner = []
    for u in units:
        part = raw[u]
        if part not in relabel:
            relabel[part] = len(relabel)
        owner.append(relabel[part])
    if lag_bound is None:
        # generous by default: execution safety comes from demand-driven
        # record blocking; the lag bound only caps divergence/buffering
        lag_bound = max(0.05, 256.0 * lookahead)
    return ShardPlan(
        n_shards=len(relabel),
        owner=tuple(owner),
        lookahead=lookahead,
        lag_bound=lag_bound,
    )


def ga_comm_graph(n_demes: int, migrant_nbytes: int) -> nx.Graph:
    """The island GA's unit-communication graph.

    Migrant exchange is all-to-all (every deme broadcasts to every
    other), so the graph is complete with uniform edge weights equal to
    the per-generation migrant payload — any balanced partition is
    cut-optimal, and the multilevel partitioner degenerates to balanced
    assignment, which is exactly right for this workload.
    """
    g = nx.complete_graph(n_demes)
    for u, v in g.edges:
        g[u][v]["weight"] = float(migrant_nbytes)
    return g
