"""The bounded-lag coordinator: shard spawn, record routing, floor.

Scheme (DESIGN.md §13, after Lubachevsky's bounded-lag conservative
PDES): the scenario's units are partitioned into shards with the
multilevel partitioner; one worker process per shard replays the *full*
simulated event stream but computes only its owned units, exchanging
:class:`~repro.sim.parallel.records.GenRecord` payloads through this
coordinator.  The coordinator:

* routes every published record to every other shard (each shard hosts
  ghost replicas of all non-owned units);
* folds clock beacons into the distributed floor — the GVT-style
  minimum over shard clocks — and broadcasts it when it crosses a
  lookahead-sized window boundary;
* collects per-shard outcomes, **enforces cross-shard digest equality**
  (every shard ran the identical event stream, so any divergence is a
  determinism bug and raises), and returns shard 0's result;
* merges per-shard JSONL traces deterministically, folding the workers'
  window-synchronization spans in as ``par.window`` events.

A scenario object must provide::

    units() -> int                    # how many partitionable units
    comm_graph() -> nx.Graph          # unit-communication graph (0..n-1)
    machine_config() -> MachineConfig # for lookahead extraction
    shardable() -> (bool, reason)     # e.g. noisy RNG coupling -> False
    run_serial() -> result            # the graceful fallback
    run_shard(ctx) -> ShardOutcome    # the worker-side executor

Fallback is always graceful: ``shards <= 1``, an unshardable scenario,
or a platform where worker processes cannot start all degrade to
``run_serial()`` with the reason recorded on the returned
:class:`ShardedRun`.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection

from repro.sim.parallel.channel import BYE, CLK, DONE, ERR, FLOOR, REC
from repro.sim.parallel.plan import ShardPlan, lookahead_of, plan_shards
from repro.sim.parallel.records import ShardOutcome

#: seconds of coordinator silence after which worker liveness is checked
_WATCHDOG_S = 30.0


@dataclass
class ShardedRun:
    """Outcome of :func:`run_sharded` (sharded or fallen back to serial)."""

    result: object
    n_shards: int
    #: why the run fell back to serial; None = it really ran sharded
    fallback: str | None = None
    plan: ShardPlan | None = None
    outcomes: list = field(default_factory=list)
    digests: list = field(default_factory=list)
    floor_broadcasts: int = 0
    records_routed: int = 0
    merged_trace: str | None = None

    @property
    def sharded(self) -> bool:
        """Whether worker processes actually executed the run."""
        return self.fallback is None


def _mp_context():
    """Fork where available (cheap, Linux), spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_sharded(
    scenario,
    shards: int,
    seed: int = 0,
    lag_bound: float | None = None,
    trace_path: str | None = None,
    profile: bool = False,
) -> ShardedRun:
    """Execute ``scenario`` across ``shards`` worker processes.

    Bit-identical to ``scenario.run_serial()`` by construction; the
    cross-shard digest check turns any violation into a hard error
    rather than a silently wrong result.  ``profile`` turns on the
    host-time profiler in every worker (determinism-neutral; snapshots
    come back on ``outcomes[k].prof``).
    """
    units = scenario.units()
    n = max(1, min(shards, units))
    if n <= 1:
        reason = "shards <= 1" if shards <= 1 else f"clamped to {units} unit(s)"
        return ShardedRun(result=scenario.run_serial(), n_shards=1, fallback=reason)
    ok, reason = scenario.shardable()
    if not ok:
        return ShardedRun(result=scenario.run_serial(), n_shards=1, fallback=reason)

    lookahead = lookahead_of(scenario.machine_config())
    plan = plan_shards(
        scenario.comm_graph(), n, lookahead, seed=seed, lag_bound=lag_bound
    )
    n = plan.n_shards

    from repro.sim.parallel.worker import shard_worker_main

    ctx = _mp_context()
    conns, procs = [], []
    shard_traces = [
        f"{trace_path}.shard{k}.jsonl" if trace_path else None for k in range(n)
    ]
    try:
        for k in range(n):
            parent, child = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=shard_worker_main,
                args=(child, scenario, k, plan, shard_traces[k], profile),
                name=f"repro-shard-{k}",
            )
            proc.start()
            child.close()
            conns.append(parent)
            procs.append(proc)
    except (OSError, ValueError, ImportError, AssertionError) as exc:
        # AssertionError covers "daemonic processes are not allowed to
        # have children" when a shard run is nested inside a pool worker
        for p in procs:
            p.terminate()
        return ShardedRun(
            result=scenario.run_serial(),
            n_shards=1,
            fallback=f"worker processes unavailable ({exc})",
        )

    try:
        done, floor_broadcasts, routed = _route(conns, procs, plan)
    finally:
        for c in conns:
            try:
                c.send((BYE,))
            except (OSError, ValueError):
                pass
            c.close()
        for p in procs:
            p.join(timeout=10.0)
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)

    outcomes = [done[k] for k in range(n)]
    digests = [o.digest for o in outcomes]
    if len(set(digests)) != 1:
        raise RuntimeError(
            "cross-shard determinism violation: shard digests diverged "
            f"({digests}) — every shard must replay the identical event stream"
        )

    merged = None
    if trace_path and all(o.trace_path for o in outcomes):
        from repro.sim.parallel.trace import merge_shard_traces

        merged = merge_shard_traces(outcomes, trace_path, plan)

    return ShardedRun(
        result=outcomes[0].result,
        n_shards=n,
        fallback=None,
        plan=plan,
        outcomes=outcomes,
        digests=digests,
        floor_broadcasts=floor_broadcasts,
        records_routed=routed,
        merged_trace=merged,
    )


def _route(conns, procs, plan: ShardPlan):
    """Route records/clocks until every shard reports DONE (or ERR)."""
    n = len(conns)
    clocks = [0.0] * n
    finished = [False] * n
    done: dict[int, ShardOutcome] = {}
    floor = 0.0
    last_window = -1
    floor_broadcasts = 0
    routed = 0

    def broadcast_floor() -> None:
        nonlocal floor, last_window, floor_broadcasts
        new_floor = min(clocks)
        if new_floor <= floor:
            return
        if math.isinf(new_floor):
            return  # every shard is done; nobody is left to unblock
        floor = new_floor
        window = plan.window_of(floor)
        if window <= last_window:
            return
        last_window = window
        floor_broadcasts += 1
        for k, c in enumerate(conns):
            if not finished[k]:
                try:
                    c.send((FLOOR, floor))
                except (OSError, ValueError):
                    pass  # shard finishing concurrently; DONE is in flight

    while len(done) < n:
        ready = mp_connection.wait(
            [c for k, c in enumerate(conns) if not finished[k]],
            timeout=_WATCHDOG_S,
        )
        if not ready:
            dead = [
                k for k in range(n)
                if not finished[k] and not procs[k].is_alive()
            ]
            if dead:
                raise RuntimeError(
                    f"parallel-kernel worker(s) {dead} died without reporting"
                )
            continue
        for conn in ready:
            k = conns.index(conn)
            try:
                msg = conn.recv()
            except EOFError:
                if not finished[k]:
                    raise RuntimeError(
                        f"parallel-kernel worker {k} closed its channel mid-run"
                    ) from None
                continue
            tag = msg[0]
            if tag == REC:
                _, src, rec = msg
                routed += 1
                for j, c in enumerate(conns):
                    if j != src and not finished[j]:
                        try:
                            c.send((REC, rec))
                        except (OSError, ValueError):
                            if not finished[j]:
                                raise
            elif tag == CLK:
                _, src, now = msg
                if now > clocks[src]:
                    clocks[src] = now
                    broadcast_floor()
            elif tag == DONE:
                _, src, outcome = msg
                done[src] = outcome
                finished[src] = True
                clocks[src] = math.inf
                broadcast_floor()
            elif tag == ERR:
                _, src, tb = msg
                for p in procs:
                    p.terminate()
                raise RuntimeError(
                    f"parallel-kernel worker {src} failed:\n{tb}"
                )
            else:
                raise RuntimeError(f"unexpected worker message tag {tag!r}")
    return done, floor_broadcasts, routed


def default_shards() -> int:
    """A sensible shard count for this box (half the cores, min 1)."""
    return max(1, (os.cpu_count() or 1) // 2)
