"""Worker↔coordinator wire protocol and the worker-side record feed.

Message tuples on the ``multiprocessing`` pipes (first element is the
tag):

====== =============================== ===============================
tag    direction                       payload
====== =============================== ===============================
REC    worker → coordinator            ``(REC, shard_id, GenRecord)``
CLK    worker → coordinator            ``(CLK, shard_id, sim_now)``
DONE   worker → coordinator            ``(DONE, shard_id, ShardOutcome)``
ERR    worker → coordinator            ``(ERR, shard_id, traceback_str)``
REC    coordinator → worker            ``(REC, GenRecord)`` (routed)
FLOOR  coordinator → worker            ``(FLOOR, floor_time)``
====== =============================== ===============================

The :class:`RecordFeed` is the worker half of the bounded-lag protocol:
owners :meth:`publish` records eagerly; ghosts :meth:`consume` them
demand-driven, wall-blocking (the whole shard, conservatively) until
the owning shard's record arrives.  Clock beacons ride along with every
publish/consume; the coordinator folds them into the distributed floor
(GVT-style min over shard clocks) and broadcasts it at window
boundaries.  A shard whose clock runs past ``floor + lag_bound`` pauses
in :meth:`publish` until the floor catches up — the bounded-lag gate.

Wall-clock blocking here is *wall* time only: it never touches the
simulated clock, RNG streams or event order, so a sharded run stays
bit-identical to serial no matter how the OS schedules the workers.
"""

from __future__ import annotations

import time
from collections import defaultdict, deque

from repro.obs.prof import prof_section
from repro.sim.parallel.plan import ShardPlan
from repro.sim.parallel.records import GenRecord

REC = "rec"
CLK = "clk"
DONE = "done"
ERR = "err"
FLOOR = "floor"
BYE = "bye"

#: cap on stored per-epoch window spans (tail waits aggregate into the
#: last slot so the outcome stays bounded however long the run is)
MAX_WINDOW_SPANS = 512


class RecordFeed:
    """Worker-side record buffer + bounded-lag gate over one pipe."""

    def __init__(self, conn, shard_id: int, plan: ShardPlan) -> None:
        self.conn = conn
        self.shard_id = shard_id
        self.plan = plan
        self._buf: dict[int, deque] = defaultdict(deque)
        self.floor = 0.0
        #: floor-advance epoch — bumped on every FLOOR broadcast received;
        #: synchronization waits are attributed to the current epoch
        self.epoch = 0
        self._clock = lambda: 0.0
        self.records_in = 0
        self.records_out = 0
        self.consume_wait_s = 0.0
        self.gate_wait_s = 0.0
        #: epoch -> [floor_at_epoch, wall_wait_s, waits]
        self._spans: dict[int, list] = {}

    # -- wiring --------------------------------------------------------
    def bind_clock(self, clock) -> None:
        """Bind the shard kernel's simulated clock (after machine build)."""
        self._clock = clock

    # -- owner side ----------------------------------------------------
    def publish(self, rec: GenRecord) -> None:
        """Ship one owned-unit record, then honour the bounded-lag gate."""
        self.conn.send((REC, self.shard_id, rec))
        self.records_out += 1
        self._beacon()
        self._drain()
        while self._clock() > self.floor + self.plan.lag_bound:
            # ahead of the lag horizon: wall-pause until the floor moves.
            # Re-beacon first — if *every* shard were gated, fresh clocks
            # let the coordinator raise the floor and unblock the minimum.
            self._beacon()
            self._wait_one(self.gate_waited)

    # -- ghost side ----------------------------------------------------
    def consume(self, unit: int) -> GenRecord:
        """Next record for ``unit``, wall-blocking until the owner ships it."""
        buf = self._buf[unit]
        self._drain()
        if not buf:
            self._beacon()
            while not buf:
                self._wait_one(self.consume_waited)
        self.records_in += 1
        return buf.popleft()

    # -- plumbing ------------------------------------------------------
    def _beacon(self) -> None:
        self.conn.send((CLK, self.shard_id, self._clock()))

    def _drain(self) -> None:
        while self.conn.poll(0):
            self._dispatch(self.conn.recv())

    def _wait_one(self, account) -> None:
        t0 = time.perf_counter()  # repro-lint: allow[RPR002] — wall-clock wait accounting
        try:
            with prof_section("par.ipc"):
                msg = self.conn.recv()
        except EOFError as exc:
            raise RuntimeError(
                "parallel-kernel coordinator channel closed mid-run"
            ) from exc
        account(time.perf_counter() - t0)  # repro-lint: allow[RPR002] — wall-clock wait accounting
        self._dispatch(msg)
        self._drain()

    def _dispatch(self, msg) -> None:
        tag = msg[0]
        if tag == REC:
            rec: GenRecord = msg[1]
            self._buf[rec.unit].append(rec)
        elif tag == FLOOR:
            floor = float(msg[1])
            if floor > self.floor:
                self.floor = floor
                self.epoch += 1
        elif tag == BYE:
            pass  # shutdown marker; the run is already over when it arrives
        else:
            raise RuntimeError(f"unexpected coordinator message tag {tag!r}")

    def _span(self) -> list:
        key = min(self.epoch, MAX_WINDOW_SPANS - 1)
        span = self._spans.get(key)
        if span is None:
            span = self._spans[key] = [self.floor, 0.0, 0]
        return span

    def gate_waited(self, dt: float) -> None:
        """Account one bounded-lag gate wait of ``dt`` wall seconds."""
        self.gate_wait_s += dt
        span = self._span()
        span[1] += dt
        span[2] += 1

    def consume_waited(self, dt: float) -> None:
        """Account one record-consume wait of ``dt`` wall seconds."""
        self.consume_wait_s += dt
        span = self._span()
        span[1] += dt
        span[2] += 1

    # -- reporting -----------------------------------------------------
    def stats(self) -> dict:
        """Feed counters for the shard outcome."""
        return {
            "records_in": self.records_in,
            "records_out": self.records_out,
            "consume_wait_s": self.consume_wait_s,
            "gate_wait_s": self.gate_wait_s,
            "floor": self.floor,
            "epochs": self.epoch,
        }

    def spans(self) -> list:
        """Per-epoch synchronization waits: ``[(epoch, floor, wall_s, n)]``."""
        return [
            (epoch, span[0], span[1], span[2])
            for epoch, span in sorted(self._spans.items())
        ]
