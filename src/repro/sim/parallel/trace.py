"""Deterministic merge of per-shard JSONL traces + window spans.

Every shard replays the identical event stream, so every shard's trace
must be byte-identical — the merge *verifies* that (a second, finer
determinism tripwire beyond the result digests) and then folds the
workers' per-epoch synchronization waits in as ``par.window`` events,
time-merged so the output stays monotone and validates against the
``repro.obs`` schema (``python -m repro.obs validate --strict``).

``par.window`` events let ``python -m repro.obs critical-path`` and the
report attribute wall-clock synchronization overhead to bounded-lag
windows: ``t`` is the distributed floor when the epoch opened,
``wall_wait_s`` the wall seconds the shard spent blocked (consuming
records or gated on the lag bound) during that epoch.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.sim.parallel.plan import ShardPlan


def _read_lines(path: str) -> list[str]:
    return Path(path).read_text(encoding="utf-8").splitlines()


def window_span_events(outcomes, plan: ShardPlan) -> list[dict]:
    """Render the shards' window spans as ``par.window`` trace events."""
    events = []
    for o in outcomes:
        for epoch, floor, wall_s, waits in o.window_spans:
            events.append(
                {
                    "t": float(floor),
                    "kind": "par.window",
                    "node": -1,
                    "shard": o.shard_id,
                    "epoch": int(epoch),
                    "window": plan.window_of(float(floor)),
                    "wall_wait_s": float(wall_s),
                    "waits": int(waits),
                }
            )
    events.sort(key=lambda e: (e["t"], e["shard"], e["epoch"]))
    return events


def merge_shard_traces(outcomes, out_path: str, plan: ShardPlan) -> str:
    """Verify shard traces identical; write the merged trace to ``out_path``.

    Raises :class:`RuntimeError` when any two shards' traces differ —
    with replicated event streams there is exactly one legal trace, so
    "merge" means *verify, keep one copy, and interleave the
    coordinator-level window spans by time* (stably: existing events
    win ties, then shard/epoch order).  The ``trace.meta`` trailer is
    re-emitted last with the updated event count.
    """
    digests = {}
    for o in outcomes:
        digests[o.shard_id] = hashlib.sha256(
            Path(o.trace_path).read_bytes()
        ).hexdigest()
    if len(set(digests.values())) != 1:
        raise RuntimeError(
            "cross-shard trace divergence: per-shard JSONL traces are not "
            f"identical ({digests}) — the replicated event streams differ"
        )

    lines = _read_lines(outcomes[0].trace_path)
    meta = None
    events: list[dict] = []
    for line in lines:
        if not line.strip():
            continue
        obj = json.loads(line)
        if obj.get("kind") == "trace.meta":
            meta = obj
        else:
            events.append(obj)

    spans = window_span_events(outcomes, plan)
    merged: list[dict] = []
    i = j = 0
    while i < len(events) and j < len(spans):
        if events[i].get("t", 0.0) <= spans[j]["t"]:
            merged.append(events[i])
            i += 1
        else:
            merged.append(spans[j])
            j += 1
    merged.extend(events[i:])
    merged.extend(spans[j:])

    if meta is None:
        meta = {"t": 0.0, "kind": "trace.meta", "node": -1, "events_dropped": 0}
    meta = dict(meta)
    meta["events"] = len(merged)
    meta["shards"] = len(outcomes)
    meta["t"] = merged[-1]["t"] if merged else meta.get("t", 0.0)

    with open(out_path, "w", encoding="utf-8") as fh:
        for obj in merged:
            fh.write(json.dumps(obj, sort_keys=True))
            fh.write("\n")
        fh.write(json.dumps(meta, sort_keys=True))
        fh.write("\n")
    return out_path
