"""Deterministic discrete-event simulation kernel.

All "parallel" execution in this reproduction runs on this kernel: each
simulated process is a Python generator that yields *requests*
(:class:`~repro.sim.process.Compute`, :class:`~repro.sim.process.WaitSignal`,
...) to the kernel, which resumes it when the requested condition is met.
Simulated time is completely decoupled from wall-clock time, which is what
makes latency-sensitive results reproducible in Python (see DESIGN.md §2).

Typical usage::

    from repro.sim import Kernel, Compute, Signal, WaitSignal

    kernel = Kernel(seed=42)

    def producer(sig):
        yield Compute(1.0)          # burn 1 simulated second
        sig.fire()

    def consumer(sig):
        yield WaitSignal(sig)       # blocks until producer fires
        return kernel.now           # -> 1.0

    sig = Signal("ready")
    kernel.spawn(producer(sig), name="producer")
    handle = kernel.spawn(consumer(sig), name="consumer")
    kernel.run()
    assert handle.result == 1.0
"""

from repro.sim.errors import (
    SimError,
    DeadlockError,
    SimulationLimitError,
    ProcessFailure,
)
from repro.sim.events import Event, EventQueue
from repro.sim.process import (
    Compute,
    Yield,
    WaitSignal,
    WaitAny,
    Join,
    Signal,
    ProcessHandle,
    ProcessState,
)
from repro.sim.kernel import CompletionCounter, Kernel
from repro.sim.rng import RngRegistry, stream_seed
from repro.sim.trace import Tracer, TraceRecord

__all__ = [
    "SimError",
    "DeadlockError",
    "SimulationLimitError",
    "ProcessFailure",
    "Event",
    "EventQueue",
    "Compute",
    "Yield",
    "WaitSignal",
    "WaitAny",
    "Join",
    "Signal",
    "ProcessHandle",
    "ProcessState",
    "Kernel",
    "CompletionCounter",
    "RngRegistry",
    "stream_seed",
    "Tracer",
    "TraceRecord",
]
