"""Named, reproducible random-number streams.

Every source of randomness in the reproduction — GA mutation on node 3,
CPT sampling on node 0, Ethernet backoff, loader inter-arrival times —
draws from its own named stream derived from a single root seed.  This has
two properties the experiments rely on:

* **Reproducibility**: a run is a pure function of its root seed.
* **Independence under reordering**: because streams are keyed by *name*
  rather than by draw order, adding a new consumer (say, a tracer that
  samples) does not perturb any existing stream — regression baselines
  survive refactoring.

Streams are spawned with :class:`numpy.random.SeedSequence` using a stable
hash of the stream name, per numpy's recommended practice for parallel
stream construction.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stream_seed(root_seed: int, name: str) -> np.random.SeedSequence:
    """Derive a :class:`~numpy.random.SeedSequence` for a named stream.

    The name is hashed with BLAKE2 (stable across processes and Python
    versions, unlike ``hash()``) and mixed into the root seed as spawn key.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    key = int.from_bytes(digest, "little")
    return np.random.SeedSequence(entropy=root_seed, spawn_key=(key,))


class RngRegistry:
    """Lazily materialised map of stream name -> :class:`numpy.random.Generator`."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(stream_seed(self.root_seed, name))
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def names(self) -> list[str]:
        """Names of all streams materialised so far (sorted)."""
        return sorted(self._streams)
