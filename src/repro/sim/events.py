"""Event representation and the time-ordered event queue.

The queue is a binary heap keyed by ``(time, priority, seq)``.  The
monotonically increasing ``seq`` component makes ordering *total* and
therefore deterministic: two events scheduled for the same instant always
pop in the order they were scheduled, independent of hash seeds or dict
ordering.  Determinism of this queue is the foundation of every regression
test in the repository.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


#: Default priority for ordinary events.  Lower values pop first among
#: events scheduled for the same simulated instant.
PRIORITY_NORMAL = 0

#: Priority used by the kernel for process resumptions that should happen
#: "immediately after" the current event (e.g. ``Yield``).
PRIORITY_LATE = 10


@dataclass(order=False)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulated time (seconds) at which the event fires.
    priority:
        Tie-breaker among events at the same time; lower fires first.
    seq:
        Monotone sequence number assigned by the queue; final tie-breaker.
    fn:
        Zero-or-more-argument callable invoked when the event fires.
    args:
        Positional arguments passed to ``fn``.
    cancelled:
        Lazily-deleted flag; cancelled events stay in the heap but are
        skipped on pop (cheaper than heap surgery).
    """

    time: float
    priority: int
    seq: int
    fn: Callable[..., Any]
    args: tuple = field(default_factory=tuple)
    cancelled: bool = False

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True

    # Heap ordering — compare only on the key triple.
    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time``; returns the event.

        ``time`` must not be NaN; scheduling in the past is a programming
        error and raises ``ValueError`` at push time rather than corrupting
        the heap invariant later.
        """
        if time != time:  # NaN check without importing math
            raise ValueError("event time is NaN")
        ev = Event(time=time, priority=priority, seq=next(self._seq), fn=fn, args=args)
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def cancel(self, ev: Event) -> None:
        """Cancel a previously pushed event (idempotent)."""
        if not ev.cancelled:
            ev.cancelled = True
            self._live -= 1

    def pop(self) -> Event | None:
        """Pop and return the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if ev.cancelled:
                continue
            self._live -= 1
            return ev
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event without popping, or ``None``."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None
