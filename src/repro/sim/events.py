"""Event representation and the time-ordered event queue.

The queue is a binary heap keyed by ``(time, priority, seq)``.  The
monotonically increasing ``seq`` component makes ordering *total* and
therefore deterministic: two events scheduled for the same instant always
pop in the order they were scheduled, independent of hash seeds or dict
ordering.  Determinism of this queue is the foundation of every regression
test in the repository.

Fast path
---------
The vast majority of events in a real run are *same-instant* resumptions —
the kernel's ``schedule(0.0, self._step, ...)`` calls issued by ``spawn``,
signal wakeups and joins.  Those events never need heap ordering against
future events: they fire at the current instant, in push order, before the
clock can advance.  :meth:`EventQueue.push_immediate` therefore appends
them to a plain FIFO lane and :meth:`EventQueue.pop` merges the lane with
the heap under the exact ``(time, priority, seq)`` key, so the observable
pop order — and hence every trace — is bit-identical to a heap-only queue
while skipping the O(log n) sift on the hottest path.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable


#: Default priority for ordinary events.  Lower values pop first among
#: events scheduled for the same simulated instant.
PRIORITY_NORMAL = 0

#: Priority used by the kernel for process resumptions that should happen
#: "immediately after" the current event (e.g. ``Yield``).
PRIORITY_LATE = 10


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulated time (seconds) at which the event fires.
    priority:
        Tie-breaker among events at the same time; lower fires first.
    seq:
        Monotone sequence number assigned by the queue; final tie-breaker.
    fn:
        Zero-or-more-argument callable invoked when the event fires.
    args:
        Positional arguments passed to ``fn``.
    cancelled:
        Lazily-deleted flag; cancelled events stay in the heap but are
        skipped on pop (cheaper than heap surgery).
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple = (),
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = cancelled

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True

    # Heap ordering — compare only on the key triple.
    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(time={self.time!r}, priority={self.priority!r}, "
            f"seq={self.seq!r}, fn={self.fn!r}, args={self.args!r}, "
            f"cancelled={self.cancelled!r})"
        )


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects with a same-instant
    FIFO fast lane (see module docstring)."""

    __slots__ = ("_heap", "_lane", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        #: FIFO of PRIORITY_NORMAL events at the current instant; entries
        #: are seq-ordered by construction, so the lane head is always the
        #: lane's minimum under the (time, priority, seq) key.
        self._lane: deque[Event] = deque()
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time``; returns the event.

        ``time`` must not be NaN; scheduling in the past is a programming
        error and raises ``ValueError`` at push time rather than corrupting
        the heap invariant later.
        """
        if time != time:  # NaN check without importing math
            raise ValueError("event time is NaN")
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, priority, seq, fn, args)
        _heappush(self._heap, ev)
        self._live += 1
        return ev

    def push_immediate(self, now: float, fn: Callable[..., Any], args: tuple = ()) -> Event:
        """Fast lane for a PRIORITY_NORMAL event at the current instant.

        The caller guarantees ``now`` is the simulation clock; the lane
        drains before the clock can advance, so every lane entry shares the
        same ``time`` and the FIFO order equals the global seq order.  A
        defensive check falls back to the heap if that invariant would not
        hold (e.g. a hand-driven queue used outside a kernel).
        """
        lane = self._lane
        if lane and lane[-1].time != now:
            return self.push(now, fn, args)
        seq = self._seq
        self._seq = seq + 1
        ev = Event(now, PRIORITY_NORMAL, seq, fn, args)
        lane.append(ev)
        self._live += 1
        return ev

    def cancel(self, ev: Event) -> None:
        """Cancel a previously pushed event (idempotent)."""
        if not ev.cancelled:
            ev.cancelled = True
            self._live -= 1

    def pop(self) -> Event | None:
        """Pop and return the earliest live event, or ``None`` if empty."""
        lane = self._lane
        heap = self._heap
        while lane and lane[0].cancelled:
            lane.popleft()
        while heap and heap[0].cancelled:
            _heappop(heap)
        if lane:
            # Lane entries are at the current instant with PRIORITY_NORMAL;
            # a heap event beats them only with an earlier key (e.g. same
            # time, same priority, smaller seq — pushed via schedule_at).
            if heap and heap[0] < lane[0]:
                self._live -= 1
                return _heappop(heap)
            self._live -= 1
            return lane.popleft()
        if heap:
            self._live -= 1
            return _heappop(heap)
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event without popping, or ``None``."""
        lane = self._lane
        heap = self._heap
        while lane and lane[0].cancelled:
            lane.popleft()
        while heap and heap[0].cancelled:
            _heappop(heap)
        if lane and heap:
            return min(lane[0].time, heap[0].time)
        if lane:
            return lane[0].time
        return heap[0].time if heap else None
