"""Exception hierarchy for the simulation kernel.

Every failure mode the kernel can hit maps to a distinct exception type so
tests can assert on the *reason* a simulation stopped, not just that it did.
"""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulation-kernel errors."""


class DeadlockError(SimError):
    """Raised when the event queue drains while processes are still blocked.

    In this reproduction a deadlock almost always means a coherence-protocol
    bug: a reader blocked in ``Global_Read`` whose producer will never write
    again.  The exception message lists every parked process and what it is
    waiting on, which makes such bugs directly debuggable from the test
    failure output.
    """

    def __init__(self, parked: list[str]):
        self.parked = list(parked)
        detail = ", ".join(parked) if parked else "<none>"
        super().__init__(
            f"event queue empty with {len(self.parked)} blocked process(es): {detail}"
        )


class SimulationLimitError(SimError):
    """Raised when a run exceeds its event-count or simulated-time budget.

    Budgets guard against accidental livelock (e.g. a fully asynchronous GA
    flooding a saturated network and never converging); hitting one is a
    result worth reporting, not a crash.
    """

    def __init__(self, kind: str, limit: float, now: float, events: int):
        self.kind = kind
        self.limit = limit
        self.now = now
        self.events = events
        super().__init__(
            f"simulation exceeded {kind} limit ({limit!r}) at t={now:.6f}s "
            f"after {events} events"
        )


class ProcessFailure(SimError):
    """Wraps an exception raised inside a simulated process.

    The kernel stops the whole run on the first process failure (simulated
    nodes do not silently die in the paper's experiments) and re-raises the
    original traceback chained under this error.
    """

    def __init__(self, proc_name: str, original: BaseException):
        self.proc_name = proc_name
        self.original = original
        super().__init__(f"process {proc_name!r} failed: {original!r}")
