"""Simulated processes and the request objects they yield to the kernel.

A simulated process is a Python generator.  It communicates with the kernel
exclusively by ``yield``-ing *request* objects:

``Compute(seconds)``
    Occupy the (virtual) CPU for ``seconds`` of simulated time, then resume.
    This is how calibrated computation costs are charged.
``Yield()``
    Resume at the current instant, but after all other events already
    scheduled for this instant (a cooperative reschedule).
``WaitSignal(signal)``
    Park until some other entity calls :meth:`Signal.fire`.  Wakeups may be
    spurious by design — services re-check their condition in a loop — which
    keeps signals payload-free and allocation-cheap.
``WaitAny([s1, s2, ...])``
    Park until *any* of the listed signals fires; resumes with the fired
    signal as the value of the ``yield`` expression.
``Join(handle)``
    Park until the target process terminates; resumes with its result.

Blocking service calls (message receive, ``Global_Read``) are generators
themselves and are invoked with ``yield from``, so application code reads
almost like the PVM/DSM programs in the paper.

All request objects and :class:`ProcessHandle` carry ``__slots__``: requests
are allocated once per yield on the kernel's hottest path, and the slotted
layout both shrinks them and speeds up the kernel's attribute reads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Generator, Iterable


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    READY = "ready"  # spawned, first resumption scheduled
    RUNNING = "running"  # currently being stepped by the kernel
    COMPUTING = "computing"  # inside a Compute() delay
    BLOCKED = "blocked"  # parked on a signal or join
    DONE = "done"  # generator returned
    FAILED = "failed"  # generator raised


@dataclass(slots=True)
class Compute:
    """Charge ``seconds`` of simulated CPU time to the yielding process."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0 or self.seconds != self.seconds:
            raise ValueError(f"Compute duration must be >= 0, got {self.seconds!r}")


@dataclass(slots=True)
class Yield:
    """Resume at the same instant, after already-scheduled events."""


class Signal:
    """A payload-free wakeup channel.

    Entities (mailboxes, age buffers, barrier counters) own a ``Signal`` and
    ``fire()`` it whenever their state changes; parked processes re-check the
    state on resume.  ``fire()`` is cheap when nobody waits, so services can
    fire unconditionally on every state change.
    """

    __slots__ = ("name", "_waiters")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list = []  # list[ProcessHandle], kept in arrival order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"

    @property
    def waiter_count(self) -> int:
        """Number of processes currently blocked on this signal."""
        return len(self._waiters)

    def fire(self) -> None:
        """Wake every process currently parked on this signal.

        The wakeups are scheduled through the kernel at the current instant
        in FIFO order, preserving determinism.  Requires the signal to have
        been waited on through a kernel (waiters carry their kernel ref).
        """
        if not self._waiters:
            return
        waiters, self._waiters = self._waiters, []
        for handle in waiters:
            handle._kernel._wake_from_signal(handle, self)


@dataclass(slots=True)
class WaitSignal:
    """Park the process until ``signal`` fires (possibly spuriously)."""

    signal: Signal


@dataclass(slots=True)
class WaitAny:
    """Park until any one of ``signals`` fires; resumes with that signal."""

    signals: tuple

    def __init__(self, signals: Iterable[Signal]):
        self.signals = tuple(signals)
        if not self.signals:
            raise ValueError("WaitAny requires at least one signal")


@dataclass(slots=True)
class Join:
    """Park until ``handle``'s process terminates; resumes with its result."""

    handle: "ProcessHandle"


@dataclass(slots=True)
class ProcessHandle:
    """Kernel-side bookkeeping for one simulated process.

    Application code treats handles as opaque except for :attr:`result`,
    :attr:`state` and use with :class:`Join`.
    """

    name: str
    gen: Generator
    pid: int
    _kernel: Any = field(repr=False, default=None)
    state: ProcessState = ProcessState.READY
    result: Any = None
    error: BaseException | None = None
    #: signals this process is currently parked on (for WaitAny cleanup)
    _parked_on: tuple = ()
    #: processes Join-ing on us
    _joiners: list = field(default_factory=list)
    #: zero-argument callbacks invoked exactly once when the process
    #: terminates (DONE or FAILED) — the O(1) completion counters behind
    #: ``Kernel.run_until_done`` hang off this
    _watchers: list = field(default_factory=list)
    #: cumulative simulated seconds spent in Compute() — busy-time accounting
    busy_time: float = 0.0

    @property
    def done(self) -> bool:
        """True once the process has finished (normally or by failure)."""
        return self.state in (ProcessState.DONE, ProcessState.FAILED)

    def describe_block(self) -> str:
        """Human-readable description of what the process is blocked on."""
        if self.state is not ProcessState.BLOCKED:
            return f"{self.name}: not blocked ({self.state.value})"
        names = ",".join(s.name or "<anon>" for s in self._parked_on) or "<join>"
        return f"{self.name} waiting on [{names}]"
