"""scale_study — the age × topology × fabric sweep past paper scale.

The paper stops at 8 SP2 nodes on shared Ethernet; ROADMAP item 2 asks
what happens to the Global_Read age trade-off when the island GA runs at
64–4096 demes on switched fabrics with structured migration topologies
(*The Distributed Genetic Algorithm Revisited*, Belding).  This driver
sweeps:

* **age** — the scale preset's Global_Read ages (plus async as age=∞);
* **topology** — ring / torus / hierarchical / random migration wiring
  (:mod:`repro.ga.topology`);
* **fabric** — the switched interconnects of
  :mod:`repro.network.switched` (single switch, oversubscribed
  hierarchical tree, full-bisection fat-tree).

Determinism contract
--------------------
:data:`SWITCHED_GOLDEN` pins SHA-256 digests of three canonical
switched-fabric scenarios (ring wiring on the hierarchical tree, torus
wiring on the fat-tree, all-to-all wiring through the single switch's
hardware multicast tree).  ``--check`` reruns them serially *and* on the
bounded-lag parallel kernel at shards ∈ {1, 2, 4} and requires every
digest to match bit-for-bit — the switched-fabric extension of the
GOLDEN/CHAOS_GOLDEN contract (DESIGN.md §8/§13/§14).

CLI
---
``python -m repro.experiments.scale_study`` runs the sweep;
``--check`` gates the SWITCHED_GOLDEN digests (CI: scale-smoke job);
``--smoke`` runs the 256-deme ring scenario serially and 2-sharded and
requires digest identity; ``--scale-proof N`` completes an N-deme ring
scenario (default 4096) and prints its shape; ``--analyze PATH``
summarises a sweep JSON (from ``--out``) into the age × topology ×
fabric staleness/wall table (archived as a run artifact with
``--store``); ``--trace-stream N`` runs one traced N-deme ring scenario
streaming its trace straight into the ``--store`` run store with
bounded trace memory.
"""

from __future__ import annotations

import json
import sys
import time

from repro.cluster.machine import MachineConfig
from repro.core.coherence import CoherenceMode
from repro.experiments.config import Scale, current_scale
from repro.experiments.reporting import text_table
from repro.experiments.runner import parallel_map
from repro.ga.functions import get_function
from repro.ga.island import IslandGaConfig, IslandGaResult, run_island_ga
from repro.ga.operators import GaParams
from repro.ga.sharded import ga_digest
from repro.network.switched import SwitchedConfig

#: fabrics the sweep crosses (see repro.network.switched)
FABRICS = ("single", "hierarchical", "fat-tree")
#: structured migration topologies the sweep crosses ("all" is the
#: paper's wiring — quadratic traffic, excluded from large sweeps)
TOPOLOGIES = ("ring", "torus", "hierarchical", "random")


def scenario(
    n_demes: int,
    topology: str,
    fabric: str,
    age: int,
    mode: CoherenceMode = CoherenceMode.NON_STRICT,
    n_generations: int = 10,
    population_size: int = 16,
    seed: int = 7,
    radix: int = 16,
    hw_multicast: bool = False,
    measure_warp: bool = False,
    trace: bool = False,
) -> IslandGaConfig:
    """One switched-fabric island-GA scenario of the sweep."""
    return IslandGaConfig(
        fn=get_function(1),
        n_demes=n_demes,
        mode=mode,
        age=age,
        n_generations=n_generations,
        seed=seed,
        params=GaParams(population_size=population_size),
        machine=MachineConfig(
            n_nodes=n_demes,
            seed=seed,
            interconnect="switched",
            switched=SwitchedConfig(fabric=fabric, radix=radix),
            hw_multicast=hw_multicast,
            measure_warp=measure_warp,
            trace=trace,
        ),
        topology=topology,
    )


# ---------------------------------------------------------------------------
# SWITCHED_GOLDEN: pinned canonical scenarios
# ---------------------------------------------------------------------------

def golden_scenarios() -> dict[str, IslandGaConfig]:
    """The canonical switched-fabric runs whose digests are pinned.

    Small enough to rerun in CI, but together they cover: every fabric
    kind, structured + all-to-all wiring, the hardware multicast tree,
    and the bounded-lag kernel's switched-fabric lookahead.
    """
    common = dict(
        n_demes=8, age=5, n_generations=30, population_size=20,
        seed=7, radix=4, measure_warp=True,
    )
    return {
        "ring-hierarchical": scenario(topology="ring", fabric="hierarchical", **common),
        "torus-fat-tree": scenario(topology="torus", fabric="fat-tree", **common),
        "all-single-mcast": scenario(
            topology="all", fabric="single", hw_multicast=True, **common
        ),
    }


#: expected digests; regenerate with
#: `python -m repro.experiments.scale_study --print-digests` after an
#: *intentional* behaviour change (and say so in the PR).
SWITCHED_GOLDEN = {
    "ring-hierarchical": "12c14934a15485ec659fe2047de4afede1bdd0013a0882fccc1613883f9e1cfc",
    "torus-fat-tree": "48c70f7b12df3855b674fd0bc1777dd49730299f287d8e1932bec81907305c8b",
    "all-single-mcast": "6f326b93f97cc86698608a0bdead308b8f849da8c3e0332a6de9e51c8b007a5d",
}


def check_switched_golden(shards_list: tuple[int, ...] = (1, 2, 4)) -> dict:
    """Run every golden scenario at each shard count; compare digests.

    Returns per-scenario ``{"digest", "golden", "ok", "per_shards"}`` in
    the chaos-matrix result shape.  ``ok`` requires the serial digest to
    match the pinned golden *and* every sharded digest to match serial.
    """
    out: dict = {}
    for name, cfg in golden_scenarios().items():
        per_shards: dict[str, str] = {}
        for shards in shards_list:
            result = run_island_ga(cfg, shards=shards)
            per_shards[str(shards)] = ga_digest(result)
        golden = SWITCHED_GOLDEN.get(name, "")
        serial = per_shards.get("1", next(iter(per_shards.values())))
        out[name] = {
            "digest": serial,
            "golden": golden,
            "ok": serial == golden and all(d == serial for d in per_shards.values()),
            "per_shards": per_shards,
        }
    return out


# ---------------------------------------------------------------------------
# The sweep
# ---------------------------------------------------------------------------

def _row(
    scale: Scale, n_demes: int, topology: str, fabric: str, age: int, shards: int
) -> dict:
    t0 = time.perf_counter()  # repro-lint: allow[RPR002] — harness timing
    cfg = scenario(
        n_demes,
        topology,
        fabric,
        age,
        n_generations=scale.ga_generations // 10,
        measure_warp=n_demes <= 256,
    )
    result: IslandGaResult = run_island_ga(cfg, shards=shards)
    wall_s = time.perf_counter() - t0  # repro-lint: allow[RPR002]
    return {
        "n_demes": n_demes,
        "topology": topology,
        "fabric": fabric,
        "age": age,
        "best_fitness": result.best_fitness,
        "total_time": result.total_time,
        "messages_sent": result.messages_sent,
        "network_utilization": result.network_utilization,
        "mean_warp": result.mean_warp,
        "gr_blocked": result.gr_stats.blocked,
        "wall_s": wall_s,
        "wall_us_per_msg": (
            wall_s / result.messages_sent * 1e6 if result.messages_sent else 0.0
        ),
    }


def run_scale_study(
    scale: Scale | None = None,
    deme_counts: tuple[int, ...] = (64, 256),
    jobs: int | None = None,
    shards: int = 1,
) -> list[dict]:
    """The sweep: one row per (deme count × topology × fabric × age).

    Rows fan out across cores via ``parallel_map`` and merge in key
    order, so the output is bit-identical to a serial sweep.
    """
    scale = scale or current_scale()
    keys = [
        (n, topo, fabric, age)
        for n in deme_counts
        for topo in TOPOLOGIES
        for fabric in FABRICS
        for age in scale.ages
    ]
    return parallel_map(
        _row,
        [(scale, n, topo, fabric, age, shards) for (n, topo, fabric, age) in keys],
        jobs=jobs,
    )


def format_scale_study(rows: list[dict]) -> str:
    """Render the sweep as a text table."""
    if not rows:
        return "scale_study: no rows"
    return text_table(
        ["demes", "topology", "fabric", "age", "best", "sim_s", "msgs",
         "util", "us/msg"],
        [
            [
                r["n_demes"], r["topology"], r["fabric"], r["age"],
                r["best_fitness"], r["total_time"], r["messages_sent"],
                r["network_utilization"], r["wall_us_per_msg"],
            ]
            for r in rows
        ],
        title="scale_study — island GA past paper scale (switched fabrics)",
    )


# ---------------------------------------------------------------------------
# Sweep analysis (ROADMAP item 2 residual)
# ---------------------------------------------------------------------------

def analyze_rows(rows: list[dict]) -> dict:
    """Aggregate sweep rows into the age × topology × fabric summary.

    Rows group by (topology, fabric, age), averaging across deme
    counts; ``gr_blocked`` (reads that had to wait for a fresh-enough
    version — the staleness cost) and host wall seconds are the two
    quantities the age trade-off balances.  Each (topology, fabric)
    cell's fastest-simulated-time age is flagged ``best_age``.
    """
    groups: dict[tuple, list[dict]] = {}
    for r in rows:
        groups.setdefault((r["topology"], r["fabric"], r["age"]), []).append(r)

    def _mean(rs: list[dict], key: str) -> float:
        return sum(float(r.get(key, 0.0)) for r in rs) / len(rs)

    summary = []
    for (topo, fabric, age) in sorted(groups):
        rs = groups[(topo, fabric, age)]
        summary.append({
            "topology": topo,
            "fabric": fabric,
            "age": age,
            "runs": len(rs),
            "demes": sorted({r["n_demes"] for r in rs}),
            "best_fitness": _mean(rs, "best_fitness"),
            "sim_s": _mean(rs, "total_time"),
            "gr_blocked": sum(int(r.get("gr_blocked", 0)) for r in rs),
            "mean_warp": _mean(rs, "mean_warp"),
            "wall_s": _mean(rs, "wall_s"),
        })
    fastest: dict[tuple, dict] = {}
    for row in summary:
        key = (row["topology"], row["fabric"])
        if key not in fastest or row["sim_s"] < fastest[key]["sim_s"]:
            fastest[key] = row
    for row in summary:
        row["best_age"] = fastest[(row["topology"], row["fabric"])] is row
    return {
        "schema": "repro-scale-analysis/1",
        "rows": summary,
        "best_age": {
            f"{t}/{f}": row["age"] for (t, f), row in sorted(fastest.items())
        },
    }


def format_analysis(analysis: dict) -> str:
    """Render the sweep summary as a text table (``*`` = fastest age)."""
    rows = analysis["rows"]
    if not rows:
        return "scale_study --analyze: no rows"
    return text_table(
        ["topology", "fabric", "age", "runs", "best", "sim_s",
         "gr_blocked", "warp", "wall_s"],
        [
            [
                r["topology"], r["fabric"],
                f"{r['age']}{'*' if r['best_age'] else ''}",
                r["runs"], r["best_fitness"], r["sim_s"],
                r["gr_blocked"], r["mean_warp"], r["wall_s"],
            ]
            for r in rows
        ],
        title=(
            "scale_study --analyze — staleness (gr_blocked) vs wall by "
            "age x topology x fabric (* = fastest simulated time)"
        ),
    )


def run_traced_stream(
    n_demes: int, store_root: str, flush_every: int = 5_000
) -> dict:
    """One traced ``n_demes``-deme ring run streamed into the run store.

    The machine's trace bus writes straight to a rotating gzip sink in
    the store's staging area (peak trace memory is O(``flush_every``)
    events, never the full trace), then the finished artifacts are
    committed content-addressed.  Returns ``{"ref", "events",
    "peak_buffered", ...}``.
    """
    import os
    from dataclasses import replace as _replace

    from repro.obs.store import RunStore

    store = RunStore(store_root)
    stage = store.stage()
    cfg = scenario(n_demes, "ring", "hierarchical", age=5,
                   n_generations=10, trace=True)
    cfg = _replace(cfg, machine=_replace(
        cfg.machine,
        trace_sink=os.path.join(stage, "trace.jsonl.gz"),
        trace_flush_every=flush_every,
    ))
    holder: dict = {}
    result = run_island_ga(
        cfg, instrument=lambda dsm: holder.setdefault("dsm", dsm)
    )
    bus = holder["dsm"].vm.kernel.obs
    events = bus.write_jsonl()
    with open(os.path.join(stage, "metrics.json"), "w", encoding="utf-8") as fh:
        json.dump(result.metrics, fh, sort_keys=True, indent=2)
        fh.write("\n")
    ref = store.put_staged(stage, meta={
        "app": "scale_study",
        "kind": "traced-stream",
        "n_demes": str(n_demes),
    })
    return {
        "ref": ref,
        "n_demes": n_demes,
        "events": events,
        "dropped": bus.dropped,
        "peak_buffered": bus.peak_buffered,
        "flush_every": flush_every,
        "parts": len(bus.sink.paths),
        "best_fitness": result.best_fitness,
    }


# ---------------------------------------------------------------------------
# Smoke + scale proof (CI entry points)
# ---------------------------------------------------------------------------

def run_smoke(trace_path: str | None = None) -> dict:
    """256-deme ring on the hierarchical fabric: serial vs 2-shard identity.

    The CI scale-smoke gate: the digests must match bit-for-bit, and the
    (optionally written) merged trace must validate against the event
    schema.  Returns the comparison record.
    """
    cfg = scenario(256, "ring", "hierarchical", age=5, n_generations=10)
    serial_digest = ga_digest(run_island_ga(cfg))
    from repro.ga.sharded import run_island_ga_sharded

    sharded = run_island_ga_sharded(cfg, shards=2, trace_path=trace_path)
    sharded_digest = ga_digest(sharded)
    info = sharded.metrics.get("parallel", {})
    return {
        "n_demes": 256,
        "topology": "ring",
        "fabric": "hierarchical",
        "serial_digest": serial_digest,
        "sharded_digest": sharded_digest,
        "ok": serial_digest == sharded_digest,
        "sharded": bool(info.get("sharded")),
        "fallback": info.get("fallback") or None,
        "lookahead": info.get("lookahead"),
        "trace": info.get("merged_trace") if trace_path else None,
    }


def run_scale_proof(n_demes: int = 4096) -> dict:
    """Complete an ``n_demes``-deme ring scenario; returns its shape."""
    t0 = time.perf_counter()  # repro-lint: allow[RPR002] — harness timing
    result = run_island_ga(
        scenario(n_demes, "ring", "hierarchical", age=2,
                 n_generations=2, population_size=8)
    )
    wall_s = time.perf_counter() - t0  # repro-lint: allow[RPR002]
    return {
        "n_demes": n_demes,
        "generations": 2,
        "best_fitness": result.best_fitness,
        "total_time": result.total_time,
        "messages_sent": result.messages_sent,
        "wall_s": wall_s,
        "wall_us_per_msg": wall_s / result.messages_sent * 1e6,
    }


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.scale_study`` entry point."""
    from repro.experiments.cli import experiment_parser, parse_experiment_args

    parser = experiment_parser(
        "scale_study — age x topology x fabric sweep of the island GA at "
        "64-4096 demes on switched fabrics.",
        faults=False,
    )
    parser.add_argument(
        "--check", action="store_true",
        help="gate the SWITCHED_GOLDEN digests at shards {1,2,4} and exit",
    )
    parser.add_argument(
        "--print-digests", action="store_true",
        help="print current golden-scenario digests and exit",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="256-deme ring serial-vs-2-shard digest identity and exit",
    )
    parser.add_argument(
        "--scale-proof", type=int, default=None, metavar="N",
        help="complete an N-deme ring scenario (acceptance: 4096) and exit",
    )
    parser.add_argument(
        "--analyze", default=None, metavar="PATH",
        help=(
            "summarise a sweep JSON (written by --out) into the age x "
            "topology x fabric staleness/wall table and exit; combined "
            "with --store, the analysis is archived as a run artifact"
        ),
    )
    parser.add_argument(
        "--trace-stream", type=int, default=None, metavar="N",
        help=(
            "run one traced N-deme ring scenario streaming its trace "
            "straight into the --store run store (bounded trace memory) "
            "and exit"
        ),
    )
    parser.add_argument(
        "--demes", type=int, nargs="+", default=[64, 256], metavar="N",
        help="deme counts the sweep crosses (default: 64 256)",
    )
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write results as JSON to PATH")
    args = parse_experiment_args(parser, argv)
    ns = parser.parse_args(argv)

    if ns.analyze:
        with open(ns.analyze, "r", encoding="utf-8") as fh:
            rows = json.load(fh)
        analysis = analyze_rows(rows)
        out_path = ns.out
        if out_path:
            with open(out_path, "w") as fh:
                json.dump(analysis, fh, indent=2, sort_keys=True)
                fh.write("\n")
        print(format_analysis(analysis))
        if args.store:
            import tempfile

            from repro.obs.store import RunStore

            with tempfile.TemporaryDirectory() as td:
                import os

                ap = out_path or os.path.join(td, "analysis.json")
                if not out_path:
                    with open(ap, "w") as fh:
                        json.dump(analysis, fh, indent=2, sort_keys=True)
                        fh.write("\n")
                ref = RunStore(args.store).put(
                    {"analysis.json": ap, "sweep.json": ns.analyze},
                    meta={"app": "scale_study", "kind": "analysis"},
                )
            print(f"analysis stored -> {args.store} ref {ref}")
        return 0

    if ns.trace_stream is not None:
        if not args.store:
            parser.error("--trace-stream requires --store DIR")
        record = run_traced_stream(ns.trace_stream, args.store)
        print(json.dumps(record, indent=2))
        return 0

    if ns.print_digests:
        for name, cfg in golden_scenarios().items():
            print(f'    "{name}": "{ga_digest(run_island_ga(cfg))}",')
        return 0

    if ns.check:
        report = check_switched_golden()
        if ns.out:
            with open(ns.out, "w") as fh:
                json.dump(report, fh, indent=2)
        ok = True
        for name, row in report.items():
            status = "ok" if row["ok"] else "MISMATCH"
            print(f"[scale_study] {name}: {status} "
                  f"(shards {sorted(row['per_shards'])})")
            if not row["ok"]:
                ok = False
                print(
                    f"  digest {row['digest']}\n  golden {row['golden']}\n"
                    f"  per-shards {row['per_shards']}",
                    file=sys.stderr,
                )
        return 0 if ok else 1

    if ns.smoke:
        record = run_smoke(trace_path=args.trace)
        if ns.out:
            with open(ns.out, "w") as fh:
                json.dump(record, fh, indent=2)
        print(json.dumps(record, indent=2))
        return 0 if record["ok"] else 1

    if ns.scale_proof is not None:
        record = run_scale_proof(ns.scale_proof)
        if ns.out:
            with open(ns.out, "w") as fh:
                json.dump(record, fh, indent=2)
        print(json.dumps(record, indent=2))
        return 0

    rows = run_scale_study(
        args.scale, deme_counts=tuple(ns.demes), jobs=args.jobs, shards=args.shards
    )
    if ns.out:
        with open(ns.out, "w") as fh:
            json.dump(rows, fh, indent=2)
    print(format_scale_study(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
