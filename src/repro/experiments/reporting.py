"""Plain-text tables for the experiment runners.

The benchmarks print these so a run's output can be compared side by
side with the paper's tables and figures (EXPERIMENTS.md records both).
"""

from __future__ import annotations

from typing import Any, Sequence


def text_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned monospace table."""
    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    cells = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
