"""Table 1 — the eight-function GA test bed.

Regenerates every column of Table 1 (function, variable count, limits,
minimum) from the implementation and *verifies* the minimum numerically
at the known optimum, so the printed table is evidence the test bed
matches the paper rather than a restatement of it.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.reporting import text_table
from repro.experiments.runner import parallel_map
from repro.ga.functions import TEST_FUNCTIONS, f4_noiseless, get_function

#: known optimizer of each function (used to verify the `min f(x)` column)
_OPTIMA = {
    1: np.zeros(3),
    2: np.array([1.0, 1.0]),
    3: np.full(5, -5.12),
    4: np.zeros(30),
    5: np.array([-32.0, -32.0]),
    6: np.zeros(20),
    7: np.full(10, 420.9687),
    8: np.zeros(10),
}


def _table1_row(fid: int) -> dict:
    """One function's row (independent replica for the parallel runner)."""
    fn = get_function(fid)
    x = np.clip(_OPTIMA[fn.fid], fn.lower, fn.upper)[None, :]
    measured = float(f4_noiseless(x)[0]) if fn.noisy else float(fn(x)[0])
    return {
        "fid": fn.fid,
        "name": fn.name,
        "n_vars": fn.n_vars,
        "limits": f"[{fn.lower}, {fn.upper}]",
        "paper_min": fn.min_value,
        "measured_min": measured,
        "bits_per_var": fn.bits_per_var,
        # F4's listed minimum (≤ −2.5) is the *noisy* floor; its
        # noiseless part is 0 at the optimum, which is what we can
        # verify deterministically.
        "matches": (
            abs(measured) < 0.5
            if fn.noisy
            else abs(measured - fn.min_value) < 0.5
        ),
    }


def run_table1(jobs: int | None = None) -> list[dict]:
    """One row per test function, with the measured minimum."""
    return parallel_map(_table1_row, [(fn.fid,) for fn in TEST_FUNCTIONS], jobs=jobs)


def format_table1(rows: list[dict]) -> str:
    """Render Table 1 rows as a text table."""
    return text_table(
        ["f", "name", "vars", "limits", "min (paper)", "min (measured)", "ok"],
        [
            [
                r["fid"], r["name"], r["n_vars"], r["limits"],
                r["paper_min"], r["measured_min"], "yes" if r["matches"] else "NO",
            ]
            for r in rows
        ],
        title="Table 1 — eight function test bed for GAs",
        float_fmt="{:.4f}",
    )


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.table1`` — run and print Table 1."""
    from repro.experiments.cli import (
        experiment_parser,
        parse_experiment_args,
        write_observability,
    )

    parser = experiment_parser(
        "Table 1 — regenerate and verify the eight-function GA test bed.",
        faults=False,
    )
    args = parse_experiment_args(parser, argv)
    print(format_table1(run_table1(jobs=args.jobs)))
    write_observability(args, app="ga", n_nodes=4)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
