"""Experiment runners: one module per table/figure of the paper's §4–§5.

Every runner returns plain data structures (lists of row dicts) and has a
``format_*`` companion producing the text table the benchmarks print.
Scale (number of runs, generations, processor counts) comes from
:class:`~repro.experiments.config.Scale`; the default is sized for a
laptop, ``Scale.full()`` approaches the paper's 25-run protocol, and the
``REPRO_SCALE`` environment variable (``smoke`` / ``default`` / ``full``)
overrides the choice in the benchmark harness.
"""

from repro.experiments.config import Scale, current_scale
from repro.experiments.runner import configured_jobs, parallel_map
from repro.experiments.speedup import GaVariant, VARIANTS, best_competitor_gain
from repro.experiments.table1 import run_table1, format_table1
from repro.experiments.table2 import run_table2, format_table2
from repro.experiments.figure2 import run_figure2, format_figure2
from repro.experiments.figure3 import run_figure3, format_figure3
from repro.experiments.figure4 import run_figure4, format_figure4
from repro.experiments.warp_study import run_warp_study, format_warp_study

__all__ = [
    "Scale",
    "current_scale",
    "configured_jobs",
    "parallel_map",
    "GaVariant",
    "VARIANTS",
    "best_competitor_gain",
    "run_table1",
    "format_table1",
    "run_table2",
    "format_table2",
    "run_figure2",
    "format_figure2",
    "run_figure3",
    "format_figure3",
    "run_figure4",
    "format_figure4",
    "run_warp_study",
    "format_warp_study",
]
