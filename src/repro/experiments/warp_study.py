"""W1 — the warp network-load measurements of §4.3.

"The warp measured would be 1 when the network load is stable; warp
values much higher than 1 indicate increasing load on the network."

A paced probe stream crosses the Ethernet while loaders ramp the offered
background load; we report the mean and max warp per load level, plus
the warp observed by a fully asynchronous island GA versus a
Global_Read-throttled one on a loaded network (the asynchronous GA's
flooding shows up directly in its warp).
"""

from __future__ import annotations

from repro.core.coherence import CoherenceMode
from repro.experiments.config import Scale, current_scale
from repro.experiments.reporting import text_table
from repro.experiments.runner import parallel_map
from repro.experiments.speedup import machine_for
from repro.faults.plan import FaultPlan
from repro.ga.functions import get_function
from repro.ga.island import IslandGaConfig, run_island_ga
from repro.network.frame import Frame
from repro.network.warp import WarpMeter


def probe_warp(
    load_bps: float,
    seed: int = 0,
    n_probes: int = 200,
    faults: FaultPlan | None = None,
) -> dict:
    """Mean/max warp of a paced 2-node probe stream under ``load_bps``."""
    from repro.faults.injectors import install_faults
    from repro.network.ethernet import EthernetNetwork
    from repro.network.loader import LoaderConfig, NetworkLoader
    from repro.sim import Kernel

    kernel = Kernel(seed=seed)
    net = EthernetNetwork(kernel)
    net.attach(0, lambda f: None)
    net.attach(1, lambda f: None)
    # Warp measures the *rate of change* of network load (§4.3): under a
    # steady stream it sits at 1 regardless of the level, so the loaders
    # start 40% of the way through the probe window — the ramp is what
    # drives warp above 1, and the heavier the ramp the higher the spike.
    # The load is spread over three loader pairs (more contenders squeeze
    # the probe's round-robin share of the medium, as real bursty
    # multi-host load does).
    gap = 0.0015
    ramp_at = 0.4 * n_probes * gap
    if load_bps > 0:
        for k in range(3):
            NetworkLoader(
                kernel,
                net,
                LoaderConfig(offered_load_bps=load_bps / 3, frame_payload_bytes=1500),
                src_node=8 + 2 * k,
                dst_node=9 + 2 * k,
                name=f"loader{k}",
            ).start(delay=ramp_at)
    meter = WarpMeter(kinds={"probe"}).attach(net)
    if faults is not None and not faults.is_noop:
        install_faults(kernel, net, [], faults)

    def inject(i: int) -> None:
        net.adapters[0].send(Frame(src=0, dst=1, size_bytes=512, kind="probe"))
        if i + 1 < n_probes:
            kernel.schedule(gap, inject, i + 1)

    kernel.schedule(0.0, inject, 0)
    # the time cap only matters under faults: dropped probes mean the
    # sample target can become unreachable, and the loaders never stop
    deadline = n_probes * gap + 0.5
    kernel.run(
        stop_when=lambda: meter.overall.count >= n_probes - 1
        or kernel.now >= deadline,
    )
    return {
        "load_mbps": load_bps / 1e6,
        "mean_warp": meter.mean_warp,
        "max_warp": meter.max_warp,
        "samples": meter.overall.count,
    }


def ga_warp(
    scale: Scale,
    mode: CoherenceMode,
    age: int,
    load_bps: float,
    faults: FaultPlan | None = None,
    shards: int = 1,
) -> float:
    """Mean warp observed by an island GA run under background load."""
    fn = get_function(scale.ga_functions[0])
    r = run_island_ga(
        IslandGaConfig(
            fn=fn,
            n_demes=4,
            mode=mode,
            age=age,
            n_generations=scale.ga_generations,
            seed=3,
            machine=machine_for(scale, 4, 3, load_bps, faults),
        ),
        shards=shards,
    )
    return r.mean_warp


def run_warp_study(
    scale: Scale | None = None,
    jobs: int | None = None,
    faults: FaultPlan | None = None,
    shards: int = 1,
) -> dict:
    """Probe-stream warp per load level plus the GA-observed warp comparison."""
    scale = scale or current_scale()
    probe_rows = parallel_map(
        probe_warp,
        [(load, 0, 200, faults) for load in (0.0, *scale.loads_bps, 6e6)],
        jobs=jobs,
    )
    app_cells = [
        ("async", CoherenceMode.ASYNCHRONOUS, 0),
        (f"gr{scale.ages[-1]}", CoherenceMode.NON_STRICT, scale.ages[-1]),
    ]
    warps = parallel_map(
        ga_warp,
        [
            (scale, mode, age, scale.loads_bps[-1], faults, shards)
            for (_, mode, age) in app_cells
        ],
        jobs=jobs,
    )
    app_rows = [
        {"variant": label, "mean_warp": w}
        for (label, _, _), w in zip(app_cells, warps)
    ]
    return {"probe": probe_rows, "ga": app_rows}


def format_warp_study(result: dict) -> str:
    """Render the warp-study result as two text tables."""
    probe = text_table(
        ["load (Mbps)", "mean warp", "max warp", "samples"],
        [
            [r["load_mbps"], r["mean_warp"], r["max_warp"], r["samples"]]
            for r in result["probe"]
        ],
        title="W1 — warp of a paced probe stream vs offered background load",
    )
    ga = text_table(
        ["GA variant", "mean warp under load"],
        [[r["variant"], r["mean_warp"]] for r in result["ga"]],
        title="W1 — warp observed by island-GA traffic (loaded network)",
    )
    return probe + "\n\n" + ga


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.warp_study`` — run and print W1."""
    from repro.experiments.cli import (
        experiment_parser,
        parse_experiment_args,
        write_observability,
    )

    parser = experiment_parser(
        "W1 — warp vs offered load, optionally with seeded fault "
        "injection (--faults)."
    )
    args = parse_experiment_args(parser, argv)
    if args.faults is not None:
        print(f"fault plan: {args.faults.describe()}")
    print(
        format_warp_study(
            run_warp_study(
                args.scale, jobs=args.jobs, faults=args.faults, shards=args.shards
            )
        )
    )
    write_observability(
        args, app="ga", load_bps=args.scale.loads_bps[-1], n_nodes=4
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
