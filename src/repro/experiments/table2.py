"""Table 2 — the four belief networks.

Builds A, AA, C and the synthetic Hailfinder, partitions each two ways
with the repository's partitioner, and measures (a) the structural
statistics, (b) the 2-way edge-cut, and (c) the uniprocessor inference
time under the paper's stopping rule — the complete Table 2 row set.
"""

from __future__ import annotations

from repro.bayes.hailfinder import make_hailfinder
from repro.bayes.logic_sampling import run_serial_logic_sampling
from repro.bayes.network import BayesianNetwork
from repro.bayes.random_nets import make_table2_network
from repro.experiments.reporting import text_table
from repro.experiments.runner import parallel_map
from repro.partition.metrics import edge_cut
from repro.partition.multilevel import best_of

#: the paper's Table 2 values, for the side-by-side report
PAPER_TABLE2 = {
    "A": {"edge_cut": 24, "inference_time": 11.12},
    "AA": {"edge_cut": 30, "inference_time": 11.19},
    "C": {"edge_cut": 24, "inference_time": 11.81},
    "Hailfinder": {"edge_cut": 4, "inference_time": 3.15},
}

#: Table 2's row order
NETWORK_NAMES = ("A", "AA", "C", "Hailfinder")


def build_network(name: str, seed: int = 0) -> BayesianNetwork:
    """Deterministically (re)build one Table 2 network by name.

    Workers in the parallel runner rebuild networks from (name, seed)
    instead of pickling them across the pool — same seed, same network.
    """
    if name == "Hailfinder":
        return make_hailfinder(seed=seed)
    return make_table2_network(name, seed=seed)


def table2_networks(seed: int = 0) -> list[BayesianNetwork]:
    """The four networks, in Table 2's order."""
    return [build_network(name, seed) for name in NETWORK_NAMES]


def pick_query(net: BayesianNetwork, seed: int = 0) -> int:
    """Deterministic query choice: the sink-most node with the widest
    posterior spread (inference on near-certain nodes is trivially fast
    and uninformative)."""
    marginals = net.prior_marginals(seed=seed)
    sinks = [v for v in net.nodes if not net.children(v)] or list(net.nodes)
    return max(sinks, key=lambda v: (1.0 - max(marginals[v]), v))


def _table2_row(name: str, seed: int) -> dict:
    """One network's complete Table 2 row (independent replica)."""
    net = build_network(name, seed)
    parts = best_of(net.skeleton(), 2, tries=4, seed=seed)
    cut = edge_cut(net.skeleton(), parts)
    query = pick_query(net, seed)
    serial = run_serial_logic_sampling(net, query=query, seed=seed)
    paper = PAPER_TABLE2[net.name]
    return {
        "name": net.name,
        "nodes": net.n_nodes,
        "edges_per_node": net.edges_per_node,
        "values_per_node": net.max_values_per_node,
        "edge_cut": cut,
        "paper_edge_cut": paper["edge_cut"],
        "inference_time": serial.sim_time,
        "paper_inference_time": paper["inference_time"],
        "query": query,
        "runs": serial.n_runs,
        "converged": serial.converged,
    }


def run_table2(seed: int = 0, jobs: int | None = None) -> list[dict]:
    """One row per network: structure metrics, edge cut, serial inference time."""
    return parallel_map(
        _table2_row, [(name, seed) for name in NETWORK_NAMES], jobs=jobs
    )


def format_table2(rows: list[dict]) -> str:
    """Render Table 2 rows as a text table."""
    return text_table(
        [
            "network", "nodes", "edges/node", "values/node",
            "cut", "cut (paper)", "t_serial (s)", "t (paper)", "runs",
        ],
        [
            [
                r["name"], r["nodes"], r["edges_per_node"], r["values_per_node"],
                r["edge_cut"], r["paper_edge_cut"],
                r["inference_time"], r["paper_inference_time"], r["runs"],
            ]
            for r in rows
        ],
        title="Table 2 — four Bayesian belief networks (measured vs paper)",
    )


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.table2`` — run and print Table 2."""
    from repro.experiments.cli import (
        experiment_parser,
        parse_experiment_args,
        write_observability,
    )

    parser = experiment_parser(
        "Table 2 — the four Bayesian belief networks: structure metrics, "
        "partition edge cuts and serial inference times vs the paper.",
        faults=False,
    )
    args = parse_experiment_args(parser, argv)
    print(format_table2(run_table2(jobs=args.jobs)))
    write_observability(args, app="bayes", n_nodes=2)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
