"""Figure 2 — GA speedups on the unloaded network.

For each processor count the paper plots, per variant (synchronous,
asynchronous, Global_Read at ages 0/5/10/20/30): the speedup over the
corresponding serial program, for the best case (function 1) and the
average over the function set; plus the "best partially asynchronous vs
best competitor" bar (the last white bar of Figure 2).
"""

from __future__ import annotations

from repro.experiments.config import Scale, current_scale
from repro.experiments.reporting import text_table
from repro.experiments.runner import parallel_map
from repro.experiments.speedup import (
    GaVariant,
    best_competitor_gain,
    run_ga_trial,
    speedups_over_trials,
)


def run_figure2(
    scale: Scale | None = None, jobs: int | None = None, shards: int = 1
) -> list[dict]:
    """One row per processor count: per-variant speedups for f1 and the
    all-function average, plus the best-vs-competitor gain.

    The (P × function × seed) replicas are independent; they fan out
    across cores via :func:`~repro.experiments.runner.parallel_map`
    (``REPRO_JOBS``) and are merged in configuration-key order, so the
    rows are bit-identical to a serial run.
    """
    scale = scale or current_scale()
    variants = GaVariant.standard_set(scale.ages)
    labels = [v.label for v in variants]
    keys = [
        (P, fid, r)
        for P in scale.processor_counts
        for fid in scale.ga_functions
        for r in range(scale.ga_runs)
    ]
    trials = parallel_map(
        run_ga_trial,
        [
            (scale, fid, P, 1000 * r + fid, variants, 0.0, None, shards)
            for (P, fid, r) in keys
        ],
        jobs=jobs,
    )
    by_cell: dict[tuple[int, int], list] = {}
    for (P, fid, _r), trial in zip(keys, trials):
        by_cell.setdefault((P, fid), []).append(trial)
    rows = []
    for P in scale.processor_counts:
        trials_by_fid = {fid: by_cell[(P, fid)] for fid in scale.ga_functions}
        best_fid = scale.ga_functions[0]  # function 1 when present
        best_case = speedups_over_trials(trials_by_fid[best_fid], labels)
        all_trials = [t for ts in trials_by_fid.values() for t in ts]
        average = speedups_over_trials(all_trials, labels)
        best_label, gain = best_competitor_gain(average)
        best_case_label, best_case_gain = best_competitor_gain(best_case)
        rows.append(
            {
                "P": P,
                "best_case_fid": best_fid,
                "best_case": best_case,
                "average": average,
                "best_gr": best_label,
                "gain_over_best_competitor": gain,
                "best_case_gr": best_case_label,
                "best_case_gain": best_case_gain,
            }
        )
    return rows


def format_figure2(rows: list[dict]) -> str:
    """Render Figure 2 rows as the best-case and average text tables."""
    if not rows:
        return "Figure 2: no rows"
    labels = list(rows[0]["average"].keys())
    out = []
    for kind in ("best_case", "average"):
        title = (
            f"Figure 2 — GA speedups, unloaded network "
            f"({'best case (f%d)' % rows[0]['best_case_fid'] if kind == 'best_case' else 'average over functions'})"
        )
        out.append(
            text_table(
                ["P", *labels, "best GR vs best competitor"],
                [
                    [
                        r["P"],
                        *[r[kind][label] for label in labels],
                        (
                            f"{r['best_case_gr']} +{100 * r['best_case_gain']:.0f}%"
                            if kind == "best_case"
                            else f"{r['best_gr']} +{100 * r['gain_over_best_competitor']:.0f}%"
                        ),
                    ]
                    for r in rows
                ],
                title=title,
            )
        )
    return "\n\n".join(out)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.figure2`` — run and print Figure 2."""
    from repro.experiments.cli import (
        experiment_parser,
        parse_experiment_args,
        write_observability,
    )

    parser = experiment_parser(
        "Figure 2 — GA speedups over the serial baseline on the unloaded "
        "network, per processor count and coherence variant.",
        faults=False,
    )
    args = parse_experiment_args(parser, argv)
    print(format_figure2(run_figure2(args.scale, jobs=args.jobs, shards=args.shards)))
    write_observability(
        args, app="ga", n_nodes=args.scale.processor_counts[-1]
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
