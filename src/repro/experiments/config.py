"""Experiment scale presets.

The paper's protocol (25 GA runs, 10 BN runs, 1000 generations, 2–16
processors) is hours of simulation; tests need seconds.  A
:class:`Scale` captures every knob the runners take, with three presets:

``smoke``    seconds — used by the test suite;
``default``  minutes — used by ``pytest benchmarks/``;
``full``     approaches the paper's protocol — set ``REPRO_SCALE=full``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class Scale:
    """Run-size knobs shared by the experiment runners."""

    name: str
    #: GA: independent trials per configuration (paper: 25)
    ga_runs: int
    #: GA: serial-baseline generations (paper: 1000)
    ga_generations: int
    #: GA: cap on the async/Global_Read variants, in units of the serial
    #: generation count (the paper ran them "for enough generations")
    ga_cap_factor: int
    #: GA: processor counts (paper: 2..16)
    processor_counts: tuple[int, ...]
    #: GA: Table 1 functions to include (paper: all eight)
    ga_functions: tuple[int, ...]
    #: Global_Read age settings (paper: 0, 5, 10, 20, 30)
    ages: tuple[int, ...]
    #: BN: independent trials per configuration (paper: 10)
    bn_runs: int
    #: BN: run-count cap per trial
    bn_max_iterations: int
    #: Figure 4 offered loads, bps (paper: 0.5, 1, 2 Mbps)
    loads_bps: tuple[float, ...]
    #: fraction of the serial trajectory defining the convergence bar
    bar_fraction: float = 0.6
    #: per-generation compute-time jitter (load skew, §5.1.1)
    jitter_sigma: float = 0.12
    #: node speed heterogeneity (systematic load skew)
    hetero_sigma: float = 0.03

    @classmethod
    def smoke(cls) -> "Scale":
        """Seconds-scale preset for CI smoke runs."""
        return cls(
            name="smoke",
            ga_runs=2,
            ga_generations=120,
            ga_cap_factor=3,
            processor_counts=(2, 4),
            ga_functions=(1, 3),
            ages=(0, 10),
            bn_runs=1,
            bn_max_iterations=20_000,
            loads_bps=(0.5e6, 2e6),
        )

    @classmethod
    def default(cls) -> "Scale":
        """Minutes-scale preset; the default when ``REPRO_SCALE`` is unset."""
        return cls(
            name="default",
            ga_runs=3,
            ga_generations=250,
            ga_cap_factor=3,
            processor_counts=(2, 4, 8, 16),
            ga_functions=(1, 8),
            ages=(0, 5, 10, 30),
            bn_runs=2,
            bn_max_iterations=30_000,
            loads_bps=(0.5e6, 1e6, 2e6),
        )

    @classmethod
    def full(cls) -> "Scale":
        """Paper-faithful preset (8 runs, all functions, full age sweep)."""
        return cls(
            name="full",
            ga_runs=25,
            ga_generations=1000,
            ga_cap_factor=4,
            processor_counts=(2, 4, 8, 16),
            ga_functions=(1, 2, 3, 4, 5, 6, 7, 8),
            ages=(0, 5, 10, 20, 30),
            bn_runs=10,
            bn_max_iterations=60_000,
            loads_bps=(0.5e6, 1e6, 2e6),
        )


def current_scale() -> Scale:
    """Scale selected by the ``REPRO_SCALE`` environment variable."""
    name = os.environ.get("REPRO_SCALE", "default").lower()
    try:
        return {"smoke": Scale.smoke, "default": Scale.default, "full": Scale.full}[name]()
    except KeyError:
        raise ValueError(
            f"REPRO_SCALE={name!r}; expected smoke, default or full"
        ) from None
