"""Solution-quality metrics (§4.3).

"The number of runs (out of 25) in which the global optimum is found and
the average fitness of the population at the end of each of the 25 runs
determines the solution quality."

The paper reports these in its technical-report companion [21]; this
runner computes them for any variant set, including the paper's
secondary observation that quality *improves* with more processors
(total population scales with P, §4.2.1).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import Scale, current_scale
from repro.experiments.reporting import text_table
from repro.experiments.runner import parallel_map
from repro.experiments.speedup import GaVariant, machine_for
from repro.ga.functions import get_function
from repro.ga.island import IslandGaConfig, run_island_ga
from repro.ga.sga import run_serial_ga


def _quality_run(
    scale: Scale, fid: int, P: int, variant: GaVariant | None, seed: int
) -> float:
    """Final best fitness of one (P, variant, seed) replica."""
    fn = get_function(fid)
    if variant is None:  # the serial baseline
        s = run_serial_ga(
            fn, seed=seed, n_generations=scale.ga_generations,
            population_size=50 * P,
        )
        return s.best_fitness
    res = run_island_ga(
        IslandGaConfig(
            fn=fn, n_demes=P, mode=variant.mode, age=variant.age,
            n_generations=scale.ga_generations, seed=seed,
            machine=machine_for(scale, P, seed),
        )
    )
    return res.best_fitness


def run_quality(
    scale: Scale | None = None,
    fid: int | None = None,
    processor_counts: tuple[int, ...] | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Per (P, variant): optimum-found count and mean final best fitness."""
    scale = scale or current_scale()
    fid = fid or scale.ga_functions[0]
    fn = get_function(fid)
    counts = processor_counts or scale.processor_counts
    variants = GaVariant.standard_set(scale.ages)
    cells = [(P, variant) for P in counts for variant in [None, *variants]]
    keys = [(P, variant, r) for (P, variant) in cells for r in range(scale.ga_runs)]
    finals = parallel_map(
        _quality_run,
        [(scale, fid, P, variant, 1000 * r + fid) for (P, variant, r) in keys],
        jobs=jobs,
    )
    by_cell: dict[tuple, list[float]] = {}
    for (P, variant, _r), best in zip(keys, finals):
        by_cell.setdefault((P, variant), []).append(best)
    rows = []
    for P, variant in cells:
        bests = by_cell[(P, variant)]
        rows.append(
            {
                "P": P,
                "variant": variant.label if variant else "serial",
                "optimum_found": sum(int(b <= fn.optimum_threshold) for b in bests),
                "runs": scale.ga_runs,
                "mean_final_best": float(np.mean(bests)),
            }
        )
    return rows


def format_quality(rows: list[dict], fid: int) -> str:
    """Render Q1 solution-quality rows as a text table."""
    return text_table(
        ["P", "variant", "optimum found", "runs", "mean final best"],
        [
            [r["P"], r["variant"], r["optimum_found"], r["runs"], r["mean_final_best"]]
            for r in rows
        ],
        title=f"Q1 — GA solution quality (f{fid}), §4.3 metrics",
        float_fmt="{:.4g}",
    )
