"""Multi-core fan-out for independent experiment replicas.

Every experiment in this repository is a *merge over independent
replicas*: a (function × mode × age × seed) cell of Figure 2/4, one
(network × run) cell of Figure 3, one quality run of Q1.  Replicas share
no state — each builds its own :class:`~repro.cluster.machine.Machine`,
seeds its own RNG streams and returns plain data — so they are
embarrassingly parallel across cores, exactly like the independent-
replica simulations in Lubachevsky's parallel asynchronous-cellular-array
work the ROADMAP cites.

Determinism contract
--------------------
:func:`parallel_map` preserves *submission order*: results are merged by
configuration key (the order the caller enumerated the jobs), never by
completion order, and every replica derives its randomness from explicit
seeds in its arguments.  A run with ``REPRO_JOBS=8`` therefore produces
bit-identical tables and figures to a serial run — the parallelism is
observable only in wall-clock time.

Knobs
-----
``REPRO_JOBS``
    Worker-process count.  Unset or ``1`` → serial in-process execution
    (no pool, no pickling); ``0`` or ``auto`` → one worker per CPU;
    any other integer → that many workers.
``jobs=`` argument
    Per-call override of the environment knob.

The pool is created lazily per call and falls back to serial execution
when process pools are unavailable (restricted sandboxes, missing
semaphore support), so callers never have to special-case platforms.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")

#: environment variable naming the worker count
JOBS_ENV = "REPRO_JOBS"


def configured_jobs(env: str | None = None) -> int:
    """Worker count from ``REPRO_JOBS`` (see module docstring)."""
    raw = os.environ.get(JOBS_ENV) if env is None else env
    if raw is None or raw.strip() == "":
        return 1
    raw = raw.strip().lower()
    if raw == "auto":
        return os.cpu_count() or 1
    try:
        n = int(raw)
    except ValueError:
        raise ValueError(
            f"{JOBS_ENV}={raw!r}; expected an integer, 'auto', or unset"
        ) from None
    if n < 0:
        raise ValueError(f"{JOBS_ENV} must be >= 0, got {n}")
    return n if n > 0 else (os.cpu_count() or 1)


def parallel_map(
    fn: Callable[..., T],
    argtuples: Iterable[Sequence[Any]],
    jobs: int | None = None,
) -> list[T]:
    """``[fn(*args) for args in argtuples]`` across worker processes.

    Results come back in input order — the configuration-key order the
    caller enumerated — regardless of which replica finishes first.  With
    one job (the default without ``REPRO_JOBS``), runs serially in-process
    with zero overhead.  ``fn`` and every argument must be picklable
    (module-level functions and plain dataclasses).

    A replica that raises propagates its exception to the caller, exactly
    as the serial loop would (earlier-keyed replicas' results are simply
    discarded); pool *creation* failures degrade to the serial path.
    """
    argslist = [tuple(a) for a in argtuples]
    n = configured_jobs() if jobs is None else jobs
    n = min(n, len(argslist))
    if n <= 1:
        return [fn(*args) for args in argslist]
    try:
        executor = ProcessPoolExecutor(max_workers=n)
    except (OSError, NotImplementedError, PermissionError):
        # No usable process pool on this platform — run serially.
        return [fn(*args) for args in argslist]
    try:
        futures = [executor.submit(fn, *args) for args in argslist]
        return [f.result() for f in futures]
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
