"""Shared speedup machinery for the GA experiments.

Methodology (documented deviation from §5.1.1, see EXPERIMENTS.md): for
each (function, seed) we run the *corresponding sequential program* —
same total population N·P — for G generations and define the convergence
bar as the quality it reached at ``bar_fraction``·G; every variant's
completion time is its time-to-bar, and speedup is the serial
time-to-bar over it.  The paper instead ran the synchronous program a
fixed 1000 generations and required the asynchronous/controlled versions
to converge further; a common mid-trajectory bar measures the same
time-to-equal-quality quantity while being robust to the early quality
plateaus of island populations.

"Average performance" over functions follows the paper exactly: "the
ratio of the sum of the execution times for the serial program for all
the benchmarks to that for the parallel programs".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machine import MachineConfig
from repro.cluster.node import NodeSpec
from repro.core.coherence import CoherenceMode
from repro.faults.plan import FaultPlan
from repro.experiments.config import Scale
from repro.ga.functions import get_function
from repro.ga.island import IslandGaConfig, IslandGaResult, run_island_ga
from repro.ga.sga import run_serial_ga


@dataclass(frozen=True)
class GaVariant:
    """One bar of Figure 2/4: a coherence mode plus (for NON_STRICT) an age."""

    label: str
    mode: CoherenceMode
    age: int = 0

    @classmethod
    def standard_set(cls, ages: tuple[int, ...]) -> list["GaVariant"]:
        """The paper's variant sweep: sync, async, and Global_Read at each age."""
        out = [
            cls("sync", CoherenceMode.SYNCHRONOUS),
            cls("async", CoherenceMode.ASYNCHRONOUS),
        ]
        out += [cls(f"gr{a}", CoherenceMode.NON_STRICT, a) for a in ages]
        return out


VARIANTS = GaVariant.standard_set((0, 5, 10, 20, 30))


@dataclass
class GaTrial:
    """Serial-vs-variants measurements for one (function, seed, P, load)."""

    fid: int
    n_demes: int
    seed: int
    serial_time: float
    #: per-variant time-to-bar; None = did not converge within the cap
    times: dict[str, float | None]
    results: dict[str, IslandGaResult]


def machine_for(
    scale: Scale,
    P: int,
    seed: int,
    load_bps: float = 0.0,
    faults: FaultPlan | None = None,
) -> MachineConfig:
    """Machine config with the scale's load-skew model and optional loader."""
    rng = np.random.default_rng(seed)
    speeds = tuple(float(x) for x in rng.normal(1.0, scale.hetero_sigma, P))
    cfg = MachineConfig(
        n_nodes=P,
        seed=seed,
        node_spec=NodeSpec(jitter_sigma=scale.jitter_sigma),
        speed_factors=speeds,
        measure_warp=True,
        faults=faults,
    )
    return cfg.with_load(load_bps)


def run_ga_trial(
    scale: Scale,
    fid: int,
    P: int,
    seed: int,
    variants: list[GaVariant],
    load_bps: float = 0.0,
    faults: FaultPlan | None = None,
    shards: int = 1,
) -> GaTrial:
    """One seed's serial baseline + every variant on P demes.

    ``shards > 1`` runs each variant on the bounded-lag parallel kernel
    (:mod:`repro.sim.parallel`) — bit-identical results, wall-clock
    parallelism within the trial instead of across trials.
    """
    fn = get_function(fid)
    G = scale.ga_generations
    serial = run_serial_ga(fn, seed=seed, n_generations=G, population_size=50 * P)
    bar = float(serial.best_history[int(scale.bar_fraction * G)])
    serial_time = serial.time_to_target(bar)
    times: dict[str, float | None] = {}
    results: dict[str, IslandGaResult] = {}
    for variant in variants:
        cfg = IslandGaConfig(
            fn=fn,
            n_demes=P,
            mode=variant.mode,
            age=variant.age,
            n_generations=scale.ga_cap_factor * G,
            seed=seed,
            target=bar,
            machine=machine_for(scale, P, seed, load_bps, faults),
        )
        r = run_island_ga(cfg, shards=shards)
        times[variant.label] = r.completion_time
        results[variant.label] = r
    return GaTrial(
        fid=fid, n_demes=P, seed=seed, serial_time=serial_time,
        times=times, results=results,
    )


def speedups_over_trials(trials: list[GaTrial], labels: list[str]) -> dict[str, float]:
    """Ratio-of-sums speedups (the paper's averaging rule).

    A non-converged variant run is charged its full capped time, which
    both penalises it and keeps the ratio finite.
    """
    out: dict[str, float] = {}
    serial_total = sum(t.serial_time for t in trials)
    for label in labels:
        total = 0.0
        for t in trials:
            time = t.times[label]
            total += time if time is not None else t.results[label].total_time
        out[label] = serial_total / total if total > 0 else 0.0
    return out


def best_competitor_gain(speedups: dict[str, float]) -> tuple[str, float]:
    """Best Global_Read variant vs best of {serial, sync, async}.

    Returns ``(best_gr_label, gain)`` where gain is the fractional
    improvement (0.34 = "34% faster than the best competitor", the
    paper's headline statistic).  Serial enters the comparison with
    speedup 1.0 by definition.
    """
    gr = {k: v for k, v in speedups.items() if k.startswith("gr")}
    rivals = {k: v for k, v in speedups.items() if not k.startswith("gr")}
    rivals["serial"] = 1.0
    best_gr_label = max(gr, key=gr.__getitem__)
    best_rival = max(rivals.values())
    return best_gr_label, gr[best_gr_label] / best_rival - 1.0
