"""Figure 4 — GA speedups on the loaded network.

4-node configuration plus a dedicated loader node pair injecting 0.5, 1
or 2 Mbps of background traffic (§5.2, "due to node allocation policies,
we were restricted to studying only a 4-node configuration (plus 2 nodes
for the network loader program)").  Rows report, per offered load, the
per-variant speedups for the best-case function and the all-function
average, and the gain of the best Global_Read setting over the best
competitor — the paper's observation is that this gain *grows* with
load, reaching ~70 % at 2 Mbps for the best case.
"""

from __future__ import annotations

from repro.experiments.config import Scale, current_scale
from repro.experiments.reporting import text_table
from repro.experiments.runner import parallel_map
from repro.experiments.speedup import (
    GaVariant,
    best_competitor_gain,
    run_ga_trial,
    speedups_over_trials,
)
from repro.faults.plan import FaultPlan

FIGURE4_PROCS = 4


def run_figure4(
    scale: Scale | None = None,
    jobs: int | None = None,
    faults: FaultPlan | None = None,
    shards: int = 1,
) -> list[dict]:
    """One row per offered load: per-variant speedups on the loaded 4-node machine."""
    scale = scale or current_scale()
    variants = GaVariant.standard_set(scale.ages)
    labels = [v.label for v in variants]
    loads = (0.0, *scale.loads_bps)
    keys = [
        (load, fid, r)
        for load in loads
        for fid in scale.ga_functions
        for r in range(scale.ga_runs)
    ]
    trials = parallel_map(
        run_ga_trial,
        [
            (scale, fid, FIGURE4_PROCS, 1000 * r + fid, variants, load, faults, shards)
            for (load, fid, r) in keys
        ],
        jobs=jobs,
    )
    by_cell: dict[tuple[float, int], list] = {}
    for (load, fid, _r), trial in zip(keys, trials):
        by_cell.setdefault((load, fid), []).append(trial)
    rows = []
    for load in loads:
        trials_by_fid = {fid: by_cell[(load, fid)] for fid in scale.ga_functions}
        best_fid = scale.ga_functions[0]
        best_case = speedups_over_trials(trials_by_fid[best_fid], labels)
        all_trials = [t for ts in trials_by_fid.values() for t in ts]
        average = speedups_over_trials(all_trials, labels)
        bc_label, bc_gain = best_competitor_gain(best_case)
        avg_label, avg_gain = best_competitor_gain(average)
        rows.append(
            {
                "load_mbps": load / 1e6,
                "best_case_fid": best_fid,
                "best_case": best_case,
                "average": average,
                "best_case_gr": bc_label,
                "best_case_gain": bc_gain,
                "best_gr": avg_label,
                "gain_over_best_competitor": avg_gain,
            }
        )
    return rows


def format_figure4(rows: list[dict]) -> str:
    """Render Figure 4 rows as the best-case and average text tables."""
    labels = list(rows[0]["average"].keys())
    out = []
    for kind, label_key, gain_key in (
        ("best_case", "best_case_gr", "best_case_gain"),
        ("average", "best_gr", "gain_over_best_competitor"),
    ):
        out.append(
            text_table(
                ["load (Mbps)", *labels, "best GR vs best competitor"],
                [
                    [
                        r["load_mbps"],
                        *[r[kind][label] for label in labels],
                        f"{r[label_key]} +{100 * r[gain_key]:.0f}%",
                    ]
                    for r in rows
                ],
                title=f"Figure 4 — GA speedups, loaded network, 4 nodes ({kind})",
            )
        )
    return "\n\n".join(out)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.figure4`` — run and print Figure 4."""
    from repro.experiments.cli import (
        experiment_parser,
        parse_experiment_args,
        write_observability,
    )

    parser = experiment_parser(
        "Figure 4 — GA speedups under background network load, optionally "
        "with seeded fault injection (--faults)."
    )
    args = parse_experiment_args(parser, argv)
    if args.faults is not None:
        print(f"fault plan: {args.faults.describe()}")
    print(
        format_figure4(
            run_figure4(
                args.scale, jobs=args.jobs, faults=args.faults, shards=args.shards
            )
        )
    )
    # the traced representative run uses the sweep's heaviest load — the
    # regime where blocked time and warp are most informative
    write_observability(
        args,
        app="ga",
        load_bps=args.scale.loads_bps[-1],
        n_nodes=FIGURE4_PROCS,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
