"""Figure 3 — Bayesian-network speedups on the unloaded network.

P = 2 (the paper's small networks "did not exhibit enough parallelism to
be run on larger configurations"); per network {A, AA, C, Hailfinder}
and per variant: speedup of the parallel sampler over the serial one,
plus the average row (ratio of summed serial times to summed parallel
times) and the best-Global_Read-vs-best-competitor gain.
"""

from __future__ import annotations

import sys

from repro.bayes.logic_sampling import run_serial_logic_sampling
from repro.bayes.parallel import ParallelLsConfig, run_parallel_logic_sampling
from repro.core.coherence import CoherenceMode
from repro.experiments.config import Scale, current_scale
from repro.experiments.reporting import text_table
from repro.experiments.runner import parallel_map
from repro.experiments.speedup import best_competitor_gain, machine_for
from repro.experiments.table2 import NETWORK_NAMES, build_network, pick_query


def _variants(scale: Scale) -> list[tuple[str, CoherenceMode, int]]:
    out = [
        ("sync", CoherenceMode.SYNCHRONOUS, 0),
        ("async", CoherenceMode.ASYNCHRONOUS, 0),
    ]
    out += [(f"gr{a}", CoherenceMode.NON_STRICT, a) for a in scale.ages]
    return out


def _figure3_cell(
    scale: Scale,
    net_name: str,
    r: int,
    variants: list[tuple[str, CoherenceMode, int]],
    n_procs: int,
) -> tuple[float, dict[str, float]]:
    """One (network × run) replica: serial time plus per-variant time.

    Rebuilds the network from its name (deterministic, cheap) so the
    replica is self-contained and picklable for the parallel runner.
    """
    net = build_network(net_name)
    seed = 500 * r + 7
    query = pick_query(net, seed=0)
    serial = run_serial_logic_sampling(net, query=query, seed=seed)
    par: dict[str, float] = {}
    for label, mode, age in variants:
        pr = run_parallel_logic_sampling(
            ParallelLsConfig(
                net=net,
                query=query,
                n_procs=n_procs,
                mode=mode,
                age=age,
                seed=seed,
                machine=machine_for(scale, n_procs, seed),
                max_iterations=scale.bn_max_iterations,
            )
        )
        # a non-converged run is charged the time it spent
        par[label] = (
            pr.completion_time
            if pr.completion_time is not None
            else serial.sim_time * 10.0
        )
    return serial.sim_time, par


def run_figure3(
    scale: Scale | None = None, n_procs: int = 2, jobs: int | None = None
) -> list[dict]:
    """One row per network plus the average row: per-variant speedups at ``n_procs``."""
    scale = scale or current_scale()
    variants = _variants(scale)
    keys = [(name, r) for name in NETWORK_NAMES for r in range(scale.bn_runs)]
    cells = parallel_map(
        _figure3_cell,
        [(scale, name, r, variants, n_procs) for (name, r) in keys],
        jobs=jobs,
    )
    by_net: dict[str, list[tuple[float, dict[str, float]]]] = {}
    for (name, _r), cell in zip(keys, cells):
        by_net.setdefault(name, []).append(cell)
    rows = []
    totals: dict[str, float] = {label: 0.0 for label, _, _ in variants}
    serial_total = 0.0
    for net_name in NETWORK_NAMES:
        serial_times = [c[0] for c in by_net[net_name]]
        par_times: dict[str, list[float]] = {
            label: [c[1][label] for c in by_net[net_name]] for label, _, _ in variants
        }
        serial_sum = sum(serial_times)
        serial_total += serial_sum
        speedups = {}
        for label, _, _ in variants:
            total = sum(par_times[label])
            totals[label] += total
            speedups[label] = serial_sum / total if total else 0.0
        best_label, gain = best_competitor_gain(speedups)
        rows.append(
            {
                "network": net_name,
                "speedups": speedups,
                "best_gr": best_label,
                "gain_over_best_competitor": gain,
            }
        )
    avg = {label: serial_total / totals[label] for label in totals}
    best_label, gain = best_competitor_gain(avg)
    rows.append(
        {
            "network": "average",
            "speedups": avg,
            "best_gr": best_label,
            "gain_over_best_competitor": gain,
        }
    )
    return rows


def format_figure3(rows: list[dict]) -> str:
    """Render Figure 3 rows as a text table."""
    labels = list(rows[0]["speedups"].keys())
    return text_table(
        ["network", *labels, "best GR vs best competitor"],
        [
            [
                r["network"],
                *[r["speedups"][label] for label in labels],
                f"{r['best_gr']} +{100 * r['gain_over_best_competitor']:.0f}%",
            ]
            for r in rows
        ],
        title="Figure 3 — Bayesian-network speedups, 2 processors, unloaded network",
    )


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.figure3`` — run and print Figure 3."""
    from repro.experiments.cli import (
        experiment_parser,
        parse_experiment_args,
        write_observability,
    )

    parser = experiment_parser(
        "Figure 3 — Bayesian-network inference speedups over the serial "
        "sampler, 2 processors, unloaded network.",
        faults=False,
    )
    args = parse_experiment_args(parser, argv)
    if args.shards > 1:
        # The logic-sampling workers share an in-process evidence oracle
        # and rollback state that the record protocol does not ghost yet
        # (docs/parallel-kernel.md, "Scope"); the Bayes driver therefore
        # always runs on the serial kernel.
        print(
            "note: --shards applies to the GA drivers only; the Bayes "
            "sampler runs on the serial kernel",
            file=sys.stderr,
        )
    print(format_figure3(run_figure3(args.scale, jobs=args.jobs)))
    write_observability(args, app="bayes", n_nodes=2)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
