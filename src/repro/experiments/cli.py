"""Shared command-line plumbing for the experiment runners.

Every runner module exposes ``python -m repro.experiments.<name>`` with
the same knobs:

``--scale``
    Run-size preset, overriding the ``REPRO_SCALE`` environment variable.
``--jobs``
    Worker processes for :func:`repro.experiments.runner.parallel_map`.
``--faults``
    A :meth:`repro.faults.plan.FaultPlan.parse` spec turning the run
    into a chaos experiment (GA-capable drivers only; see DESIGN.md §9).
``--trace PATH`` / ``--metrics PATH``
    Observability artifacts (DESIGN.md §10): after the experiment, run
    one representative traced trial matching the experiment's machine
    shape and write its JSONL event trace / metrics-snapshot JSON.
    Render the trace with ``python -m repro.obs report PATH``.
``--profile PATH``
    Host-time section profile of the traced trial (DESIGN.md §15): a
    ``repro-obs-prof/1`` envelope attributing the trial's host wall
    clock to kernel loop / subsystem / numpy sections.  Determinism-
    neutral — golden digests are pinned with profiling on.
``--store DIR``
    Archive the traced trial (trace, metrics, profile) into the
    content-addressed run store under ``DIR/runs/<digest>/`` so
    ``python -m repro.obs store``/``diff``/``trend`` can reach it later.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass

from repro.experiments.config import Scale, current_scale
from repro.faults.plan import FaultPlan

_SCALES = {"smoke": Scale.smoke, "default": Scale.default, "full": Scale.full}


@dataclass(frozen=True)
class ExperimentArgs:
    """Resolved common options shared by every experiment driver."""

    scale: Scale
    jobs: int | None
    faults: FaultPlan | None
    trace: str | None
    metrics: str | None
    #: worker shards for the bounded-lag parallel kernel (per trial);
    #: 1 = serial kernel (repro.sim.parallel, DESIGN.md §13)
    shards: int = 1
    #: host-time profile destination for the traced trial (DESIGN.md §15)
    profile: str | None = None
    #: run-store root to archive the traced trial into
    store: str | None = None


def experiment_parser(
    description: str, faults: bool = True
) -> argparse.ArgumentParser:
    """Build the shared argument parser.

    ``faults=False`` omits the ``--faults`` knob for drivers whose run
    function takes no fault plan (table1/table2, figure2/figure3).
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default=None,
        help="run-size preset (default: the REPRO_SCALE environment variable)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the trial fan-out (default: auto)",
    )
    if faults:
        parser.add_argument(
            "--faults",
            default=None,
            metavar="SPEC",
            help=(
                "fault-injection spec, e.g. "
                "'drop=0.02,dup=0.01,reorder=0.05,seed=7,stop=2.0' "
                "(see repro.faults.plan.FaultPlan.parse)"
            ),
        )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run each simulated trial on the bounded-lag parallel kernel "
            "across N worker processes (bit-identical to serial; see "
            "docs/parallel-kernel.md). Orthogonal to --jobs, which fans "
            "out independent trials — prefer --jobs when there are many "
            "trials, --shards when one big trial dominates"
        ),
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "write a structured JSONL event trace of one representative "
            "traced trial to PATH (render: python -m repro.obs report PATH)"
        ),
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write the traced trial's metrics-snapshot JSON to PATH",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help=(
            "write a host-time section profile (repro-obs-prof/1 JSON) of "
            "the traced trial to PATH (render: python -m repro.obs report "
            "TRACE --prof PATH); determinism-neutral"
        ),
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "archive the traced trial (trace/metrics/profile) into the "
            "content-addressed run store at DIR/runs/<digest>/ "
            "(inspect: python -m repro.obs store --root DIR ls)"
        ),
    )
    return parser


def parse_experiment_args(
    parser: argparse.ArgumentParser, argv: list[str] | None = None
) -> ExperimentArgs:
    """Resolve the shared options into an :class:`ExperimentArgs`."""
    args = parser.parse_args(argv)
    scale = _SCALES[args.scale]() if args.scale else current_scale()
    raw_faults = getattr(args, "faults", None)
    faults = FaultPlan.parse(raw_faults) if raw_faults else None
    if faults is not None and (faults.messages.drop > 0 or any(
        f.kind == "crash" for f in faults.node_faults
    )):
        # the GA migrant exchange has no retransmission layer: a lost
        # final update legitimately blocks its reader forever, which
        # surfaces as a DeadlockError (DESIGN.md §9). Warn, don't forbid
        # — loss plans are fine for drivers without blocking reads.
        print(
            "warning: lossy fault plan (drop/crash) — GA-based drivers may "
            "deadlock on a lost migrant update; prefer dup/delay/reorder or "
            "pause/slow node faults (see DESIGN.md §9)",
            file=sys.stderr,
        )
    shards = getattr(args, "shards", 1)
    if shards < 1:
        parser.error(f"--shards must be >= 1, got {shards}")
    return ExperimentArgs(
        scale=scale,
        jobs=args.jobs,
        faults=faults,
        trace=args.trace,
        metrics=args.metrics,
        shards=shards,
        profile=args.profile,
        store=args.store,
    )


def write_observability(
    args: ExperimentArgs,
    app: str,
    load_bps: float = 0.0,
    n_nodes: int = 4,
) -> None:
    """Honour ``--trace``/``--metrics``/``--profile``/``--store``.

    Delegates to :func:`repro.obs.integration.trace_experiment` (lazy
    import: drivers that never pass the knobs pay nothing).
    """
    if not (args.trace or args.metrics or args.profile or args.store):
        return
    from repro.obs.integration import trace_experiment

    trace_experiment(
        app,
        args.scale,
        args.trace,
        args.metrics,
        load_bps=load_bps,
        n_nodes=n_nodes,
        faults=args.faults,
        profile_path=args.profile,
        store_root=args.store,
    )
