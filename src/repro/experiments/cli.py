"""Shared command-line plumbing for the experiment runners.

Every runner module exposes ``python -m repro.experiments.<name>`` with
the same three knobs: ``--scale`` (overrides ``REPRO_SCALE``),
``--jobs`` (worker processes for :func:`repro.experiments.runner.
parallel_map`) and ``--faults`` (a :meth:`repro.faults.plan.FaultPlan.
parse` spec turning the run into a chaos experiment — see DESIGN.md §9
and EXPERIMENTS.md "Chaos experiments").
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import Scale, current_scale
from repro.faults.plan import FaultPlan

_SCALES = {"smoke": Scale.smoke, "default": Scale.default, "full": Scale.full}


def experiment_parser(description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default=None,
        help="run-size preset (default: the REPRO_SCALE environment variable)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the trial fan-out (default: auto)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "fault-injection spec, e.g. "
            "'drop=0.02,dup=0.01,reorder=0.05,seed=7,stop=2.0' "
            "(see repro.faults.plan.FaultPlan.parse)"
        ),
    )
    return parser


def parse_experiment_args(
    parser: argparse.ArgumentParser, argv: list[str] | None = None
) -> tuple[Scale, int | None, FaultPlan | None]:
    """Resolve (scale, jobs, fault plan) from parsed arguments."""
    args = parser.parse_args(argv)
    scale = _SCALES[args.scale]() if args.scale else current_scale()
    faults = FaultPlan.parse(args.faults) if args.faults else None
    if faults is not None and (faults.messages.drop > 0 or any(
        f.kind == "crash" for f in faults.node_faults
    )):
        # the GA migrant exchange has no retransmission layer: a lost
        # final update legitimately blocks its reader forever, which
        # surfaces as a DeadlockError (DESIGN.md §9). Warn, don't forbid
        # — loss plans are fine for drivers without blocking reads.
        print(
            "warning: lossy fault plan (drop/crash) — GA-based drivers may "
            "deadlock on a lost migrant update; prefer dup/delay/reorder or "
            "pause/slow node faults (see DESIGN.md §9)",
            file=sys.stderr,
        )
    return scale, args.jobs, faults
