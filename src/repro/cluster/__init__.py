"""Multicomputer model: nodes, machine assembly, batch allocation.

Models the paper's platform (§4.1): an IBM SP2 whose nodes hold one
application process each, connected by a 10 Mbps Ethernet (default) or the
SP2 high-speed switch, with jobs run under LoadLeveler on dedicated nodes.
"""

from repro.cluster.node import Node, NodeSpec
from repro.cluster.machine import Machine, MachineConfig
from repro.cluster.loadleveler import Job, JobState, LoadLeveler

__all__ = [
    "Node",
    "NodeSpec",
    "Machine",
    "MachineConfig",
    "Job",
    "JobState",
    "LoadLeveler",
]
