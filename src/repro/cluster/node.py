"""Per-node compute model.

Applications express work in *baseline seconds* — the cost of an operation
on the paper's reference node (a 77 MHz RS/6000-591; serial GA and BN
costs are calibrated against the paper's reported uniprocessor times, see
``repro.bayes`` / ``repro.ga`` cost models).  A :class:`Node` converts a
baseline cost to this node's cost by dividing by its ``speed_factor`` and
applying multiplicative *jitter*.

Jitter matters: §3.2's "load skew" — a few nodes transiently slower per
iteration — is one of the things `Global_Read` tolerates and barriers do
not (a barrier waits for the *max* of the per-node iteration times, which
grows with the processor count).  We model it as lognormal noise with
configurable sigma, drawn from the node's own named RNG stream so runs
stay reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.kernel import Kernel


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one node."""

    name: str = "RS6000-591"
    clock_hz: float = 77e6
    #: relative speed vs. the reference node (1.0 = reference)
    speed_factor: float = 1.0
    #: sigma of lognormal per-operation compute-time noise (0 = none)
    jitter_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be >= 0")


class Node:
    """A compute node: converts baseline costs into this node's costs."""

    def __init__(self, kernel: Kernel, node_id: int, spec: NodeSpec) -> None:
        self.kernel = kernel
        self.node_id = node_id
        self.spec = spec
        #: optional repro.faults.NodeFaultModel; maps compute intervals
        #: through scheduled pause/slowdown/crash windows
        self.fault_model = None
        self._rng = kernel.rng.get(f"node{node_id}.jitter")
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); choose mu so the
        # mean multiplier is exactly 1 and jitter never biases mean cost.
        self._mu = -0.5 * spec.jitter_sigma**2

    def cost(self, baseline_seconds: float, label: str | None = None) -> float:
        """This node's cost for work that takes ``baseline_seconds`` on the
        reference node (jittered, mean-preserving).

        ``label`` optionally names the operation ("evolve", "sample", …)
        and rides along on the ``node.compute`` trace event as ``op`` so
        the causal span builder can tell application phases apart; it has
        no effect on the returned cost.
        """
        if baseline_seconds < 0:
            raise ValueError("baseline cost must be >= 0")
        scaled = baseline_seconds / self.spec.speed_factor
        if self.spec.jitter_sigma != 0.0 and baseline_seconds != 0.0:
            mult = float(
                np.exp(self._mu + self.spec.jitter_sigma * self._rng.standard_normal())
            )
            scaled *= mult
        if self.fault_model is not None:
            scaled = self.fault_model.perturb(self.kernel.now, scaled)
        bus = self.kernel.obs
        if bus is not None:
            fields: dict = dict(baseline=baseline_seconds, cost=scaled)
            if label is not None:
                fields["op"] = label
            bus.emit("node.compute", node=self.node_id, **fields)
        return scaled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.node_id}, {self.spec.name}, x{self.spec.speed_factor})"
