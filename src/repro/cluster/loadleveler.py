"""LoadLeveler-style batch scheduling.

§4.1: "We used the IBM SP2's LoadLeveler, which schedules user jobs in
batch mode, to run our programs so that the nodes were ensured to be
relatively free from background load during the experiments."

This module models that allocator: a fixed pool of nodes, a FIFO queue of
jobs each requesting some number of *dedicated* nodes, first-fit
allocation, and release on completion.  The experiment harness uses it to
mirror the paper's node-allocation constraints (e.g. §5.2's "due to node
allocation policies, we were restricted to ... a 4-node configuration plus
2 nodes for the network loader").
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class JobState(enum.Enum):
    """Lifecycle of a batch job: queued, running, or done."""
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"


@dataclass
class Job:
    """One batch job: a node-count request with lifecycle bookkeeping."""

    nodes_requested: int
    name: str = ""
    job_id: int = field(default_factory=itertools.count().__next__)
    state: JobState = JobState.QUEUED
    allocated: tuple = ()
    submit_order: int = -1

    def __post_init__(self) -> None:
        if self.nodes_requested < 1:
            raise ValueError("a job needs at least one node")


class LoadLeveler:
    """FIFO batch allocator over a fixed node pool.

    Strict FIFO (no backfill) by default, which is how the paper's runs
    obtained dedicated nodes; ``backfill=True`` enables conservative
    backfill — a smaller job may jump ahead only if the head job cannot
    run yet — as an extension point exercised by the tests.
    """

    def __init__(self, n_nodes: int, backfill: bool = False) -> None:
        if n_nodes < 1:
            raise ValueError("pool needs at least one node")
        self.pool = set(range(n_nodes))
        self.free = set(self.pool)
        self.queue: list[Job] = []
        self.backfill = backfill
        self._order = itertools.count()

    def submit(self, job: Job) -> Job:
        """Queue a job; it may start immediately if nodes are free."""
        if job.nodes_requested > len(self.pool):
            raise ValueError(
                f"job wants {job.nodes_requested} nodes; pool has {len(self.pool)}"
            )
        if job.state is not JobState.QUEUED or job.submit_order >= 0:
            raise ValueError("job was already submitted")
        job.submit_order = next(self._order)
        self.queue.append(job)
        self._schedule()
        return job

    def release(self, job: Job) -> None:
        """Job finished: return its nodes and try to start queued jobs."""
        if job.state is not JobState.RUNNING:
            raise ValueError(f"cannot release job in state {job.state}")
        job.state = JobState.DONE
        self.free.update(job.allocated)
        self._schedule()

    def running(self) -> list[Job]:
        """Jobs currently holding nodes."""
        return [j for j in self.queue if j.state is JobState.RUNNING]

    def queued(self) -> list[Job]:
        """Jobs waiting for nodes, in submission order."""
        return [j for j in self.queue if j.state is JobState.QUEUED]

    def _schedule(self) -> None:
        pending = sorted(self.queued(), key=lambda j: j.submit_order)
        for i, job in enumerate(pending):
            if job.nodes_requested <= len(self.free):
                self._start(job)
            elif not self.backfill:
                break  # strict FIFO: head of queue blocks everyone behind
            # with backfill: keep scanning for jobs that fit

    def _start(self, job: Job) -> None:
        alloc = tuple(sorted(self.free))[: job.nodes_requested]
        self.free.difference_update(alloc)
        job.allocated = alloc
        job.state = JobState.RUNNING
