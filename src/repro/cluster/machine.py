"""Machine assembly: kernel + network + PVM + nodes in one object.

:class:`Machine` is the entry point applications and experiments use: it
wires a simulation kernel, the chosen interconnect, the PVM layer and the
per-node compute models together, and exposes convenience methods for
spawning application processes on nodes, attaching background loaders
(Figure 4) and measuring warp (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Generator

from repro.cluster.node import Node, NodeSpec
from repro.faults.injectors import FaultInjector, install_faults
from repro.faults.plan import FaultPlan
from repro.network.ethernet import EthernetConfig, EthernetNetwork
from repro.network.loader import LoaderConfig, NetworkLoader
from repro.network.switch import SwitchConfig, SwitchNetwork
from repro.network.switched import SwitchedConfig, SwitchedNetwork
from repro.network.warp import WarpMeter
from repro.obs.bus import TraceBus
from repro.pvm.vm import PvmOverheads, Task, VirtualMachine
from repro.sim.kernel import CompletionCounter, Kernel
from repro.sim.process import ProcessHandle


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to build a reproducible machine."""

    n_nodes: int = 4
    seed: int = 0
    interconnect: str = "ethernet"  # or "switch" / "switched"
    ethernet: EthernetConfig = field(default_factory=EthernetConfig)
    switch: SwitchConfig = field(default_factory=SwitchConfig)
    switched: SwitchedConfig = field(default_factory=SwitchedConfig)
    #: let Task.mcast use the fabric's multicast tree (one BROADCAST frame
    #: replicated in-tree) when the destination set is every other task;
    #: off by default — the paper's PVM multicasts per destination
    hw_multicast: bool = False
    pvm_overheads: PvmOverheads = field(default_factory=PvmOverheads)
    node_spec: NodeSpec = field(default_factory=NodeSpec)
    #: per-node speed factors (len == n_nodes) overriding node_spec's;
    #: empty = homogeneous
    speed_factors: tuple = ()
    #: offered background loads in bps; each gets its own loader node pair
    loader_bps: tuple = ()
    loader_frame_bytes: int = 1024
    measure_warp: bool = False
    #: optional fault-injection schedule; None = healthy machine
    faults: FaultPlan | None = None
    #: attach a repro.obs trace bus to the kernel (determinism-neutral:
    #: the run is bit-identical with tracing on or off — pinned by
    #: tests/obs); also makes the warp meter keep raw samples so the
    #: metrics snapshot can report per-stream percentiles
    trace: bool = False
    #: trace-bus capacity; overflow increments TraceBus.dropped
    trace_max_events: int = 500_000
    #: stream the trace to a rotating gzip sink at this path instead of
    #: buffering it: peak trace memory becomes O(trace_flush_every)
    #: regardless of run length and no event is ever dropped (the
    #: long-run / run-store path; finalize with ``obs.write_jsonl()``)
    trace_sink: str | None = None
    #: events buffered between sink flushes when trace_sink is set
    trace_flush_every: int = 5_000

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("need at least one node")
        if self.interconnect not in ("ethernet", "switch", "switched"):
            raise ValueError(f"unknown interconnect {self.interconnect!r}")
        if self.hw_multicast and self.interconnect != "switched":
            raise ValueError("hw_multicast requires the 'switched' interconnect")
        if self.speed_factors and len(self.speed_factors) != self.n_nodes:
            raise ValueError("speed_factors length must equal n_nodes")

    def with_load(self, bps: float) -> "MachineConfig":
        """Copy of this config with one background loader at ``bps``."""
        return replace(self, loader_bps=(bps,) if bps > 0 else ())


class Machine:
    """A simulated multicomputer ready to run application processes."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.kernel = Kernel(seed=config.seed)
        self.obs: TraceBus | None = None
        if config.trace:
            # installed before any other component so every subsystem's
            # `kernel.obs` lookup (dynamic or cached at construction)
            # sees the bus
            sink = None
            if config.trace_sink:
                from repro.obs.bus import GzipJsonlSink

                sink = GzipJsonlSink(config.trace_sink)
            self.obs = TraceBus(
                clock=lambda: self.kernel.now,
                max_events=config.trace_max_events,
                sink=sink,
                flush_every=config.trace_flush_every,
            )
            self.kernel.obs = self.obs
        if config.interconnect == "ethernet":
            self.network = EthernetNetwork(self.kernel, config.ethernet)
        elif config.interconnect == "switched":
            self.network = SwitchedNetwork(self.kernel, config.switched)
        else:
            self.network = SwitchNetwork(self.kernel, config.switch)
        self.vm = VirtualMachine(
            self.kernel,
            self.network,
            config.pvm_overheads,
            hw_multicast=config.hw_multicast,
        )
        self.nodes: list[Node] = []
        self.tasks: list[Task] = []
        for i in range(config.n_nodes):
            spec = config.node_spec
            if config.speed_factors:
                spec = replace(spec, speed_factor=config.speed_factors[i])
            self.nodes.append(Node(self.kernel, i, spec))
            self.tasks.append(self.vm.add_task(i))
        # Loader nodes occupy ids above the application nodes, mirroring
        # the paper's "two other nodes" running the loader program.
        self.loaders: list[NetworkLoader] = []
        next_id = config.n_nodes
        for k, bps in enumerate(config.loader_bps):
            loader = NetworkLoader(
                self.kernel,
                self.network,
                LoaderConfig(
                    offered_load_bps=bps,
                    frame_payload_bytes=config.loader_frame_bytes,
                ),
                src_node=next_id,
                dst_node=next_id + 1,
                name=f"loader{k}",
            )
            next_id += 2
            loader.start()
            self.loaders.append(loader)
        self.warp: WarpMeter | None = None
        if config.measure_warp:
            self.warp = WarpMeter(
                kinds={"pvm"}, keep_samples=config.trace
            ).attach(self.network)
        # Faults install *last* so the message injector wraps the final
        # network._deliver (warp and observers see post-fault deliveries
        # only — a dropped frame truly never arrives anywhere).
        self.faults: FaultInjector | None = None
        if config.faults is not None and not config.faults.is_noop:
            self.faults = install_faults(
                self.kernel, self.network, self.nodes, config.faults
            )
        self._handles: list[ProcessHandle] = []

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of compute nodes in this machine."""
        return self.config.n_nodes

    def spawn_on(
        self,
        node_id: int,
        make_proc: Callable[[Node, Task], Generator],
        name: str | None = None,
    ) -> ProcessHandle:
        """Spawn ``make_proc(node, task)`` as the process on ``node_id``."""
        node = self.nodes[node_id]
        task = self.tasks[node_id]
        handle = self.kernel.spawn(
            make_proc(node, task), name=name or f"node{node_id}"
        )
        self._handles.append(handle)
        return handle

    def run_to_completion(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run until every spawned application process finishes.

        Returns the completion time (simulated seconds) — the paper's
        primary metric.  The loaders keep injecting, so we stop on process
        completion rather than queue drain.
        """
        if not self._handles:
            raise RuntimeError("no application processes spawned")
        counter = CompletionCounter(self._handles)
        self.kernel.run(
            stop_when=counter.all_done,
            until=until,
            max_events=max_events,
        )
        for h in self._handles:
            if h.error is not None:  # surfaced via ProcessFailure normally
                raise h.error
            if not h.done:
                from repro.sim.errors import DeadlockError

                raise DeadlockError(
                    [p.describe_block() for p in self._handles if not p.done]
                )
        return self.kernel.now

    def results(self) -> list:
        """Per-node results collected by :meth:`run_program`, in node order."""
        return [h.result for h in self._handles]
