"""Run instrumented island-GA configs and format race-classification tables.

The acceptance experiment for the classifier is the paper's own P-node
f1 island GA in all three coherence modes: the synchronous organisation
must classify race-free, the fully asynchronous one must show unbounded
races, and `Global_Read(age)` must show *only* tolerated races whose
staleness respects the bound.  :func:`classify_island_run` runs one
mode; :func:`classify_three_modes` runs the comparison the paper's
premise rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.races import RaceClassifier, attach_race_classifier
from repro.core.coherence import CoherenceMode
from repro.ga.functions import get_function
from repro.ga.island import IslandGaConfig, IslandGaResult, run_island_ga

#: CLI spellings for the coherence modes
MODE_NAMES = {
    "sync": CoherenceMode.SYNCHRONOUS,
    "async": CoherenceMode.ASYNCHRONOUS,
    "gr": CoherenceMode.NON_STRICT,
}


@dataclass
class ClassifiedRun:
    """One instrumented run: the GA result plus the race verdicts."""

    mode: CoherenceMode
    age: int
    classifier: RaceClassifier
    result: IslandGaResult

    @property
    def mode_label(self) -> str:
        """Short label for the run's coherence mode (e.g. ``gr10``)."""
        if self.mode is CoherenceMode.NON_STRICT:
            return f"Global_Read(age={self.age})"
        return self.mode.value

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dict form of the classified run."""
        return {
            "mode": self.mode.value,
            "age": self.age,
            "total_time": self.result.total_time,
            "best_fitness": self.result.best_fitness,
            **self.classifier.summary(),
        }


def classify_island_run(
    mode: CoherenceMode,
    fid: int = 1,
    n_demes: int = 4,
    age: int = 10,
    n_generations: int = 60,
    seed: int = 0,
) -> ClassifiedRun:
    """Run one island-GA config with the race classifier attached."""
    cfg = IslandGaConfig(
        fn=get_function(fid),
        n_demes=n_demes,
        mode=mode,
        age=age if mode is CoherenceMode.NON_STRICT else 0,
        n_generations=n_generations,
        seed=seed,
    )
    holder: list[RaceClassifier] = []

    def instrument(dsm: Any) -> None:
        holder.append(attach_race_classifier(dsm))

    result = run_island_ga(cfg, instrument=instrument)
    return ClassifiedRun(mode=mode, age=cfg.age, classifier=holder[0], result=result)


def classify_three_modes(
    fid: int = 1,
    n_demes: int = 4,
    age: int = 10,
    n_generations: int = 60,
    seed: int = 0,
) -> list[ClassifiedRun]:
    """The sync/async/`Global_Read` comparison on one function."""
    return [
        classify_island_run(mode, fid, n_demes, age, n_generations, seed)
        for mode in (
            CoherenceMode.SYNCHRONOUS,
            CoherenceMode.ASYNCHRONOUS,
            CoherenceMode.NON_STRICT,
        )
    ]


def race_table(runs: list[ClassifiedRun]) -> str:
    """Fixed-width classification table over a list of runs."""
    headers = (
        "mode", "reads", "clean", "sync'd", "tolerated", "unbounded",
        "max-stale", "violations",
    )
    rows = [headers]
    for run in runs:
        c = run.classifier
        rows.append(
            (
                run.mode_label,
                str(c.reads_checked),
                str(c.clean_reads),
                str(c.synchronized_pairs),
                str(c.tolerated_races),
                str(c.unbounded_races),
                str(c.max_observed_staleness()),
                str(c.total_violations),
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
