"""``python -m repro.analysis`` — lint, race classification, reports.

Subcommands and exit codes (CI-friendly throughout):

``lint [paths...] [--json] [--select RPR001,...]``
    0 = clean, 1 = findings, 2 = unreadable/unparsable input.

``races --mode {sync,async,gr} [...] [--fail-on WHAT]``
    Runs one instrumented island-GA config and prints the classifier
    summary.  ``--fail-on`` picks the gate: ``violations`` (default —
    any broken consistency invariant), ``unbounded`` (additionally any
    unbounded race), ``any-race`` or ``none``.

``report [...]``
    Runs all three coherence modes and prints the classification table;
    exits 1 unless the paper's expected shape holds (sync race-free,
    async shows unbounded races, `Global_Read` shows only tolerated
    races within its bound).

``coherence [paths...] [--json] [--traces DIR] [--races FILE]
[--baseline FILE] [--write-baseline FILE]``
    Static whole-program DSM coherence analysis: discovers every
    access site, classifies each location's race tolerance, checks
    declared ``dsm_contract`` staleness contracts, and (with
    ``--traces``/``--races``) cross-validates against dynamic
    evidence.  0 = clean, 1 = non-baselined findings, 2 = the
    analyzer could not do its job.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.analysis.lint import DEFAULT_EXCLUDES, format_findings, lint_paths
from repro.analysis.report import (
    MODE_NAMES,
    classify_island_run,
    classify_three_modes,
    race_table,
)
from repro.analysis.coherence.driver import (
    DEFAULT_BASELINE as DEFAULT_COHERENCE_BASELINE,
)
from repro.util.envelope import make_envelope, render_envelope, write_envelope

#: schema tags of the two run-classification ``--json`` documents
RACES_SCHEMA = "repro-analysis-races/1"
REPORT_SCHEMA = "repro-analysis-report/1"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis and race classification for the repro codebase.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the RPR0xx determinism lint")
    lint.add_argument("paths", nargs="+", help="files or directories to lint")
    lint.add_argument("--json", action="store_true", help="machine-readable output")
    lint.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    lint.add_argument(
        "--exclude",
        action="append",
        default=None,
        help=f"extra exclude fragment (defaults: {', '.join(DEFAULT_EXCLUDES)})",
    )

    def add_run_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--fid", type=int, default=1, help="test function id (default f1)")
        p.add_argument("--demes", type=int, default=4, help="island count (default 4)")
        p.add_argument("--age", type=int, default=10, help="Global_Read age bound")
        p.add_argument("--generations", type=int, default=60)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--json", action="store_true", help="machine-readable output")

    races = sub.add_parser("races", help="classify races in one instrumented run")
    races.add_argument("--mode", choices=sorted(MODE_NAMES), required=True)
    add_run_args(races)
    races.add_argument(
        "--fail-on",
        choices=("violations", "unbounded", "any-race", "none"),
        default="violations",
        help="what makes the exit code non-zero (default: violations)",
    )

    report = sub.add_parser(
        "report", help="classify all three coherence modes and check the shape"
    )
    add_run_args(report)

    coh = sub.add_parser(
        "coherence",
        help="static DSM access classification and contract checking",
    )
    coh.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    coh.add_argument("--json", action="store_true", help="machine-readable output")
    coh.add_argument(
        "--traces",
        action="append",
        default=None,
        help="trace JSONL file or directory for static-dynamic "
        "cross-validation (repeatable)",
    )
    coh.add_argument(
        "--races",
        action="append",
        default=None,
        help="a 'races --json' document for cross-validation (repeatable)",
    )
    coh.add_argument(
        "--baseline",
        default=None,
        help="suppression baseline file "
        f"(default: {DEFAULT_COHERENCE_BASELINE} when it exists)",
    )
    coh.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the default baseline file",
    )
    coh.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the current findings' fingerprints as a baseline "
        "and exit 0",
    )
    coh.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the JSON envelope to FILE",
    )
    return parser


def _cmd_lint(args: argparse.Namespace) -> int:
    select = args.select.split(",") if args.select else None
    if select is not None:
        from repro.analysis.rules import ALL_RULES

        known = {r.code for r in ALL_RULES}
        unknown = sorted(set(select) - known)
        if unknown:
            # a typo'd code must not silently disable the gate
            print(
                f"error: unknown rule code(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
            return 2
    excludes = list(DEFAULT_EXCLUDES) + (args.exclude or [])
    findings, errors = lint_paths(args.paths, select=select, excludes=excludes)
    out = format_findings(findings, errors, as_json=args.json)
    if out:
        print(out)
    if errors:
        return 2
    return 1 if findings else 0


def _check_age(args: argparse.Namespace) -> str | None:
    if args.age < 0:
        # the CLI equivalent of lint rule RPR006
        return f"error: --age is a staleness tolerance and must be >= 0 (got {args.age})"
    return None


def _cmd_races(args: argparse.Namespace) -> int:
    problem = _check_age(args)
    if problem:
        print(problem)
        return 2
    run = classify_island_run(
        MODE_NAMES[args.mode],
        fid=args.fid,
        n_demes=args.demes,
        age=args.age,
        n_generations=args.generations,
        seed=args.seed,
    )
    c = run.classifier
    if args.json:
        print(render_envelope(make_envelope(RACES_SCHEMA, run.to_dict())))
    else:
        print(f"{run.mode_label}: {c.report()}")
    if args.fail_on == "none":
        return 0
    failed = c.total_violations > 0
    if args.fail_on in ("unbounded", "any-race"):
        failed = failed or c.unbounded_races > 0
    if args.fail_on == "any-race":
        failed = failed or c.tolerated_races > 0
    return 1 if failed else 0


def _cmd_report(args: argparse.Namespace) -> int:
    problem = _check_age(args)
    if problem:
        print(problem)
        return 2
    runs = classify_three_modes(
        fid=args.fid,
        n_demes=args.demes,
        age=args.age,
        n_generations=args.generations,
        seed=args.seed,
    )
    sync, async_, gr = runs
    problems = []
    if not sync.classifier.race_free:
        problems.append("synchronous run is not race-free")
    if async_.classifier.unbounded_races == 0:
        problems.append("asynchronous run shows no unbounded race")
    if gr.classifier.unbounded_races > 0:
        problems.append("Global_Read run shows unbounded races")
    if gr.classifier.tolerated_races == 0:
        problems.append("Global_Read run shows no tolerated race")
    if gr.classifier.max_observed_staleness() > args.age:
        problems.append("Global_Read staleness exceeds the declared bound")
    for run in runs:
        if run.classifier.total_violations:
            problems.append(f"{run.mode_label}: consistency violations")
    if args.json:
        env = make_envelope(
            REPORT_SCHEMA,
            {"runs": [r.to_dict() for r in runs], "problems": problems},
        )
        print(render_envelope(env))
    else:
        print(race_table(runs))
        for p in problems:
            print(f"PROBLEM: {p}")
        if not problems:
            print(
                "shape OK: sync race-free; async has unbounded races; "
                f"Global_Read(age={args.age}) races all tolerated within bound"
            )
    return 1 if problems else 0


def _cmd_coherence(args: argparse.Namespace) -> int:
    from repro.analysis.coherence import (
        baseline_doc,
        render_json,
        render_text,
        run_coherence,
    )

    baseline = args.baseline
    if baseline is None and not args.no_baseline:
        if os.path.exists(DEFAULT_COHERENCE_BASELINE):
            baseline = DEFAULT_COHERENCE_BASELINE

    if args.write_baseline:
        # record what fires *without* any suppression applied, so the
        # written file reflects the full current finding set
        report = run_coherence(args.paths, traces=args.traces, races=args.races)
        if report.errors:
            for err in report.errors:
                print(f"error: {err}")
            return 2
        path = write_envelope(args.write_baseline, baseline_doc(report.findings))
        print(
            f"baseline: {len({f.fingerprint for f in report.findings})} "
            f"suppression(s) -> {path}"
        )
        return 0

    report = run_coherence(
        args.paths,
        traces=args.traces,
        races=args.races,
        baseline_path=baseline,
    )
    if args.out:
        write_envelope(args.out, report.to_envelope())
    print(render_json(report) if args.json else render_text(report))
    return report.exit_code


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.analysis`` entry point; the exit status is the finding
    count."""
    args = _build_parser().parse_args(argv)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "races":
        return _cmd_races(args)
    if args.command == "coherence":
        return _cmd_coherence(args)
    return _cmd_report(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
