"""Happens-before race classification for DSM executions.

The paper's argument (§2.1) is that `Global_Read` induces a memory model
close to delta consistency: racy reads are *acceptable* exactly when
their staleness is within the declared age bound.  This module makes
that argument executable.  A :class:`RaceClassifier` observes a live run
through two attachment points:

* the PVM layer's message observer (``VirtualMachine.observer``) — one
  vector-clock **send edge** per submitted message and one **receive
  edge** per *consumed* message (``recv``/``nrecv`` pop, which is when
  the receiving process actually folds the data in);
* the DSM's checker hook (``Dsm.checker``) — it subclasses
  :class:`~repro.core.consistency.ConsistencyChecker`, so every
  invariant check still runs, and additionally every ``write`` and
  every returned read is stamped with the owning task's vector clock.

Happens-before edges (DESIGN.md §7): intra-process program order
(per-task clock ticks), send→recv (clock piggybacked on the message and
joined at consumption), barrier (emerges transitively from the
coordinator gather + release multicast, which are ordinary messages),
and write→propagated-read (the DSM update message that carried the
value).

Classification of a read R returning age ``a`` on location L: every
write W to L with age > ``a`` that was already issued when R returned is
a *missed write*.  If W happens-before R the pair is ``SYNCHRONIZED``
(ordered; not a race).  Otherwise W and R race: the pair is
``TOLERATED`` when R carried an age bound that its returned value
satisfies (a `Global_Read` within its staleness contract), else
``UNBOUNDED`` (a plain ``read_local`` or a bound violation — nothing
limits how stale the value may be).  A barrier-synchronized run must
therefore classify race-free, a fully asynchronous run shows unbounded
races, and a `Global_Read` run shows only tolerated ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.core.consistency import ConsistencyChecker


class VectorClock:
    """A sparse vector clock over task ids."""

    __slots__ = ("_c",)

    def __init__(self, clocks: dict[int, int] | None = None) -> None:
        self._c: dict[int, int] = dict(clocks) if clocks else {}

    def tick(self, tid: int) -> None:
        """Advance ``tid``'s component (one local event)."""
        self._c[tid] = self._c.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Component-wise max, in place (message receipt)."""
        for tid, n in other._c.items():
            if n > self._c.get(tid, 0):
                self._c[tid] = n

    def copy(self) -> "VectorClock":
        """An independent copy (component-wise snapshot) of this clock."""
        return VectorClock(self._c)

    def leq(self, other: "VectorClock") -> bool:
        """True iff self happened-before-or-equals other."""
        return all(n <= other._c.get(tid, 0) for tid, n in self._c.items())

    def concurrent_with(self, other: "VectorClock") -> bool:
        """True when neither clock happens-before the other."""
        return not self.leq(other) and not other.leq(self)

    def get(self, tid: int) -> int:
        """This clock's component for ``tid`` (0 when never ticked)."""
        return self._c.get(tid, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{t}:{n}" for t, n in sorted(self._c.items()))
        return f"VC({inner})"


class RaceClass(enum.Enum):
    """Verdict for one (write, read) pair on a shared location."""

    SYNCHRONIZED = "synchronized"
    TOLERATED = "tolerated"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class RacePair:
    """Evidence for one classified write/read pair."""

    locn: str
    writer: int
    write_age: int
    reader: int
    read_age: int
    classification: RaceClass
    #: reader's iteration and bound (None for read_local — no contract)
    curr_iter: int | None
    age_bound: int | None
    #: how stale the returned value was relative to the missed write
    staleness: int
    time: float

    def describe(self) -> str:
        """Human-readable one-line description of the racing access pair."""
        bound = "no bound" if self.age_bound is None else f"age<={self.age_bound}"
        return (
            f"[{self.classification.value}] {self.locn}: writer {self.writer} "
            f"wrote age {self.write_age} while reader {self.reader} returned "
            f"age {self.read_age} ({bound}, staleness {self.staleness}) "
            f"@ t={self.time:.6f}"
        )


@dataclass
class _WriteRecord:
    age: int
    writer: int
    vc: VectorClock
    time: float


class RaceClassifier(ConsistencyChecker):
    """Vector-clock happens-before classifier (see module docstring).

    Attach with :func:`attach_race_classifier`, or manually::

        rc = RaceClassifier()
        dsm.checker = rc        # write/read stamps + all base invariants
        dsm.vm.observer = rc    # send/recv edges (incl. barrier traffic)

    ``pairs`` keeps a bounded sample of race evidence
    (:attr:`max_pairs`); ``pair_counts`` counts every pair by
    (location, writer, reader, classification) and is what the summary
    properties and the CI gate read.
    """

    def __init__(
        self,
        max_pairs: int = 10_000,
        tracer: Any | None = None,
        max_violations: int = 1000,
    ) -> None:
        super().__init__(max_violations=max_violations)
        self.max_pairs = max_pairs
        #: optional repro.sim.trace.Tracer; classified races are marked
        #: into it so race evidence lines up with the kernel event trace
        self.tracer = tracer
        self.pairs: list[RacePair] = []
        self.pairs_dropped = 0
        self.pair_counts: dict[tuple[str, int, int, RaceClass], int] = {}
        #: reads that missed no concurrent write at all
        self.clean_reads = 0
        self._clocks: dict[int, VectorClock] = {}
        #: (src, msg_id) -> sender clock snapshot, claimed at consumption
        self._msg_clocks: dict[tuple[int, int], VectorClock] = {}
        #: per location: writes in age order (producer monotonicity)
        self._writes: dict[str, list[_WriteRecord]] = {}
        self.sends_observed = 0
        self.recvs_observed = 0
        #: injected-fault counts by kind (drop/duplicate/delay/reorder/…)
        #: when a repro.faults injector is attached; faults are *context*
        #: for the verdicts — a drop-induced stale read still classifies
        #: by its age bound (TOLERATED when the bound held), it is never
        #: an excuse to report UNBOUNDED
        self.fault_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Vector-clock plumbing
    # ------------------------------------------------------------------
    def _clock(self, tid: int) -> VectorClock:
        vc = self._clocks.get(tid)
        if vc is None:
            vc = VectorClock()
            self._clocks[tid] = vc
        return vc

    # -- VirtualMachine.observer hooks ---------------------------------
    def on_send(self, src: int, dst: int, tag: int, msg_id: int, time: float) -> None:
        """Record a message send: tick the sender's clock and stash it for the
        receiver."""
        vc = self._clock(src)
        vc.tick(src)
        self._msg_clocks[(src, msg_id)] = vc.copy()
        self.sends_observed += 1

    def on_recv(self, tid: int, msg: Any, time: float) -> None:
        """Record a message receive: join the sender's stashed clock into the
        receiver's."""
        vc = self._clock(tid)
        vc.tick(tid)
        sent = self._msg_clocks.pop((msg.src, msg.msg_id), None)
        if sent is not None:
            vc.join(sent)
        self.recvs_observed += 1

    # -- repro.faults observer hook ------------------------------------
    def on_fault(self, kind: str, frame: Any, time: float) -> None:
        """One injected fault (MessageFaultInjector.observer).

        Faults carry no happens-before information — a dropped message
        simply contributes no send→recv edge, which the clocks already
        express by its absence — so this only counts them for reporting.
        """
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1
        if self.tracer is not None:
            self.tracer.mark(time, f"fault:{kind}")

    # -- Dsm.checker hooks ---------------------------------------------
    def on_write(
        self, locn: str, age: int, time: float, writer: int | None = None
    ) -> None:
        """Record a DSM write access for later happens-before classification."""
        super().on_write(locn, age, time, writer=writer)
        if writer is None:
            return  # cannot build edges without the writing task's id
        vc = self._clock(writer)
        vc.tick(writer)
        self._writes.setdefault(locn, []).append(
            _WriteRecord(age=age, writer=writer, vc=vc.copy(), time=time)
        )

    def on_read(
        self,
        reader: int,
        locn: str,
        returned_age: int,
        time: float,
        curr_iter: int | None = None,
        age_bound: int | None = None,
    ) -> None:
        """Record a Global_Read access and classify it against prior writes."""
        super().on_read(
            reader, locn, returned_age, time,
            curr_iter=curr_iter, age_bound=age_bound,
        )
        read_vc = self._clock(reader)
        read_vc.tick(reader)
        writes = self._writes.get(locn, [])
        # Writes are age-sorted (producer monotonicity); only the tail
        # with age > returned_age can have been missed.  Everything
        # recorded so far was issued at or before `time` by construction.
        lo, hi = 0, len(writes)
        while lo < hi:
            mid = (lo + hi) // 2
            if writes[mid].age <= returned_age:
                lo = mid + 1
            else:
                hi = mid
        missed = writes[lo:]
        if not missed:
            self.clean_reads += 1
            return
        within_bound = (
            curr_iter is not None
            and age_bound is not None
            and returned_age >= curr_iter - age_bound
        )
        for w in missed:
            if w.vc.leq(read_vc):
                cls = RaceClass.SYNCHRONIZED
            elif within_bound:
                cls = RaceClass.TOLERATED
            else:
                cls = RaceClass.UNBOUNDED
            self._record_pair(
                RacePair(
                    locn=locn,
                    writer=w.writer,
                    write_age=w.age,
                    reader=reader,
                    read_age=returned_age,
                    classification=cls,
                    curr_iter=curr_iter,
                    age_bound=age_bound,
                    staleness=w.age - returned_age,
                    time=time,
                )
            )

    def _record_pair(self, pair: RacePair) -> None:
        key = (pair.locn, pair.writer, pair.reader, pair.classification)
        self.pair_counts[key] = self.pair_counts.get(key, 0) + 1
        if self.tracer is not None:
            self.tracer.mark(pair.time, f"race:{pair.classification.value}:{pair.locn}")
        if len(self.pairs) >= self.max_pairs:
            self.pairs_dropped += 1
            return
        self.pairs.append(pair)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def count(self, cls: RaceClass) -> int:
        """Number of classified access pairs in class ``cls``."""
        return sum(
            n for (_, _, _, c), n in self.pair_counts.items() if c is cls
        )

    @property
    def synchronized_pairs(self) -> int:
        """Pairs ordered by happens-before (no race)."""
        return self.count(RaceClass.SYNCHRONIZED)

    @property
    def tolerated_races(self) -> int:
        """Concurrent pairs whose staleness stayed within the declared age bound."""
        return self.count(RaceClass.TOLERATED)

    @property
    def unbounded_races(self) -> int:
        """Concurrent pairs with no (or an exceeded) staleness bound — true races."""
        return self.count(RaceClass.UNBOUNDED)

    @property
    def race_free(self) -> bool:
        """No racy pair at all — the synchronous-run verdict."""
        return self.tolerated_races == 0 and self.unbounded_races == 0

    def max_observed_staleness(self) -> int:
        """Largest staleness over all tolerated/unbounded pairs stored."""
        racy = [
            p.staleness
            for p in self.pairs
            if p.classification is not RaceClass.SYNCHRONIZED
        ]
        return max(racy, default=0)

    def per_location(self) -> dict[str, dict[str, int]]:
        """Per-location breakdown, keyed by location name.

        Each row counts synchronized/tolerated/unbounded pairs and the
        total reads touching that location, with the worst staleness
        seen among the stored pair sample.  This is the dynamic half of
        the static↔dynamic cross-check
        (:mod:`repro.analysis.coherence.crossval` consumes it via the
        ``locations`` key of :meth:`summary`).
        """
        rows: dict[str, dict[str, int]] = {}

        def row(locn: str) -> dict[str, int]:
            r = rows.get(locn)
            if r is None:
                r = rows[locn] = {
                    "synchronized": 0,
                    "tolerated": 0,
                    "unbounded": 0,
                    "reads": 0,
                    "max_staleness": 0,
                }
            return r

        for (locn, _, _, cls), n in self.pair_counts.items():
            r = row(locn)
            r[cls.value] += n
            r["reads"] += n
        for p in self.pairs:
            r = row(p.locn)
            if p.classification is not RaceClass.SYNCHRONIZED:
                r["max_staleness"] = max(r["max_staleness"], p.staleness)
        return dict(sorted(rows.items()))

    def summary(self) -> dict[str, Any]:
        """Per-class counts plus the worst observed staleness, as a dict."""
        return {
            "reads_checked": self.reads_checked,
            "writes_checked": self.writes_checked,
            "sends_observed": self.sends_observed,
            "recvs_observed": self.recvs_observed,
            "clean_reads": self.clean_reads,
            "synchronized_pairs": self.synchronized_pairs,
            "tolerated_races": self.tolerated_races,
            "unbounded_races": self.unbounded_races,
            "max_observed_staleness": self.max_observed_staleness(),
            "consistency_violations": self.total_violations,
            "faults_injected": dict(sorted(self.fault_counts.items())),
            "locations": self.per_location(),
        }

    def report(self, max_lines: int = 20) -> str:
        """Multi-line text report: summary line plus up to ``max_lines`` worst pairs."""
        base = super().report(max_lines)
        lines = [base, "race classification:"]
        for label, n in (
            ("synchronized pairs", self.synchronized_pairs),
            ("tolerated races", self.tolerated_races),
            ("unbounded races", self.unbounded_races),
            ("clean reads", self.clean_reads),
        ):
            lines.append(f"  {label}: {n}")
        for pair in self.pairs[:max_lines]:
            if pair.classification is not RaceClass.SYNCHRONIZED:
                lines.append(f"  {pair.describe()}")
        return "\n".join(lines)


def attach_race_classifier(
    dsm: Any, tracer: Any | None = None, max_pairs: int = 10_000
) -> RaceClassifier:
    """Wire a fresh classifier into ``dsm`` and its VM; returns it.

    The classifier replaces ``dsm.checker`` (it *is* a
    ConsistencyChecker, so all four base invariants keep being checked)
    and installs itself as the VM's message observer.  If the VM's
    network carries a fault injector (``network.fault_injector``, set by
    :class:`repro.faults.injectors.MessageFaultInjector`), the classifier
    also becomes its observer so chaos-run verdicts come annotated with
    the injected-fault counts.
    """
    classifier = RaceClassifier(max_pairs=max_pairs, tracer=tracer)
    dsm.checker = classifier
    dsm.vm.observer = classifier
    injector = getattr(dsm.vm.network, "fault_injector", None)
    if injector is not None:
        injector.observer = classifier
    return classifier
