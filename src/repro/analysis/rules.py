"""The ``RPR0xx`` determinism and coherence-contract lint rules.

Every rule is an :class:`ast.NodeVisitor` producing
:class:`~repro.analysis.lint.Finding` objects.  The rules encode the
repository's two contracts:

* **Determinism** (DESIGN.md §5): a run is a pure function of its root
  seed, so simulated code must draw randomness from named
  ``repro.sim.rng`` streams (RPR001), never read the wall clock
  (RPR002), and never let ``set`` iteration order feed event ordering
  or stream naming (RPR003).  Simulated processes may yield only the
  kernel's request objects (RPR004).
* **Bounded staleness** (§2): every shared-location mutation must go
  through ``DsmNode.write`` so ages, checker hooks and update
  propagation stay consistent (RPR005), and a ``global_read`` age bound
  is a staleness *tolerance* — statically negative values are always a
  bug (RPR006).
"""

from __future__ import annotations

import ast

from repro.analysis.lint import Finding

#: seeded numpy.random constructors that named streams are built from —
#: these are exactly what repro.sim.rng itself uses and are allowed
NUMPY_SEEDED_OK = frozenset(
    {
        "default_rng",
        "SeedSequence",
        "Generator",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "RandomState",
    }
)

#: stdlib random attributes that are explicitly-seeded constructors
STDLIB_RANDOM_OK = frozenset({"Random"})

#: wall-clock callables, fully resolved
WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: the only objects a simulated process may ``yield`` to the kernel
#: (repro.sim.process, re-exported by repro.sim)
LEGAL_SYSCALLS = frozenset({"Compute", "Yield", "WaitSignal", "WaitAny", "Join"})

#: classes allowed to touch AgeBuffer/VersionedValue internals directly
DSM_IMPLEMENTATION_CLASSES = frozenset({"Dsm", "DsmNode", "AgeBuffer"})


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.expr) -> str | None:
    """The last component of a call target (``c`` for ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class Rule(ast.NodeVisitor):
    """Base class: alias-aware name resolution plus finding collection."""

    code: str = "RPR000"
    name: str = "rule"
    fixit: str = ""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[Finding] = []
        #: local alias -> canonical module path ("np" -> "numpy")
        self._module_aliases: dict[str, str] = {}
        #: local name -> canonical dotted origin ("randint" ->
        #: "random.randint", "datetime" -> "datetime.datetime")
        self._from_imports: dict[str, str] = {}

    # -- import tracking (shared by all rules) --------------------------
    def _record_import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._module_aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def _record_import_from(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self._from_imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )

    def collect_imports(self, tree: ast.AST) -> None:
        """Pre-pass: record every import in ``tree`` before rule traversal.

        Aliases must be known *before* the rule visits any call site: a
        module-level ``import random as r`` placed below a function that
        calls ``r.random()`` is perfectly legal at runtime (the function
        body executes after the import), but a single in-order traversal
        would resolve nothing at the call and silently miss the finding.
        """
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                self._record_import(node)
            elif isinstance(node, ast.ImportFrom):
                self._record_import_from(node)

    def check(self, tree: ast.AST) -> None:
        """Run the rule: import pre-pass, then the visitor traversal."""
        self.collect_imports(tree)
        self.visit(tree)

    def visit_Import(self, node: ast.Import) -> None:
        """Track plain ``import`` statements for module-alias resolution."""
        self._record_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Track ``from ... import`` statements for name-origin resolution."""
        self._record_import_from(node)
        self.generic_visit(node)

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted path of a call target, aliases resolved."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self._from_imports:
            head = self._from_imports[head]
        elif head in self._module_aliases:
            head = self._module_aliases[head]
        return f"{head}.{rest}" if rest else head

    def flag(self, node: ast.AST, message: str, fixit: str | None = None) -> None:
        """Record a finding at ``node``'s location."""
        self.findings.append(
            Finding(
                code=self.code,
                name=self.name,
                message=message,
                fixit=fixit if fixit is not None else self.fixit,
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
            )
        )


class UnseededRandomness(Rule):
    """RPR001: global/unseeded RNG state instead of named streams.

    ``random.random()`` and ``np.random.rand()`` draw from process-global
    state: results then depend on import order and on every other
    consumer, which breaks "a run is a pure function of its root seed".
    Seeded constructors (``np.random.default_rng(seed)``,
    ``SeedSequence``, bit generators, ``random.Random(seed)``) are
    allowed — they are the raw material of named streams.
    """

    code = "RPR001"
    name = "unseeded-randomness"
    fixit = (
        "draw from a named stream: kernel.rng.get('<stream-name>') "
        "(repro.sim.rng), or construct np.random.default_rng(seed) explicitly"
    )

    def visit_Call(self, node: ast.Call) -> None:
        """Flag ``random.*`` / ``np.random.*`` calls that bypass the seeded registry."""
        path = self.resolve(node.func)
        if path is not None:
            if path.startswith("random."):
                attr = path.split(".", 1)[1]
                if attr not in STDLIB_RANDOM_OK:
                    self.flag(node, f"call to global-state RNG {path}()")
            elif path.startswith("numpy.random."):
                attr = path.rsplit(".", 1)[1]
                if attr not in NUMPY_SEEDED_OK:
                    self.flag(node, f"call to global-state RNG {path}()")
        self.generic_visit(node)


class WallClock(Rule):
    """RPR002: wall-clock reads inside simulated code.

    Simulated time is ``kernel.now``; ``time.time()`` couples results to
    the host machine's clock and load, destroying reproducibility and
    making traces incomparable across runs.
    """

    code = "RPR002"
    name = "wall-clock"
    fixit = (
        "use the simulated clock (kernel.now / task.vm.kernel.now); "
        "host time is only legitimate in benchmark harness timing code"
    )

    def visit_Call(self, node: ast.Call) -> None:
        """Flag wall-clock reads (``time.time`` et al.) inside simulation code."""
        path = self.resolve(node.func)
        if path in WALL_CLOCK:
            self.flag(node, f"wall-clock read {path}()")
        self.generic_visit(node)


class IterationOrderHazard(Rule):
    """RPR003: iterating a set where order can leak into behaviour.

    Set iteration order depends on ``PYTHONHASHSEED`` for str/bytes
    elements.  If that order feeds event scheduling, message emission or
    RNG stream naming, two identically-seeded runs diverge.  Dict
    iteration is insertion-ordered and therefore fine.
    """

    code = "RPR003"
    name = "iteration-order-hazard"
    fixit = "iterate sorted(...) over the set so the order is total and stable"

    def _check_iter(self, iter_node: ast.expr) -> None:
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            self.flag(iter_node, "iteration over a set literal/comprehension")
        elif isinstance(iter_node, ast.Call):
            fname = terminal_name(iter_node.func)
            if isinstance(iter_node.func, ast.Name) and fname in ("set", "frozenset"):
                self.flag(iter_node, f"iteration over {fname}(...)")

    def visit_For(self, node: ast.For) -> None:
        """Flag iteration over unordered sets/dicts of non-deterministic origin."""
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        """Async variant of :meth:`visit_For`."""
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        """Flag unordered iteration inside comprehensions."""
        self._check_iter(node.iter)
        self.generic_visit(node)


class IllegalSyscallYield(Rule):
    """RPR004: a simulated process yielding a non-syscall object.

    The kernel dispatches on the yielded request type and raises
    ``TypeError`` at simulation time for anything else — this rule moves
    that failure to lint time.  A function counts as a simulated process
    when at least one of its yields is a legal syscall constructor
    (Compute/Yield/WaitSignal/WaitAny/Join); within such a function,
    yielding any *other* constructor call is flagged.  ``yield from``
    delegation to service generators is always fine.
    """

    code = "RPR004"
    name = "illegal-syscall-yield"
    fixit = (
        "yield only repro.sim request objects (Compute, Yield, WaitSignal, "
        "WaitAny, Join); use 'yield from' to delegate to service generators"
    )

    def _own_yields(self, fn: ast.AST) -> list[ast.Yield]:
        """Yield expressions belonging to ``fn`` itself, not nested defs."""
        out: list[ast.Yield] = []
        stack = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(node, ast.Yield):
                out.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return out

    def _check_function(self, node: ast.AST) -> None:
        yields = self._own_yields(node)
        yielded_calls = [
            y for y in yields if y.value is not None and isinstance(y.value, ast.Call)
        ]
        is_sim_process = any(
            terminal_name(y.value.func) in LEGAL_SYSCALLS for y in yielded_calls
        )
        if not is_sim_process:
            return
        for y in yielded_calls:
            fname = terminal_name(y.value.func)
            if fname not in LEGAL_SYSCALLS:
                self.flag(
                    y,
                    f"simulated process yields {fname or '<expr>'}(...), "
                    "not a kernel request object",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Scan a function body for yields of non-simulation syscall objects."""
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Async variant of :meth:`visit_FunctionDef`."""
        self._check_function(node)
        self.generic_visit(node)


class DsmBypassMutation(Rule):
    """RPR005: mutating DSM state behind ``DsmNode.write``'s back.

    Direct ``agebuf.update(...)`` calls or stores into ``local_store`` /
    ``_copies`` skip the writer check, the age-monotonicity check, the
    consistency-checker hooks and update propagation — readers then see
    values no write ever produced.  Only the DSM implementation classes
    themselves (Dsm, DsmNode, AgeBuffer) may touch these.
    """

    code = "RPR005"
    name = "dsm-bypass-mutation"
    fixit = (
        "go through 'yield from dsm.node(tid).write(locn, value, iter_no)' "
        "so ages, checker hooks and propagation stay consistent"
    )

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self._class_stack: list[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        """Track class context so DSM-field writes can be attributed."""
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _inside_dsm_impl(self) -> bool:
        return any(c in DSM_IMPLEMENTATION_CLASSES for c in self._class_stack)

    def visit_Call(self, node: ast.Call) -> None:
        """Flag direct mutation calls on DSM-managed containers."""
        if not self._inside_dsm_impl() and isinstance(node.func, ast.Attribute):
            if node.func.attr == "update":
                receiver = node.func.value
                rname = terminal_name(receiver)
                if rname in ("agebuf", "age_buffer", "agebuffer"):
                    self.flag(
                        node,
                        "direct AgeBuffer.update() bypasses DsmNode.write/drain",
                    )
        self.generic_visit(node)

    def _check_store_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Attribute
        ):
            attr = target.value.attr
            if attr in ("local_store", "_copies"):
                self.flag(
                    target,
                    f"direct store into {attr}[...] bypasses DsmNode.write",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        """Flag assignments that rebind DSM-managed locations outside ``dsm.write``."""
        if not self._inside_dsm_impl():
            for target in node.targets:
                self._check_store_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        """Flag augmented assignments on DSM-managed locations."""
        if not self._inside_dsm_impl():
            self._check_store_target(node.target)
        self.generic_visit(node)


class NegativeGlobalReadAge(Rule):
    """RPR006: ``global_read`` with a statically-negative age bound.

    ``satisfies_age_bound`` raises ``ValueError`` for ``age < 0`` at
    simulation time; a negative constant in source is always dead code
    or a sign error, so catch it before any simulation runs.
    """

    code = "RPR006"
    name = "negative-global-read-age"
    fixit = "the age bound is a staleness tolerance and must be >= 0 (0 = strict)"

    @staticmethod
    def _negative_constant(node: ast.expr) -> bool:
        if (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, (int, float))
        ):
            return node.operand.value > 0
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return node.value < 0
        return False

    def visit_Call(self, node: ast.Call) -> None:
        """Flag ``global_read`` calls with a negative (or
        non-literal-suspicious) age."""
        if terminal_name(node.func) == "global_read":
            age_arg: ast.expr | None = None
            if len(node.args) >= 3:
                age_arg = node.args[2]
            for kw in node.keywords:
                if kw.arg == "age":
                    age_arg = kw.value
            if age_arg is not None and self._negative_constant(age_arg):
                self.flag(node, "global_read with statically-negative age bound")
        self.generic_visit(node)


#: every rule, in code order — the engine instantiates one per file
ALL_RULES: tuple[type[Rule], ...] = (
    UnseededRandomness,
    WallClock,
    IterationOrderHazard,
    IllegalSyscallYield,
    DsmBypassMutation,
    NegativeGlobalReadAge,
)
