"""Static analysis and runtime sanitizers for the reproduction.

Three layers (see DESIGN.md §7):

``repro.analysis.lint``
    AST-based determinism lint: rule classes ``RPR0xx`` catch unseeded
    randomness, wall-clock reads, iteration-order hazards, illegal
    simulator syscalls, DSM-bypassing mutations and statically-negative
    `Global_Read` ages — the bug classes that silently break the repo's
    determinism and bounded-staleness contracts.

``repro.analysis.races``
    A runtime happens-before classifier built from vector clocks over
    the PVM message layer plus the DSM's checker hooks.  It classifies
    every read/write pair on a shared location as *synchronized*,
    *tolerated race* (staleness within the `Global_Read` age bound) or
    *unbounded race* — turning the paper's §2.1 delta-consistency
    argument into an executable check.

``repro.analysis.coherence``
    Static whole-program coherence analyzer: an interprocedural AST
    pass discovers every DSM access site, classifies each shared
    location's race tolerance on the
    :data:`~repro.core.contract.TOLERANCE_CLASSES` lattice, checks
    declared ``dsm_contract(...)`` staleness contracts, and
    cross-validates static verdicts against the runtime classifier's
    evidence and run traces (rule block ``RPR1xx``).

``repro.analysis.cli``
    ``python -m repro.analysis {lint,races,report,coherence}`` with
    CI-friendly exit codes, plus the ``sanitize_dsm`` pytest fixture
    (:mod:`repro.analysis.fixtures`) that auto-attaches the classifier
    when ``REPRO_SANITIZE=1``.
"""

from repro.analysis.coherence import (
    CoherenceFinding,
    CoherenceReport,
    LocationVerdict,
    run_coherence,
)
from repro.analysis.lint import (
    DEFAULT_EXCLUDES,
    Finding,
    lint_paths,
    lint_source,
)
from repro.analysis.races import (
    RaceClass,
    RaceClassifier,
    RacePair,
    VectorClock,
    attach_race_classifier,
)
from repro.analysis.report import classify_island_run, race_table

__all__ = [
    "CoherenceFinding",
    "CoherenceReport",
    "DEFAULT_EXCLUDES",
    "Finding",
    "LocationVerdict",
    "run_coherence",
    "lint_paths",
    "lint_source",
    "RaceClass",
    "RaceClassifier",
    "RacePair",
    "VectorClock",
    "attach_race_classifier",
    "classify_island_run",
    "race_table",
]
