"""The lint engine: file walking, rule dispatch and finding output.

Rules live in :mod:`repro.analysis.rules`; this module owns everything
around them — discovering Python files, parsing, running every selected
rule over the tree, and formatting findings as ``path:line:col`` text or
JSON.  Exit-code policy (used by the CLI and CI): 0 = clean, 1 = one or
more findings, 2 = usage/parse error.

Excludes
--------
:data:`DEFAULT_EXCLUDES` is the shared exclude list: path fragments that
are skipped while *recursing into directories*.  Deliberately-bad lint
fixtures (``tests/analysis/fixtures``) live there so ``lint src tests``
stays clean in CI.  Explicitly named files are always linted, even when
an exclude matches — that is how the fixture tests assert the rules
fire.

Suppressions
------------
A line ending in ``# repro-lint: allow[RPR002]`` suppresses exactly the
named rule(s) (comma-separated) on that line.  There is deliberately no
blanket ``allow`` and no file-level pragma: each carve-out names its
rule at the offending line, so suppressions are greppable and reviewed
one by one.  The intended use is the documented exception to RPR002 —
wall-clock reads inside benchmark-harness *timing* code.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import asdict, dataclass
from typing import Iterable, Iterator, Sequence

_ALLOW_PRAGMA = re.compile(r"#\s*repro-lint:\s*allow\[([A-Z0-9, ]+)\]")

#: path fragments never descended into when walking directories;
#: shared between the lint CLI and any future vendored-code carve-outs
DEFAULT_EXCLUDES: tuple[str, ...] = (
    "__pycache__",
    ".git",
    ".venv",
    "build",
    "dist",
    "vendor",
    os.path.join("tests", "analysis", "fixtures"),
)


@dataclass(frozen=True)
class Finding:
    """One rule hit, with a fix-it hint."""

    code: str
    name: str
    message: str
    fixit: str
    path: str
    line: int
    col: int

    def format(self) -> str:
        """Render the finding as a one-line ``path:line: [RULE] message`` string."""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} "
            f"{self.message} (fix: {self.fixit})"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly dict form of the finding."""
        return asdict(self)


def _excluded(path: str, excludes: Sequence[str]) -> bool:
    normalized = os.path.normpath(path)
    parts = normalized.split(os.sep)
    for pattern in excludes:
        pat_parts = os.path.normpath(pattern).split(os.sep)
        n = len(pat_parts)
        if any(parts[i : i + n] == pat_parts for i in range(len(parts) - n + 1)):
            return True
    return False


def iter_python_files(
    paths: Iterable[str], excludes: Sequence[str] = DEFAULT_EXCLUDES
) -> Iterator[str]:
    """Yield .py files under ``paths`` in sorted order.

    Directories are walked recursively with ``excludes`` applied;
    explicitly listed files are yielded unconditionally (see module
    docstring).
    """
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(f"no such file or directory: {path!r}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if not _excluded(os.path.join(dirpath, d), excludes)
            )
            for fname in sorted(filenames):
                if fname.endswith(".py"):
                    full = os.path.join(dirpath, fname)
                    if not _excluded(full, excludes):
                        yield full


def lint_source(
    source: str, path: str = "<string>", select: Sequence[str] | None = None
) -> list[Finding]:
    """Run every (selected) rule over one module's source text."""
    from repro.analysis.rules import ALL_RULES

    tree = ast.parse(source, filename=path)
    allowed = _allowed_by_line(source)
    findings: list[Finding] = []
    for rule_cls in ALL_RULES:
        if select is not None and rule_cls.code not in select:
            continue
        rule = rule_cls(path)
        # check() pre-collects imports over the whole tree first, so an
        # alias imported *after* its use site still resolves (late
        # module-level imports are legal at runtime)
        rule.check(tree)
        findings.extend(
            f for f in rule.findings if f.code not in allowed.get(f.line, ())
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def _allowed_by_line(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> rule codes allowed by an inline pragma."""
    allowed: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _ALLOW_PRAGMA.search(text)
        if m:
            allowed[lineno] = frozenset(
                code.strip() for code in m.group(1).split(",") if code.strip()
            )
    return allowed


def lint_paths(
    paths: Iterable[str],
    select: Sequence[str] | None = None,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
) -> tuple[list[Finding], list[str]]:
    """Lint every Python file under ``paths``.

    Returns ``(findings, errors)`` where ``errors`` are files that could
    not be read or parsed (reported separately so a syntax error in one
    file does not mask findings in the rest).
    """
    findings: list[Finding] = []
    errors: list[str] = []
    path_list = list(paths)
    missing = [p for p in path_list if not os.path.exists(p)]
    errors += [f"no such file or directory: {p!r}" for p in missing]
    for fpath in iter_python_files(
        (p for p in path_list if p not in missing), excludes
    ):
        try:
            with open(fpath, encoding="utf-8") as fh:
                source = fh.read()
            findings.extend(lint_source(source, fpath, select))
        except (OSError, SyntaxError) as exc:
            errors.append(f"{fpath}: {exc}")
    return findings, errors


def format_findings(
    findings: Sequence[Finding], errors: Sequence[str] = (), as_json: bool = False
) -> str:
    """Render findings as line-per-finding text or a JSON document."""
    if as_json:
        return json.dumps(
            {
                "findings": [f.to_dict() for f in findings],
                "errors": list(errors),
                "count": len(findings),
            },
            indent=2,
        )
    lines = [f.format() for f in findings]
    lines += [f"error: {e}" for e in errors]
    if findings or errors:
        lines.append(f"{len(findings)} finding(s), {len(errors)} error(s)")
    return "\n".join(lines)
