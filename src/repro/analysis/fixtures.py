"""Pytest integration: the ``sanitize_dsm`` fixture.

Importing this module's fixture into a ``conftest.py``::

    from repro.analysis.fixtures import sanitize_dsm  # noqa: F401

arms an opt-in runtime sanitizer: when ``REPRO_SANITIZE=1`` is set in
the environment, every :class:`~repro.core.dsm.Dsm` constructed during a
test gets a :class:`~repro.analysis.races.RaceClassifier` attached, and
the test fails if any *consistency invariant* (staleness bound, phantom
values, monotone reads, producer monotonicity) was violated.  Race
classifications are collected but never fail a test by themselves —
asynchronous-mode tests race by design; the point of the repository is
that those races are tolerable.

Without the environment variable the fixture is inert, so the suite's
default behaviour (and its timing-sensitive assertions) is unchanged.
"""

from __future__ import annotations

import os
from typing import Any, Iterator

import pytest

from repro.analysis.races import RaceClassifier, attach_race_classifier
from repro.core.dsm import Dsm

SANITIZE_ENV_VAR = "REPRO_SANITIZE"


def sanitizer_enabled() -> bool:
    """Whether the race-fixture sanitizer hook is active for this run."""
    return os.environ.get(SANITIZE_ENV_VAR) == "1"


@pytest.fixture(autouse=True)
def sanitize_dsm() -> Iterator[list[RaceClassifier]]:
    """Auto-attach the race classifier to every Dsm when sanitizing.

    Yields the list of attached classifiers (empty when the sanitizer
    is off), so a test may also inspect race classifications directly.
    """
    if not sanitizer_enabled():
        yield []
        return
    attached: list[RaceClassifier] = []
    original_init = Dsm.__init__

    def instrumented_init(self: Dsm, *args: Any, **kwargs: Any) -> None:
        original_init(self, *args, **kwargs)
        attached.append(attach_race_classifier(self))

    Dsm.__init__ = instrumented_init  # type: ignore[method-assign]
    try:
        yield attached
    finally:
        Dsm.__init__ = original_init  # type: ignore[method-assign]
    # A test may install its own checker (replacing ours on that Dsm) —
    # that is fine; we only judge classifiers still wired up.
    broken = [rc for rc in attached if rc.total_violations > 0]
    if broken:
        reports = "\n".join(rc.report() for rc in broken)
        pytest.fail(
            f"{SANITIZE_ENV_VAR}=1: consistency invariant violated under "
            f"sanitizer:\n{reports}"
        )
