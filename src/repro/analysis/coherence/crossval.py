"""Static↔dynamic cross-validation of coherence verdicts.

The static analyzer claims, per location, a verdict on the
``strict < tolerated < unbounded`` axis.  Two kinds of dynamic
evidence can contradict it:

* the **race classifier** (:mod:`repro.analysis.races`) — the
  per-location breakdown of ``python -m repro.analysis races --json``
  (``locations`` in the summary) counts synchronized / tolerated /
  unbounded pairs per location with the worst observed staleness;
* **run traces** (:mod:`repro.obs`) — ``gr.hit`` / ``gr.unblock``
  events carry the requested age bound and the returned staleness, so
  a trace directory from a figure-4 run shows how stale each
  location's reads actually were.

A location whose *observed* exposure is strictly worse than its
*static* verdict is a hard RPR105 finding in either framing: a
statically-``strict`` location with tolerated races means the phase
discipline the analyzer saw does not hold at runtime; a statically-
``tolerated`` location with unbounded races means the bound the
analyzer trusted is not enforced.  The converse (static worse than
observed) is *not* a finding — dynamic coverage is one run's worth of
evidence, and a conservative static verdict is exactly what partial
coverage deserves.  What **is** checked in both directions: observed
staleness must stay within a finite declared contract age.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any

from repro.analysis.coherence.model import (
    VERDICTS,
    CoherenceFinding,
    LocationVerdict,
    make_finding,
)

#: trace event kinds that carry per-location Global_Read evidence
_GR_KINDS = ("gr.hit", "gr.unblock")


@dataclass
class DynamicEvidence:
    """Observed per-location behaviour from one or more runs."""

    locn: str
    synchronized: int = 0
    tolerated: int = 0
    unbounded: int = 0
    reads: int = 0
    max_staleness: int = 0
    sources: list[str] = field(default_factory=list)

    @property
    def exposure(self) -> str:
        """Observed exposure on the strict/tolerated/unbounded axis."""
        if self.unbounded > 0:
            return "unbounded"
        if self.tolerated > 0 or self.max_staleness > 0:
            return "tolerated"
        return "strict"

    def merge(self, other: "DynamicEvidence") -> None:
        """Fold another run's evidence for the same location in place."""
        self.synchronized += other.synchronized
        self.tolerated += other.tolerated
        self.unbounded += other.unbounded
        self.reads += other.reads
        self.max_staleness = max(self.max_staleness, other.max_staleness)
        self.sources.extend(other.sources)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dict form (exposure included)."""
        return {
            "locn": self.locn,
            "exposure": self.exposure,
            "synchronized": self.synchronized,
            "tolerated": self.tolerated,
            "unbounded": self.unbounded,
            "reads": self.reads,
            "max_staleness": self.max_staleness,
            "sources": sorted(set(self.sources)),
        }


def evidence_from_races_doc(
    doc: dict[str, Any], source: str = "races"
) -> dict[str, DynamicEvidence]:
    """Per-location evidence from a ``races --json`` document.

    Accepts either the full classified-run envelope or a bare
    classifier summary; the per-location map lives under ``locations``
    (:meth:`repro.analysis.races.RaceClassifier.per_location`).
    """
    locations = doc.get("locations")
    if locations is None and isinstance(doc.get("summary"), dict):
        locations = doc["summary"].get("locations")
    out: dict[str, DynamicEvidence] = {}
    for locn, row in (locations or {}).items():
        out[locn] = DynamicEvidence(
            locn=locn,
            synchronized=int(row.get("synchronized", 0)),
            tolerated=int(row.get("tolerated", 0)),
            unbounded=int(row.get("unbounded", 0)),
            reads=int(row.get("reads", 0)),
            max_staleness=int(row.get("max_staleness", 0)),
            sources=[source],
        )
    return out


def evidence_from_trace(path: str) -> dict[str, DynamicEvidence]:
    """Per-location evidence from one ``repro.obs`` JSONL trace file.

    Only ``gr.*`` events carry location-level read evidence in a
    trace; a returned staleness above the requested bound counts as
    unbounded (the primitive failed its contract), within the bound as
    tolerated.  ``read_local`` calls do not trace, so trace evidence
    alone never proves a location strict — the cross-check only uses
    it in the damning direction.

    Raises ``ValueError`` for unparsable lines (malformed JSONL must
    fail the gate loudly, not silently weaken it).
    """
    out: dict[str, DynamicEvidence] = {}
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON ({exc})") from None
            if not isinstance(raw, dict):
                raise ValueError(f"{path}:{lineno}: trace record is not an object")
            if raw.get("kind") not in _GR_KINDS:
                continue
            locn = str(raw.get("locn", ""))
            if not locn:
                continue
            ev = out.get(locn)
            if ev is None:
                ev = out[locn] = DynamicEvidence(locn=locn, sources=[path])
            ev.reads += 1
            staleness = int(raw.get("staleness", 0))
            age = raw.get("age")
            ev.max_staleness = max(ev.max_staleness, staleness)
            if staleness <= 0:
                ev.synchronized += 1
            elif age is not None and staleness <= int(age):
                ev.tolerated += 1
            else:
                ev.unbounded += 1
    return out


def load_dynamic_evidence(
    traces: list[str] | None = None,
    races: list[str] | None = None,
) -> tuple[dict[str, DynamicEvidence], list[str]]:
    """Merge evidence from trace files/directories and races JSON files.

    Returns ``(evidence, errors)``.  A directory contributes every
    ``*.jsonl`` file under it; missing paths and malformed files are
    errors (exit code 2 at the CLI), never silently skipped.
    """
    merged: dict[str, DynamicEvidence] = {}
    errors: list[str] = []

    def fold(found: dict[str, DynamicEvidence]) -> None:
        for locn, ev in found.items():
            if locn in merged:
                merged[locn].merge(ev)
            else:
                merged[locn] = ev

    for tpath in traces or []:
        if os.path.isdir(tpath):
            files = sorted(
                os.path.join(root, f)
                for root, _, fnames in os.walk(tpath)
                for f in fnames
                if f.endswith(".jsonl")
            )
            if not files:
                errors.append(f"no .jsonl trace files under directory {tpath!r}")
            for f in files:
                try:
                    fold(evidence_from_trace(f))
                except (OSError, ValueError) as exc:
                    errors.append(str(exc))
        elif os.path.isfile(tpath):
            try:
                fold(evidence_from_trace(tpath))
            except (OSError, ValueError) as exc:
                errors.append(str(exc))
        else:
            errors.append(f"no such trace file or directory: {tpath!r}")

    for rpath in races or []:
        try:
            with open(rpath, encoding="utf-8") as fh:
                doc = json.load(fh)
            if not isinstance(doc, dict):
                raise ValueError("races document is not a JSON object")
            fold(evidence_from_races_doc(doc, source=rpath))
        except (OSError, ValueError) as exc:
            errors.append(f"{rpath}: {exc}")
    return merged, errors


def _verdict_for(
    locn: str, verdicts: list[LocationVerdict]
) -> LocationVerdict | None:
    """Most specific static verdict whose pattern covers ``locn``."""
    best: LocationVerdict | None = None
    for v in verdicts:
        if fnmatchcase(locn, v.pattern) and (
            best is None or len(v.pattern) > len(best.pattern)
        ):
            best = v
    return best


def cross_validate(
    verdicts: list[LocationVerdict],
    evidence: dict[str, DynamicEvidence],
) -> list[CoherenceFinding]:
    """RPR105 findings where runtime evidence contradicts static claims."""
    findings: list[CoherenceFinding] = []
    for locn in sorted(evidence):
        ev = evidence[locn]
        verdict = _verdict_for(locn, verdicts)
        if verdict is None:
            # dynamic-only location: runtime touched something the
            # static pass never attributed — a coverage hole worth
            # failing on (it means a contract can't be checked either)
            findings.append(
                make_finding(
                    "RPR105",
                    f"location {locn!r} observed at runtime "
                    f"({ev.reads} reads) but never discovered statically",
                    "<dynamic>",
                    0,
                    locn,
                )
            )
            continue
        anchor = verdict.sites[0]
        if VERDICTS.index(ev.exposure) > VERDICTS.index(verdict.verdict):
            findings.append(
                make_finding(
                    "RPR105",
                    f"location {locn!r} statically {verdict.verdict!r} but "
                    f"observed {ev.exposure!r} "
                    f"(tolerated={ev.tolerated}, unbounded={ev.unbounded}, "
                    f"max staleness {ev.max_staleness}; "
                    f"{', '.join(sorted(set(ev.sources)))})",
                    anchor.path,
                    anchor.line,
                    verdict.pattern,
                )
            )
        contract = verdict.contract
        if (
            contract is not None
            and contract.age is not None
            and ev.max_staleness > contract.age
        ):
            findings.append(
                make_finding(
                    "RPR105",
                    f"location {locn!r} observed staleness "
                    f"{ev.max_staleness} exceeds the contract's declared "
                    f"age {contract.age}",
                    contract.path,
                    contract.line,
                    verdict.pattern,
                )
            )
    return findings
