"""Pipeline driver for ``python -m repro.analysis coherence``.

Runs the AST pass over the requested paths, classifies every
discovered DSM location, optionally folds in dynamic evidence
(trace directories and/or ``races --json`` documents), applies the
committed suppression baseline, and renders the result as text or as
a :data:`~repro.analysis.coherence.model.COHERENCE_SCHEMA` envelope.

Exit-code policy matches the rest of the analysis CLI: 0 = every
location classified and no non-baselined finding, 1 = findings,
2 = the analyzer itself could not do its job (unreadable source,
malformed traces/baseline).

Baseline workflow
-----------------
``--write-baseline FILE`` records the fingerprints of the current
findings; ``--baseline FILE`` (default: ``tools/coherence_baseline.json``
when it exists) suppresses exactly those.  Fingerprints are
``CODE:pattern`` — stable across line churn — and every suppression
carries a free-text reason so the exception is reviewable.  A stale
suppression (fingerprint no longer firing) is reported so baselines
shrink instead of fossilising.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.analysis.coherence.astpass import scan_paths
from repro.analysis.coherence.classify import classify_scan
from repro.analysis.coherence.crossval import (
    DynamicEvidence,
    cross_validate,
    load_dynamic_evidence,
)
from repro.analysis.coherence.model import (
    BASELINE_SCHEMA,
    COHERENCE_SCHEMA,
    CoherenceFinding,
    LocationVerdict,
)
from repro.util.envelope import make_envelope, render_envelope

#: baseline applied by default when present (repo-relative)
DEFAULT_BASELINE = os.path.join("tools", "coherence_baseline.json")


@dataclass
class BaselineEntry:
    """One reviewed suppression in the committed baseline."""

    fingerprint: str
    reason: str = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dict form."""
        return {"fingerprint": self.fingerprint, "reason": self.reason}


def load_baseline(path: str) -> list[BaselineEntry]:
    """Parse a baseline file; raises ``ValueError`` on any malformation.

    A baseline that cannot be parsed must fail the gate (exit 2), not
    silently suppress nothing or everything.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from None
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: baseline document is not a JSON object")
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BASELINE_SCHEMA!r}, "
            f"got {doc.get('schema')!r}"
        )
    raw = doc.get("suppressions")
    if not isinstance(raw, list):
        raise ValueError(f"{path}: 'suppressions' must be a list")
    entries: list[BaselineEntry] = []
    for i, item in enumerate(raw):
        if isinstance(item, str):
            entries.append(BaselineEntry(fingerprint=item))
        elif isinstance(item, dict) and isinstance(item.get("fingerprint"), str):
            entries.append(
                BaselineEntry(
                    fingerprint=item["fingerprint"],
                    reason=str(item.get("reason", "")),
                )
            )
        else:
            raise ValueError(
                f"{path}: suppressions[{i}] must be a fingerprint string or "
                "an object with a 'fingerprint' key"
            )
    return entries


def baseline_doc(findings: Sequence[CoherenceFinding]) -> dict[str, Any]:
    """Baseline envelope recording the given findings' fingerprints."""
    seen: dict[str, str] = {}
    for f in findings:
        seen.setdefault(f.fingerprint, f.message)
    return make_envelope(
        BASELINE_SCHEMA,
        {
            "suppressions": [
                {"fingerprint": fp, "reason": f"recorded: {msg}"}
                for fp, msg in sorted(seen.items())
            ]
        },
    )


@dataclass
class CoherenceReport:
    """Everything one analyzer run produced."""

    paths: list[str]
    verdicts: list[LocationVerdict]
    findings: list[CoherenceFinding] = field(default_factory=list)
    suppressed: list[CoherenceFinding] = field(default_factory=list)
    stale_suppressions: list[BaselineEntry] = field(default_factory=list)
    evidence: dict[str, DynamicEvidence] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)
    baseline_path: str | None = None

    @property
    def exit_code(self) -> int:
        """0 clean / 1 findings / 2 analyzer errors."""
        if self.errors:
            return 2
        return 1 if self.findings else 0

    def to_envelope(self) -> dict[str, Any]:
        """The ``repro-analysis-coherence/1`` document."""
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.code] = counts.get(f.code, 0) + 1
        payload = {
            "paths": list(self.paths),
            "locations": [v.to_dict() for v in self.verdicts],
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "stale_suppressions": [
                e.to_dict() for e in self.stale_suppressions
            ],
            "dynamic_evidence": [
                self.evidence[k].to_dict() for k in sorted(self.evidence)
            ],
            "errors": list(self.errors),
            "summary": {
                "locations": len(self.verdicts),
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
                "by_code": counts,
                "by_class": _count_by(self.verdicts, "inferred_class"),
                "by_verdict": _count_by(self.verdicts, "verdict"),
            },
            "baseline": self.baseline_path,
            "exit_code": self.exit_code,
        }
        return make_envelope(COHERENCE_SCHEMA, payload, digest=True)


def _count_by(verdicts: Sequence[LocationVerdict], attr: str) -> dict[str, int]:
    out: dict[str, int] = {}
    for v in verdicts:
        key = getattr(v, attr)
        out[key] = out.get(key, 0) + 1
    return dict(sorted(out.items()))


def run_coherence(
    paths: Sequence[str],
    traces: Sequence[str] | None = None,
    races: Sequence[str] | None = None,
    baseline_path: str | None = None,
) -> CoherenceReport:
    """Run the full static (+ optional dynamic) coherence analysis."""
    scan = scan_paths(list(paths))
    verdicts, findings = classify_scan(scan)
    errors = list(scan.errors)

    evidence: dict[str, DynamicEvidence] = {}
    if traces or races:
        evidence, ev_errors = load_dynamic_evidence(
            traces=list(traces or []), races=list(races or [])
        )
        errors.extend(ev_errors)
        if not ev_errors:
            findings = findings + cross_validate(verdicts, evidence)
            findings.sort(key=lambda f: (f.path, f.line, f.code))

    suppressed: list[CoherenceFinding] = []
    stale: list[BaselineEntry] = []
    if baseline_path is not None:
        try:
            entries = load_baseline(baseline_path)
        except (OSError, ValueError) as exc:
            errors.append(str(exc))
            entries = []
        if entries:
            wanted = {e.fingerprint: e for e in entries}
            kept: list[CoherenceFinding] = []
            fired: set[str] = set()
            for f in findings:
                if f.fingerprint in wanted:
                    suppressed.append(f)
                    fired.add(f.fingerprint)
                else:
                    kept.append(f)
            findings = kept
            stale = [e for e in entries if e.fingerprint not in fired]

    return CoherenceReport(
        paths=list(paths),
        verdicts=verdicts,
        findings=findings,
        suppressed=suppressed,
        stale_suppressions=stale,
        evidence=evidence,
        errors=errors,
        baseline_path=baseline_path,
    )


def render_text(report: CoherenceReport) -> str:
    """Human-readable rendering of a report."""
    lines: list[str] = []
    header = (
        f"{'PATTERN':<18} {'CLASS':<16} {'VERDICT':<10} "
        f"{'CONTRACT':<22} SITES"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for v in report.verdicts:
        if v.contract is None:
            contract = "(none)"
        else:
            age = "inf" if v.contract.age is None else str(v.contract.age)
            contract = f"{v.contract.tolerance}(age={age})"
        w = len(v.write_sites)
        r = len(v.read_sites)
        lines.append(
            f"{v.pattern:<18} {v.inferred_class:<16} {v.verdict:<10} "
            f"{contract:<22} {w}w/{r}r"
        )
    if report.evidence:
        lines.append("")
        lines.append("dynamic evidence:")
        for locn in sorted(report.evidence):
            ev = report.evidence[locn]
            lines.append(
                f"  {locn}: {ev.exposure} "
                f"(reads={ev.reads}, tolerated={ev.tolerated}, "
                f"unbounded={ev.unbounded}, max_staleness={ev.max_staleness})"
            )
    if report.findings:
        lines.append("")
        for f in report.findings:
            lines.append(f.format())
    if report.suppressed:
        lines.append("")
        lines.append(
            f"{len(report.suppressed)} finding(s) suppressed by baseline "
            f"{report.baseline_path}"
        )
    for e in report.stale_suppressions:
        lines.append(
            f"stale suppression (no longer fires): {e.fingerprint}"
        )
    for err in report.errors:
        lines.append(f"error: {err}")
    lines.append("")
    n = len(report.verdicts)
    lines.append(
        f"{n} DSM location(s) classified, "
        f"{len(report.findings)} finding(s)"
        + (f", {len(report.suppressed)} suppressed" if report.suppressed else "")
    )
    return "\n".join(lines)


def render_json(report: CoherenceReport) -> str:
    """Envelope rendering (canonical sorted-keys JSON)."""
    return render_envelope(report.to_envelope())
