"""Race-tolerance classification and contract checking.

Takes the AST pass's output (:class:`~repro.analysis.coherence.astpass.
ScanResult`) and produces, per DSM location pattern, a
:class:`~repro.analysis.coherence.model.LocationVerdict` plus any
RPR101–RPR104 / RPR106 findings.

Inference on the :data:`~repro.core.contract.TOLERANCE_CLASSES`
lattice
---------------------------------------------------------------------
A location's inferred class is the weakest (most race-exposed) class
its discovered access sites force:

* no write sites → ``read_only``;
* writes but no read sites → ``single_writer`` (the DSM registry
  enforces one writer per location at runtime);
* every read a strict ``global_read(..., 0)`` → ``phase_concurrent``
  when a barrier call is in scope of every read (write phase and read
  phase are separated), else ``single_writer``;
* any read that can return stale data (a positive or symbolic age
  bound, or an unbounded ``read_local``) → ``commutative`` **iff** the
  reducing operation passes the effect scan (no global-state RNG, wall
  clock, I/O, or ``global`` rebinding detected — staleness tolerance
  is only claimable when incorporation is order-insensitive, and an
  impure reducer makes that claim uncheckable), else ``unbounded``.

The **static verdict** compresses the read-side exposure to the
dynamic classifier's vocabulary (strict / tolerated / unbounded) so
:mod:`repro.analysis.coherence.crossval` can compare the two worlds
directly.
"""

from __future__ import annotations

from fnmatch import fnmatchcase

from repro.analysis.coherence.astpass import ModuleScan, ScanResult
from repro.analysis.coherence.model import (
    AccessSite,
    CoherenceFinding,
    ContractDecl,
    LocationVerdict,
    make_finding,
)
from repro.core.contract import tolerance_rank


def representative_name(pattern: str) -> str:
    """A concrete location name matching ``pattern`` (``*`` → ``0``)."""
    return pattern.replace("*", "0")


def contract_covers(contract: ContractDecl, pattern: str) -> bool:
    """Whether ``contract`` covers locations of access pattern ``pattern``."""
    return fnmatchcase(representative_name(pattern), contract.pattern)


def find_contract(
    pattern: str, contracts: list[ContractDecl]
) -> ContractDecl | None:
    """Most specific declared contract covering ``pattern`` (or None)."""
    best: ContractDecl | None = None
    for c in contracts:
        if contract_covers(c, pattern) and (
            best is None or len(c.pattern) > len(best.pattern)
        ):
            best = c
    return best


def _is_strict_read(site: AccessSite) -> bool:
    return (
        site.kind == "global_read"
        and site.age is not None
        and site.age.kind == "const"
        and site.age.value == 0
    )


def _is_bounded_read(site: AccessSite) -> bool:
    """A read whose staleness has *some* static finite bound."""
    if site.kind != "global_read" or site.age is None:
        return False
    if site.age.kind == "const":
        return site.age.value is not None and site.age.value >= 0
    if site.age.kind == "symbolic":
        # a symbolic bound counts when the reaching default resolved and
        # a validation guard proves it can never be negative
        return site.age.value is not None and site.age.nonneg
    return False


def _reducer_effects_for(
    location_sites: list[AccessSite],
    modules: list[ModuleScan],
) -> list[str]:
    """Detected impure effects in the reducing code of these reads.

    The reducing operation is (a) the function body enclosing each
    read site and (b) any ``on_update`` handler bound in a module that
    touches the location — handler sites carry pattern ``*`` because
    they apply to every location their node reads.
    """
    effects: list[str] = []
    touched_modules = {s.module for s in location_sites}
    read_functions = {
        (s.module, s.function)
        for s in location_sites
        if s.kind in ("global_read", "read_local")
    }
    for m in modules:
        if m.module not in touched_modules:
            continue
        for qual, fx in sorted(m.reducer_effects.items()):
            if (m.module, qual) in read_functions:
                effects.extend(f"{m.module}.{qual}: {e}" for e in fx)
        for s in m.sites:
            if s.kind == "on_update" and s.target is not None:
                fx = m.reducer_effects.get(s.target, [])
                effects.extend(f"{m.module}.{s.target}: {e}" for e in fx)
    return effects


def infer_class(
    sites: list[AccessSite], reducer_effects: list[str]
) -> tuple[str, list[str]]:
    """(inferred tolerance class, evidence trail) for one location."""
    evidence: list[str] = []
    writes = [s for s in sites if s.kind == "write"]
    reads = [s for s in sites if s.kind in ("global_read", "read_local")]
    if not writes:
        evidence.append("no write sites discovered -> read_only")
        return "read_only", evidence
    if not reads:
        evidence.append("writes but no read sites -> single_writer")
        return "single_writer", evidence
    stale_capable = [
        s for s in reads if not _is_strict_read(s)
    ]
    if not stale_capable:
        barriers = all(s.barrier_in_scope for s in reads)
        if barriers:
            evidence.append(
                "all reads strict (age 0) with a barrier in scope -> "
                "phase_concurrent"
            )
            return "phase_concurrent", evidence
        evidence.append(
            "all reads strict (age 0) but no barrier separates phases -> "
            "single_writer"
        )
        return "single_writer", evidence
    for s in stale_capable:
        desc = s.age.source if s.age is not None else "no bound"
        evidence.append(
            f"{s.path}:{s.line} {s.kind} may return stale data (age: {desc})"
        )
    if reducer_effects:
        evidence.extend(f"impure reducer effect: {e}" for e in reducer_effects)
        evidence.append("stale reads + unverifiable reducer -> unbounded")
        return "unbounded", evidence
    evidence.append(
        "stale reads with an effect-free reducing operation -> commutative"
    )
    return "commutative", evidence


def static_verdict(sites: list[AccessSite], inferred: str) -> str:
    """Compress read-side exposure to strict / tolerated / unbounded."""
    reads = [s for s in sites if s.kind in ("global_read", "read_local")]
    if not reads or all(_is_strict_read(s) for s in reads):
        return "strict"
    unbounded_reads = [
        s
        for s in reads
        if s.kind == "read_local"
        or (not _is_strict_read(s) and not _is_bounded_read(s))
    ]
    if not unbounded_reads:
        return "tolerated"
    # unbounded staleness is still *tolerated* when the algorithm is
    # order/staleness-insensitive (the paper's GA-migration argument)
    return "tolerated" if inferred == "commutative" else "unbounded"


def _check_contract(
    pattern: str,
    contract: ContractDecl | None,
    sites: list[AccessSite],
    inferred: str,
    reducer_effects: list[str],
) -> list[CoherenceFinding]:
    findings: list[CoherenceFinding] = []
    anchor = sites[0]
    if contract is None:
        findings.append(
            make_finding(
                "RPR101",
                f"DSM location {pattern!r} has {len(sites)} access site(s) "
                "but no declared staleness contract",
                anchor.path,
                anchor.line,
                pattern,
            )
        )
        return findings

    for s in sites:
        if s.kind != "global_read" or s.age is None:
            continue
        if contract.age is not None:
            bound = s.age.value
            if s.age.kind in ("const", "symbolic") and bound is not None:
                if bound > contract.age:
                    findings.append(
                        make_finding(
                            "RPR102",
                            f"global_read age {bound} (from {s.age.source}) "
                            f"exceeds the contract's declared age "
                            f"{contract.age}",
                            s.path,
                            s.line,
                            pattern,
                        )
                    )
            elif s.age.kind == "unknown":
                findings.append(
                    make_finding(
                        "RPR103",
                        f"age bound {s.age.source!r} is statically "
                        f"unresolvable but the contract declares a finite "
                        f"age {contract.age}",
                        s.path,
                        s.line,
                        pattern,
                    )
                )
    if contract.age is not None:
        for s in sites:
            if s.kind == "read_local":
                findings.append(
                    make_finding(
                        "RPR103",
                        "read_local cannot honour a staleness bound but the "
                        f"contract declares a finite age {contract.age}",
                        s.path,
                        s.line,
                        pattern,
                    )
                )

    if tolerance_rank(inferred) > tolerance_rank(contract.tolerance):
        findings.append(
            make_finding(
                "RPR104",
                f"inferred class {inferred!r} is weaker than the declared "
                f"{contract.tolerance!r}",
                contract.path,
                contract.line,
                pattern,
            )
        )

    if contract.tolerance == "commutative" and reducer_effects:
        listed = "; ".join(reducer_effects[:3])
        findings.append(
            make_finding(
                "RPR106",
                "the contract claims commutative incorporation but the "
                f"reducing operation has detected impure effects ({listed})",
                contract.path,
                contract.line,
                pattern,
            )
        )
    return findings


def classify_scan(
    scan: ScanResult,
) -> tuple[list[LocationVerdict], list[CoherenceFinding]]:
    """Classify every discovered location and check its contract.

    Returns ``(verdicts, findings)``; verdicts are sorted by pattern,
    findings by (path, line, code).  ``on_update`` handler sites attach
    to every location of their module rather than forming locations of
    their own; ``<unresolved>`` patterns become per-site RPR101s (an
    access the analyzer cannot attribute is an access nobody's contract
    covers).
    """
    contracts = scan.contracts
    by_pattern: dict[str, list[AccessSite]] = {}
    for site in scan.sites:
        if site.kind == "on_update":
            continue
        by_pattern.setdefault(site.pattern, []).append(site)

    verdicts: list[LocationVerdict] = []
    findings: list[CoherenceFinding] = []
    for pattern in sorted(by_pattern):
        sites = sorted(by_pattern[pattern], key=lambda s: (s.path, s.line))
        if pattern == "<unresolved>":
            for s in sites:
                findings.append(
                    make_finding(
                        "RPR101",
                        f"unresolvable location expression at a {s.kind} "
                        f"site ({s.note}) — no contract can cover it",
                        s.path,
                        s.line,
                        pattern,
                    )
                )
            continue
        reducer_effects = _reducer_effects_for(sites, scan.modules)
        inferred, evidence = infer_class(sites, reducer_effects)
        contract = find_contract(pattern, contracts)
        verdict = static_verdict(sites, inferred)
        findings.extend(
            _check_contract(pattern, contract, sites, inferred, reducer_effects)
        )
        verdicts.append(
            LocationVerdict(
                pattern=pattern,
                inferred_class=inferred,
                verdict=verdict,
                contract=contract,
                sites=sites,
                evidence=evidence,
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return verdicts, findings
