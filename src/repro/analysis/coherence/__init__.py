"""Static coherence analyzer for DSM access patterns.

An interprocedural AST pass over the workload code that discovers
every ``Dsm``/``Global_Read`` access site, classifies each shared
location into a race-tolerance class, checks declared
``dsm_contract(...)`` staleness contracts against what the code
actually does, and cross-validates the static verdicts against
dynamic evidence (race-classifier output and run traces).

Entry points: :func:`~repro.analysis.coherence.driver.run_coherence`
in-process, ``python -m repro.analysis coherence`` from the shell.
"""

from repro.analysis.coherence.astpass import ModuleScan, ScanResult, scan_paths, scan_source
from repro.analysis.coherence.classify import classify_scan, find_contract, infer_class
from repro.analysis.coherence.crossval import (
    DynamicEvidence,
    cross_validate,
    evidence_from_races_doc,
    evidence_from_trace,
    load_dynamic_evidence,
)
from repro.analysis.coherence.driver import (
    DEFAULT_BASELINE,
    BaselineEntry,
    CoherenceReport,
    baseline_doc,
    load_baseline,
    render_json,
    render_text,
    run_coherence,
)
from repro.analysis.coherence.model import (
    BASELINE_SCHEMA,
    COHERENCE_RULES,
    COHERENCE_SCHEMA,
    AccessSite,
    AgeValue,
    CoherenceFinding,
    ContractDecl,
    LocationVerdict,
    make_finding,
)

__all__ = [
    "AccessSite",
    "AgeValue",
    "BASELINE_SCHEMA",
    "BaselineEntry",
    "COHERENCE_RULES",
    "COHERENCE_SCHEMA",
    "CoherenceFinding",
    "CoherenceReport",
    "ContractDecl",
    "DEFAULT_BASELINE",
    "DynamicEvidence",
    "LocationVerdict",
    "ModuleScan",
    "ScanResult",
    "baseline_doc",
    "classify_scan",
    "cross_validate",
    "evidence_from_races_doc",
    "evidence_from_trace",
    "find_contract",
    "infer_class",
    "load_baseline",
    "load_dynamic_evidence",
    "make_finding",
    "render_json",
    "render_text",
    "run_coherence",
    "scan_paths",
    "scan_source",
]
