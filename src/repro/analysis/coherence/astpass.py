"""Interprocedural AST discovery of DSM access sites and contracts.

The pass answers, from source alone, the three questions the
classifier needs (:mod:`repro.analysis.coherence.classify`):

1. **Where is the DSM touched?**  Every ``DsmNode.write`` /
   ``global_read`` / ``read_local`` call site, every
   ``Dsm.register(SharedLocationSpec(...))`` declaration and every
   ``dnode.on_update = handler`` binding becomes an
   :class:`~repro.analysis.coherence.model.AccessSite`.  Receivers are
   resolved by dataflow, not by name: a variable bound from
   ``dsm.node(...)`` is a DSM handle wherever it flows within the
   function scope chain (``dnode`` is accepted as a conventional
   fallback so helper functions taking a node parameter still scan).
2. **Which location does a site touch?**  Location expressions are
   normalised to fnmatch *patterns*: string constants stay themselves,
   f-strings map each interpolation to ``*`` (``f"migrants.{p}"`` →
   ``migrants.*``), and plain names are resolved through per-scope
   constant propagation (``locn = f"migrants.{p}"`` … ``read_local(locn)``).
3. **What age bound reaches a read?**  The third ``global_read``
   argument is resolved to an :class:`~repro.analysis.coherence.model.
   AgeValue` by constant propagation: literals and locally-bound int
   constants become ``const``; ``cfg.age``-style attributes are chased
   through parameter annotations to the config dataclass declared in
   the same module, yielding a ``symbolic`` value with the field's
   declared default and whether a ``< 0 → raise`` guard in
   ``__post_init__`` proves it non-negative.

The pass is *interprocedural within a module* in the way the
workloads need: nested process closures inherit their enclosing
functions' bindings (parameter annotations, string/int constants, DSM
handles), and call-graph context is recorded as the dotted function
path (``_deme_process.proc``).  It also performs the effect scan
behind RPR106: :func:`detect_impure_effects` reports constructs that
void a commutativity claim (global-state RNG, wall clock, I/O,
``global`` rebinding) inside reducing code.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from repro.analysis.lint import iter_python_files
from repro.analysis.rules import (
    NUMPY_SEEDED_OK,
    STDLIB_RANDOM_OK,
    WALL_CLOCK,
    dotted_name,
    terminal_name,
)
from repro.analysis.coherence.model import AccessSite, AgeValue, ContractDecl

#: conventional DSM-handle parameter names accepted when no ``.node(...)``
#: binding is visible in the scope chain (helper functions taking a node)
NODE_NAME_FALLBACK = frozenset({"dnode", "dsm_node", "dsmnode"})

#: call names that open/read the outside world — incompatible with a
#: checkable commutativity claim
IO_CALLS = frozenset({"open", "print", "input"})


def module_name_for(path: str) -> str:
    """Dotted module path for a source file (``src/repro/ga/island.py``
    → ``repro.ga.island``); falls back to the stem outside ``src``."""
    norm = os.path.normpath(path)
    parts = norm.split(os.sep)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    stem = [p for p in parts if p]
    if stem and stem[-1].endswith(".py"):
        stem[-1] = stem[-1][:-3]
    if stem and stem[-1] == "__init__":
        stem = stem[:-1]
    return ".".join(stem) if stem else os.path.splitext(os.path.basename(path))[0]


# ---------------------------------------------------------------------------
# Module-level facts (pass 1)
# ---------------------------------------------------------------------------
@dataclass
class ConfigClass:
    """Defaults and validation facts for one (dataclass-style) config."""

    name: str
    defaults: dict[str, int | None] = field(default_factory=dict)
    #: fields proven >= 0 by a ``< 0 → raise`` guard in ``__post_init__``
    nonneg: set[str] = field(default_factory=set)


def _const_int_or_none(node: ast.expr) -> tuple[bool, int | None]:
    """(resolved?, value) for an int/None constant expression."""
    if isinstance(node, ast.Constant) and (
        node.value is None or isinstance(node.value, int)
    ):
        # bool is an int subclass; a bool default is not an age
        if isinstance(node.value, bool):
            return False, None
        return True, node.value
    return False, None


def _collect_config_classes(tree: ast.Module) -> dict[str, ConfigClass]:
    """Field defaults + ``__post_init__`` non-negativity guards per class."""
    out: dict[str, ConfigClass] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        cc = ConfigClass(node.name)
        for stmt in node.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.value is not None
            ):
                ok, value = _const_int_or_none(stmt.value)
                if ok:
                    cc.defaults[stmt.target.id] = value
            elif isinstance(stmt, ast.FunctionDef) and stmt.name == "__post_init__":
                cc.nonneg |= _nonneg_guards(stmt)
        if cc.defaults or cc.nonneg:
            out[node.name] = cc
    return out


def _nonneg_guards(post_init: ast.FunctionDef) -> set[str]:
    """Fields ``f`` guarded by ``if self.f < 0: raise ...`` (any nesting)."""
    guarded: set[str] = set()
    for node in ast.walk(post_init):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Lt)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value == 0
        ):
            continue
        lhs = test.left
        if (
            isinstance(lhs, ast.Attribute)
            and isinstance(lhs.value, ast.Name)
            and lhs.value.id == "self"
            and any(isinstance(n, ast.Raise) for n in ast.walk(node))
        ):
            guarded.add(lhs.attr)
    return guarded


def _collect_contracts(tree: ast.Module, path: str) -> list[ContractDecl]:
    """Every ``dsm_contract(...)`` declaration with resolvable constants."""
    out: list[ContractDecl] = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and terminal_name(node.func) == "dsm_contract"
        ):
            continue
        pattern = None
        if node.args and isinstance(node.args[0], ast.Constant):
            if isinstance(node.args[0].value, str):
                pattern = node.args[0].value
        kwargs: dict[str, object] = {}
        for kw in node.keywords:
            if kw.arg is not None and isinstance(kw.value, ast.Constant):
                kwargs[kw.arg] = kw.value.value
        if pattern is None:
            pattern = str(kwargs.get("pattern", "")) or ""
        if not pattern:
            continue  # dynamically built pattern: nothing checkable
        age = kwargs.get("age", None)
        out.append(
            ContractDecl(
                pattern=pattern,
                writers=int(kwargs.get("writers", 1)),  # type: ignore[arg-type]
                age=age if (age is None or isinstance(age, int)) else None,
                tolerance=str(kwargs.get("tolerance", "commutative")),
                reason=str(kwargs.get("reason", "")),
                path=path,
                line=node.lineno,
            )
        )
    return out


def _collect_import_aliases(tree: ast.Module) -> tuple[dict[str, str], dict[str, str]]:
    """(module_aliases, from_imports) over the whole file, any position."""
    module_aliases: dict[str, str] = {}
    from_imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                module_aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.level == 0:
                for alias in node.names:
                    from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return module_aliases, from_imports


def _resolve_call_path(
    func: ast.expr, module_aliases: dict[str, str], from_imports: dict[str, str]
) -> str | None:
    """Canonical dotted path of a call target (same rules as the lint)."""
    dotted = dotted_name(func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if head in from_imports:
        head = from_imports[head]
    elif head in module_aliases:
        head = module_aliases[head]
    return f"{head}.{rest}" if rest else head


def detect_impure_effects(
    fn: ast.AST,
    module_aliases: dict[str, str],
    from_imports: dict[str, str],
) -> list[str]:
    """Effects in ``fn``'s own statements that void a commutativity claim.

    Reported (as short strings): global-state RNG calls, wall-clock
    reads, builtin I/O (``open``/``print``/``input``) and ``global``
    statements.  Calls to unknown helpers are *not* reported — the scan
    is a detector of known-impure constructs, not a purity prover; its
    verdict is "no impure effect detected", which is what RPR106's
    "checkable claim" requires.  Nested function definitions are scanned
    too: a reducer's helper closures are part of the reducing operation.
    """
    effects: list[str] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            effects.append(f"line {node.lineno}: global statement")
        elif isinstance(node, ast.Call):
            path = _resolve_call_path(node.func, module_aliases, from_imports)
            if path is not None:
                if path.startswith("random.") and path.split(".", 1)[1] not in STDLIB_RANDOM_OK:
                    effects.append(f"line {node.lineno}: global-state RNG {path}()")
                elif (
                    path.startswith("numpy.random.")
                    and path.rsplit(".", 1)[1] not in NUMPY_SEEDED_OK
                ):
                    effects.append(f"line {node.lineno}: global-state RNG {path}()")
                elif path in WALL_CLOCK:
                    effects.append(f"line {node.lineno}: wall-clock read {path}()")
            if isinstance(node.func, ast.Name) and node.func.id in IO_CALLS:
                effects.append(f"line {node.lineno}: I/O call {node.func.id}()")
    return effects


# ---------------------------------------------------------------------------
# Function-scope dataflow (pass 2)
# ---------------------------------------------------------------------------
@dataclass
class _Scope:
    """One function's environment, chained to its enclosing scopes."""

    qualname: str
    parent: "_Scope | None" = None
    str_env: dict[str, str] = field(default_factory=dict)  # var -> pattern
    int_env: dict[str, int] = field(default_factory=dict)  # var -> const
    node_vars: set[str] = field(default_factory=set)  # DSM handles
    param_types: dict[str, str] = field(default_factory=dict)  # var -> class
    barrier: bool = False

    def lookup_str(self, name: str) -> str | None:
        s: _Scope | None = self
        while s is not None:
            if name in s.str_env:
                return s.str_env[name]
            s = s.parent
        return None

    def lookup_int(self, name: str) -> int | None:
        s: _Scope | None = self
        while s is not None:
            if name in s.int_env:
                return s.int_env[name]
            s = s.parent
        return None

    def is_node_var(self, name: str) -> bool:
        s: _Scope | None = self
        while s is not None:
            if name in s.node_vars:
                return True
            s = s.parent
        return name in NODE_NAME_FALLBACK

    def lookup_type(self, name: str) -> str | None:
        s: _Scope | None = self
        while s is not None:
            if name in s.param_types:
                return s.param_types[name]
            s = s.parent
        return None


@dataclass
class ModuleScan:
    """Everything the pass extracted from one source file."""

    path: str
    module: str
    sites: list[AccessSite] = field(default_factory=list)
    contracts: list[ContractDecl] = field(default_factory=list)
    #: qualified function name -> detected impure effects (RPR106 scan);
    #: only functions that contain DSM reads or are on_update handlers
    reducer_effects: dict[str, list[str]] = field(default_factory=dict)


@dataclass
class ScanResult:
    """The merged scan over a set of paths."""

    modules: list[ModuleScan] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def sites(self) -> list[AccessSite]:
        """Every discovered access site, in path order."""
        return [s for m in self.modules for s in m.sites]

    @property
    def contracts(self) -> list[ContractDecl]:
        """Every discovered contract declaration, in path order."""
        return [c for m in self.modules for c in m.contracts]


def _pattern_of(expr: ast.expr, scope: _Scope) -> tuple[str, str]:
    """Normalise a location expression to an fnmatch pattern.

    Returns ``(pattern, note)``; unresolvable expressions yield an
    ``<unresolved>`` pattern that the classifier surfaces as a finding
    rather than silently dropping the site.
    """
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value, "string constant"
    if isinstance(expr, ast.JoinedStr):
        parts: list[str] = []
        for value in expr.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                parts.append("*")
        return "".join(parts), "f-string, interpolations -> *"
    if isinstance(expr, ast.Name):
        bound = scope.lookup_str(expr.id)
        if bound is not None:
            return bound, f"propagated from local {expr.id!r}"
        return "<unresolved>", f"name {expr.id!r} has no visible string binding"
    dotted = dotted_name(expr)
    return "<unresolved>", f"unsupported location expression {dotted or type(expr).__name__}"


def _age_of(
    expr: ast.expr, scope: _Scope, configs: dict[str, ConfigClass]
) -> AgeValue:
    """Resolve a ``global_read`` age argument to an :class:`AgeValue`."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
        return AgeValue(kind="const", source=repr(expr.value), value=expr.value)
    if (
        isinstance(expr, ast.UnaryOp)
        and isinstance(expr.op, ast.USub)
        and isinstance(expr.operand, ast.Constant)
        and isinstance(expr.operand.value, int)
    ):
        v = -expr.operand.value
        return AgeValue(kind="const", source=repr(v), value=v)
    if isinstance(expr, ast.Name):
        bound = scope.lookup_int(expr.id)
        if bound is not None:
            return AgeValue(kind="const", source=expr.id, value=bound)
        return AgeValue(kind="unknown", source=expr.id)
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        base, attr = expr.value.id, expr.attr
        cls_name = scope.lookup_type(base)
        if cls_name is not None and cls_name in configs:
            cc = configs[cls_name]
            return AgeValue(
                kind="symbolic",
                source=f"{base}.{attr}",
                value=cc.defaults.get(attr),
                nonneg=attr in cc.nonneg,
            )
        return AgeValue(kind="symbolic", source=f"{base}.{attr}")
    dotted = dotted_name(expr)
    return AgeValue(kind="unknown", source=dotted or type(expr).__name__)


def _annotation_name(ann: ast.expr | None) -> str | None:
    """The plain class name of a parameter annotation, if simple."""
    if isinstance(ann, ast.Name):
        return ann.id
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        return ann.value
    if isinstance(ann, ast.Attribute):
        return ann.attr
    return None


class _FunctionWalker:
    """Walks one module's function tree, collecting access sites."""

    def __init__(self, scan: ModuleScan, configs: dict[str, ConfigClass],
                 module_aliases: dict[str, str], from_imports: dict[str, str]) -> None:
        self.scan = scan
        self.configs = configs
        self.module_aliases = module_aliases
        self.from_imports = from_imports
        #: handler name -> FunctionDef for on_update purity scans
        self._fn_defs: dict[str, ast.FunctionDef] = {}

    # -- entry ----------------------------------------------------------
    def walk_module(self, tree: ast.Module) -> None:
        root = _Scope(qualname="<module>")
        self._walk_body(tree.body, root)

    # -- helpers --------------------------------------------------------
    def _own_statements(self, body: list[ast.stmt], scope: _Scope) -> None:
        """Two sub-passes over one function body: bindings first (a
        barrier or ``x = dsm.node(...)`` below an access site still
        counts — source order within a function is not execution order
        for loop bodies), then the access-site scan."""
        for stmt in body:
            self._collect_bindings(stmt, scope)
        for stmt in body:
            self._scan_statement(stmt, scope)

    def _walk_body(self, body: list[ast.stmt], scope: _Scope) -> None:
        # register own function defs before the statement scan: a
        # ``dnode.on_update = handler`` binding must find its handler's
        # def even though the def follows no particular source order
        own_defs = self._iter_own_funcdefs(body)
        for fn in own_defs:
            self._fn_defs[fn.name] = fn
        self._own_statements(body, scope)
        # recurse into nested defs with a child scope
        for fn in own_defs:
            child = _Scope(
                qualname=(
                    fn.name
                    if scope.qualname == "<module>"
                    else f"{scope.qualname}.{fn.name}"
                ),
                parent=scope,
            )
            args = fn.args
            for a in (
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *((args.vararg,) if args.vararg else ()),
                *((args.kwarg,) if args.kwarg else ()),
            ):
                ann = _annotation_name(a.annotation)
                if ann is not None:
                    child.param_types[a.arg] = ann
            self._walk_body(fn.body, child)

    def _iter_own_funcdefs(self, body: list[ast.stmt]) -> list[ast.FunctionDef]:
        """Function defs belonging to these statements (not nested defs)."""
        out: list[ast.FunctionDef] = []
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.FunctionDef):
                out.append(node)
                continue  # its nested defs are found when it is walked
            if isinstance(node, (ast.AsyncFunctionDef, ast.Lambda)):
                continue
            # ClassDef bodies are descended into so methods are walked too
            stack.extend(ast.iter_child_nodes(node))
        out.sort(key=lambda f: f.lineno)
        return out

    def _iter_own_nodes(self, stmt: ast.stmt) -> list[ast.AST]:
        """All AST nodes of ``stmt`` excluding nested function bodies."""
        out: list[ast.AST] = []
        stack: list[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            out.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return out

    # -- bindings sub-pass ---------------------------------------------
    def _collect_bindings(self, stmt: ast.stmt, scope: _Scope) -> None:
        for node in self._iter_own_nodes(stmt):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    value = node.value
                    if isinstance(value, ast.Constant) and isinstance(value.value, str):
                        scope.str_env[target.id] = value.value
                    elif isinstance(value, ast.JoinedStr):
                        scope.str_env[target.id] = _pattern_of(value, scope)[0]
                    elif isinstance(value, ast.Constant) and isinstance(value.value, int) \
                            and not isinstance(value.value, bool):
                        scope.int_env[target.id] = value.value
                    elif (
                        isinstance(value, ast.Call)
                        and terminal_name(value.func) == "node"
                    ):
                        scope.node_vars.add(target.id)
            elif isinstance(node, ast.Call) and terminal_name(node.func) == "barrier":
                scope.barrier = True

    # -- access-site sub-pass ------------------------------------------
    def _scan_statement(self, stmt: ast.stmt, scope: _Scope) -> None:
        for node in self._iter_own_nodes(stmt):
            if isinstance(node, ast.Call):
                self._scan_call(node, scope)
            elif isinstance(node, ast.Assign):
                self._scan_on_update(node, scope)

    def _site(
        self, kind: str, pattern: str, node: ast.AST, scope: _Scope,
        age: AgeValue | None = None, target: str | None = None, note: str = "",
    ) -> None:
        self.scan.sites.append(
            AccessSite(
                kind=kind,
                pattern=pattern,
                path=self.scan.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                module=self.scan.module,
                function=scope.qualname,
                age=age,
                barrier_in_scope=scope.barrier,
                target=target,
                note=note,
            )
        )

    def _record_reducer(self, scope: _Scope, fn_name: str | None = None) -> None:
        """Run the effect scan for the reducing code around an access."""
        if fn_name is not None:
            fn = self._fn_defs.get(fn_name)
            if fn is not None and fn_name not in self.scan.reducer_effects:
                self.scan.reducer_effects[fn_name] = detect_impure_effects(
                    fn, self.module_aliases, self.from_imports
                )
            return
        qual = scope.qualname
        if qual in self.scan.reducer_effects or qual == "<module>":
            return
        tail = qual.rsplit(".", 1)[-1]
        fn = self._fn_defs.get(tail)
        if fn is not None:
            self.scan.reducer_effects[qual] = detect_impure_effects(
                fn, self.module_aliases, self.from_imports
            )

    def _scan_call(self, node: ast.Call, scope: _Scope) -> None:
        name = terminal_name(node.func)
        if name in ("global_read", "read_local"):
            if not node.args:
                return
            pattern, note = _pattern_of(node.args[0], scope)
            age: AgeValue | None = None
            if name == "global_read":
                age_expr: ast.expr | None = node.args[2] if len(node.args) >= 3 else None
                for kw in node.keywords:
                    if kw.arg == "age":
                        age_expr = kw.value
                if age_expr is not None:
                    age = _age_of(age_expr, scope, self.configs)
                else:
                    age = AgeValue(kind="unknown", source="<missing>")
            self._site(name, pattern, node, scope, age=age, note=note)
            self._record_reducer(scope)
        elif name == "write":
            receiver = node.func.value if isinstance(node.func, ast.Attribute) else None
            if not (
                isinstance(receiver, ast.Name) and scope.is_node_var(receiver.id)
            ):
                return  # file handles etc. also spell .write()
            if not node.args:
                return
            pattern, note = _pattern_of(node.args[0], scope)
            self._site("write", pattern, node, scope, note=note)
        elif name == "register":
            # Dsm.register(SharedLocationSpec(<locn>, ...))
            if not node.args:
                return
            spec = node.args[0]
            if not (
                isinstance(spec, ast.Call)
                and terminal_name(spec.func) == "SharedLocationSpec"
            ):
                return
            locn_expr: ast.expr | None = spec.args[0] if spec.args else None
            for kw in spec.keywords:
                if kw.arg == "name":
                    locn_expr = kw.value
            if locn_expr is None:
                return
            pattern, note = _pattern_of(locn_expr, scope)
            self._site("register", pattern, node, scope, note=note)

    def _scan_on_update(self, node: ast.Assign, scope: _Scope) -> None:
        """``dnode.on_update = handler`` binds a reducing operation."""
        for target in node.targets:
            if not (
                isinstance(target, ast.Attribute)
                and target.attr == "on_update"
                and isinstance(target.value, ast.Name)
                and scope.is_node_var(target.value.id)
            ):
                continue
            handler = (
                node.value.id if isinstance(node.value, ast.Name) else None
            )
            self._site(
                "on_update", "*", node, scope, target=handler,
                note="update handler binds to every location the node reads",
            )
            if handler is not None:
                self._record_reducer(scope, fn_name=handler)


def scan_source(source: str, path: str) -> ModuleScan:
    """Scan one module's source text (raises ``SyntaxError`` unparsed)."""
    tree = ast.parse(source, filename=path)
    scan = ModuleScan(path=path, module=module_name_for(path))
    configs = _collect_config_classes(tree)
    scan.contracts = _collect_contracts(tree, path)
    module_aliases, from_imports = _collect_import_aliases(tree)
    walker = _FunctionWalker(scan, configs, module_aliases, from_imports)
    walker.walk_module(tree)
    return scan


def scan_paths(paths: list[str]) -> ScanResult:
    """Scan every Python file under ``paths`` (files or directories)."""
    result = ScanResult()
    try:
        files = list(iter_python_files(paths))
    except FileNotFoundError as exc:
        result.errors.append(str(exc))
        return result
    for fpath in files:
        try:
            with open(fpath, encoding="utf-8") as fh:
                source = fh.read()
            result.modules.append(scan_source(source, fpath))
        except (OSError, SyntaxError) as exc:
            result.errors.append(f"{fpath}: {exc}")
    return result
