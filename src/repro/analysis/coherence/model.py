"""Data model of the static coherence analyzer.

The analyzer's vocabulary, shared by the AST pass
(:mod:`repro.analysis.coherence.astpass`), the classifier
(:mod:`repro.analysis.coherence.classify`) and the static↔dynamic
cross-validator (:mod:`repro.analysis.coherence.crossval`):

* an :class:`AccessSite` is one discovered DSM operation in source —
  a ``write``, ``global_read``, ``read_local``, location
  ``register`` or ``on_update`` handler binding — with its resolved
  location *pattern* and (for reads) the age bound that reaches it;
* a :class:`ContractDecl` is one ``dsm_contract(...)`` declaration as
  written in source (the analyzer checks what the AST says, not what
  a live interpreter happens to have imported);
* a :class:`LocationVerdict` is the per-location outcome: the inferred
  race-tolerance class on the :data:`~repro.core.contract.
  TOLERANCE_CLASSES` lattice, the static verdict
  (``strict``/``tolerated``/``unbounded``) and the evidence trail;
* a :class:`CoherenceFinding` is one RPR1xx rule hit, with a stable
  *fingerprint* so intentional exceptions can live in a committed
  baseline file.

Rule codes (the RPR1xx block; RPR0xx is the determinism lint)
-------------------------------------------------------------
=======  ==============================================================
RPR101   DSM location with access sites but no declared contract
RPR102   a static age bound exceeds the contract's declared age
RPR103   an unbounded read on a location whose contract declares a
         finite age (``read_local`` cannot honour a staleness bound)
RPR104   inferred tolerance class is weaker than the declared one
RPR105   static verdict contradicts the dynamic evidence (race
         classifier output or run traces) — either direction
RPR106   a commutativity claim rests on a reducer with detected
         impure effects (RNG/global state/wall clock/I/O)
=======  ==============================================================
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from repro.core.contract import TOLERANCE_CLASSES, tolerance_rank

#: schema tag of the ``python -m repro.analysis coherence --json`` envelope
COHERENCE_SCHEMA = "repro-analysis-coherence/1"
#: schema tag of the committed suppression-baseline file
BASELINE_SCHEMA = "repro-analysis-coherence-baseline/1"

#: rule code -> (short name, fix-it hint)
COHERENCE_RULES: dict[str, tuple[str, str]] = {
    "RPR101": (
        "missing-contract",
        "declare dsm_contract('<pattern>', writers=..., age=..., "
        "tolerance=...) next to the code registering the location",
    ),
    "RPR102": (
        "age-exceeds-contract",
        "lower the global_read age bound or raise the contract's "
        "declared age",
    ),
    "RPR103": (
        "unbounded-read-under-bounded-contract",
        "use global_read with an age within the contract, or declare "
        "age=None if unbounded staleness is algorithmically tolerable",
    ),
    "RPR104": (
        "class-mismatch",
        "strengthen the access discipline to match the declared "
        "tolerance, or weaken the contract's tolerance class",
    ),
    "RPR105": (
        "static-dynamic-mismatch",
        "the declared/inferred tolerance and the observed run disagree; "
        "fix the code or the contract, not the evidence",
    ),
    "RPR106": (
        "unverified-reducer",
        "make the reducing operation effect-free (named RNG streams, no "
        "global state, no wall clock, no I/O) so the commutativity "
        "claim is checkable",
    ),
}

#: site kinds the AST pass produces
SITE_KINDS = ("write", "global_read", "read_local", "register", "on_update")

#: static verdict values, in increasing race exposure
VERDICTS = ("strict", "tolerated", "unbounded")


@dataclass(frozen=True)
class AgeValue:
    """The age bound reaching one ``global_read`` site.

    ``kind`` is ``"const"`` (a literal or propagated constant, in
    ``value``), ``"symbolic"`` (an expression such as ``cfg.age`` —
    ``value`` then holds the declared default when one was resolved,
    and ``nonneg`` whether a ``>= 0`` validation guards it) or
    ``"unknown"``.
    """

    kind: str
    source: str
    value: int | None = None
    nonneg: bool = False

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dict form."""
        return asdict(self)


@dataclass(frozen=True)
class AccessSite:
    """One discovered DSM access in source."""

    kind: str
    pattern: str
    path: str
    line: int
    col: int
    module: str
    function: str
    age: AgeValue | None = None
    #: the enclosing function contains a ``task.barrier(...)`` call
    barrier_in_scope: bool = False
    #: the read's assignment target (dataflow anchor), or the bound
    #: handler name for ``on_update`` sites
    target: str | None = None
    #: free-text resolution notes (how the pattern/age were derived)
    note: str = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dict form (age expanded)."""
        out = asdict(self)
        out["age"] = self.age.to_dict() if self.age else None
        return out


@dataclass(frozen=True)
class ContractDecl:
    """One ``dsm_contract(...)`` declaration found in source."""

    pattern: str
    writers: int
    age: int | None
    tolerance: str
    reason: str
    path: str
    line: int

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dict form."""
        return asdict(self)


@dataclass(frozen=True)
class CoherenceFinding:
    """One RPR1xx rule hit."""

    code: str
    name: str
    message: str
    fixit: str
    path: str
    line: int
    pattern: str

    @property
    def fingerprint(self) -> str:
        """Stable id used by the suppression baseline (code + location
        pattern — deliberately *not* line numbers, which churn)."""
        return f"{self.code}:{self.pattern}"

    def format(self) -> str:
        """One-line ``path:line: CODE message`` rendering."""
        return (
            f"{self.path}:{self.line}: {self.code} [{self.pattern}] "
            f"{self.message} (fix: {self.fixit})"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dict form (fingerprint included)."""
        out = asdict(self)
        out["fingerprint"] = self.fingerprint
        return out


def make_finding(
    code: str, message: str, path: str, line: int, pattern: str
) -> CoherenceFinding:
    """Build a finding for ``code`` with the registered name and fix-it."""
    name, fixit = COHERENCE_RULES[code]
    return CoherenceFinding(
        code=code,
        name=name,
        message=message,
        fixit=fixit,
        path=path,
        line=line,
        pattern=pattern,
    )


@dataclass
class LocationVerdict:
    """The per-location outcome of classification."""

    pattern: str
    inferred_class: str
    verdict: str
    contract: ContractDecl | None
    sites: list[AccessSite] = field(default_factory=list)
    evidence: list[str] = field(default_factory=list)

    @property
    def write_sites(self) -> list[AccessSite]:
        """The location's discovered write sites."""
        return [s for s in self.sites if s.kind == "write"]

    @property
    def read_sites(self) -> list[AccessSite]:
        """The location's discovered read sites (bounded and unbounded)."""
        return [s for s in self.sites if s.kind in ("global_read", "read_local")]

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dict form (sites/contract expanded)."""
        return {
            "pattern": self.pattern,
            "class": self.inferred_class,
            "class_rank": tolerance_rank(self.inferred_class),
            "verdict": self.verdict,
            "contract": self.contract.to_dict() if self.contract else None,
            "sites": [s.to_dict() for s in self.sites],
            "evidence": list(self.evidence),
        }


__all__ = [
    "AccessSite",
    "AgeValue",
    "BASELINE_SCHEMA",
    "COHERENCE_RULES",
    "COHERENCE_SCHEMA",
    "ContractDecl",
    "CoherenceFinding",
    "LocationVerdict",
    "SITE_KINDS",
    "TOLERANCE_CLASSES",
    "VERDICTS",
    "make_finding",
]
