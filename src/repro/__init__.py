"""repro — reproduction of *Non-Strict Cache Coherence: Exploiting
Data-Race Tolerance in Emerging Applications* (Tambat & Vajapeyam, ICPP 2000).

The package implements, from scratch, every layer the paper's evaluation
rests on:

* :mod:`repro.sim` — a deterministic discrete-event simulation kernel on
  which all "parallel" execution runs (see DESIGN.md for why simulation
  replaces the paper's IBM SP2).
* :mod:`repro.network` — a 10 Mbps shared-Ethernet contention model, a
  high-speed switch model, a background-traffic loader and the *warp*
  network-load metric.
* :mod:`repro.pvm` — a PVM-style message-passing layer (send / recv /
  nrecv / mcast / barrier with pack/unpack buffers).
* :mod:`repro.cluster` — the multicomputer model: calibrated per-node
  compute costs and LoadLeveler-style node allocation.
* :mod:`repro.core` — **the paper's contribution**: a software-DSM
  abstraction with versioned shared locations and the blocking
  ``Global_Read`` bounded-staleness primitive.
* :mod:`repro.ga` — DeJong-class genetic algorithms, the eight-function
  test bed (Table 1) and island-model parallel GAs.
* :mod:`repro.bayes` — Bayesian belief networks, logic-sampling inference
  (Table 2) and parallel logic sampling with rollback.
* :mod:`repro.partition` — a METIS-class graph partitioner
  (greedy growth + Kernighan–Lin + multilevel).
* :mod:`repro.experiments` — runners that regenerate every table and
  figure of the paper's evaluation section.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
