"""repro — reproduction of *Non-Strict Cache Coherence: Exploiting
Data-Race Tolerance in Emerging Applications* (Tambat & Vajapeyam, ICPP 2000).

The package implements, from scratch, every layer the paper's evaluation
rests on:

* :mod:`repro.sim` — a deterministic discrete-event simulation kernel on
  which all "parallel" execution runs (see DESIGN.md for why simulation
  replaces the paper's IBM SP2).
* :mod:`repro.network` — a 10 Mbps shared-Ethernet contention model, a
  high-speed switch model, a background-traffic loader and the *warp*
  network-load metric.
* :mod:`repro.pvm` — a PVM-style message-passing layer (send / recv /
  nrecv / mcast / barrier with pack/unpack buffers).
* :mod:`repro.cluster` — the multicomputer model: calibrated per-node
  compute costs and LoadLeveler-style node allocation.
* :mod:`repro.core` — **the paper's contribution**: a software-DSM
  abstraction with versioned shared locations and the blocking
  ``Global_Read`` bounded-staleness primitive.
* :mod:`repro.ga` — DeJong-class genetic algorithms, the eight-function
  test bed (Table 1) and island-model parallel GAs.
* :mod:`repro.bayes` — Bayesian belief networks, logic-sampling inference
  (Table 2) and parallel logic sampling with rollback.
* :mod:`repro.partition` — a METIS-class graph partitioner
  (greedy growth + Kernighan–Lin + multilevel).
* :mod:`repro.experiments` — runners that regenerate every table and
  figure of the paper's evaluation section.
* :mod:`repro.faults` — deterministic, seed-driven fault injection and
  the golden chaos regression matrix.
* :mod:`repro.obs` — structured tracing, metrics snapshots and run
  reports (off by default; determinism-neutral when on).
* :mod:`repro.analysis` — determinism lint and the happens-before race
  classifier behind the paper's race-tolerance argument.
* :mod:`repro.bench` — the performance trajectory and the golden
  determinism digests CI pins every run against.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
