"""Switched-fabric microbenchmark (the ``fabric.*`` BENCH keys).

The scale-out acceptance bar (ROADMAP item 2 / PR 8): per-message
simulator cost on the switched fabric must stay flat — O(1) — as the
node count grows 64 → 4096.  The busy-until-clock hot path of
:mod:`repro.network.switched` does constant work per frame (path length
is fixed by fabric depth, not node count), and ``fabric.o1_ratio`` is
the measured check: wall microseconds per delivered frame at 4096 nodes
over the same at 64 nodes, ~1.0 when the hot path is truly O(1).

Two traffic shapes:

* ring unicast — every node sends one frame per round to its clockwise
  neighbour (the migration pattern of the ring-topology island GA);
* broadcast — one node multicasts per round; cost is measured *per
  delivery*, so the tree replication's O(1)-per-receiver claim is the
  thing on the clock.

Plus one end-to-end point: a 4096-deme ring-topology island GA on the
hierarchical fabric, the scenario the scale_study driver sweeps.
"""

from __future__ import annotations

from repro.bench.harness import timed
from repro.network.frame import BROADCAST, Frame
from repro.network.switched import SwitchedConfig, SwitchedNetwork
from repro.sim import Kernel


def _ring_mill(n_nodes: int, n_rounds: int, fabric: str = "hierarchical") -> int:
    """Drive ring unicast traffic; returns frames delivered."""
    kernel = Kernel(seed=17)
    net = SwitchedNetwork(kernel, SwitchedConfig(fabric=fabric))
    delivered = 0

    def on_frame(frame: Frame) -> None:
        nonlocal delivered
        delivered += 1

    for i in range(n_nodes):
        net.attach(i, on_frame)

    def send_round(r: int) -> None:
        for i in range(n_nodes):
            net.adapters[i].send(
                Frame(src=i, dst=(i + 1) % n_nodes, size_bytes=256)
            )
        if r + 1 < n_rounds:
            kernel.schedule(1e-3, send_round, r + 1)

    kernel.schedule(0.0, send_round, 0)
    kernel.run()
    return delivered


def _bcast_mill(n_nodes: int, n_rounds: int, fabric: str = "hierarchical") -> int:
    """Drive one broadcast per round; returns deliveries (receivers)."""
    kernel = Kernel(seed=19)
    net = SwitchedNetwork(kernel, SwitchedConfig(fabric=fabric))
    delivered = 0

    def on_frame(frame: Frame) -> None:
        nonlocal delivered
        delivered += 1

    for i in range(n_nodes):
        net.attach(i, on_frame)

    def send_round(r: int) -> None:
        net.adapters[r % n_nodes].send(
            Frame(src=r % n_nodes, dst=BROADCAST, size_bytes=256)
        )
        if r + 1 < n_rounds:
            kernel.schedule(1e-3, send_round, r + 1)

    kernel.schedule(0.0, send_round, 0)
    kernel.run()
    return delivered


def _ga_ring_4096() -> float:
    """Total simulated time of a short 4096-deme ring GA (sanity value)."""
    from repro.cluster.machine import MachineConfig
    from repro.core.coherence import CoherenceMode
    from repro.ga.functions import get_function
    from repro.ga.island import IslandGaConfig, run_island_ga
    from repro.ga.operators import GaParams

    result = run_island_ga(
        IslandGaConfig(
            fn=get_function(1),
            n_demes=4096,
            mode=CoherenceMode.NON_STRICT,
            age=2,
            n_generations=2,
            seed=7,
            params=GaParams(population_size=8),
            machine=MachineConfig(n_nodes=4096, seed=7, interconnect="switched"),
            topology="ring",
        )
    )
    return result.total_time


def bench_fabric(repeat: int = 2) -> dict:
    """The fabric micro; returns flat ``fabric.*`` keys.

    Frame counts are scaled so each point delivers the same number of
    frames — the per-frame cost comparison is then free of fixed setup
    effects (attach loops, first-touch dict growth) at the small sizes.
    """
    out: dict = {}
    total_frames = 16384
    per_msg: dict[int, float] = {}
    for n_nodes in (64, 1024, 4096):
        rounds = max(1, total_frames // n_nodes)
        frames, best_s = timed(_ring_mill, n_nodes, rounds, repeat=repeat)
        per_msg[n_nodes] = best_s / frames * 1e6
        out[f"fabric.msg_us_{n_nodes}"] = per_msg[n_nodes]
    out["fabric.o1_ratio"] = per_msg[4096] / per_msg[64]

    deliveries, best_s = timed(_bcast_mill, 256, 64, repeat=repeat)
    out["fabric.mcast_per_dest_us"] = best_s / deliveries * 1e6
    out["fabric.mcast_deliveries"] = float(deliveries)

    sim_time, wall_s = timed(_ga_ring_4096, repeat=1)
    out["fabric.ga_ring_4096_wall_s"] = wall_s
    out["fabric.ga_ring_4096_sim_s"] = sim_time
    return out
