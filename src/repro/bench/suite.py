"""End-to-end experiment timings (the BENCH ``experiments`` block).

Times every paper experiment at the requested scale.  Figure 2 — the
largest fan-out — is additionally run serially so the point records the
``parallel_speedup`` delivered by the :mod:`repro.experiments.runner`
fan-out at the chosen job count, and the serial/parallel row sets are
compared for bit-identity (any divergence is a determinism bug, reported
in the ``determinism`` block as ``figure2_parallel_identical``).
"""

from __future__ import annotations

import os
from typing import Callable

from repro.bench.harness import timed
from repro.experiments.config import Scale


def parallel_skip_info(jobs: int, cpu_count: int, mcfg=None) -> dict:
    """The figure2 block's skip record when no fan-out speedup is measurable.

    A measured speedup needs both a fan-out (jobs > 1) and a second core
    to fan out onto; otherwise record *why* it was skipped instead of a
    misleading 1.0 — plus the interconnect fabric and its conservative
    lookahead, so a reader of the bench point can see what the parallel
    kernel would have had to work with on this host.
    """
    from repro.cluster.machine import MachineConfig
    from repro.sim.parallel.plan import lookahead_of

    mcfg = mcfg or MachineConfig()
    return {
        "parallel_speedup": None,
        "parallel_skipped": "jobs <= 1" if jobs <= 1 else "single-core host",
        "fabric": mcfg.interconnect,
        "lookahead_s": lookahead_of(mcfg),
    }


def _experiment_runners(scale: Scale, jobs: int) -> dict[str, Callable[[], object]]:
    from repro.experiments import (
        run_figure3,
        run_figure4,
        run_table1,
        run_table2,
        run_warp_study,
    )
    from repro.experiments.quality import run_quality

    return {
        "figure3": lambda: run_figure3(scale, jobs=jobs),
        "figure4": lambda: run_figure4(scale, jobs=jobs),
        "table1": lambda: run_table1(jobs=jobs),
        "table2": lambda: run_table2(jobs=jobs),
        "quality": lambda: run_quality(scale, jobs=jobs),
        "warp_study": lambda: run_warp_study(scale, jobs=jobs),
    }


def run_suite(scale: Scale, jobs: int = 1) -> tuple[dict, dict]:
    """Time the experiment suite; returns (experiments, extra_determinism)."""
    from repro.experiments import run_figure2

    experiments: dict = {}

    cpu_count = os.cpu_count() or 1
    serial_rows, serial_s = timed(run_figure2, scale, jobs=1)
    figure2: dict = {
        "serial_wall_s": serial_s,
        "wall_s": serial_s,
        "cpu_count": cpu_count,
    }
    identical = True
    if jobs > 1 and cpu_count > 1:
        parallel_rows, parallel_s = timed(run_figure2, scale, jobs=jobs)
        identical = parallel_rows == serial_rows
        figure2["wall_s"] = parallel_s
        figure2["parallel_speedup"] = serial_s / parallel_s
    else:
        from repro.experiments.speedup import machine_for

        figure2.update(
            parallel_skip_info(
                jobs, cpu_count,
                mcfg=machine_for(scale, scale.processor_counts[-1], 0),
            )
        )
    experiments["figure2"] = figure2

    for name, runner in _experiment_runners(scale, jobs).items():
        _, wall_s = timed(runner)
        experiments[name] = {"wall_s": wall_s}

    extra_determinism = {
        "figure2_parallel_identical": {
            "digest": "identical" if identical else "diverged",
            "golden": "identical",
            "ok": identical,
        }
    }
    return experiments, extra_determinism
