"""Bench plumbing: timing, environment capture and the BENCH JSON schema.

Every bench run writes one JSON document so the repository accumulates a
*performance trajectory* — ``BENCH_1.json``, ``BENCH_2.json``, ... at the
repo root, one per PR — that future changes can be compared against.

Schema (``repro-bench/1``)
--------------------------
::

    {
      "schema": "repro-bench/1",
      "scale": "smoke",                  # REPRO_SCALE preset used
      "jobs": 4,                         # worker count for parallel timings
      "env": {"python": ..., "platform": ..., "cpu_count": ...},
      "micro": {                         # kernel/application microbenchmarks
        "kernel_events_per_sec": float,
        "ga_generations_per_sec": float,
        "bayes_samples_per_sec": float,
        ...                              # one key per metric, flat
      },
      "experiments": {                   # smoke-scale end-to-end timings
        "figure2": {"wall_s": float, "serial_wall_s": float,
                     "parallel_speedup": float},
        "figure3": {"wall_s": float},
        ...
      },
      "determinism": {                   # golden-digest check results
        "kernel_trace": {"digest": "...", "golden": "...", "ok": true},
        ...
      }
    }

``wall_s`` is the best of ``repeat`` runs (wall-clock seconds measured
with ``time.perf_counter``); rates are derived from the same best run.
"""

from __future__ import annotations

import json
import os
import platform
import re
import time
from pathlib import Path
from typing import Any, Callable

from repro.util.envelope import make_envelope, write_envelope

SCHEMA_VERSION = "repro-bench/1"

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


def timed(fn: Callable[..., Any], *args: Any, repeat: int = 1, **kwargs: Any):
    """Run ``fn(*args, **kwargs)`` ``repeat`` times; return (result, best_s)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()  # repro-lint: allow[RPR002] — harness timing
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)  # repro-lint: allow[RPR002]
    return result, best


def env_info() -> dict:
    """Provenance block: enough to interpret a trajectory point."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "repro_jobs": os.environ.get("REPRO_JOBS"),
        "repro_scale": os.environ.get("REPRO_SCALE"),
    }


def next_bench_path(root: Path | str = ".") -> Path:
    """Next free ``BENCH_<n>.json`` under ``root`` (n = max existing + 1)."""
    root = Path(root)
    taken = [
        int(m.group(1))
        for p in root.glob("BENCH_*.json")
        if (m := _BENCH_NAME.match(p.name))
    ]
    return root / f"BENCH_{max(taken, default=0) + 1}.json"


def make_payload(
    scale: str,
    jobs: int,
    micro: dict | None = None,
    experiments: dict | None = None,
    determinism: dict | None = None,
) -> dict:
    """Assemble the bench-result JSON payload (schema ``repro-bench/1``)."""
    return make_envelope(
        SCHEMA_VERSION,
        {
            "scale": scale,
            "jobs": jobs,
            "unix_time": time.time(),  # repro-lint: allow[RPR002] — provenance stamp
            "env": env_info(),
            "micro": micro or {},
            "experiments": experiments or {},
            "determinism": determinism or {},
        },
    )


def write_bench(path: Path | str, payload: dict) -> Path:
    """Write one trajectory point; returns the path written."""
    return write_envelope(path, payload)


def load_trajectory(root: Path | str = ".") -> list[tuple[int, dict]]:
    """All ``BENCH_<n>.json`` points under ``root``, sorted by n."""
    root = Path(root)
    points = []
    for p in root.glob("BENCH_*.json"):
        m = _BENCH_NAME.match(p.name)
        if m:
            points.append((int(m.group(1)), json.loads(p.read_text())))
    return sorted(points, key=lambda t: t[0])
