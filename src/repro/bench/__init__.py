"""Benchmark harness: microbenchmarks, suite timings, golden digests.

Run with ``python -m repro.bench --scale smoke --out BENCH_ci.json``.
Each run writes one ``repro-bench/1`` JSON document (see
:mod:`repro.bench.harness` for the schema) and exits non-zero if any
golden determinism digest mismatches — the bench job doubles as the
regression gate for the kernel fast path.
"""

from repro.bench.determinism import (
    GOLDEN,
    bayes_result_digest,
    check_digests,
    digest_values,
    ga_result_digest,
    kernel_trace_digest,
)
from repro.bench.harness import (
    SCHEMA_VERSION,
    env_info,
    load_trajectory,
    make_payload,
    next_bench_path,
    timed,
    write_bench,
)
from repro.bench.micro import bench_bayes, bench_ga, bench_kernel, run_micro
from repro.bench.suite import run_suite

__all__ = [
    "GOLDEN",
    "SCHEMA_VERSION",
    "bayes_result_digest",
    "bench_bayes",
    "bench_ga",
    "bench_kernel",
    "check_digests",
    "digest_values",
    "env_info",
    "ga_result_digest",
    "kernel_trace_digest",
    "load_trajectory",
    "make_payload",
    "next_bench_path",
    "run_micro",
    "run_suite",
    "timed",
    "write_bench",
]
