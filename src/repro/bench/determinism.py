"""Golden determinism digests guarding the kernel fast path.

The kernel optimisations (same-instant fast lane, type-tag dispatch,
branch-lean run loop) promise *bit-identical* behaviour.  This module
pins that promise three ways:

* ``kernel_trace`` — SHA-256 of the full event trace of a mixed
  scheduling workload (pure-Python floats: platform-stable);
* ``ga_result`` — digest of every numeric field of one small island-GA
  run (Global_Read, 2 demes);
* ``bayes_result`` — digest of one small parallel logic-sampling run
  (Global_Read, 2 processors, Hailfinder).

``GOLDEN`` holds the expected values.  Any reordering introduced by a
future "optimisation" — a heap that breaks FIFO ties, a dispatch path
that resumes processes early — shifts at least one digest.  The digests
are checked by ``tests/sim/test_determinism.py`` /
``tests/experiments/test_determinism_golden.py`` and by every
``python -m repro.bench`` run (CI's bench-smoke job fails on mismatch).
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.sim import Kernel, Tracer


def _fold(h: "hashlib._Hash", value: Any) -> None:
    """Canonical, numpy-scalar-proof serialisation into a running hash."""
    if isinstance(value, bool) or value is None:
        h.update(repr(value).encode())
    elif isinstance(value, int):
        h.update(str(value).encode())
    elif isinstance(value, float):
        # repr(float(x)) also normalises np.float64 (a float subclass whose
        # repr is numpy-version-dependent) to the portable Python spelling
        h.update(repr(float(value)).encode())
    elif isinstance(value, str):
        h.update(value.encode())
    elif isinstance(value, (list, tuple)):
        h.update(b"[")
        for v in value:
            _fold(h, v)
            h.update(b",")
        h.update(b"]")
    else:  # numpy scalars / arrays: go through float/list explicitly
        import numpy as np

        if isinstance(value, np.ndarray):
            _fold(h, [float(v) for v in value.ravel()])
        elif isinstance(value, np.floating):
            _fold(h, float(value))
        elif isinstance(value, np.integer):
            _fold(h, int(value))
        else:
            raise TypeError(f"undigestable value {value!r}")


def digest_values(*values: Any) -> str:
    """SHA-256 digest of ``values`` rendered to canonical JSON."""
    h = hashlib.sha256()
    for v in values:
        _fold(h, v)
        h.update(b";")
    return h.hexdigest()


def kernel_trace_digest(n_workers: int = 12, n_steps: int = 64) -> str:
    """Trace digest of the mixed kernel workload (pure-Python floats)."""
    from repro.bench.micro import build_kernel_workload

    tracer = Tracer()
    kernel: Kernel = build_kernel_workload(n_workers, n_steps, tracer=tracer)
    kernel.run()
    return digest_values(tracer.digest(), kernel.now, kernel.events_executed)


def ga_result_digest(seed: int = 7) -> str:
    """Digest of one small Global_Read island-GA run (2 demes, f1)."""
    from repro.core.coherence import CoherenceMode
    from repro.experiments.config import Scale
    from repro.experiments.speedup import machine_for
    from repro.ga.functions import get_function
    from repro.ga.island import IslandGaConfig, run_island_ga

    result = run_island_ga(
        IslandGaConfig(
            fn=get_function(1),
            n_demes=2,
            mode=CoherenceMode.NON_STRICT,
            age=10,
            n_generations=40,
            seed=seed,
            machine=machine_for(Scale.smoke(), 2, seed),
        )
    )
    return digest_values(
        result.completion_time,
        result.total_time,
        result.best_fitness,
        result.mean_fitness,
        [float(b) for b in result.per_deme_best],
        list(result.generations_run),
        result.messages_sent,
        result.mean_warp,
        result.max_warp,
    )


def bayes_result_digest(seed: int = 7) -> str:
    """Digest of one small Global_Read parallel logic-sampling run."""
    from repro.bayes.parallel import ParallelLsConfig, run_parallel_logic_sampling
    from repro.core.coherence import CoherenceMode
    from repro.experiments.config import Scale
    from repro.experiments.speedup import machine_for
    from repro.experiments.table2 import build_network, pick_query

    net = build_network("Hailfinder")
    result = run_parallel_logic_sampling(
        ParallelLsConfig(
            net=net,
            query=pick_query(net, seed=0),
            n_procs=2,
            mode=CoherenceMode.NON_STRICT,
            age=5,
            seed=seed,
            machine=machine_for(Scale.smoke(), 2, seed),
            max_iterations=20_000,
        )
    )
    return digest_values(
        result.completion_time,
        bool(result.converged),
        result.committed_runs,
        result.posterior,
        list(result.iterations_sampled),
        result.messages_sent,
        result.edge_cut,
    )


#: expected digests; regenerate with `python -m repro.bench --print-digests`
#: after an *intentional* behaviour change (and say so in the PR).
GOLDEN = {
    "kernel_trace": "ea41742f3c46ccb7fa2c16304207b24a3db5737cc86a9a672e7a294c72e80e52",
    "ga_result": "ef359529eb245f017ce361128dd0087e5a373fb21d1701fc731809646d2b335b",
    "bayes_result": "e6c4a755cbbad4696d24fe88106d6dcea5fdb863713f4f615f766a31a007252a",
}

_PRODUCERS = {
    "kernel_trace": kernel_trace_digest,
    "ga_result": ga_result_digest,
    "bayes_result": bayes_result_digest,
}


def check_digests() -> dict:
    """Compute every digest and compare to GOLDEN.

    Returns the BENCH ``determinism`` block:
    ``{name: {"digest": ..., "golden": ..., "ok": bool}}``.
    """
    out = {}
    for name, producer in _PRODUCERS.items():
        digest = producer()
        golden = GOLDEN[name]
        out[name] = {"digest": digest, "golden": golden, "ok": digest == golden}
    return out
