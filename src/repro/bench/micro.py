"""Kernel and application microbenchmarks.

Three rates anchor the perf trajectory:

* ``kernel_events_per_sec`` — raw discrete-event throughput on a mixed
  workload (same-instant resumptions, timed computes, signal wakeups,
  cooperative yields, joins) that exercises every kernel fast path;
* ``ga_generations_per_sec`` — the serial GA baseline, numpy-bound;
* ``bayes_samples_per_sec`` — serial logic sampling, numpy-bound.

All workloads are deterministic (fixed seeds, no wall-clock dependence in
the *simulated* results); only the measured wall time varies run to run,
which is why :func:`repro.bench.harness.timed` keeps the best of
``repeat``.
"""

from __future__ import annotations

from repro.bench.harness import timed
from repro.ga.functions import get_function
from repro.ga.sga import run_serial_ga
from repro.sim import Compute, Join, Kernel, Signal, WaitSignal, Yield


def build_kernel_workload(
    n_workers: int = 40, n_steps: int = 300, seed: int = 1, tracer=None
) -> Kernel:
    """A finite mixed workload touching every kernel scheduling path."""
    kernel = Kernel(seed=seed, tracer=tracer)
    tick = Signal("tick")
    n_fires = n_steps // 4

    def worker(i: int):
        for s in range(n_steps):
            yield Compute(0.0005 * ((i + s) % 7))  # mixes 0.0 and timed
            if (s & 15) == 0:
                yield Yield()

    def ticker():
        for _ in range(n_fires):
            yield Compute(0.004)
            tick.fire()

    def listener():
        for _ in range(n_fires):
            yield WaitSignal(tick)
            yield Compute(0.0001)

    def joiner(handle):
        result = yield Join(handle)
        return result

    handles = [kernel.spawn(worker(i), name=f"w{i}") for i in range(n_workers)]
    kernel.spawn(ticker(), name="ticker")
    for j in range(4):
        kernel.spawn(listener(), name=f"l{j}")
    kernel.spawn(joiner(handles[0]), name="joiner")
    return kernel


def bench_kernel(n_workers: int = 40, n_steps: int = 300, repeat: int = 3) -> dict:
    """Events/sec of the mixed workload under the no-tracer fast loop."""

    def one_run() -> int:
        kernel = build_kernel_workload(n_workers, n_steps)
        kernel.run()
        return kernel.events_executed

    events, best_s = timed(one_run, repeat=repeat)
    return {
        "kernel_events": float(events),
        "kernel_wall_s": best_s,
        "kernel_events_per_sec": events / best_s,
    }


def bench_ga(
    fid: int = 1, n_generations: int = 150, population_size: int = 100, repeat: int = 2
) -> dict:
    """Serial-GA generations/sec (the numpy-bound application hot loop)."""
    fn = get_function(fid)
    _, best_s = timed(
        run_serial_ga,
        fn,
        repeat=repeat,
        seed=0,
        n_generations=n_generations,
        population_size=population_size,
    )
    return {
        "ga_generations": float(n_generations),
        "ga_wall_s": best_s,
        "ga_generations_per_sec": n_generations / best_s,
    }


def bench_bayes(network: str = "Hailfinder", repeat: int = 2) -> dict:
    """Serial logic-sampling samples/sec on one Table 2 network."""
    from repro.bayes.logic_sampling import run_serial_logic_sampling
    from repro.experiments.table2 import build_network, pick_query

    net = build_network(network)
    query = pick_query(net, seed=0)
    result, best_s = timed(
        run_serial_logic_sampling, net, repeat=repeat, query=query, seed=7
    )
    return {
        "bayes_network": network,
        "bayes_samples": float(result.n_runs),
        "bayes_wall_s": best_s,
        "bayes_samples_per_sec": result.n_runs / best_s,
    }


def _faulted_traffic_kernel(plan, n_nodes: int = 8, n_rounds: int = 250) -> Kernel:
    """A dense frame mill, optionally under a fault plan."""
    from repro.faults.injectors import install_faults
    from repro.network.ethernet import EthernetNetwork
    from repro.network.frame import Frame

    kernel = Kernel(seed=13)
    net = EthernetNetwork(kernel)
    for i in range(n_nodes):
        net.attach(i, lambda f: None)
    if plan is not None:
        install_faults(kernel, net, [], plan)

    def send_round(r: int) -> None:
        for i in range(n_nodes):
            net.adapters[i].send(
                Frame(src=i, dst=(i + 1 + r % (n_nodes - 1)) % n_nodes,
                      size_bytes=256)
            )
        if r + 1 < n_rounds:
            kernel.schedule(0.3e-3, send_round, r + 1)

    kernel.schedule(0.0, send_round, 0)
    return kernel


def bench_faulted_kernel(repeat: int = 3) -> dict:
    """Events/sec with the message-fault injector in the delivery path.

    Two runs of the same frame mill: clean (no injector installed) and
    under a mixed drop/duplicate/delay/reorder plan.  The overhead ratio
    is the cost of chaos-mode simulation — the injector's dice roll plus
    the extra events duplicates/delays/reorders schedule.
    """
    from repro.faults.plan import FaultPlan

    plan = FaultPlan.parse("drop=0.05,dup=0.05,delay=0.05,reorder=0.05,seed=13")

    def one_run(p) -> int:
        kernel = _faulted_traffic_kernel(p)
        kernel.run()
        return kernel.events_executed

    clean_events, clean_s = timed(one_run, None, repeat=repeat)
    faulted_events, faulted_s = timed(one_run, plan, repeat=repeat)
    clean_eps = clean_events / clean_s
    faulted_eps = faulted_events / faulted_s
    return {
        "faulted_kernel_events": float(faulted_events),
        "faulted_kernel_wall_s": faulted_s,
        "faulted_kernel_events_per_sec": faulted_eps,
        "clean_kernel_events_per_sec": clean_eps,
        "fault_overhead_ratio": clean_eps / faulted_eps,
    }


def bench_obs(repeat: int = 2) -> dict:
    """Tracing + causal-analysis overhead on a small parallel GA run.

    Two timings of the same 2-deme island-GA run (the GOLDEN recipe):
    tracing off vs on — the ratio prices the obs hooks on the
    simulation's hot paths (``if obs is not None`` guards plus event
    appends).  Span building is timed separately over the traced run's
    events (build + attribute + critical path), since the causal layer
    runs offline, after the simulation.
    """
    from dataclasses import replace

    from repro.core.coherence import CoherenceMode
    from repro.experiments.config import Scale
    from repro.experiments.speedup import machine_for
    from repro.ga.island import IslandGaConfig, run_island_ga
    from repro.obs.causal import attribute, build_spans, critical_path

    def one_run(trace: bool):
        machine = replace(machine_for(Scale.smoke(), 2, 7), trace=trace)
        holder: dict = {}
        run_island_ga(
            IslandGaConfig(
                fn=get_function(1),
                n_demes=2,
                mode=CoherenceMode.NON_STRICT,
                age=10,
                n_generations=40,
                seed=7,
                machine=machine,
            ),
            instrument=lambda dsm: holder.setdefault("dsm", dsm),
        )
        return holder["dsm"].vm.kernel.obs

    _, off_s = timed(one_run, False, repeat=repeat)
    bus, on_s = timed(one_run, True, repeat=repeat)
    events = list(bus.events)

    def analyse() -> int:
        g = build_spans(events)
        attribute(g)
        critical_path(g)
        return g.events

    n_events, span_s = timed(analyse, repeat=repeat)
    return {
        "obs_trace_events": float(n_events),
        "obs_off_wall_s": off_s,
        "obs_on_wall_s": on_s,
        "obs_overhead_ratio": on_s / off_s,
        "obs_span_build_wall_s": span_s,
        "obs_span_build_events_per_sec": n_events / span_s,
    }


def run_micro(repeat: int = 2) -> dict:
    """The full micro suite as one flat dict (the BENCH ``micro`` block)."""
    out: dict = {}
    out.update(bench_kernel(repeat=repeat))
    out.update(bench_faulted_kernel(repeat=repeat))
    out.update(bench_obs(repeat=repeat))
    out.update(bench_ga(repeat=repeat))
    out.update(bench_bayes(repeat=repeat))
    return out
