"""Parallel-kernel microbenchmark (the ``kernel_parallel.*`` BENCH keys).

Two measurements of :mod:`repro.sim.parallel`, reported flat into the
BENCH envelope's ``micro`` block:

``kernel_parallel.identical_2shard``
    The GOLDEN ``ga_result`` recipe run at ``shards=2`` still produces
    the GOLDEN digest.  Checked on *every* host — sharded correctness is
    timeshared-testable even on one core — so a single-core CI box still
    gates bit-identity, just not speed.

``kernel_parallel.speedup_2shard``
    Serial wall-clock over 2-shard wall-clock for a compute-heavy
    scenario (large populations, several demes — the regime the
    bounded-lag kernel exists for).  ``None`` with a recorded
    ``kernel_parallel.skipped`` reason on single-core hosts, where a
    wall-clock speedup is physically unmeasurable: two workers
    timesharing one core measure scheduler overhead, not the kernel.
"""

from __future__ import annotations

import os

from repro.bench.determinism import GOLDEN
from repro.bench.harness import timed
from repro.cluster.machine import MachineConfig
from repro.cluster.node import NodeSpec
from repro.core.coherence import CoherenceMode


def _golden_cfg():
    from repro.experiments.config import Scale
    from repro.experiments.speedup import machine_for
    from repro.ga.functions import get_function
    from repro.ga.island import IslandGaConfig

    return IslandGaConfig(
        fn=get_function(1),
        n_demes=2,
        mode=CoherenceMode.NON_STRICT,
        age=10,
        n_generations=40,
        seed=7,
        machine=machine_for(Scale.smoke(), 2, 7),
    )


def _heavy_cfg(n_demes: int = 4, population: int = 384, generations: int = 30):
    """A compute-dominated run: big populations make the numpy work (the
    part sharding partitions) outweigh the replicated event stream."""
    from repro.ga.functions import get_function
    from repro.ga.island import IslandGaConfig
    from repro.ga.operators import GaParams

    return IslandGaConfig(
        fn=get_function(1),
        n_demes=n_demes,
        mode=CoherenceMode.NON_STRICT,
        age=10,
        n_generations=generations,
        seed=13,
        params=GaParams(population_size=population),
        machine=MachineConfig(
            n_nodes=n_demes, seed=13, node_spec=NodeSpec(), measure_warp=True
        ),
    )


def bench_parallel(shards: int = 2) -> dict:
    """Run the parallel-kernel micro; returns flat ``kernel_parallel.*`` keys."""
    from repro.ga.island import run_island_ga
    from repro.ga.sharded import ga_digest

    cpu_count = os.cpu_count() or 1
    out: dict = {"kernel_parallel.cpu_count": cpu_count}

    sharded = run_island_ga(_golden_cfg(), shards=shards)
    info = sharded.metrics.get("parallel", {})
    out["kernel_parallel.sharded"] = bool(info.get("sharded"))
    out[f"kernel_parallel.identical_{shards}shard"] = bool(
        ga_digest(sharded) == GOLDEN["ga_result"]
    )
    if info.get("fallback"):
        out["kernel_parallel.fallback"] = info["fallback"]

    if cpu_count < 2:
        out[f"kernel_parallel.speedup_{shards}shard"] = None
        out["kernel_parallel.skipped"] = (
            "single-core host: wall-clock speedup not measurable"
        )
        return out

    cfg = _heavy_cfg()
    serial_result, serial_s = timed(run_island_ga, cfg)
    shard_result, shard_s = timed(run_island_ga, cfg, shards=shards)
    out["kernel_parallel.serial_wall_s"] = serial_s
    out[f"kernel_parallel.shard{shards}_wall_s"] = shard_s
    out[f"kernel_parallel.speedup_{shards}shard"] = (
        serial_s / shard_s if shard_s > 0 else None
    )
    out["kernel_parallel.heavy_identical"] = bool(
        ga_digest(shard_result) == ga_digest(serial_result)
    )
    return out
