"""CLI: ``python -m repro.bench --scale smoke --out BENCH_ci.json``.

Runs the microbenchmarks, the experiment suite timings and the golden
determinism digests, writes one ``repro-bench/1`` JSON document, and
exits 1 if any digest mismatches (so CI's bench-smoke job gates the
kernel fast path's bit-identity promise, not just its speed).
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.determinism import _PRODUCERS, check_digests
from repro.bench.harness import make_payload, next_bench_path, write_bench
from repro.bench.micro import run_micro
from repro.bench.suite import run_suite
from repro.experiments.config import Scale
from repro.experiments.runner import configured_jobs

_SCALES = {"smoke": Scale.smoke, "default": Scale.default, "full": Scale.full}


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.bench`` entry point; the exit status is 1 on digest
    mismatch."""
    parser = argparse.ArgumentParser(prog="python -m repro.bench")
    parser.add_argument("--scale", choices=sorted(_SCALES), default="smoke")
    parser.add_argument("--out", default=None, help="output path (default: next BENCH_<n>.json)")
    parser.add_argument("--jobs", type=int, default=None, help="parallel worker count (default: REPRO_JOBS)")
    parser.add_argument("--repeat", type=int, default=2, help="micro-benchmark repeats (best-of)")
    parser.add_argument("--skip-suite", action="store_true", help="micro + digests only")
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "also archive the bench document into the content-addressed "
            "run store at DIR (python -m repro.obs trend --store DIR "
            "folds stored bench runs into the trajectory)"
        ),
    )
    parser.add_argument(
        "--print-digests",
        action="store_true",
        help="print current digests (to refresh GOLDEN after an intentional change) and exit",
    )
    args = parser.parse_args(argv)

    if args.print_digests:
        for name, producer in _PRODUCERS.items():
            print(f'    "{name}": "{producer()}",')
        return 0

    scale = _SCALES[args.scale]()
    jobs = configured_jobs() if args.jobs is None else args.jobs

    print(f"[bench] micro (repeat={args.repeat}) ...", flush=True)
    micro = run_micro(repeat=args.repeat)

    print("[bench] parallel kernel (2-shard identity + speedup) ...", flush=True)
    from repro.bench.parallel import bench_parallel

    micro.update(bench_parallel())

    print("[bench] switched fabric (O(1) per-message check) ...", flush=True)
    from repro.bench.fabric import bench_fabric

    micro.update(bench_fabric(repeat=args.repeat))

    experiments: dict = {}
    determinism = {}
    if not args.skip_suite:
        print(f"[bench] experiment suite (scale={args.scale}, jobs={jobs}) ...", flush=True)
        experiments, determinism = run_suite(scale, jobs=jobs)

    print("[bench] determinism digests ...", flush=True)
    determinism.update(check_digests())

    payload = make_payload(args.scale, jobs, micro, experiments, determinism)
    out = next_bench_path() if args.out is None else args.out
    write_bench(out, payload)
    print(f"[bench] wrote {out}")

    if args.store:
        from repro.obs.store import RunStore

        ref = RunStore(args.store).put(
            {"bench.json": out},
            meta={"app": "bench", "scale": args.scale},
        )
        print(f"[bench] stored -> {args.store} ref {ref}")

    failed = [name for name, r in determinism.items() if not r["ok"]]
    for name in failed:
        r = determinism[name]
        print(
            f"[bench] DETERMINISM MISMATCH {name}: {r['digest']} != golden {r['golden']}",
            file=sys.stderr,
        )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
