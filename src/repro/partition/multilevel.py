"""Multilevel bisection and k-way partitioning (the METIS recipe).

Three phases:

1. **Coarsening** — repeated heavy-edge matching: visit vertices in
   random order (named RNG stream, reproducible), match each unmatched
   vertex with the unmatched neighbour sharing the heaviest edge, and
   contract matched pairs.  Stops when the graph is small enough or stops
   shrinking.
2. **Initial partition** — greedy region growth plus KL on the coarsest
   graph.
3. **Uncoarsening** — project the bisection back level by level, running
   KL refinement at every level.

K-way partitions come from recursive bisection, which is how METIS 3
(pmetis) produced the paper's partitions.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.partition.greedy import greedy_bisection
from repro.partition.kl import kl_refine
from repro.partition.metrics import edge_cut


def _heavy_edge_matching(graph: nx.Graph, rng: np.random.Generator):
    """One coarsening level; returns (coarse_graph, projection map)."""
    order = list(graph.nodes)
    rng.shuffle(order)
    matched: set = set()
    merge_into: dict = {}
    for v in order:
        if v in matched:
            continue
        best_nb, best_w = None, -1.0
        for nb, data in graph[v].items():
            if nb in matched or nb == v:
                continue
            w = data.get("weight", 1.0)
            if w > best_w:
                best_nb, best_w = nb, w
        matched.add(v)
        if best_nb is not None:
            matched.add(best_nb)
            merge_into[best_nb] = v
        merge_into.setdefault(v, v)

    coarse = nx.Graph()
    rep = {v: merge_into.get(v, v) for v in graph.nodes}
    for v in graph.nodes:
        r = rep[v]
        if not coarse.has_node(r):
            coarse.add_node(r, size=0)
        coarse.nodes[r]["size"] += graph.nodes[v].get("size", 1)
    for u, v, data in graph.edges(data=True):
        ru, rv = rep[u], rep[v]
        if ru == rv:
            continue
        w = data.get("weight", 1.0)
        if coarse.has_edge(ru, rv):
            coarse[ru][rv]["weight"] += w
        else:
            coarse.add_edge(ru, rv, weight=w)
    return coarse, rep


def multilevel_bisection(
    graph: nx.Graph,
    seed: int = 0,
    coarse_size: int = 20,
    max_levels: int = 10,
) -> dict:
    """METIS-style multilevel 2-way partition; returns {node: 0|1}."""
    if graph.number_of_nodes() <= 2:
        nodes = sorted(graph.nodes, key=str)
        return {v: i % 2 for i, v in enumerate(nodes)}
    rng = np.random.default_rng(seed)
    levels: list[tuple[nx.Graph, dict]] = []
    g = graph
    for _ in range(max_levels):
        if g.number_of_nodes() <= coarse_size:
            break
        coarse, rep = _heavy_edge_matching(g, rng)
        if coarse.number_of_nodes() >= g.number_of_nodes():
            break  # no progress (e.g. no edges left)
        levels.append((g, rep))
        g = coarse

    parts = greedy_bisection(g)
    parts = kl_refine(g, parts)
    # uncoarsen with refinement at each level
    for fine, rep in reversed(levels):
        parts = {v: parts[rep[v]] for v in fine.nodes}
        parts = kl_refine(fine, parts)
    parts = _rebalance(graph, parts)
    return kl_refine(graph, parts)


def _rebalance(graph: nx.Graph, parts: dict, tolerance: int = 1) -> dict:
    """Move cheapest vertices from the larger side until sizes differ by at
    most ``tolerance`` (KL preserves sizes, so this runs once at the end)."""
    parts = dict(parts)
    while True:
        a = [v for v in graph.nodes if parts[v] == 0]
        b = [v for v in graph.nodes if parts[v] == 1]
        if abs(len(a) - len(b)) <= tolerance:
            return parts
        src, dst = (0, 1) if len(a) > len(b) else (1, 0)
        movers = a if src == 0 else b
        best_v, best_delta = None, None
        for v in movers:
            delta = 0.0
            for nb, data in graph[v].items():
                w = data.get("weight", 1.0)
                delta += w if parts[nb] == src else -w
            if best_delta is None or delta < best_delta:
                best_v, best_delta = v, delta
        parts[best_v] = dst


def partition(graph: nx.Graph, k: int, seed: int = 0) -> dict:
    """K-way partition by recursive multilevel bisection."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if k == 1:
        return {v: 0 for v in graph.nodes}
    if k > graph.number_of_nodes():
        raise ValueError(
            f"cannot cut {graph.number_of_nodes()} nodes into {k} parts"
        )
    halves = multilevel_bisection(graph, seed=seed)
    left_nodes = [v for v in graph.nodes if halves[v] == 0]
    right_nodes = [v for v in graph.nodes if halves[v] == 1]
    k_left = k // 2 + k % 2
    k_right = k // 2
    # keep part sizes sane when k is odd
    if len(left_nodes) < k_left or len(right_nodes) < k_right:
        left_nodes = sorted(graph.nodes, key=str)[: len(graph) // 2 + len(graph) % 2]
        right_nodes = [v for v in graph.nodes if v not in set(left_nodes)]
    out: dict = {}
    left = partition(graph.subgraph(left_nodes).copy(), k_left, seed=seed + 1)
    right = partition(graph.subgraph(right_nodes).copy(), k_right, seed=seed + 2)
    for v, p in left.items():
        out[v] = p
    for v, p in right.items():
        out[v] = p + k_left
    return out


def best_of(graph: nx.Graph, k: int, tries: int = 4, seed: int = 0) -> dict:
    """Run ``partition`` with several seeds and keep the smallest cut
    (METIS similarly retries its randomised phases)."""
    best_parts, best_cut = None, float("inf")
    for t in range(tries):
        parts = partition(graph, k, seed=seed + 1000 * t)
        cut = edge_cut(graph, parts)
        if cut < best_cut:
            best_parts, best_cut = parts, cut
    return best_parts
