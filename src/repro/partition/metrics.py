"""Partition-quality metrics: edge-cut, balance, validity."""

from __future__ import annotations

import networkx as nx


def validate_partition(graph: nx.Graph, parts: dict) -> int:
    """Check ``parts`` covers exactly the graph's nodes; return #parts."""
    if set(parts) != set(graph.nodes):
        missing = set(graph.nodes) - set(parts)
        extra = set(parts) - set(graph.nodes)
        raise ValueError(
            f"partition does not match graph (missing={sorted(missing)[:5]}, "
            f"extra={sorted(extra)[:5]})"
        )
    labels = set(parts.values())
    if not labels:
        raise ValueError("empty partition")
    return len(labels)


def edge_cut(graph: nx.Graph, parts: dict) -> float:
    """Total weight of edges whose endpoints lie in different parts.

    This is the quantity Table 2 reports ("Edge-cut for 2 partitions");
    unweighted graphs count each cut edge as 1.
    """
    validate_partition(graph, parts)
    cut = 0.0
    for u, v, data in graph.edges(data=True):
        if parts[u] != parts[v]:
            cut += data.get("weight", 1.0)
    return cut


def balance(graph: nx.Graph, parts: dict) -> float:
    """Largest part size divided by ideal size (1.0 = perfectly balanced)."""
    k = validate_partition(graph, parts)
    sizes: dict = {}
    for node, p in parts.items():
        sizes[p] = sizes.get(p, 0) + 1
    ideal = graph.number_of_nodes() / k
    return max(sizes.values()) / ideal if ideal > 0 else float("inf")
