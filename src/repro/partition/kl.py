"""Kernighan–Lin bisection refinement.

The classical pairwise-swap improvement pass: repeatedly compute, for the
current bisection, the best sequence of (a, b) swaps by greedy D-value
selection with tentative locking, and commit the prefix of the sequence
with the largest cumulative gain.  Stops when a pass yields no positive
gain or ``max_passes`` is reached.

Used both standalone and as the refinement step of the multilevel scheme.
Runs in O(passes · n² log n) on dense graphs, plenty for the paper's
54–56-node belief networks (and the property tests keep it honest on
random graphs up to a few hundred nodes).
"""

from __future__ import annotations

import networkx as nx

from repro.partition.metrics import edge_cut, validate_partition


def _d_values(graph: nx.Graph, parts: dict) -> dict:
    """D(v) = external cost - internal cost for every vertex."""
    d = {}
    for v in graph.nodes:
        internal = external = 0.0
        for nb, data in graph[v].items():
            w = data.get("weight", 1.0)
            if parts[nb] == parts[v]:
                internal += w
            else:
                external += w
        d[v] = external - internal
    return d


def kl_refine(graph: nx.Graph, parts: dict, max_passes: int = 10) -> dict:
    """Refine a bisection in place-of (returns a new dict); cut never worsens."""
    k = validate_partition(graph, parts)
    if k == 1:
        return dict(parts)
    if k != 2:
        raise ValueError(f"KL refines bisections only, got {k} parts")
    parts = dict(parts)

    for _ in range(max_passes):
        d = _d_values(graph, parts)
        side_a = [v for v in graph.nodes if parts[v] == 0]
        side_b = [v for v in graph.nodes if parts[v] == 1]
        locked: set = set()
        swaps: list[tuple] = []
        gains: list[float] = []
        n_pairs = min(len(side_a), len(side_b))

        for _ in range(n_pairs):
            best = None
            # greedy best pair among unlocked vertices
            for a in side_a:
                if a in locked:
                    continue
                for b in side_b:
                    if b in locked:
                        continue
                    w_ab = graph[a][b].get("weight", 1.0) if graph.has_edge(a, b) else 0.0
                    gain = d[a] + d[b] - 2.0 * w_ab
                    if best is None or gain > best[0]:
                        best = (gain, a, b)
            if best is None:
                break
            gain, a, b = best
            swaps.append((a, b))
            gains.append(gain)
            locked.update((a, b))
            # update D-values as if (a, b) were swapped
            for v in graph.nodes:
                if v in locked:
                    continue
                w_va = graph[v][a].get("weight", 1.0) if graph.has_edge(v, a) else 0.0
                w_vb = graph[v][b].get("weight", 1.0) if graph.has_edge(v, b) else 0.0
                if parts[v] == 0:
                    d[v] += 2.0 * w_va - 2.0 * w_vb
                else:
                    d[v] += 2.0 * w_vb - 2.0 * w_va

        # commit the best prefix
        best_prefix, best_total = 0, 0.0
        running = 0.0
        for i, g in enumerate(gains):
            running += g
            if running > best_total:
                best_total, best_prefix = running, i + 1
        if best_prefix == 0:
            break
        for a, b in swaps[:best_prefix]:
            parts[a], parts[b] = 1, 0
    return parts


def kl_bisection(graph: nx.Graph, initial: dict | None = None, max_passes: int = 10) -> dict:
    """Convenience: KL starting from ``initial`` or an even node split."""
    if initial is None:
        nodes = sorted(graph.nodes, key=str)
        half = len(nodes) // 2
        initial = {v: (0 if i < half else 1) for i, v in enumerate(nodes)}
    refined = kl_refine(graph, initial, max_passes=max_passes)
    assert edge_cut(graph, refined) <= edge_cut(graph, initial)
    return refined
