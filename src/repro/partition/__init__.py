"""Graph partitioning (the paper's METIS substitute).

§4.2.2 partitions the belief networks with METIS [11] and reports the
2-way edge-cut (Table 2).  This package implements the same class of
algorithm from scratch:

* :func:`~repro.partition.greedy.greedy_bisection` — BFS region growth
  from a pseudo-peripheral seed;
* :func:`~repro.partition.kl.kl_refine` — Kernighan–Lin pairwise-swap
  refinement;
* :func:`~repro.partition.multilevel.multilevel_bisection` — heavy-edge
  matching coarsening, coarsest-level greedy + KL, refinement during
  uncoarsening (the METIS recipe);
* :func:`~repro.partition.multilevel.partition` — k-way by recursive
  bisection.

Graphs are :class:`networkx.Graph` instances; edge weights default to 1.
"""

from repro.partition.metrics import edge_cut, balance, validate_partition
from repro.partition.greedy import greedy_bisection
from repro.partition.kl import kl_refine
from repro.partition.multilevel import multilevel_bisection, partition

__all__ = [
    "edge_cut",
    "balance",
    "validate_partition",
    "greedy_bisection",
    "kl_refine",
    "multilevel_bisection",
    "partition",
]
