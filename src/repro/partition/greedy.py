"""Greedy BFS region-growth bisection.

The classic graph-growing heuristic (used by METIS for its coarsest-level
initial partition): start from a pseudo-peripheral vertex, grow part 0 by
repeatedly absorbing the frontier vertex with the best gain (fewest new
cut edges) until half the total vertex weight is absorbed; everything
else is part 1.
"""

from __future__ import annotations

import heapq
import itertools

import networkx as nx


def _pseudo_peripheral(graph: nx.Graph, start) -> object:
    """Vertex roughly farthest from ``start`` (two BFS sweeps)."""
    node = start
    for _ in range(2):
        lengths = nx.single_source_shortest_path_length(graph, node)
        node = max(lengths, key=lambda n: (lengths[n], str(n)))
    return node


def greedy_bisection(graph: nx.Graph, seed_node=None) -> dict:
    """Bisect ``graph`` by BFS region growth; returns {node: 0|1}.

    Vertex-weight aware: a node's ``size`` attribute (default 1) counts
    toward the growth target, so bisecting a coarsened graph balances the
    underlying fine vertices, not the coarse node count.  Deterministic:
    ties in gain are broken by insertion order.  Handles disconnected
    graphs by restarting growth from the smallest-label unabsorbed vertex.
    """
    n = graph.number_of_nodes()
    if n == 0:
        return {}
    if n == 1:
        return {next(iter(graph.nodes)): 0}
    nodes_sorted = sorted(graph.nodes, key=str)
    if seed_node is None:
        seed_node = _pseudo_peripheral(graph, nodes_sorted[0])
    sizes = {v: graph.nodes[v].get("size", 1) for v in graph.nodes}
    target = sum(sizes.values()) // 2
    in_zero: set = set()
    grown = 0
    counter = itertools.count()
    # max-gain frontier: gain = (internal neighbours) - (external neighbours)
    heap: list = []

    def push(node):
        internal = sum(1 for nb in graph[node] if nb in in_zero)
        gain = 2 * internal - graph.degree(node)
        heapq.heappush(heap, (-gain, next(counter), node))

    push(seed_node)
    queued = {seed_node}
    while grown < target:
        while heap:
            _, _, node = heapq.heappop(heap)
            if node not in in_zero:
                break
        else:
            # disconnected: restart from an unabsorbed vertex
            for cand in nodes_sorted:
                if cand not in in_zero:
                    node = cand
                    break
        in_zero.add(node)
        grown += sizes[node]
        for nb in graph[node]:
            if nb not in in_zero:
                push(nb)
                queued.add(nb)
    return {node: (0 if node in in_zero else 1) for node in graph.nodes}
