"""The software-DSM runtime: writes, update propagation, Global_Read.

One :class:`DsmNode` per task mirrors the paper's "simple layer of
software on top of PVM" (§4.1): writes are direct sends to the
compile-time reader set, reads come from the local age buffer, and
``Global_Read`` blocks by waiting on the mailbox until a satisfying update
arrives (WAIT mode) or after asking the writer's daemon (REQUEST mode).

All blocking/charging operations are generators used with ``yield from``
inside the owning simulated process::

    yield from dsm_node.write("migrants.0", genomes, iter_no=g, nbytes=600)
    copy = yield from dsm_node.global_read("migrants.1", curr_iter=g, age=10)

Values travel by reference inside the simulator (a multicast shares one
payload object among receivers); receivers must treat payloads as
immutable and copy before mutating — the applications in this repository
do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.core.agebuffer import AgeBuffer
from repro.core.coherence import UpdatePolicy
from repro.core.global_read import (
    GlobalReadMode,
    GlobalReadStats,
    satisfies_age_bound,
)
from repro.core.location import SharedLocationSpec, VersionedValue
from repro.pvm.vm import Task, VirtualMachine
from repro.sim.process import Compute, WaitSignal

#: reserved PVM tags for the DSM protocol
DSM_UPDATE_TAG = -2000
DSM_REQUEST_TAG = -2001

#: bytes of DSM header per update message (location id + age stamp)
UPDATE_HEADER_BYTES = 12
#: wire size of one explicit-request message
REQUEST_NBYTES = 16


@dataclass
class DsmNodeStats:
    """Per-node DSM activity counters."""

    writes: int = 0
    updates_sent: int = 0
    updates_received: int = 0
    updates_coalesced: int = 0
    requests_served: int = 0
    requests_deferred: int = 0


class DsmNode:
    """Per-task handle onto the DSM (see module docstring)."""

    def __init__(self, dsm: "Dsm", task: Task) -> None:
        self.dsm = dsm
        self.task = task
        self.agebuf = AgeBuffer(task.tid)
        self.local_store: dict[str, VersionedValue] = {}
        self.gr_stats = GlobalReadStats()
        self.stats = DsmNodeStats()
        #: the machine's trace bus (or None); cached once — the bus is
        #: installed on the kernel before any DsmNode exists
        self.obs = dsm.vm.kernel.obs
        #: optional hook called as ``on_update(locn, age, value) -> cost``
        #: for every update :meth:`drain` applies; the returned simulated
        #: seconds are charged with the drain (applications use this to
        #: process update streams, e.g. folding interface-value batches)
        self.on_update = None
        # REQUEST mode: deferred requests per location
        self._pending_requests: dict[str, list[tuple[int, int]]] = {}
        # COALESCE policy: newest unsent update per location
        self._outbox: dict[str, tuple[Any, int, int]] = {}

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def write(
        self, locn: str, value: Any, iter_no: int, nbytes: int | None = None
    ) -> Generator:
        """Write ``value`` as iteration ``iter_no``'s value of ``locn``.

        Updates the local store, serves any deferred explicit requests
        that the new value satisfies, and propagates to the reader set
        according to the update policy.  Returns once the sends have been
        submitted (writes are asynchronous, as in slow memory — they never
        wait for delivery).
        """
        spec = self.dsm.spec(locn)
        if spec.writer != self.task.tid:
            raise PermissionError(
                f"task {self.task.tid} is not the writer of {locn!r} "
                f"(writer is {spec.writer})"
            )
        now = self.dsm.vm.kernel.now
        current = self.local_store.get(locn)
        if current is not None and iter_no <= current.age:
            raise ValueError(
                f"{locn!r}: write ages must increase (got {iter_no} after "
                f"{current.age}); iterative producers write once per iteration"
            )
        self.local_store[locn] = VersionedValue(value=value, age=iter_no, write_time=now)
        self.stats.writes += 1
        if self.obs is not None:
            self.obs.emit("dsm.write", node=self.task.tid, locn=locn, iter=iter_no)
        if self.dsm.checker is not None:
            self.dsm.checker.on_write(locn, iter_no, now, writer=self.task.tid)
        payload_bytes = (nbytes if nbytes is not None else spec.value_nbytes)
        wire_bytes = payload_bytes + UPDATE_HEADER_BYTES

        # Serve deferred explicit requests this write satisfies.
        pending = self._pending_requests.get(locn, [])
        still_waiting = []
        for requester, min_age in pending:
            if iter_no >= min_age:
                yield from self.task.send(
                    requester, DSM_UPDATE_TAG, (locn, iter_no, value, now), wire_bytes,
                    trace_ref=self._ref(locn, iter_no),
                )
                self.stats.updates_sent += 1
                self.stats.requests_served += 1
            else:
                still_waiting.append((requester, min_age))
        if pending:
            self._pending_requests[locn] = still_waiting

        if not spec.readers:
            return
        if self.dsm.update_policy is UpdatePolicy.EAGER:
            yield from self._propagate(spec, value, iter_no, now, wire_bytes)
        else:
            yield from self._coalescing_propagate(spec, value, iter_no, now, wire_bytes)

    def _ref(self, locn: str, iter_no: int) -> str | None:
        """Content-addressed lineage id for a write, or None when untraced.

        ``"locn@iter"`` is a pure function of (location, iteration) — never
        a process-global counter — so identical-seed runs emit identical
        traces (the bit-identity contract of DESIGN.md §10).
        """
        return f"{locn}@{iter_no}" if self.obs is not None else None

    def _propagate(self, spec, value, iter_no, write_time, wire_bytes) -> Generator:
        yield from self.task.mcast(
            spec.readers, DSM_UPDATE_TAG, (spec.name, iter_no, value, write_time), wire_bytes,
            trace_ref=self._ref(spec.name, iter_no),
        )
        self.stats.updates_sent += len(spec.readers)

    def _coalescing_propagate(self, spec, value, iter_no, write_time, wire_bytes) -> Generator:
        """Mermera-style sender buffering: hold updates while the egress
        queue is backlogged; a held update is superseded by newer writes
        (slow-memory legality) and flushed by the first uncongested write."""
        adapter = self.dsm.vm.network.adapters[self.task.tid]
        congested = adapter.queue_len > self.dsm.coalesce_threshold
        if congested:
            if spec.name in self._outbox:
                self.stats.updates_coalesced += 1
            self._outbox[spec.name] = (value, iter_no, wire_bytes)
            return
        # flush anything held back, oldest declaration order first
        for name, (v, a, wb) in list(self._outbox.items()):
            held_spec = self.dsm.spec(name)
            yield from self._propagate(held_spec, v, a, write_time, wb)
            del self._outbox[name]
        yield from self._propagate(spec, value, iter_no, write_time, wire_bytes)

    def flush(self) -> Generator:
        """Force-propagate every update held back by the COALESCE policy.

        Coalescing producers must call this after their last write (and may
        call it periodically): without it the freshest value of a location
        can sit in the outbox forever once the producer stops writing.
        """
        for name, (v, a, wb) in list(self._outbox.items()):
            yield from self._propagate(self.dsm.spec(name), v, a, self.dsm.vm.kernel.now, wb)
            del self._outbox[name]

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def drain(self) -> Generator:
        """Fold every waiting DSM update into the age buffer.

        Charges the aggregate receive cost and returns the number of
        updates applied.  Called implicitly by the read operations; the
        asynchronous applications also call it once per iteration.
        """
        cost = 0.0
        applied = 0
        while True:
            msg = self.task.nrecv(tag=DSM_UPDATE_TAG)
            if msg is None:
                break
            cost += self.task.consume_cost(msg)
            locn, age, value, write_time = msg.payload
            self.stats.updates_received += 1
            if self.agebuf.update(locn, value, age, write_time, self.dsm.vm.kernel.now):
                applied += 1
                if self.on_update is not None:
                    cost += self.on_update(locn, age, value)
        if cost > 0.0:
            yield Compute(cost)
        return applied

    def read_local(self, locn: str) -> Generator:
        """Slow-memory read: the freshest local copy, possibly ``None``.

        Never blocks — this is what the fully asynchronous programs use.
        """
        self._check_reader(locn)
        yield from self.drain()
        copy = self.agebuf.get(locn)
        if copy is not None and self.dsm.checker is not None:
            self.dsm.checker.on_read(
                self.task.tid, locn, copy.age, self.dsm.vm.kernel.now
            )
        return copy

    def global_read(self, locn: str, curr_iter: int, age: int) -> Generator:
        """The paper's primitive (see :mod:`repro.core.global_read`).

        Returns the current :class:`VersionedValue` as soon as its age is
        within bound; blocks the calling process otherwise.
        """
        self._check_reader(locn)
        self.gr_stats.calls += 1
        yield from self.drain()
        copy = self.agebuf.get(locn)
        if satisfies_age_bound(copy.age if copy else None, curr_iter, age):
            self.gr_stats.hits += 1
            self.gr_stats.record_return(curr_iter, copy.age)
            if self.obs is not None:
                self.obs.emit(
                    "gr.hit", node=self.task.tid, locn=locn,
                    curr_iter=curr_iter, age=age,
                    staleness=max(0, curr_iter - copy.age),
                )
            self._checker_read(locn, copy.age, curr_iter, age)
            return copy

        # Blocking path.
        self.gr_stats.blocked += 1
        block_start = self.dsm.vm.kernel.now
        if self.obs is not None:
            self.obs.emit(
                "gr.block", node=self.task.tid, locn=locn,
                curr_iter=curr_iter, age=age,
            )
        if self.dsm.mode is GlobalReadMode.REQUEST:
            spec = self.dsm.spec(locn)
            yield from self.task.send(
                spec.writer, DSM_REQUEST_TAG, (locn, curr_iter - age), REQUEST_NBYTES
            )
            self.gr_stats.requests_sent += 1
        while True:
            # A message may have arrived while drain() was charging its
            # receive cost (the signal fires with no waiter — a classic
            # lost wakeup).  Never park while undrained updates exist.
            if not self.task.probe(tag=DSM_UPDATE_TAG):
                yield WaitSignal(self.task.mail_signal)
            yield from self.drain()
            copy = self.agebuf.get(locn)
            if satisfies_age_bound(copy.age if copy else None, curr_iter, age):
                break
        self.gr_stats.block_time += self.dsm.vm.kernel.now - block_start
        self.gr_stats.record_return(curr_iter, copy.age)
        if self.obs is not None:
            # ref names the write that unblocked us; writer its producer —
            # together the blocking-cause edge of the causal span graph
            spec = self.dsm.spec(locn)
            self.obs.emit(
                "gr.unblock", node=self.task.tid, locn=locn,
                curr_iter=curr_iter, age=age,
                waited=self.dsm.vm.kernel.now - block_start,
                staleness=max(0, curr_iter - copy.age),
                ref=f"{locn}@{copy.age}", writer=spec.writer,
            )
        self._checker_read(locn, copy.age, curr_iter, age)
        return copy

    def _checker_read(self, locn: str, returned_age: int, curr_iter: int, age: int) -> None:
        if self.dsm.checker is not None:
            self.dsm.checker.on_read(
                self.task.tid, locn, returned_age, self.dsm.vm.kernel.now,
                curr_iter=curr_iter, age_bound=age,
            )

    def _check_reader(self, locn: str) -> None:
        spec = self.dsm.spec(locn)
        if self.task.tid not in spec.readers:
            raise PermissionError(
                f"task {self.task.tid} is not a declared reader of {locn!r}"
            )

    # ------------------------------------------------------------------
    # REQUEST-mode daemon
    # ------------------------------------------------------------------
    def daemon(self) -> Generator:
        """Serve explicit Global_Read requests for locations we write.

        Runs forever; spawn via :meth:`Dsm.spawn_daemons`.  A request whose
        bound the local store cannot yet satisfy is deferred and answered
        by the producing process's next satisfying :meth:`write`.
        """
        while True:
            msg = yield from self.task.recv(tag=DSM_REQUEST_TAG)
            locn, min_age = msg.payload
            spec = self.dsm.spec(locn)
            copy = self.local_store.get(locn)
            if copy is not None and copy.age >= min_age:
                wire = spec.value_nbytes + UPDATE_HEADER_BYTES
                yield from self.task.send(
                    msg.src, DSM_UPDATE_TAG, (locn, copy.age, copy.value, copy.write_time), wire,
                    trace_ref=self._ref(locn, copy.age),
                )
                self.stats.updates_sent += 1
                self.stats.requests_served += 1
            else:
                self._pending_requests.setdefault(locn, []).append((msg.src, min_age))
                self.stats.requests_deferred += 1


class Dsm:
    """DSM registry: location specs and per-task nodes over one VM."""

    def __init__(
        self,
        vm: VirtualMachine,
        mode: GlobalReadMode = GlobalReadMode.WAIT,
        update_policy: UpdatePolicy = UpdatePolicy.EAGER,
        coalesce_threshold: int = 4,
    ) -> None:
        self.vm = vm
        self.mode = mode
        self.update_policy = update_policy
        self.coalesce_threshold = coalesce_threshold
        self._specs: dict[str, SharedLocationSpec] = {}
        self._nodes: dict[int, DsmNode] = {}
        #: optional ConsistencyChecker observing every operation
        self.checker = None

    def register(self, spec: SharedLocationSpec) -> SharedLocationSpec:
        """Declare a shared location; all parties must be existing tasks."""
        if spec.name in self._specs:
            raise ValueError(f"location {spec.name!r} already registered")
        for tid in (spec.writer, *spec.readers):
            if tid not in self.vm.tasks:
                raise KeyError(f"{spec.name!r} references unknown task {tid}")
        self._specs[spec.name] = spec
        return spec

    def spec(self, locn: str) -> SharedLocationSpec:
        """The :class:`SharedLocationSpec` registered for ``locn``."""
        try:
            return self._specs[locn]
        except KeyError:
            raise KeyError(f"unknown shared location {locn!r}") from None

    def node(self, tid: int) -> DsmNode:
        """The DSM handle for task ``tid`` (created on first use)."""
        node = self._nodes.get(tid)
        if node is None:
            node = DsmNode(self, self.vm.tasks[tid])
            self._nodes[tid] = node
        return node

    def spawn_daemons(self) -> list:
        """Spawn the REQUEST-mode daemon on every node that writes.

        Needed only in :attr:`GlobalReadMode.REQUEST`; in WAIT mode no
        daemon exists (the whole point of the waiting implementation is
        its lower message and process overhead).
        """
        handles = []
        writers = {s.writer for s in self._specs.values()}
        for tid in sorted(writers):
            node = self.node(tid)
            handles.append(
                self.vm.kernel.spawn(node.daemon(), name=f"dsm-daemon-{tid}")
            )
        return handles

    def merged_gr_stats(self) -> GlobalReadStats:
        """Global_Read statistics aggregated over all nodes."""
        out = GlobalReadStats()
        for node in self._nodes.values():
            out = out.merge(node.gr_stats)
        return out

    @property
    def locations(self) -> list[str]:
        """All registered location names, in registration order."""
        return sorted(self._specs)
