"""The per-node local buffer of latest copies (§4.1).

"For locations accessed via Global_Read, a local user-level buffer at each
node maintains the latest copies of the locations received from
corresponding writers.  Global_Read first checks this buffer before
initiating a receive."

The buffer keeps exactly one :class:`VersionedValue` per location — the
one with the largest age seen so far.  Out-of-order arrivals with smaller
ages are counted and dropped (they can occur in the REQUEST mode, where an
explicit reply may race a regular update).  A per-buffer signal wakes any
reader blocked in ``Global_Read`` whenever a copy is refreshed.
"""

from __future__ import annotations

from typing import Any

from repro.core.location import VersionedValue
from repro.sim.process import Signal


class AgeBuffer:
    """Latest-copy store for all locations one node reads."""

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self._copies: dict[str, VersionedValue] = {}
        #: fired whenever any copy is refreshed; Global_Read waits on this
        self.refresh_signal = Signal(f"agebuf{owner}.refresh")
        self.updates_applied = 0
        self.updates_dropped_stale = 0

    def update(self, locn: str, value: Any, age: int, write_time: float, now: float) -> bool:
        """Fold an arriving update in; returns True if it became current."""
        incoming = VersionedValue(value=value, age=age, write_time=write_time, recv_time=now)
        current = self._copies.get(locn)
        if incoming.is_newer_than(current):
            self._copies[locn] = incoming
            self.updates_applied += 1
            self.refresh_signal.fire()
            return True
        self.updates_dropped_stale += 1
        return False

    def get(self, locn: str) -> VersionedValue | None:
        """The current copy, or None if nothing has arrived yet."""
        return self._copies.get(locn)

    def age_of(self, locn: str) -> int | None:
        """Age of the current copy (None = no copy yet)."""
        copy = self._copies.get(locn)
        return copy.age if copy is not None else None

    def __contains__(self, locn: str) -> bool:
        return locn in self._copies

    def __len__(self) -> int:
        return len(self._copies)
