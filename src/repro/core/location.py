"""Shared-location declarations and versioned values.

§4.1: "since the readers of each value are known at compile time, direct
sends and receives between processes suffice to implement shared location
writes and reads."  A :class:`SharedLocationSpec` is that compile-time
knowledge: one writer, a fixed reader set, and the wire size of one value
(so update messages are charged byte-accurate transmission time).

§2: "The implementation of the Global_Read primitive in a DSM involves
the maintenance of age information with each local copy of a shared
location."  :class:`VersionedValue` is a copy with its age — the
producer's iteration number when the value was generated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class SharedLocationSpec:
    """Compile-time description of one shared location.

    Attributes
    ----------
    name:
        Unique identifier (e.g. ``"migrants.3"`` for deme 3's emigrant
        buffer, ``"iface.7"`` for partition 7's interface-node vector).
    writer:
        The single producing task id.  The applications in the paper are
        single-writer per location (each deme writes its own migrant
        buffer; each partition writes its own interface values); the DSM
        enforces it, catching application bugs early.
    readers:
        Task ids that receive update propagations.
    value_nbytes:
        Wire size of one value, used when a write does not override it.
    """

    name: str
    writer: int
    readers: tuple[int, ...]
    value_nbytes: int = 8

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("location needs a non-empty name")
        object.__setattr__(self, "readers", tuple(self.readers))
        if self.writer in self.readers:
            raise ValueError(
                f"{self.name}: writer {self.writer} must not be in its own "
                "reader set (local reads never go over the network)"
            )
        if len(set(self.readers)) != len(self.readers):
            raise ValueError(f"{self.name}: duplicate readers")
        if self.value_nbytes <= 0:
            raise ValueError(f"{self.name}: value_nbytes must be positive")


@dataclass
class VersionedValue:
    """A local copy of a shared location with its age stamp.

    ``age`` is the producer's iteration number at write time — the unit
    `Global_Read`'s staleness bound is expressed in.  ``write_time`` /
    ``recv_time`` are simulated timestamps used by metrics only.
    """

    value: Any
    age: int
    write_time: float
    recv_time: float = -1.0

    def is_newer_than(self, other: "VersionedValue | None") -> bool:
        """Update ordering: strictly larger age wins; ties keep the first
        arrival (a producer writes each iteration at most once per
        location, so ties only occur for re-deliveries)."""
        return other is None or self.age > other.age
