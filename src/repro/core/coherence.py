"""Coherence modes and update-propagation policies.

:class:`CoherenceMode` names the three program organisations the paper
compares (§5); the applications select behaviour by it.  The mapping onto
DSM operations is:

=================  =====================================================
SYNCHRONOUS        write → group barrier → ``global_read(age=0)``
ASYNCHRONOUS       write → ``read_local`` (slow-memory semantics; never
                   blocks, tolerates arbitrarily stale copies)
NON_STRICT         write → ``global_read(age=k)`` (partially
                   asynchronous; k chosen by the programmer)
=================  =====================================================

:class:`UpdatePolicy` controls how writes propagate:

* ``EAGER`` — every write sends immediately, one message per reader.
  This is the paper's actual setup ("a simple layer of software on top of
  PVM ... without the optimizations inherent in a real DSM
  implementation"), and is what lets fully asynchronous programs flood
  the network.
* ``COALESCE`` — Mermera-style buffering [18]: when the sender's egress
  queue is backlogged past a threshold, a write only refreshes a per-
  location outbox slot (newest value wins) and is flushed by a later
  write once the queue drains.  Legal under slow-memory semantics, and
  exactly the sender-side adaptation §1 credits to asynchronous DSMs;
  offered as an ablation against receiver-side Global_Read control.
"""

from __future__ import annotations

import enum


class CoherenceMode(enum.Enum):
    """The three program organisations compared in the paper's §5."""

    SYNCHRONOUS = "synchronous"
    ASYNCHRONOUS = "asynchronous"
    NON_STRICT = "non_strict"

    @property
    def is_data_race_free(self) -> bool:
        """Only the synchronous organisation is race-free; the other two
        deliberately read potentially stale data (the paper's premise)."""
        return self is CoherenceMode.SYNCHRONOUS


class UpdatePolicy(enum.Enum):
    """Sender-side propagation policy for shared-location writes."""

    EAGER = "eager"
    COALESCE = "coalesce"
