"""Dynamic (runtime) staleness-bound adaptation — the paper's §6 future work.

"Also, to better understand and exploit the fact that different degrees
of asynchrony are best for different programs and network loads, we are
experimenting with dynamic (runtime) setting of tolerable age (staleness)
levels when using Global_Read."

:class:`DynamicAgeController` implements the natural AIMD policy over the
signals `Global_Read` already exposes:

* if recent calls **blocked** (the bound is too tight for the current
  network/load conditions), *increase* the age additively — trade
  staleness for progress;
* if recent calls were all **hits with slack** (the returned copies were
  much fresher than required), *decrease* the age multiplicatively —
  reclaim convergence efficiency while the network is keeping up.

The controller is deliberately application-agnostic: it sees only
(blocked?, observed staleness) per call, the same information a DSM
runtime would have.  Each reader adapts independently — there is no
global coordination, matching the primitive's per-process character.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DynamicAgeController:
    """AIMD adaptation of the `Global_Read` age parameter.

    Parameters
    ----------
    min_age, max_age:
        Clamp range for the adapted age.
    window:
        Number of calls per adaptation decision.
    increase_step:
        Additive step applied when any call in the window blocked.
    decrease_factor:
        Multiplicative shrink applied when every call in the window was a
        hit whose staleness left at least ``slack`` iterations of margin.
    slack:
        Freshness margin (bound − observed staleness) required before the
        age is lowered.
    """

    initial_age: int = 5
    min_age: int = 0
    max_age: int = 60
    window: int = 8
    increase_step: int = 2
    decrease_factor: float = 0.5
    slack: int = 2

    age: int = field(init=False)
    _calls_in_window: int = field(init=False, default=0)
    _blocked_in_window: int = field(init=False, default=0)
    _max_staleness_in_window: int = field(init=False, default=0)
    adjustments: list = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if not self.min_age <= self.initial_age <= self.max_age:
            raise ValueError("need min_age <= initial_age <= max_age")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < self.decrease_factor < 1.0:
            raise ValueError("decrease_factor must be in (0, 1)")
        self.age = self.initial_age

    def observe(self, blocked: bool, staleness: int) -> int:
        """Record one `Global_Read` outcome; returns the age for the next
        call (possibly adapted at window boundaries)."""
        self._calls_in_window += 1
        self._blocked_in_window += int(blocked)
        self._max_staleness_in_window = max(self._max_staleness_in_window, staleness)
        if self._calls_in_window >= self.window:
            self._adapt()
        return self.age

    def _adapt(self) -> None:
        old = self.age
        if self._blocked_in_window > 0:
            self.age = min(self.max_age, self.age + self.increase_step)
        elif self._max_staleness_in_window <= self.age - self.slack:
            self.age = max(self.min_age, int(self.age * self.decrease_factor))
        if self.age != old:
            self.adjustments.append((old, self.age))
        self._calls_in_window = 0
        self._blocked_in_window = 0
        self._max_staleness_in_window = 0
