"""Runtime verification of the non-strict coherence guarantee.

`Global_Read` induces a memory model very close to *delta consistency*
(§2.1).  This checker turns the model's obligations into machine-checked
invariants over an execution trace:

1. **Staleness bound** — every value a ``global_read(locn, curr_iter,
   age)`` returns was generated at producer iteration ``>= curr_iter -
   age``.
2. **No phantom values** — every read returns an age that some write
   actually produced.
3. **Monotone reads** — per (reader, location), returned ages never
   decrease (the age buffer keeps only the newest copy).
4. **Producer monotonicity** — write ages per location strictly increase.

Attach a checker to a :class:`~repro.core.dsm.Dsm` (``dsm.checker =
ConsistencyChecker()``) and it observes every operation; ``violations``
collects anything that breaks an invariant.  The property-based tests
drive random workloads through the DSM and assert the list stays empty —
this is the strongest evidence the primitive is implemented correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough context to debug it."""

    invariant: str
    locn: str
    detail: str
    time: float


@dataclass
class ConsistencyChecker:
    """Observes DSM operations and accumulates invariant violations."""

    violations: list[Violation] = field(default_factory=list)
    #: per location: set of ages ever written
    _written_ages: dict[str, set[int]] = field(default_factory=dict)
    #: per location: largest write age so far
    _max_write_age: dict[str, int] = field(default_factory=dict)
    #: per (reader, location): last returned age
    _last_read_age: dict[tuple[int, str], int] = field(default_factory=dict)
    reads_checked: int = 0
    writes_checked: int = 0

    # -- hooks called by the DSM ----------------------------------------
    def on_write(self, locn: str, age: int, time: float) -> None:
        self.writes_checked += 1
        prev = self._max_write_age.get(locn)
        if prev is not None and age <= prev:
            self._flag(
                "producer-monotonicity", locn,
                f"write age {age} after {prev}", time,
            )
        self._max_write_age[locn] = age
        self._written_ages.setdefault(locn, set()).add(age)

    def on_read(
        self,
        reader: int,
        locn: str,
        returned_age: int,
        time: float,
        curr_iter: int | None = None,
        age_bound: int | None = None,
    ) -> None:
        """Record a read; pass curr_iter/age_bound only for global_reads."""
        self.reads_checked += 1
        if curr_iter is not None and age_bound is not None:
            if returned_age < curr_iter - age_bound:
                self._flag(
                    "staleness-bound", locn,
                    f"reader {reader} at iter {curr_iter} with age {age_bound} "
                    f"got value of age {returned_age}", time,
                )
        if returned_age not in self._written_ages.get(locn, set()):
            self._flag(
                "no-phantom-values", locn,
                f"reader {reader} got age {returned_age}, never written", time,
            )
        key = (reader, locn)
        last = self._last_read_age.get(key)
        if last is not None and returned_age < last:
            self._flag(
                "monotone-reads", locn,
                f"reader {reader} saw age {returned_age} after {last}", time,
            )
        self._last_read_age[key] = returned_age

    def _flag(self, invariant: str, locn: str, detail: str, time: float) -> None:
        self.violations.append(Violation(invariant, locn, detail, time))

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> str:
        """Human-readable summary for test failures."""
        if self.ok:
            return (
                f"consistency OK: {self.writes_checked} writes, "
                f"{self.reads_checked} reads, 0 violations"
            )
        lines = [f"{len(self.violations)} violation(s):"]
        lines += [
            f"  [{v.invariant}] {v.locn} @ t={v.time:.6f}: {v.detail}"
            for v in self.violations[:20]
        ]
        return "\n".join(lines)
