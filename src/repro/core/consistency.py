"""Runtime verification of the non-strict coherence guarantee.

`Global_Read` induces a memory model very close to *delta consistency*
(§2.1).  This checker turns the model's obligations into machine-checked
invariants over an execution trace:

1. **Staleness bound** — every value a ``global_read(locn, curr_iter,
   age)`` returns was generated at producer iteration ``>= curr_iter -
   age``.
2. **No phantom values** — every read returns an age that some write
   actually produced.
3. **Monotone reads** — per (reader, location), returned ages never
   decrease (the age buffer keeps only the newest copy).
4. **Producer monotonicity** — write ages per location strictly increase.

Attach a checker to a :class:`~repro.core.dsm.Dsm` (``dsm.checker =
ConsistencyChecker()``) and it observes every operation; ``violations``
collects anything that breaks an invariant.  The property-based tests
drive random workloads through the DSM and assert the list stays empty —
this is the strongest evidence the primitive is implemented correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough context to debug it."""

    invariant: str
    locn: str
    detail: str
    time: float
    #: reading task id for read-side invariants (None for write-side ones)
    reader: int | None = None


#: keep at most this many stored examples per (invariant, locn, reader)
PER_KEY_LIMIT = 5


@dataclass
class ConsistencyChecker:
    """Observes DSM operations and accumulates invariant violations.

    ``violations`` stores a bounded sample of the broken invariants: at
    most :attr:`max_violations` total and at most :data:`PER_KEY_LIMIT`
    per (invariant, location, reader) key, so a pathological run cannot
    grow the list without bound.  Every occurrence — stored or not — is
    counted in :attr:`violation_counts`; :attr:`ok` reflects the counts,
    never the (possibly truncated) sample.
    """

    violations: list[Violation] = field(default_factory=list)
    #: hard cap on stored Violation examples
    max_violations: int = 1000
    #: every occurrence, keyed by (invariant, locn): survives deduping
    violation_counts: dict[tuple[str, str], int] = field(default_factory=dict)
    #: occurrences not stored in ``violations`` (dedup or cap)
    violations_dropped: int = 0
    #: per (invariant, locn, reader): stored examples so far
    _stored_per_key: dict[tuple[str, str, int | None], int] = field(
        default_factory=dict
    )
    #: per location: set of ages ever written
    _written_ages: dict[str, set[int]] = field(default_factory=dict)
    #: per location: largest write age so far
    _max_write_age: dict[str, int] = field(default_factory=dict)
    #: per (reader, location): last returned age
    _last_read_age: dict[tuple[int, str], int] = field(default_factory=dict)
    reads_checked: int = 0
    writes_checked: int = 0

    # -- hooks called by the DSM ----------------------------------------
    def on_write(
        self, locn: str, age: int, time: float, writer: int | None = None
    ) -> None:
        """Record a write to ``locn`` (age ``age``) for later read validation."""
        self.writes_checked += 1
        prev = self._max_write_age.get(locn)
        if prev is not None and age <= prev:
            who = f"writer {writer} " if writer is not None else ""
            self._flag(
                "producer-monotonicity", locn,
                f"{who}write age {age} after {prev}", time,
            )
        self._max_write_age[locn] = age
        self._written_ages.setdefault(locn, set()).add(age)

    def on_read(
        self,
        reader: int,
        locn: str,
        returned_age: int,
        time: float,
        curr_iter: int | None = None,
        age_bound: int | None = None,
    ) -> None:
        """Record a read; pass curr_iter/age_bound only for global_reads."""
        self.reads_checked += 1
        if curr_iter is not None and age_bound is not None:
            if returned_age < curr_iter - age_bound:
                self._flag(
                    "staleness-bound", locn,
                    f"reader {reader} at iter {curr_iter} with age {age_bound} "
                    f"got value of age {returned_age}", time, reader=reader,
                )
        if returned_age not in self._written_ages.get(locn, set()):
            self._flag(
                "no-phantom-values", locn,
                f"reader {reader} got age {returned_age}, never written", time,
                reader=reader,
            )
        key = (reader, locn)
        last = self._last_read_age.get(key)
        if last is not None and returned_age < last:
            self._flag(
                "monotone-reads", locn,
                f"reader {reader} saw age {returned_age} after {last}", time,
                reader=reader,
            )
        self._last_read_age[key] = returned_age

    def _flag(
        self,
        invariant: str,
        locn: str,
        detail: str,
        time: float,
        reader: int | None = None,
    ) -> None:
        count_key = (invariant, locn)
        self.violation_counts[count_key] = self.violation_counts.get(count_key, 0) + 1
        dedup_key = (invariant, locn, reader)
        stored = self._stored_per_key.get(dedup_key, 0)
        if stored >= PER_KEY_LIMIT or len(self.violations) >= self.max_violations:
            self.violations_dropped += 1
            return
        self._stored_per_key[dedup_key] = stored + 1
        self.violations.append(Violation(invariant, locn, detail, time, reader=reader))

    @property
    def total_violations(self) -> int:
        """Every occurrence ever flagged, including deduped/capped ones."""
        return sum(self.violation_counts.values())

    @property
    def ok(self) -> bool:
        """True when no read violated its declared staleness bound."""
        return self.total_violations == 0

    def report(self, max_lines: int = 20) -> str:
        """Human-readable summary for test failures.

        Shows at most ``max_lines`` stored examples and says explicitly
        when output is truncated — both by this limit and by the
        dedup/cap applied at collection time.
        """
        if self.ok:
            return (
                f"consistency OK: {self.writes_checked} writes, "
                f"{self.reads_checked} reads, 0 violations"
            )
        total = self.total_violations
        shown = min(max_lines, len(self.violations))
        lines = [f"{total} violation(s), showing first {shown}:"]
        for v in self.violations[:max_lines]:
            who = f" reader={v.reader}" if v.reader is not None else ""
            lines.append(
                f"  [{v.invariant}] {v.locn}{who} @ t={v.time:.6f}: {v.detail}"
            )
        omitted = total - shown
        if omitted > 0:
            lines.append(
                f"  ... {omitted} more occurrence(s) omitted "
                f"({self.violations_dropped} deduped/capped at collection, "
                f"{len(self.violations) - shown} truncated here); "
                "full counts in violation_counts"
            )
        return "\n".join(lines)
