"""The paper's contribution: non-strict cache coherence via ``Global_Read``.

A thin software-DSM abstraction is layered over PVM exactly as in §4.1 of
the paper: shared-location readers are known at compile time, so writes
become direct sends to the reader set, and each reader keeps a local
user-level buffer with the latest copy (and *age*) of every location it
reads.  On top of that buffer:

* ``read_local``  — slow-memory read: whatever copy is present, never
  blocks (the fully *asynchronous* programs);
* ``global_read(locn, curr_iter, age)`` — **the primitive under study**: a
  blocking read guaranteed to return a value generated no earlier than
  iteration ``curr_iter - age`` of the producer (the *partially
  asynchronous* programs);
* ``global_read`` with ``age=0`` + no barrier — isolates the benefit of
  removing barrier synchronisation (§5's "age = 0" bars);
* write + ``barrier`` + ``global_read(age=0)`` — the *synchronous*
  programs.

Two implementations of the blocking path exist (§2): ``WAIT`` (default —
wait for the producer's normal update, fewer messages; the one the paper
evaluates) and ``REQUEST`` (ask the producer explicitly; served by a
per-node DSM daemon).  Both are provided; the REQUEST variant is examined
in an ablation benchmark.
"""

from repro.core.location import SharedLocationSpec, VersionedValue
from repro.core.agebuffer import AgeBuffer
from repro.core.global_read import (
    GlobalReadMode,
    GlobalReadStats,
    satisfies_age_bound,
)
from repro.core.coherence import CoherenceMode, UpdatePolicy
from repro.core.dsm import Dsm, DsmNode
from repro.core.consistency import ConsistencyChecker, Violation
from repro.core.contract import (
    CONTRACTS,
    StalenessContract,
    contract_for,
    dsm_contract,
)

__all__ = [
    "SharedLocationSpec",
    "VersionedValue",
    "AgeBuffer",
    "GlobalReadMode",
    "GlobalReadStats",
    "satisfies_age_bound",
    "CoherenceMode",
    "UpdatePolicy",
    "Dsm",
    "DsmNode",
    "ConsistencyChecker",
    "Violation",
    "CONTRACTS",
    "StalenessContract",
    "contract_for",
    "dsm_contract",
]
