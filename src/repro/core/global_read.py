"""Global_Read semantics: the staleness predicate, modes and statistics.

§2: "``Global_Read(locn, curriter, age)`` returns a value of ``locn``
generated no earlier than in the ``curriter - age``'th iteration of the
process that is generating successive values of ``locn``.  This implies
that if the local copy of ``locn`` is older than acceptable, the reading
process is blocked until an acceptable newer value of ``locn`` becomes
available.  Alternately, when the local copy is within the age limit
specified, the Global_Read degenerates to an ordinary read."

The blocking path has two implementations (§2):

* :attr:`GlobalReadMode.WAIT` — "just waits until the required update
  arrives … will generate fewer messages, and is more efficiently
  implemented as a user-level library routine."  This is what the paper
  evaluates and our default.
* :attr:`GlobalReadMode.REQUEST` — "broadcasts a request for a copy of
  suitable age" to the writer, answered by the writer's DSM daemon (which
  defers the reply until it has a satisfying value).  Costs extra messages
  but delivers the value as soon as it exists; compared in ablation A1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class GlobalReadMode(enum.Enum):
    """How a blocked ``Global_Read`` obtains its value (§2)."""

    WAIT = "wait"
    REQUEST = "request"


def satisfies_age_bound(copy_age: int | None, curr_iter: int, age: int) -> bool:
    """The non-strict coherence predicate.

    True iff a copy of age ``copy_age`` may be returned to a reader at
    iteration ``curr_iter`` with staleness tolerance ``age`` — i.e. the
    value was generated no earlier than producer iteration
    ``curr_iter - age``.  ``copy_age is None`` (no copy yet) never
    satisfies.
    """
    if age < 0:
        raise ValueError(f"age must be >= 0, got {age}")
    if curr_iter < 0:
        raise ValueError(f"curr_iter must be >= 0, got {curr_iter}")
    if copy_age is None:
        return False
    return copy_age >= curr_iter - age


@dataclass
class GlobalReadStats:
    """Per-node counters for `Global_Read` behaviour.

    ``blocked``/``block_time`` quantify the throttling that converts a
    fully asynchronous program into a partially asynchronous one — the
    paper's program-level flow control.  ``hits`` counts calls that
    degenerated to ordinary reads.
    """

    calls: int = 0
    hits: int = 0
    blocked: int = 0
    block_time: float = 0.0
    requests_sent: int = 0
    #: ages (curr_iter - copy_age) observed at satisfaction, for analysis
    staleness_histogram: dict[int, int] = field(default_factory=dict)

    def record_return(self, curr_iter: int, copy_age: int) -> None:
        """Fold one returned copy into the staleness histogram."""
        staleness = max(0, curr_iter - copy_age)
        self.staleness_histogram[staleness] = (
            self.staleness_histogram.get(staleness, 0) + 1
        )

    @property
    def hit_rate(self) -> float:
        """Fraction of Global_Read calls served locally without blocking."""
        return self.hits / self.calls if self.calls else 0.0

    @property
    def mean_block_time(self) -> float:
        """Mean blocked time per blocking call (0 when nothing blocked)."""
        return self.block_time / self.blocked if self.blocked else 0.0

    def merge(self, other: "GlobalReadStats") -> "GlobalReadStats":
        """Aggregate counters across nodes (for experiment reporting)."""
        out = GlobalReadStats(
            calls=self.calls + other.calls,
            hits=self.hits + other.hits,
            blocked=self.blocked + other.blocked,
            block_time=self.block_time + other.block_time,
            requests_sent=self.requests_sent + other.requests_sent,
        )
        out.staleness_histogram = dict(self.staleness_histogram)
        for k, v in other.staleness_histogram.items():
            out.staleness_histogram[k] = out.staleness_histogram.get(k, 0) + v
        return out
