"""Declared staleness contracts for shared DSM locations.

The paper's premise is that some data races are *tolerable*; a
:class:`StalenessContract` is the application's written-down claim of
exactly how much race tolerance a family of shared locations has.  The
claim has three axes:

``writers``
    Maximum number of distinct producing tasks a single location may
    have.  Everything in this repository is single-writer (the DSM
    enforces it at :meth:`repro.core.dsm.Dsm.register` time); the axis
    exists so multi-writer protocols (ROADMAP item 3) can declare
    themselves honestly.
``age``
    The largest staleness bound (in producer iterations) any reader is
    allowed to request, or ``None`` when *unbounded* staleness is
    algorithmically tolerable (e.g. GA migrant incorporation, where
    selection makes arbitrarily-stale immigrants harmless).  ``age=0``
    declares strict, phase-separated access.
``tolerance``
    The declared race-tolerance class, one of
    :data:`TOLERANCE_CLASSES` — the same lattice the static analyzer
    (:mod:`repro.analysis.coherence`) infers from source, so declared
    and inferred classes are directly comparable.

Contracts are declared once, at module import time, next to the code
that registers the locations::

    from repro.core.contract import dsm_contract

    dsm_contract(
        "migrants.*", writers=1, age=None, tolerance="commutative",
        reason="selection-based incorporation is order/staleness-insensitive",
    )

They are consumed in two places: the static coherence analyzer reads
them *from the AST* (so the checked contract is what the source says,
not what happens to be imported), and the runtime registry lets tools
and experiments look contracts up by concrete location name
(:func:`contract_for`).  Declaring a contract has **no effect on the
DSM hot path** — no per-read or per-write check is added; the
determinism digests are byte-identical with or without declarations.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase

#: the race-tolerance lattice, ordered from least to most race exposure;
#: index order is what "weaker/stronger class" means everywhere
TOLERANCE_CLASSES: tuple[str, ...] = (
    "read_only",
    "single_writer",
    "phase_concurrent",
    "commutative",
    "unbounded",
)


def tolerance_rank(name: str) -> int:
    """Lattice index of a tolerance class (raises on unknown names)."""
    try:
        return TOLERANCE_CLASSES.index(name)
    except ValueError:
        raise ValueError(
            f"unknown tolerance class {name!r} "
            f"(known: {', '.join(TOLERANCE_CLASSES)})"
        ) from None


@dataclass(frozen=True)
class StalenessContract:
    """One declared contract over a family of shared locations.

    ``pattern`` is an ``fnmatch``-style glob over location names
    (``"migrants.*"``).  See the module docstring for the semantics of
    the other fields.
    """

    pattern: str
    writers: int = 1
    age: int | None = None
    tolerance: str = "commutative"
    reason: str = ""

    def __post_init__(self) -> None:
        if not self.pattern:
            raise ValueError("contract needs a non-empty location pattern")
        if self.writers < 1:
            raise ValueError(f"{self.pattern}: writers must be >= 1")
        if self.age is not None and self.age < 0:
            raise ValueError(
                f"{self.pattern}: age is a staleness tolerance and must be "
                f">= 0 (or None for unbounded), got {self.age}"
            )
        tolerance_rank(self.tolerance)  # validates the class name

    def matches(self, locn: str) -> bool:
        """True when this contract covers location ``locn``."""
        return fnmatchcase(locn, self.pattern)


class ContractRegistry:
    """Process-wide registry of declared contracts, keyed by pattern.

    Lookup returns the *most specific* matching contract (longest
    pattern wins; ties broken by declaration order).  Re-declaring an
    identical contract is a no-op so test re-imports stay harmless;
    re-declaring a pattern with *different* terms raises — two modules
    disagreeing about a location's tolerance is a bug worth failing on.
    """

    def __init__(self) -> None:
        self._contracts: dict[str, StalenessContract] = {}

    def declare(self, contract: StalenessContract) -> StalenessContract:
        """Register ``contract``; idempotent for identical re-declarations."""
        existing = self._contracts.get(contract.pattern)
        if existing is not None:
            if existing == contract:
                return existing
            raise ValueError(
                f"conflicting contract for {contract.pattern!r}: "
                f"{existing} vs {contract}"
            )
        self._contracts[contract.pattern] = contract
        return contract

    def lookup(self, locn: str) -> StalenessContract | None:
        """Most specific contract covering ``locn``, or None."""
        best: StalenessContract | None = None
        for contract in self._contracts.values():
            if contract.matches(locn) and (
                best is None or len(contract.pattern) > len(best.pattern)
            ):
                best = contract
        return best

    def all(self) -> list[StalenessContract]:
        """Every declared contract, in declaration order."""
        return list(self._contracts.values())

    def clear(self) -> None:
        """Forget every declaration (test isolation only)."""
        self._contracts.clear()


#: the process-wide registry the decorator-style declarations feed
CONTRACTS = ContractRegistry()


def dsm_contract(
    pattern: str,
    *,
    writers: int = 1,
    age: int | None = None,
    tolerance: str = "commutative",
    reason: str = "",
) -> StalenessContract:
    """Declare a staleness contract for locations matching ``pattern``.

    The lightweight annotation form used at module level next to the
    code registering the locations; returns the registered contract.
    """
    return CONTRACTS.declare(
        StalenessContract(
            pattern=pattern,
            writers=writers,
            age=age,
            tolerance=tolerance,
            reason=reason,
        )
    )


def contract_for(locn: str) -> StalenessContract | None:
    """The most specific declared contract covering ``locn`` (or None)."""
    return CONTRACTS.lookup(locn)
