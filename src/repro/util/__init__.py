"""Small shared utilities with no simulation-side effects.

Only code that is safe to import from *every* layer lives here — the
package must stay dependency-free (stdlib only) and must never touch
RNG streams, the event queue or simulated state.
"""

from repro.util.envelope import (
    envelope_digest,
    make_envelope,
    render_envelope,
    write_envelope,
)

__all__ = [
    "envelope_digest",
    "make_envelope",
    "render_envelope",
    "write_envelope",
]
