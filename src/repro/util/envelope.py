"""The one JSON-envelope writer every machine-readable artifact shares.

Every ``repro-*/N`` document in this repository (bench trajectory
points, observability reports, analysis verdicts) has the same outer
shape: a ``schema`` tag naming the document type and version, the
payload fields, and — for artifacts that are diffed or archived — a
``digest`` over the canonical payload so consumers can detect
truncated or hand-edited files.  This module is the single place that
shape is produced; :mod:`repro.bench.harness`, :mod:`repro.obs.report`
and :mod:`repro.analysis.cli` all build their envelopes here instead
of each hand-rolling the dict.

The digest is a SHA-256 over the sorted-keys JSON of the payload
*without* the ``digest`` key itself, so ``envelope_digest(env)`` can
re-derive and verify it.
"""

from __future__ import annotations

import json
from hashlib import sha256
from pathlib import Path
from typing import Any

#: envelope keys that are never part of the digested payload
_META_KEYS = ("digest",)


def envelope_digest(payload: dict[str, Any]) -> str:
    """SHA-256 over the canonical (sorted-keys) JSON of ``payload``.

    Keys listed in :data:`_META_KEYS` are excluded, so the digest of a
    finished envelope equals the digest computed while building it.
    """
    body = {k: v for k, v in payload.items() if k not in _META_KEYS}
    return sha256(
        json.dumps(body, sort_keys=True, default=str).encode("utf-8")
    ).hexdigest()


def make_envelope(
    schema: str, payload: dict[str, Any], digest: bool = False
) -> dict[str, Any]:
    """Wrap ``payload`` in the standard envelope shape.

    ``schema`` is the full ``name/version`` tag (e.g.
    ``"repro-analysis-coherence/1"``).  The schema key always comes
    first so envelopes are recognisable from the first line of the
    serialized document; with ``digest=True`` a content digest over the
    payload is included.
    """
    if "/" not in schema:
        raise ValueError(f"schema tag must be 'name/version', got {schema!r}")
    out: dict[str, Any] = {"schema": schema}
    out.update(payload)
    if digest:
        out["digest"] = envelope_digest(out)
    return out


def render_envelope(env: dict[str, Any], indent: int = 2) -> str:
    """Serialize an envelope to canonical sorted-keys JSON text."""
    return json.dumps(env, indent=indent, sort_keys=True, default=str)


def write_envelope(path: str | Path, env: dict[str, Any]) -> Path:
    """Write one envelope document (trailing newline included)."""
    path = Path(path)
    path.write_text(render_envelope(env) + "\n", encoding="utf-8")
    return path
