"""Declarative, seed-driven fault schedules.

A :class:`FaultPlan` is the *complete* description of a chaos run's
degradation: message-level fault rates and windows
(:class:`MessageFaults`) plus a schedule of node-level incidents
(:class:`NodeFault`).  Plans are frozen dataclasses — picklable (they
cross process boundaries in ``parallel_map`` fan-outs), hashable, and
printable — and they carry their *own* seed: the injector's random
stream is derived from ``plan.seed`` via the same named-stream
construction as every other RNG in the repository
(:func:`repro.sim.rng.stream_seed`), so the fault sequence is a pure
function of the plan, independent of the machine seed.  Two runs of the
same workload under the same plan are bit-identical; changing only
``plan.seed`` re-rolls every fault decision (DESIGN.md §9).

The CLI spec format (``--faults`` on the experiment runners)::

    drop=0.05,dup=0.02,delay=0.05,delay_s=0.0005:0.005,reorder=0.1,
    seed=7,start=0,stop=2.5,
    pause=NODE:START:DURATION,slow=NODE:START:DURATION:FACTOR,
    crash=NODE:START:DURATION

Repeatable keys (``pause``/``slow``/``crash``) accumulate.  Unknown keys
raise immediately — a typo silently disabling chaos would defeat the
point of a regression-gated fault matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: PVM tags never faulted by default: the barrier protocol is a
#: counting protocol with no retransmission, so the paper's synchronous
#: baselines assume it is reliable (DESIGN.md §9 — the fault model
#: degrades *data* traffic; control-plane hardening is future work).
DEFAULT_PROTECTED_TAGS = (-1000, -1001)  # BARRIER_TAG, BARRIER_RELEASE_TAG


@dataclass(frozen=True)
class MessageFaults:
    """Per-delivery fault probabilities and their parameters.

    Exactly one fault is drawn per frame delivery (one uniform draw
    against the cumulative rates), so ``drop + duplicate + delay +
    reorder`` must be <= 1.  ``delay`` and ``reorder`` are lossless;
    ``drop`` is real loss (no retransmission layer exists yet), and
    ``duplicate`` models UDP-style duplication — the layers above must
    tolerate both, which is what the chaos suite asserts.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    reorder: float = 0.0
    #: uniform range the extra delivery latency is drawn from, seconds
    delay_s: tuple[float, float] = (0.5e-3, 5e-3)
    #: the duplicate copy lands this long after the original
    dup_delay_s: float = 0.2e-3
    #: safety flush: a held (reordered) frame is force-released after
    #: this long even if no later frame overtakes it — reordering must
    #: never turn into loss
    reorder_hold_s: float = 2e-3
    #: fault window in simulated seconds; ``stop=None`` = forever
    start: float = 0.0
    stop: float | None = None
    #: frame kinds eligible for faults; empty = every kind
    kinds: tuple[str, ...] = ()
    #: PVM message tags exempt from faults (see DEFAULT_PROTECTED_TAGS)
    protect_tags: tuple[int, ...] = DEFAULT_PROTECTED_TAGS

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay", "reorder"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {rate}")
        total = self.drop + self.duplicate + self.delay + self.reorder
        if total > 1.0:
            raise ValueError(f"fault rates must sum to <= 1, got {total}")
        lo, hi = self.delay_s
        if lo < 0 or hi < lo:
            raise ValueError(f"delay_s must be 0 <= lo <= hi, got {self.delay_s}")
        if self.dup_delay_s < 0 or self.reorder_hold_s <= 0:
            raise ValueError("dup_delay_s must be >= 0 and reorder_hold_s > 0")
        if self.start < 0 or (self.stop is not None and self.stop < self.start):
            raise ValueError(f"bad fault window [{self.start}, {self.stop}]")

    @property
    def any_rate(self) -> bool:
        """True when any message-fault probability is nonzero."""
        return (self.drop + self.duplicate + self.delay + self.reorder) > 0.0

    def active(self, now: float) -> bool:
        """Whether the fault window covers simulated time ``now``."""
        return now >= self.start and (self.stop is None or now < self.stop)


@dataclass(frozen=True)
class NodeFault:
    """One scheduled node-level incident.

    ``pause``
        The node executes no application compute during the window;
        work in progress stalls and resumes at ``start + duration``.
        Models GC pauses, co-scheduled jobs, OS-level suspension.
    ``slowdown``
        Application compute overlapping the window is stretched by
        ``factor`` (> 1).  Models thermal throttling / background load.
    ``crash``
        A fail-stop-with-recovery: like ``pause``, but the node's
        outbound adapter queue is flushed at ``start`` (in-flight
        egress frames are lost).  Process state survives — the paper's
        programs have no checkpointing, so a state-losing crash is out
        of scope until a recovery protocol exists (DESIGN.md §9).
    """

    node: int
    kind: str  # "pause" | "slowdown" | "crash"
    start: float
    duration: float
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in ("pause", "slowdown", "crash"):
            raise ValueError(f"unknown node-fault kind {self.kind!r}")
        if self.node < 0:
            raise ValueError("node id must be >= 0")
        if self.start < 0 or self.duration <= 0:
            raise ValueError("need start >= 0 and duration > 0")
        if self.kind == "slowdown" and self.factor <= 1.0:
            raise ValueError(f"slowdown factor must be > 1, got {self.factor}")

    @property
    def end(self) -> float:
        """End of the fault window in simulated seconds (``inf`` when open)."""
        return self.start + self.duration


@dataclass(frozen=True)
class FaultPlan:
    """A complete, reproducible chaos schedule (see module docstring)."""

    seed: int = 0
    messages: MessageFaults = field(default_factory=MessageFaults)
    node_faults: tuple[NodeFault, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.node_faults, tuple):
            object.__setattr__(self, "node_faults", tuple(self.node_faults))

    @property
    def is_noop(self) -> bool:
        """True when the plan injects nothing at all."""
        return not self.messages.any_rate and not self.node_faults

    def faults_for_node(self, node_id: int) -> tuple[NodeFault, ...]:
        """The node faults that target ``node_id``."""
        return tuple(
            sorted(
                (f for f in self.node_faults if f.node == node_id),
                key=lambda f: f.start,
            )
        )

    def describe(self) -> str:
        """Compact human-readable spec string (inverse of :meth:`parse`)."""
        m = self.messages
        parts = [f"seed={self.seed}"]
        for name, rate in (
            ("drop", m.drop), ("dup", m.duplicate),
            ("delay", m.delay), ("reorder", m.reorder),
        ):
            if rate:
                parts.append(f"{name}={rate:g}")
        if m.start or m.stop is not None:
            parts.append(f"window=[{m.start:g},{'inf' if m.stop is None else f'{m.stop:g}'})")
        for f in self.node_faults:
            parts.append(f"{f.kind}(n{f.node}@{f.start:g}+{f.duration:g})")
        return ",".join(parts)

    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan (injects nothing)."""
        return cls()

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from the CLI spec format (module docstring)."""
        msg_floats = {
            "drop": "drop", "dup": "duplicate", "delay": "delay",
            "reorder": "reorder", "start": "start",
            "dup_delay_s": "dup_delay_s", "reorder_hold_s": "reorder_hold_s",
        }
        msg_kwargs: dict = {}
        node_faults: list[NodeFault] = []
        plan_seed = seed
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"bad fault spec item {item!r} (expected key=value)")
            key, _, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "seed":
                plan_seed = int(value)
            elif key in msg_floats:
                msg_kwargs[msg_floats[key]] = float(value)
            elif key == "stop":
                msg_kwargs["stop"] = None if value in ("inf", "none") else float(value)
            elif key == "delay_s":
                lo, _, hi = value.partition(":")
                msg_kwargs["delay_s"] = (float(lo), float(hi or lo))
            elif key == "kinds":
                msg_kwargs["kinds"] = tuple(value.split("+"))
            elif key in ("pause", "slow", "crash"):
                fields = value.split(":")
                kind = {"slow": "slowdown"}.get(key, key)
                if kind == "slowdown":
                    if len(fields) != 4:
                        raise ValueError(f"slow wants NODE:START:DURATION:FACTOR, got {value!r}")
                    node_faults.append(NodeFault(
                        node=int(fields[0]), kind=kind, start=float(fields[1]),
                        duration=float(fields[2]), factor=float(fields[3]),
                    ))
                else:
                    if len(fields) != 3:
                        raise ValueError(f"{key} wants NODE:START:DURATION, got {value!r}")
                    node_faults.append(NodeFault(
                        node=int(fields[0]), kind=kind, start=float(fields[1]),
                        duration=float(fields[2]),
                    ))
            else:
                raise ValueError(f"unknown fault spec key {key!r}")
        return cls(
            seed=plan_seed,
            messages=MessageFaults(**msg_kwargs),
            node_faults=tuple(node_faults),
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """A copy of this plan with its RNG seed replaced."""
        return replace(self, seed=seed)
