"""repro.faults — deterministic, seed-driven fault injection (DESIGN.md §9).

A :class:`FaultPlan` declares *what* goes wrong (message drop/duplicate/
delay/reorder rates and windows, node pause/slowdown/crash schedules);
:func:`install_faults` wires it into a built machine so *when* it goes
wrong is a pure function of ``plan.seed``.  Chaos runs are therefore
bit-reproducible and regression-gated by the golden digests in
:mod:`repro.faults.chaos`.
"""

from repro.faults.injectors import (
    FaultEvent,
    FaultInjector,
    FaultLog,
    FaultStats,
    MessageFaultInjector,
    NodeFaultModel,
    install_faults,
)
from repro.faults.plan import (
    DEFAULT_PROTECTED_TAGS,
    FaultPlan,
    MessageFaults,
    NodeFault,
)

__all__ = [
    "DEFAULT_PROTECTED_TAGS",
    "FaultEvent",
    "FaultInjector",
    "FaultLog",
    "FaultPlan",
    "FaultStats",
    "MessageFaultInjector",
    "MessageFaults",
    "NodeFault",
    "NodeFaultModel",
    "install_faults",
]
