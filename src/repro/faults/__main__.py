"""``python -m repro.faults`` — run the chaos matrix.

The CI ``chaos-smoke`` job runs ``python -m repro.faults --check --out
chaos_ci.json --trace-dir chaos_traces``: every digest must match
:data:`repro.faults.chaos.CHAOS_GOLDEN`; on mismatch the per-case fault
trace is written under ``--trace-dir`` and uploaded as the failure
artifact.  After an intentional behaviour change, regenerate with
``--print-digests`` and paste the new values into ``CHAOS_GOLDEN``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.faults.chaos import MATRIX, run_matrix


def _write_traces(results: dict[str, dict], trace_dir: str) -> list[str]:
    """Re-run mismatching cases and persist their fault logs; returns paths."""
    from repro.faults import chaos

    written = []
    out_dir = Path(trace_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for name, r in results.items():
        if r["ok"]:
            continue
        # traffic/ga producers don't expose the log post-hoc, so rebuild
        # the case once more purely for its trace — determinism makes
        # this the same run
        digest, summary = chaos.MATRIX[name]()
        path = out_dir / f"{name}.json"
        path.write_text(
            json.dumps(
                {
                    "case": name,
                    "digest": digest,
                    "golden": r["golden"],
                    "summary": summary,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        written.append(str(path))
    return written


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.faults`` entry point; nonzero on chaos-digest mismatch."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Run the fixed-seed chaos matrix and report digests.",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 unless every digest matches CHAOS_GOLDEN",
    )
    parser.add_argument(
        "--print-digests", action="store_true",
        help="print a CHAOS_GOLDEN block with the computed digests and exit",
    )
    parser.add_argument(
        "--case", action="append", default=None, metavar="NAME",
        help=f"run only these cases (repeatable); known: {', '.join(MATRIX)}",
    )
    parser.add_argument("--out", default=None, help="write results JSON here")
    parser.add_argument(
        "--trace-dir", default=None,
        help="on --check failure, write per-case fault traces here",
    )
    args = parser.parse_args(argv)
    if args.case:
        unknown = set(args.case) - set(MATRIX)
        if unknown:
            parser.error(f"unknown case(s): {', '.join(sorted(unknown))}")

    results = run_matrix(args.case)

    if args.print_digests:
        print("CHAOS_GOLDEN = {")
        for name, r in results.items():
            print(f'    "{name}": "{r["digest"]}",')
        print("}")
        return 0

    width = max(len(n) for n in results)
    for name, r in results.items():
        status = "ok" if r["ok"] else ("MISMATCH" if r["golden"] else "no-golden")
        print(f"{name:<{width}}  {r['digest'][:16]}…  {status}")

    if args.out:
        Path(args.out).write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n"
        )

    if args.check:
        bad = [n for n, r in results.items() if not r["ok"]]
        if bad:
            print(f"chaos digest mismatch: {', '.join(bad)}", file=sys.stderr)
            if args.trace_dir:
                for p in _write_traces(results, args.trace_dir):
                    print(f"trace written: {p}", file=sys.stderr)
            return 1
        missing = set(MATRIX) - set(results)
        if not args.case and missing:  # pragma: no cover - defensive
            print(f"cases not run: {missing}", file=sys.stderr)
            return 1
        print(f"chaos matrix ok ({len(results)} cases)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
