"""The chaos regression matrix: fixed-seed fault runs with golden digests.

Each case runs one workload under one :class:`~repro.faults.plan.
FaultPlan` and reduces the run to a SHA-256 digest over its observable
behaviour (delivered-traffic sequence or application result) *plus* the
injected-fault log.  The digests are pinned in :data:`CHAOS_GOLDEN` and
checked by CI's ``chaos-smoke`` job — the executable form of the
determinism contract (DESIGN.md §9): a chaos run is a pure function of
``(workload, plan)``.

Digests deliberately exclude ``Frame.frame_id`` — it comes from a
process-global counter, so it varies with whatever ran earlier in the
interpreter; everything digested is derived from simulated time and
seeded draws only.

Three workload families:

``traffic``
    A raw Ethernet frame mill (no blocking protocol above it), safe
    under loss — exercises drop/duplicate/delay/reorder/crash at the
    link layer in isolation.
``ga``
    The small island GA under *lossless* chaos (duplicate + delay +
    reorder) or node faults; Global_Read keeps its age bound throughout.
``bayes``
    The small parallel logic-sampling run under duplication — the case
    that historically underflowed the GVT oracle and is now the
    regression for bounded rollback cascades.

Run ``python -m repro.faults`` for the matrix, ``--check`` to gate
against the goldens, ``--print-digests`` to regenerate after an
intentional behaviour change.
"""

from __future__ import annotations

from typing import Callable

from repro.bench.determinism import digest_values
from repro.faults.injectors import install_faults
from repro.faults.plan import FaultPlan, MessageFaults, NodeFault


class _TrafficNode:
    """Minimal stand-in satisfying the node-fault installer's interface."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.fault_model = None


def traffic_case(
    plan: FaultPlan,
    n_nodes: int = 6,
    n_rounds: int = 60,
    interval: float = 0.35e-3,
) -> tuple[str, dict]:
    """Digest a raw frame mill under ``plan``.

    Every node sends one frame per round to two rotating peers; delivery
    callbacks record ``(time, src, dst, size)``.  There is no protocol
    above the link layer, so any plan — including heavy loss — is safe.
    """
    from repro.network.ethernet import EthernetNetwork
    from repro.network.frame import Frame
    from repro.sim import Kernel

    kernel = Kernel(seed=11)
    net = EthernetNetwork(kernel)
    delivered: list = []

    def receiver(dst: int) -> Callable:
        def on_frame(frame: Frame) -> None:
            delivered.extend(
                (round(kernel.now, 12), frame.src, dst, frame.size_bytes)
            )

        return on_frame

    for i in range(n_nodes):
        net.attach(i, receiver(i))
    injector = install_faults(
        kernel, net, [_TrafficNode(i) for i in range(n_nodes)], plan
    )

    def send_round(r: int) -> None:
        for i in range(n_nodes):
            for hop in (1, 3):
                dst = (i + hop) % n_nodes
                if dst != i:
                    net.adapters[i].send(
                        Frame(src=i, dst=dst, size_bytes=200 + 40 * (r % 5))
                    )
        if r + 1 < n_rounds:
            kernel.schedule(interval, send_round, r + 1)

    kernel.schedule(0.0, send_round, 0)
    kernel.run()
    digest = digest_values(delivered, injector.log.digest_fields())
    return digest, injector.summary()


def ga_case(
    plan: FaultPlan,
    n_demes: int = 2,
    topology: str = "all",
    interconnect: str = "ethernet",
) -> tuple[str, dict]:
    """Digest the small Global_Read island GA under a lossless plan.

    The GA's migrant exchange has no retransmission, so a dropped final
    update can (correctly) block a Global_Read forever; chaos plans for
    it therefore stick to lossless faults or node faults — loss-bearing
    plans belong to the traffic family until a retry layer exists.

    ``topology``/``interconnect`` select the migration wiring
    (:mod:`repro.ga.topology`) and fabric — the switched-fabric row
    exercises the store-and-forward path under the same chaos contract
    as shared Ethernet.
    """
    from dataclasses import replace

    from repro.core.coherence import CoherenceMode
    from repro.experiments.config import Scale
    from repro.experiments.speedup import machine_for
    from repro.ga.functions import get_function
    from repro.ga.island import IslandGaConfig, run_island_ga

    # the network-level injector (MessageFaultInjector) is discoverable
    # from the Dsm the instrument hook receives
    injector: list = []

    def grab_injector(dsm) -> None:
        machine_faults = getattr(dsm.vm.network, "fault_injector", None)
        if machine_faults is not None:
            injector.append(machine_faults)

    machine = machine_for(Scale.smoke(), n_demes, 7, faults=plan)
    if interconnect != machine.interconnect:
        machine = replace(machine, interconnect=interconnect)
    result = run_island_ga(
        IslandGaConfig(
            fn=get_function(1),
            n_demes=n_demes,
            mode=CoherenceMode.NON_STRICT,
            age=10,
            n_generations=40,
            seed=7,
            machine=machine,
            topology=topology,
        ),
        instrument=grab_injector,
    )
    log_fields = injector[0].log.digest_fields() if injector else []
    digest = digest_values(
        result.completion_time,
        result.total_time,
        result.best_fitness,
        result.mean_fitness,
        [float(b) for b in result.per_deme_best],
        list(result.generations_run),
        result.messages_sent,
        log_fields,
    )
    summary = injector[0].stats.as_dict() if injector else {}
    return digest, summary


def bayes_case(plan: FaultPlan) -> tuple[str, dict]:
    """Digest a small parallel logic-sampling run under duplication.

    The regression this pins: duplicated correction/update messages must
    neither crash the GVT oracle nor re-trigger settled rollbacks, and
    the run must terminate.
    """
    from repro.bayes.parallel import ParallelLsConfig, run_parallel_logic_sampling
    from repro.core.coherence import CoherenceMode
    from repro.experiments.config import Scale
    from repro.experiments.speedup import machine_for
    from repro.experiments.table2 import build_network, pick_query

    net = build_network("Hailfinder")
    mcfg = machine_for(Scale.smoke(), 2, 7, faults=plan)
    result = run_parallel_logic_sampling(
        ParallelLsConfig(
            net=net,
            query=pick_query(net, seed=0),
            n_procs=2,
            mode=CoherenceMode.NON_STRICT,
            age=5,
            seed=7,
            machine=mcfg,
            max_iterations=4000,
        )
    )
    digest = digest_values(
        result.completion_time,
        bool(result.converged),
        result.committed_runs,
        result.posterior,
        list(result.iterations_sampled),
        result.messages_sent,
        result.rollback.rollbacks,
        result.rollback.corrections_received,
        result.rollback.duplicate_messages,
        result.rollback.stale_corrections,
    )
    summary = {
        "converged": bool(result.converged),
        "rollbacks": result.rollback.rollbacks,
        "duplicate_messages": result.rollback.duplicate_messages,
        "stale_corrections": result.rollback.stale_corrections,
    }
    return digest, summary


# ---------------------------------------------------------------------------
# The fixed-seed matrix
# ---------------------------------------------------------------------------

def _mk(seed: int, **rates) -> FaultPlan:
    return FaultPlan(seed=seed, messages=MessageFaults(**rates))


MATRIX: dict[str, Callable[[], tuple[str, dict]]] = {
    "traffic-drop": lambda: traffic_case(_mk(1, drop=0.15, stop=0.015)),
    "traffic-duplicate": lambda: traffic_case(_mk(2, duplicate=0.15)),
    "traffic-delay": lambda: traffic_case(_mk(3, delay=0.2)),
    "traffic-reorder": lambda: traffic_case(_mk(4, reorder=0.2)),
    "traffic-mixed": lambda: traffic_case(
        _mk(5, drop=0.05, duplicate=0.05, delay=0.05, reorder=0.05, stop=0.018)
    ),
    "traffic-crash": lambda: traffic_case(
        FaultPlan(
            seed=6,
            node_faults=(
                NodeFault(node=1, kind="crash", start=0.004, duration=0.003),
                NodeFault(node=4, kind="crash", start=0.009, duration=0.002),
            ),
        )
    ),
    "ga-lossless-chaos": lambda: ga_case(
        _mk(7, duplicate=0.05, delay=0.05, reorder=0.05)
    ),
    "ga-switched-ring": lambda: ga_case(
        _mk(10, duplicate=0.05, delay=0.05, reorder=0.05),
        n_demes=4,
        topology="ring",
        interconnect="switched",
    ),
    "ga-node-faults": lambda: ga_case(
        FaultPlan(
            seed=8,
            node_faults=(
                NodeFault(node=0, kind="pause", start=0.3, duration=0.15),
                NodeFault(node=1, kind="slowdown", start=0.6, duration=0.4, factor=2.5),
            ),
        )
    ),
    "bayes-duplicate": lambda: bayes_case(_mk(9, duplicate=0.1)),
}

#: expected digests; regenerate with `python -m repro.faults --print-digests`
#: after an *intentional* behaviour change (and say so in the PR).
CHAOS_GOLDEN = {
    "traffic-drop": "8223aed4f0124a34d3d5ba99c46b065f73743af182fd571be780f69344e6c2e8",
    "traffic-duplicate": "c2e4917c7c9fe16402b737e0bc3ef70dd2bbb3df89d8b68090073afbf92edd81",
    "traffic-delay": "bc371ca8f68b1c0ed61e1cce7ba090cef21e5e0eae46e27efb88d6af97c69716",
    "traffic-reorder": "f7901dcc5d5901a09c80b7d86956b5b45c5d3c3277280a5846af14a5eb1f6218",
    "traffic-mixed": "9d8ab62bfd945b003214ffdafede4fbe4fa10d92950802cd779ee5c27ff2b299",
    "traffic-crash": "a9eb48891f11a3ef3ed7bafad7046d10c2f9a4b626aff2af1ae22ab92d3bac1a",
    "ga-lossless-chaos": "dc4d59c7fde245ec0cec80987bb6886288f27a4b67c365e4993a7fbd7b667586",
    "ga-switched-ring": "cfa9b5178bdc3a828cc9adc07d9cd254d793b2805469dfd75271f1eb89d807d8",
    "ga-node-faults": "41cc5af29e9c952d9a27c75fecb6c123b062618cb81be0a3582fa5b3f0a8d778",
    "bayes-duplicate": "38806a7333e1e972daba603c42d755986ee0d73b5a4a5c9417208e4597c88af4",
}


def run_matrix(names: list[str] | None = None) -> dict[str, dict]:
    """Run the (selected) matrix; returns per-case digest/golden/summary."""
    out: dict[str, dict] = {}
    for name, producer in MATRIX.items():
        if names and name not in names:
            continue
        digest, summary = producer()
        golden = CHAOS_GOLDEN.get(name, "")
        out[name] = {
            "digest": digest,
            "golden": golden,
            "ok": digest == golden,
            "summary": summary,
        }
    return out
